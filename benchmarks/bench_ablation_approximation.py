"""Ablation: DD state approximation (ref [97]) fidelity/size trade-off.

Sweeps the pruning budget on a concentrated-but-hazy state and reports the
fidelity-vs-node-count frontier, plus the effect on a DDSIM-style run that
approximates mid-simulation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.tables import render_series
from repro.dd import (
    DDPackage,
    node_count,
    prune_small_contributions,
    vector_from_array,
)

from conftest import emit

BUDGETS = [0.001, 0.01, 0.05, 0.1, 0.2]


def concentrated_state(n: int, seed: int = 0) -> np.ndarray:
    """A state with strong peaks plus broadband low-amplitude noise."""
    rng = np.random.default_rng(seed)
    arr = 0.015 * (
        rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
    )
    for spike in rng.choice(1 << n, size=6, replace=False):
        arr[spike] += rng.uniform(0.5, 1.0)
    return arr / np.linalg.norm(arr)


def run_experiment():
    n = 10
    pkg = DDPackage(n)
    state = vector_from_array(pkg, concentrated_state(n))
    before = node_count(state)
    fidelities, sizes = [], []
    for budget in BUDGETS:
        result = prune_small_contributions(pkg, state, budget)
        fidelities.append(result.fidelity)
        sizes.append(result.nodes_after)
    text = render_series(
        f"Ablation: DD approximation on a {before}-node state",
        "budget", BUDGETS,
        {"fidelity": fidelities, "nodes": [float(s) for s in sizes]},
    )
    return text, fidelities, sizes, before


@pytest.mark.benchmark(group="ablation-approx")
def test_ablation_approximation(benchmark):
    text, fidelities, sizes, before = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    emit("ablation_approximation", text)
    # Fidelity respects the budget at every point...
    for budget, fid in zip(BUDGETS, fidelities):
        assert fid >= 1.0 - budget - 1e-6
    # ...monotone trade-off: bigger budgets never grow the DD...
    assert all(b <= a for a, b in zip(sizes, sizes[1:]))
    # ...and a moderate budget buys a large size reduction.
    assert sizes[-1] < before / 2
