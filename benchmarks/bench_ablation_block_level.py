"""Ablation: the dense bottom-out level of the Python DMAV kernels.

DESIGN.md substitution 2 replaces the paper's scalar MAC loop with
vectorized bottom-outs below ``dense_block_level``.  This bench sweeps
that level to show the trade-off it buys: too low and Python recursion
dominates; too high and per-node dense blocks waste memory/time.
"""

from __future__ import annotations

import pytest

from repro.bench.tables import render_series
from repro.circuits import get_circuit
from repro.core import FlatDDSimulator

from conftest import emit

LEVELS = [0, 2, 5, 8]


def run_experiment(threads: int):
    circuit = get_circuit("dnn", 12, layers=6)
    times = []
    states = []
    for level in LEVELS:
        r = FlatDDSimulator(
            threads=threads, dense_block_level=level
        ).run(circuit)
        times.append(r.runtime_seconds)
        states.append(r.state)
    # All levels compute the same state.
    import numpy as np

    for s in states[1:]:
        assert abs(np.vdot(states[0], s)) ** 2 == pytest.approx(
            1.0, abs=1e-8
        )
    text = render_series(
        "Ablation: DMAV dense bottom-out level (dnn n=12)",
        "dense_block_level",
        LEVELS,
        {"runtime_s": times},
    )
    return text, times


@pytest.mark.benchmark(group="ablation-block")
def test_ablation_block_level(benchmark, threads):
    text, times = benchmark.pedantic(
        run_experiment, args=(threads,), rounds=1, iterations=1
    )
    emit("ablation_block_level", text)
    # Every level is correct (asserted inside); the default (5) must be
    # within 1.5x of the best sampled level.
    default_idx = LEVELS.index(5)
    assert times[default_idx] <= 1.5 * min(times)
