"""Ablation: cost-model-gated caching vs always / never caching.

Section 3.2.3's point is that caching helps some gates and hurts others,
so the decision must be per gate.  This bench compares the three policies
on modeled cost over the deep fused workloads.
"""

from __future__ import annotations

import pytest

from repro.bench.tables import render_table
from repro.circuits import get_circuit
from repro.core import FlatDDSimulator

from conftest import emit

CIRCUITS = [
    ("dnn", 12, {"layers": 8}),
    ("supremacy", 12, {"cycles": 16}),
]
POLICIES = ["auto", "always", "never"]


def modeled_cost(result, policy: str) -> float:
    total = 0.0
    for _, c1, c2, _ in result.metadata["dmav_gate_costs"]:
        if policy == "always":
            total += c2
        elif policy == "never":
            total += c1
        else:
            total += min(c1, c2)
    return total


def run_experiment(threads: int):
    rows = []
    costs = {}
    for family, n, kwargs in CIRCUITS:
        circuit = get_circuit(family, n, **kwargs)
        r = FlatDDSimulator(threads=threads, fusion="cost").run(circuit)
        for policy in POLICIES:
            c = modeled_cost(r, policy)
            costs[(circuit.name, policy)] = c
            rows.append([circuit.name, policy, f"{c:.4g}"])
    table = render_table(
        "Ablation: DMAV cache policy (modeled cost, Section 3.2.3 units)",
        ["circuit", "policy", "total cost"],
        rows,
    )
    return table, costs


@pytest.mark.benchmark(group="ablation-cache")
def test_ablation_cache_policy(benchmark, threads):
    table, costs = benchmark.pedantic(
        run_experiment, args=(threads,), rounds=1, iterations=1
    )
    emit("ablation_cache_policy", table)
    for family, n, kwargs in CIRCUITS:
        name = get_circuit(family, n, **kwargs).name
        auto = costs[(name, "auto")]
        always = costs[(name, "always")]
        never = costs[(name, "never")]
        # The per-gate decision is at least as good as either blanket
        # policy, and strictly better than at least one of them.
        assert auto <= always + 1e-9
        assert auto <= never + 1e-9
        assert auto < max(always, never)
