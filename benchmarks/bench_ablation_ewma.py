"""Ablation: the EWMA conversion trigger vs fixed alternatives.

DESIGN.md calls out the EWMA trigger (beta, epsilon) as a key design
choice.  This bench compares, on regular and irregular circuits:

* EWMA (paper defaults beta=0.9, epsilon=2),
* "never" convert (pure DDSIM behaviour),
* "always" convert (switch at the first eligible gate),
* fixed absolute DD-size thresholds.

Expected outcome: EWMA matches the best fixed threshold on irregular
circuits *without tuning*, and never fires on regular circuits (where any
aggressive policy pays the conversion + DMAV overhead for nothing).
"""

from __future__ import annotations

import pytest

from repro.bench.tables import render_table
from repro.circuits import get_circuit
from repro.core import FlatDDSimulator

from conftest import emit

CIRCUITS = [
    ("adder", 16, {}),
    ("ghz", 16, {}),
    ("dnn", 12, {"layers": 6}),
    ("supremacy", 12, {"cycles": 10}),
]

#: (label, epsilon, min_size) -- epsilon ~ 1 fires almost immediately, a
#: huge min_size approximates "never".
POLICIES = [
    ("ewma(paper)", 2.0, 32),
    ("eager(eps=1.05)", 1.05, 1),
    ("lazy(eps=8)", 8.0, 32),
    ("never", 2.0, 10**9),
]


def run_experiment(threads: int):
    rows = []
    results = {}
    for family, n, kwargs in CIRCUITS:
        circuit = get_circuit(family, n, **kwargs)
        for label, eps, min_size in POLICIES:
            sim = FlatDDSimulator(threads=threads, epsilon=eps)
            # "never" is emulated with an epsilon no growth can beat.
            if min_size >= 10**9:
                sim = FlatDDSimulator(threads=threads, epsilon=1e18)
            # Best of three: sub-100ms runs are scheduler-noise-bound.
            r = None
            for _ in range(3):
                attempt = sim.run(circuit, max_seconds=30)
                if r is None or attempt.runtime_seconds < r.runtime_seconds:
                    r = attempt
                if attempt.metadata.get("timed_out"):
                    break
            results[(circuit.name, label)] = r
            rows.append(
                [
                    circuit.name,
                    label,
                    f"{r.runtime_seconds:.3f}",
                    str(r.metadata["conversion_gate_index"]),
                    f"{r.peak_memory_mb:.2f}",
                ]
            )
    table = render_table(
        "Ablation: conversion-trigger policies",
        ["circuit", "policy", "runtime (s)", "converted at", "mem (MB)"],
        rows,
    )
    return table, results


@pytest.mark.benchmark(group="ablation-ewma")
def test_ablation_ewma(benchmark, threads):
    table, results = benchmark.pedantic(
        run_experiment, args=(threads,), rounds=1, iterations=1
    )
    emit("ablation_ewma", table)

    # On regular circuits the paper trigger never fires...
    for name in ("adder_n16", "ghz_n16"):
        assert results[(name, "ewma(paper)")].metadata[
            "conversion_gate_index"
        ] is None
    # ...and on irregular circuits it does, beating "never" decisively.
    for name in ("dnn_n12", "supremacy_n12"):
        ewma = results[(name, "ewma(paper)")]
        never = results[(name, "never")]
        assert ewma.metadata["converted"]
        assert (
            never.metadata.get("timed_out")
            or never.runtime_seconds > 3 * ewma.runtime_seconds
        )
    # EWMA is within a small factor of the best policy on every circuit
    # without tuning (3x margin absorbs single-core scheduler noise on
    # sub-100ms runs).
    for family, n, kwargs in CIRCUITS:
        name = get_circuit(family, n, **kwargs).name
        times = {
            label: results[(name, label)].runtime_seconds
            for label, *_ in POLICIES
            if not results[(name, label)].metadata.get("timed_out")
        }
        assert times["ewma(paper)"] <= 3.0 * min(times.values()), name
