"""Checkpoint overhead: snapshot cost vs checkpoint cadence.

Resilience is not free: each cut serializes the state (DD edge walk or
flat array), dumps the complex table, and resets the history-dependent
caches so a resume replays bit-identically (docs/RESILIENCE.md).  This
experiment quantifies that price as a function of ``checkpoint_every`` on
a DD-heavy circuit (supremacy, EWMA-timed conversion) and an array-heavy
one (QFT with an early forced conversion), against an uncheckpointed
baseline.

Shape targets: overhead decreases monotonically-ish as the cadence
coarsens, and the sparsest cadence stays within a small multiple of the
baseline -- checkpointing every gate is the pathological configuration,
not the recommended one.
"""

from __future__ import annotations

import os
import tempfile
import time

import pytest

from repro.bench.tables import render_series
from repro.circuits import get_circuit
from repro.common.config import FlatDDConfig
from repro.core import FlatDDSimulator

from conftest import emit

EVERY = [1, 2, 5, 10, 25]
WORKLOADS = [
    ("supremacy", 10, {"cycles": 8}, {}),
    ("qft", 10, {}, {"force_convert_at": 3}),
]
REPEATS = 3


def _timed_run(circuit, cfg_kwargs, threads, **run_kwargs):
    best = float("inf")
    for _ in range(REPEATS):
        cfg = FlatDDConfig(threads=threads, **cfg_kwargs)
        t0 = time.perf_counter()
        FlatDDSimulator(cfg).run(circuit, **run_kwargs)
        best = min(best, time.perf_counter() - t0)
    return best


def run_experiment(threads: int = 4):
    overheads = {}
    sizes = {}
    for family, n, gen_kwargs, cfg_kwargs in WORKLOADS:
        circuit = get_circuit(family, n, **gen_kwargs)
        base = _timed_run(circuit, cfg_kwargs, threads)
        row_overhead = []
        row_size = []
        for every in EVERY:
            with tempfile.TemporaryDirectory() as tmp:
                path = os.path.join(tmp, "bench.ckpt")
                seconds = _timed_run(
                    circuit, cfg_kwargs, threads,
                    checkpoint_every=every, checkpoint_path=path,
                )
                size_kib = (
                    os.path.getsize(path) / 1024.0
                    if os.path.exists(path) else 0.0
                )
            row_overhead.append(100.0 * (seconds / base - 1.0))
            row_size.append(size_kib)
        overheads[f"{family}{n}_overhead_%"] = row_overhead
        sizes[f"{family}{n}_snap_KiB"] = row_size
    text = render_series(
        "Checkpoint overhead vs cadence (min of "
        f"{REPEATS} runs, vs uncheckpointed baseline)",
        "checkpoint_every",
        EVERY,
        {**overheads, **sizes},
    )
    return text, overheads


@pytest.mark.benchmark(group="resilience")
def test_checkpoint_overhead(benchmark, threads):
    text, overheads = benchmark.pedantic(
        lambda: run_experiment(threads), rounds=1, iterations=1
    )
    emit("checkpoint_overhead", text)
    for name, row in overheads.items():
        # The coarsest cadence must cost less than the densest one: the
        # whole point of `checkpoint_every` is to buy the overhead down.
        assert row[-1] <= row[0] + 25.0, (name, row)
