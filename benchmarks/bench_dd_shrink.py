"""DD-phase shrinking: identity-skipped gate DDs + static qubit reorder.

Two levers make the DD phase smaller rather than faster-per-node
(``docs/PERFORMANCE.md``, "Shrinking the DD phase"):

* **Identity skip** (``identity_skip``, default on): gate DDs span only
  their active-qubit window; ``mv``/``mm`` treat missing levels as exact
  weight-1 pass-throughs.  The state DD -- and hence the EWMA trigger,
  which watches state-DD node counts -- is unchanged; the win is gate-DD
  construction and application cost.
* **Reorder** (``--qubit-order interaction|sift``): a static
  logical-to-physical permutation keeps interacting qubits adjacent, so
  gate windows narrow *and* the state DD itself can shrink -- which is
  the lever that actually moves the EWMA conversion point.

This experiment measures three things per workload: gate-DD node counts
(package matrix-table size after building every gate, full-height vs
windowed -- the table is shared, so hash-consed identity chains are
counted once, same as the simulator pays for them), the EWMA conversion
gate index per variant (deterministic: the trigger is size-driven), and
DD-phase + conversion wall seconds per variant (min over interleaved
repeats).

Shape targets: >= 2x windowed node reduction on at least one
sparse-gate workload (supremacy/dnn clear it; qft's controlled-phase
tail sits near 1.6x because control-to-target routing through
intermediate levels is genuine structure, not identity), >= 1.2x
DD-phase + conversion speedup on at least one workload, and a
demonstrably delayed EWMA conversion point on at least one
reorder-helped workload.
"""

from __future__ import annotations

import pytest

from repro.backends.gatecache import GateDDCache
from repro.bench.tables import render_table
from repro.circuits import get_circuit
from repro.common.config import FlatDDConfig
from repro.core import FlatDDSimulator
from repro.dd.package import DDPackage

from conftest import emit, record

WORKLOADS = [
    ("qft", 20),
    ("supremacy", 16),
    ("supremacy", 18),
    ("dnn", 12),
]
#: (label, identity_skip, qubit_order) variants timed per workload.
VARIANTS = [
    ("baseline", False, "natural"),
    ("skip", True, "natural"),
    ("skip+sift", True, "sift"),
]
REPEATS = 4
MIN_NODE_REDUCTION = 2.0
MIN_SPEEDUP = 1.2


def gate_dd_nodes(circuit, windowed: bool) -> int:
    """Matrix-table size after building every gate DD of ``circuit``.

    The unique table is shared, so identity chains and repeated gates
    are counted once -- exactly the footprint the simulator pays.
    """
    pkg = DDPackage(circuit.num_qubits)
    cache = GateDDCache(pkg)
    for gate in circuit.gates:
        cache.get(gate, windowed=windowed)
    return pkg.matrix_node_count


def _dd_phase_run(circuit, threads, identity_skip, qubit_order):
    cfg = FlatDDConfig(
        threads=threads, identity_skip=identity_skip, qubit_order=qubit_order
    )
    result = FlatDDSimulator(cfg).run(circuit)
    seconds = sum(g.seconds for g in result.gate_trace if g.phase == "dd")
    report = result.metadata.get("conversion_report")
    if result.metadata.get("converted") and report is not None:
        seconds += report.seconds
    return seconds, result


def run_experiment(threads: int = 4):
    node_rows, timed_rows = [], []
    measured = {}
    for family, n in WORKLOADS:
        circuit = get_circuit(family, n)
        name = f"{family}-{n}"
        full = gate_dd_nodes(circuit, windowed=False)
        windowed = gate_dd_nodes(circuit, windowed=True)
        reduction = full / windowed
        node_rows.append(
            [name, str(full), str(windowed), f"{reduction:.2f}x"]
        )
        best = {}
        conv_at = {}
        counters = {}
        for _ in range(REPEATS):
            for label, skip, order in VARIANTS:
                seconds, result = _dd_phase_run(circuit, threads, skip, order)
                best[label] = min(best.get(label, seconds), seconds)
                conv_at[label] = result.metadata.get("conversion_gate_index")
                counters[label] = result.metadata["obs"]["counters"]
        base_s = best["baseline"]
        for label, _, _ in VARIANTS:
            timed_rows.append([
                name if label == "baseline" else "",
                label,
                f"{1000.0 * best[label]:.1f}",
                f"{base_s / best[label]:.2f}x",
                str(conv_at[label]),
            ])
        measured[name] = {
            "nodes_full": full,
            "nodes_windowed": windowed,
            "node_reduction": reduction,
            "seconds": best,
            "speedup": {k: base_s / v for k, v in best.items()},
            "conversion_gate": conv_at,
            "counters": counters,
        }
    text = "\n\n".join([
        render_table(
            "Gate-DD node counts: package matrix-table size after building "
            "every gate, full-height vs identity-skipped windows",
            ["workload", "full nodes", "windowed nodes", "reduction"],
            node_rows,
        ),
        render_table(
            "DD phase + conversion: wall ms and EWMA conversion gate per "
            f"variant (min of {REPEATS} interleaved runs, {threads} "
            "threads; 'None' = never converted)",
            ["workload", "variant", "dd+conv ms", "speedup", "conv gate"],
            timed_rows,
        ),
    ])
    return text, measured


@pytest.mark.benchmark(group="dd-shrink")
def test_dd_shrink(benchmark, threads):
    text, measured = benchmark.pedantic(
        lambda: run_experiment(threads), rounds=1, iterations=1
    )
    emit("dd_shrink", text)
    record(
        "dd_shrink",
        {
            name: {
                "gate_dd_nodes_full": m["nodes_full"],
                "gate_dd_nodes_windowed": m["nodes_windowed"],
                "node_reduction_speedup": m["node_reduction"],
                "dd_conv_speedup": m["speedup"]["skip"],
                "dd_conv_sift_speedup": m["speedup"]["skip+sift"],
            }
            for name, m in measured.items()
        },
        config_digest=f"threads={threads};repeats={REPEATS}",
    )
    # Identity skipping must clear 2x on at least one sparse-gate
    # workload (the structural claim behind the feature).
    best_reduction = max(m["node_reduction"] for m in measured.values())
    assert best_reduction >= MIN_NODE_REDUCTION, (
        f"best gate-DD node reduction {best_reduction:.2f}x below "
        f"the {MIN_NODE_REDUCTION}x floor"
    )
    # Combined features must buy wall time somewhere.
    best_speedup = max(
        max(m["speedup"].values()) for m in measured.values()
    )
    assert best_speedup >= MIN_SPEEDUP, (
        f"best DD-phase+conversion speedup {best_speedup:.2f}x below "
        f"the {MIN_SPEEDUP}x floor"
    )
    # Reorder must demonstrably delay the (size-driven, deterministic)
    # EWMA trigger on at least one workload.
    delayed = [
        name
        for name, m in measured.items()
        if m["conversion_gate"]["baseline"] is not None
        and m["conversion_gate"]["skip+sift"] is not None
        and m["conversion_gate"]["skip+sift"]
        > m["conversion_gate"]["baseline"]
    ]
    assert delayed, (
        "no workload showed a delayed EWMA conversion point under "
        f"reorder: {[m['conversion_gate'] for m in measured.values()]}"
    )
    # The skip actually engaged: identity counters are live.
    for name, m in measured.items():
        c = m["counters"]["skip"]
        assert (
            c.get("dd.identity.mv_skips", 0)
            + c.get("dd.identity.lift_steps", 0)
            + c.get("dd.identity.passthrough_skips", 0)
        ) > 0, name


# ---------------------------------------------------------------------------
# CI smoke: deterministic metrics only (node counts, conversion indexes,
# identity counters) so bench-compare can gate on them.
# ---------------------------------------------------------------------------

SMOKE_WORKLOADS = [("qft", 12), ("supremacy", 12)]


def run_smoke(directory: str | None = None) -> str:
    """Write ``BENCH_dd_shrink_smoke.json`` from deterministic metrics.

    Everything recorded here is machine-independent: gate-DD node counts
    are pure DD structure, the EWMA trigger is driven by state-DD node
    counts (never wall time), and the identity counters replay the same
    skip decisions on every host.  CI gates on this record with a tight
    bench-compare threshold; an intentional behavior change means
    regenerating the committed baseline.
    """
    from repro.bench.registry import write_bench_record

    metrics: dict[str, dict] = {}
    for family, n in SMOKE_WORKLOADS:
        circuit = get_circuit(family, n)
        name = f"{family}-{n}"
        full = gate_dd_nodes(circuit, windowed=False)
        windowed = gate_dd_nodes(circuit, windowed=True)
        _, skip_res = _dd_phase_run(circuit, 2, True, "natural")
        _, sift_res = _dd_phase_run(circuit, 2, True, "sift")
        counters = skip_res.metadata["obs"]["counters"]
        metrics[name] = {
            "gate_dd_nodes_full": full,
            "gate_dd_nodes_windowed": windowed,
            "node_reduction_speedup": full / windowed,
            "conversion_gate_natural": (
                skip_res.metadata.get("conversion_gate_index") or 0
            ),
            "conversion_gate_sift": (
                sift_res.metadata.get("conversion_gate_index") or 0
            ),
            "identity_mv_skips": counters.get("dd.identity.mv_skips", 0),
            "identity_lift_steps": counters.get("dd.identity.lift_steps", 0),
            "identity_passthrough_skips": counters.get(
                "dd.identity.passthrough_skips", 0
            ),
            "reorder_cost_natural": sift_res.metadata["reorder"][
                "cost_natural"
            ],
            "reorder_cost_selected": sift_res.metadata["reorder"][
                "cost_selected"
            ],
        }
    path = write_bench_record(
        "dd_shrink_smoke",
        metrics,
        directory=directory,
        config_digest="qft-12;supremacy-12;threads=2;deterministic",
    )
    print(f"bench record: {path}")
    return path


if __name__ == "__main__":
    import sys

    run_smoke(sys.argv[1] if len(sys.argv) > 1 else None)
