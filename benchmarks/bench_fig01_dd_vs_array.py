"""Figure 1: normalized runtime & memory, DD-based vs array-based simulator.

Paper: on regular circuits (Adder, GHZ) the DD simulator wins both runtime
and memory by orders of magnitude; on irregular circuits (DNN, VQE) the
array simulator wins.  This bench reruns that 2x4 comparison on the scaled
workloads and prints the normalized grid the figure plots.
"""

from __future__ import annotations

import pytest

from repro.backends import DDSimulator, StatevectorSimulator
from repro.bench.tables import render_table
from repro.circuits import get_circuit

from conftest import emit

# Regular circuits run at larger n than the irregular ones: the figure's
# mechanism is that array cost grows with 2**n regardless of structure
# while the DD stays constant-size on regular circuits, and that gap only
# opens once 2**n dominates the constant factors.
WORKLOADS = [
    ("Adder", "adder", 20, {}, "regular"),
    ("GHZ", "ghz", 22, {}, "regular"),
    ("DNN", "dnn", 10, {"layers": 4}, "irregular"),
    ("VQE", "vqe", 10, {"layers": 2}, "irregular"),
]


def run_experiment() -> tuple[str, dict]:
    rows = []
    shape = {}
    for label, family, n, kwargs, kind in WORKLOADS:
        circuit = get_circuit(family, n, **kwargs)
        dd = DDSimulator().run(circuit, max_seconds=30)
        array = StatevectorSimulator().run(circuit)
        rt_ratio = dd.runtime_seconds / array.runtime_seconds
        mem_ratio = dd.peak_memory_bytes / array.peak_memory_bytes
        shape[label] = (kind, rt_ratio, mem_ratio)
        rows.append(
            [
                label,
                kind,
                f"{dd.runtime_seconds:.3f}",
                f"{array.runtime_seconds:.3f}",
                f"{rt_ratio:.3g}",
                f"{dd.peak_memory_mb:.2f}",
                f"{array.peak_memory_mb:.2f}",
                f"{mem_ratio:.3g}",
            ]
        )
    table = render_table(
        "Figure 1: DD-based vs array-based simulation",
        ["circuit", "structure", "DD time (s)", "array time (s)",
         "time DD/array", "DD mem (MB)", "array mem (MB)", "mem DD/array"],
        rows,
        note="Paper shape: ratios << 1 on regular circuits, >> 1 runtime on "
        "irregular ones.",
    )
    return table, shape


@pytest.mark.benchmark(group="fig01")
def test_fig01_dd_vs_array(benchmark):
    table, shape = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    emit("fig01_dd_vs_array", table)
    # Reproduction assertions (the figure's qualitative content):
    for label, (kind, rt, _mem) in shape.items():
        if kind == "regular":
            assert rt < 1.0, f"{label}: DD should beat arrays on regular"
        else:
            assert rt > 1.0, f"{label}: arrays should beat DD on irregular"
    # Memory: DD wins on at least the regular circuits.
    assert shape["Adder"][2] < 1.0 or shape["GHZ"][2] < 1.0
