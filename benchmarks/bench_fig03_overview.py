"""Figure 3: the FlatDD pipeline overview (per-gate runtime + trigger point).

Reproduces the figure's content as a per-gate trace: DD-phase gate times
rise as the state DD grows; the EWMA monitor fires; conversion runs once;
and the DMAV phase settles at a stable per-gate time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.tables import render_series
from repro.circuits import get_circuit
from repro.core import FlatDDSimulator

from conftest import emit


def run_experiment(threads: int):
    circuit = get_circuit("dnn", 10, layers=4)
    result = FlatDDSimulator(threads=threads).run(circuit)
    trace = result.gate_trace
    xs = [g.index for g in trace]
    series = {
        "gate_seconds": [g.seconds for g in trace],
        "dd_size": [float(g.dd_size or 0) for g in trace],
        "ewma": [
            s.ewma for s in result.metadata["ewma_samples"]
        ] + [0.0] * (len(trace) - len(result.metadata["ewma_samples"])),
    }
    text = render_series(
        "Figure 3: FlatDD per-gate trace on DNN n=10 "
        f"(converted at gate {result.metadata['conversion_gate_index']})",
        "gate",
        xs,
        series,
    )
    return text, result


@pytest.mark.benchmark(group="fig03")
def test_fig03_overview(benchmark, threads):
    text, result = benchmark.pedantic(
        run_experiment, args=(threads,), rounds=1, iterations=1
    )
    emit("fig03_overview", text)

    assert result.metadata["converted"]
    idx = result.metadata["conversion_gate_index"]
    trace = result.gate_trace
    dd_sizes = [g.dd_size for g in trace if g.phase == "dd"]
    dmav_times = [g.seconds for g in trace if g.phase == "dmav"]
    # The figure's story: the state DD blows up right before the trigger
    # (that is what makes DD gates expensive), while the DMAV phase's
    # per-gate cost stays flat afterwards.
    assert dd_sizes[-1] > 4 * dd_sizes[max(idx // 2, 0)]
    # Flatness via robust statistics (immune to scheduler spikes): the
    # 90th-percentile DMAV gate costs within a few x of the median.
    assert float(np.percentile(dmav_times, 90)) < 6.0 * float(
        np.median(dmav_times)
    )
    # EWMA trace aligns with the trigger gate.
    samples = result.metadata["ewma_samples"]
    assert samples[-1].triggered and samples[-1].gate_index == idx
