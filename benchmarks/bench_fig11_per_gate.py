"""Figure 11: per-gate runtime, FlatDD vs DDSIM vs Quantum++.

The paper plots per-gate runtime on DNN and supremacy circuits: DDSIM's
per-gate cost explodes at the irregularity turning point, Quantum++ is flat
throughout, and FlatDD follows DDSIM early (cheap DD gates), then converts
and stays flat.  This bench reproduces both panels at scaled sizes and
checks those three curve shapes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import DDSimulator, StatevectorSimulator
from repro.bench.tables import render_series
from repro.circuits import get_circuit
from repro.core import FlatDDSimulator

from conftest import emit

PANELS = [
    ("dnn", 10, {"layers": 4}),
    ("supremacy", 10, {"cycles": 8}),
]


def run_panel(family: str, n: int, kwargs: dict, threads: int):
    circuit = get_circuit(family, n, **kwargs)
    flatdd = FlatDDSimulator(threads=threads).run(circuit)
    ddsim = DDSimulator().run(circuit, max_seconds=60)
    qpp = StatevectorSimulator(threads=threads).run(circuit)
    gates = min(len(r.gate_trace) for r in (flatdd, ddsim, qpp))
    series = {
        "flatdd": [g.seconds for g in flatdd.gate_trace[:gates]],
        "ddsim": [g.seconds for g in ddsim.gate_trace[:gates]],
        "quantumpp": [g.seconds for g in qpp.gate_trace[:gates]],
    }
    text = render_series(
        f"Figure 11 ({family} n={n}): per-gate runtime (s)",
        "gate",
        list(range(gates)),
        series,
    )
    return text, flatdd, ddsim, qpp


@pytest.mark.benchmark(group="fig11")
@pytest.mark.parametrize("family,n,kwargs", PANELS, ids=[p[0] for p in PANELS])
def test_fig11_per_gate(benchmark, threads, family, n, kwargs):
    text, flatdd, ddsim, qpp = benchmark.pedantic(
        run_panel, args=(family, n, kwargs, threads), rounds=1, iterations=1
    )
    emit(f"fig11_per_gate_{family}", text)

    conv = flatdd.metadata["conversion_gate_index"]
    assert conv is not None

    dd_times = np.array([g.seconds for g in ddsim.gate_trace])
    flat_times = np.array([g.seconds for g in flatdd.gate_trace])
    qpp_times = np.array([g.seconds for g in qpp.gate_trace])

    # DDSIM's late gates are far costlier than its early gates.
    early = dd_times[: max(conv // 2, 1)].mean()
    late = dd_times[-10:].mean()
    assert late > 10 * early

    # FlatDD's DMAV tail is flat: its late gates stay near its own median.
    flat_late = flat_times[-10:].mean()
    assert flat_late < 5 * np.median(flat_times)

    # After the turning point FlatDD's per-gate cost is below DDSIM's.
    assert flat_times[conv + 1:].mean() < dd_times[conv + 1:].mean()

    # Quantum++ is flat throughout (no turning point).
    assert qpp_times[-10:].mean() < 5 * np.median(qpp_times)
