"""Figure 12: runtime vs thread count for FlatDD and Quantum++.

The container is single-core (DESIGN.md substitution 1), so the thread
curves come from the paper's own cost model applied to the run's actual
DMAV gate DDs (see repro.bench.model).  The real partitioned execution at
each t is also run and verified for correctness, so the modeled curve sits
on top of executed code, not a paper abstraction.

Paper shape: FlatDD runtime falls with t (7.26x at 8 threads on KNN) and
saturates around 16 threads; Quantum++ shows the same trend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import StatevectorSimulator
from repro.bench.model import ThreadScalingModel
from repro.bench.tables import render_series
from repro.circuits import get_circuit
from repro.core import FlatDDSimulator

from conftest import emit

THREADS = [1, 2, 4, 8, 16]
PANELS = [
    ("supremacy", 14, {"cycles": 10}),
    ("knn", 15, {}),
]


def run_panel(family: str, n: int, kwargs: dict):
    circuit = get_circuit(family, n, **kwargs)
    reference = FlatDDSimulator(threads=4).run(circuit, keep_internals=True)
    model = ThreadScalingModel.from_result(reference, THREADS)
    flat_curve = [model.runtime(t) for t in THREADS]

    # Execute the real partitioned code paths at each t and verify states.
    for t in THREADS:
        check = FlatDDSimulator(threads=t).run(circuit)
        fid = abs(np.vdot(check.state, reference.state)) ** 2
        assert fid == pytest.approx(1.0, abs=1e-8), (family, t)

    # Quantum++ model: per-gate work is (gather + 4 axpy) over 2**n/t
    # amplitudes plus a fixed dispatch term, calibrated the same way.
    qpp = StatevectorSimulator(threads=1).run(circuit)
    per_gate = [g.seconds for g in qpp.gate_trace]
    kappa = min(per_gate)
    work = qpp.runtime_seconds - kappa * len(per_gate)
    qpp_curve = [work / t + kappa * len(per_gate) for t in THREADS]

    text = render_series(
        f"Figure 12 ({family} n={n}): modeled runtime (s) vs threads",
        "threads",
        THREADS,
        {"flatdd": flat_curve, "quantumpp": qpp_curve},
    )
    return text, flat_curve, qpp_curve


@pytest.mark.benchmark(group="fig12")
@pytest.mark.parametrize(
    "family,n,kwargs", PANELS, ids=[p[0] for p in PANELS]
)
def test_fig12_scalability(benchmark, family, n, kwargs):
    text, flat_curve, qpp_curve = benchmark.pedantic(
        run_panel, args=(family, n, kwargs), rounds=1, iterations=1
    )
    emit(f"fig12_scalability_{family}", text)

    # Monotone non-increasing runtime in t.
    assert all(
        flat_curve[i + 1] <= flat_curve[i] * 1.01
        for i in range(len(flat_curve) - 1)
    )
    # Meaningful speed-up by 8 threads...
    assert flat_curve[0] / flat_curve[3] > 2.0
    # ...but saturating: the 8->16 step gains far less than the 1->2 step.
    gain_12 = flat_curve[0] / flat_curve[1]
    gain_816 = flat_curve[3] / flat_curve[4]
    assert gain_816 < gain_12
    # Quantum++ scales too (same trend, as in the paper; its gather-based
    # kernel carries a larger serial dispatch fraction in this substrate).
    assert qpp_curve[0] / qpp_curve[3] > 1.5
