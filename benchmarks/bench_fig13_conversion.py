"""Figure 13: parallel DD-to-array conversion vs DDSIM's sequential one.

Panel (a): conversion time, FlatDD's parallel algorithm vs the sequential
exporter, on ten circuits.  Panel (b): conversion cost as a percentage of
total simulation runtime.

Paper shape: the parallel algorithm wins on every circuit (22.34x average
at 16 threads) and conversion drops from up to 83% of total runtime to a
few percent.  On one core the parallel win comes from the algorithm's
vectorized fill + scalar-multiplication shortcut; the thread-split itself
is additionally verified at every t by the unit tests.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench.tables import render_table
from repro.circuits import get_circuit
from repro.core import FlatDDSimulator
from repro.core.conversion import convert_ddsim_scalar, convert_parallel
from repro.dd import DDPackage, vector_from_array
from repro.metrics.stats import geometric_mean

from conftest import emit

CIRCUITS = [
    ("dnn", 10, {"layers": 4}),
    ("dnn", 12, {"layers": 4}),
    ("vqe", 12, {}),
    ("knn", 13, {}),
    ("knn", 15, {}),
    ("swaptest", 13, {}),
    ("supremacy", 10, {"cycles": 8}),
    ("supremacy", 12, {"cycles": 8}),
    ("qft", 12, {}),
    ("wstate", 14, {}),
]


def state_dd_for(family, n, kwargs, threads):
    """The state DD at FlatDD's conversion point (or the final state)."""
    circuit = get_circuit(family, n, **kwargs)
    sim = FlatDDSimulator(threads=threads)
    result = sim.run(circuit, keep_internals=True)
    pkg = result.metadata["package"]
    # Rebuild the state DD from the final array: same size class as the
    # converted DD, fully deterministic.
    return pkg, vector_from_array(pkg, result.state), result


def run_experiment(threads: int):
    rows = []
    ratios = []
    for family, n, kwargs in CIRCUITS:
        pkg, state_dd, result = state_dd_for(family, n, kwargs, threads)
        # Best of three for both converters (sub-ms timings are noisy).
        seq_seconds = float("inf")
        for _ in range(3):
            seq_arr, s = convert_ddsim_scalar(pkg, state_dd)
            seq_seconds = min(seq_seconds, s)
        report = None
        for _ in range(3):
            par_arr, rep = convert_parallel(pkg, state_dd, threads)
            if report is None or rep.seconds < report.seconds:
                report = rep
        np.testing.assert_allclose(par_arr, seq_arr, atol=1e-9)
        speedup = seq_seconds / report.seconds
        ratios.append(speedup)
        total = result.runtime_seconds
        rows.append(
            [
                f"{family}_n{n}",
                f"{seq_seconds * 1e3:.2f}",
                f"{report.seconds * 1e3:.2f}",
                f"{speedup:.2f}x",
                f"{100 * seq_seconds / (total + seq_seconds):.1f}%",
                f"{100 * report.seconds / (total + report.seconds):.2f}%",
            ]
        )
    rows.append(
        ["geo-mean", "", "", f"{geometric_mean(ratios):.2f}x", "", ""]
    )
    table = render_table(
        f"Figure 13: DD-to-array conversion, sequential vs parallel (t={threads})",
        ["circuit", "seq (ms)", "parallel (ms)", "speed-up",
         "seq % of total", "par % of total"],
        rows,
    )
    return table, ratios


@pytest.mark.benchmark(group="fig13")
def test_fig13_conversion(benchmark, threads):
    table, ratios = benchmark.pedantic(
        run_experiment, args=(threads,), rounds=1, iterations=1
    )
    emit("fig13_conversion", table)
    # The parallel algorithm wins on the vast majority of circuits (the
    # paper wins all; sub-millisecond conversions here are noise-bound)...
    assert sum(r > 1.0 for r in ratios) >= len(ratios) - 2
    # ...by a solid average factor (paper: 22.34x at t=16 with AVX2; one
    # core + numpy yields a smaller but decisive margin).
    assert geometric_mean(ratios) > 2.0


@pytest.mark.benchmark(group="fig13-micro")
@pytest.mark.parametrize("optimizations", ["none", "lb", "lb+sm"])
def test_fig13_micro_convert(benchmark, optimizations, threads):
    """Micro-benchmark: one conversion of a half-sparse 2**14 state."""
    pkg = DDPackage(14)
    rng = np.random.default_rng(0)
    arr = rng.normal(size=1 << 14) + 1j * rng.normal(size=1 << 14)
    arr[: 1 << 13] = 0  # zero region exercises load balancing
    arr /= np.linalg.norm(arr)
    state = vector_from_array(pkg, arr)
    lb = optimizations != "none"
    sm = optimizations == "lb+sm"

    out, _ = benchmark(
        convert_parallel, pkg, state, threads, None, lb, sm
    )
    np.testing.assert_allclose(out, arr, atol=1e-9)
