"""Figure 14: DMAV caching -- cost reduction and speed-up vs thread count.

The paper plots, across the six largest circuits (DNN and supremacy
triples), the percentage reduction in computational cost and in runtime
that DMAV-with-caching achieves over DMAV-without-caching, at 1..16
threads, with caching chosen per gate by the cost model.

Reproduced here with the paper's own cost model evaluated on the real
DMAV-phase gate DDs of each run (gate fusion enabled, as caching pays off
on the dense fused gates -- Section 4.5 evaluates the six *largest*
workloads where fusion-phase DMAVs dominate).  Shape targets: reduction
>= 0 everywhere, growing with t, in the paper's ~5-20% band at saturation.
"""

from __future__ import annotations

import pytest

from repro.bench.tables import render_series
from repro.circuits import get_circuit
from repro.core import FlatDDSimulator
from repro.core.cost_model import CostModel

from conftest import emit

# The paper runs t up to 16 at n = 16-26, i.e. log2(t)/n <= 0.25.  At the
# scaled n = 10-14, t = 16 would push Algorithm 2's border level so deep
# that border sub-matrices lose their shared structure -- an artifact of
# the scaling, not of the technique -- so the sweep stops at t = 8 (the
# same border-depth ratio as the paper's t = 16).
THREADS = [1, 2, 4, 8]
CIRCUITS = [
    ("dnn", 10, {"layers": 8}),
    ("dnn", 12, {"layers": 8}),
    ("dnn", 14, {"layers": 8}),
    ("supremacy", 10, {"cycles": 16}),
    ("supremacy", 12, {"cycles": 16}),
    ("supremacy", 14, {"cycles": 16}),
]


def run_experiment():
    reductions = {t: [] for t in THREADS}
    for family, n, kwargs in CIRCUITS:
        circuit = get_circuit(family, n, **kwargs)
        result = FlatDDSimulator(threads=4, fusion="cost").run(
            circuit, keep_internals=True
        )
        pkg = result.metadata["package"]
        edges = result.metadata.get("dmav_edges", [])
        for t in THREADS:
            model = CostModel(t)
            nocache = 0.0
            chosen = 0.0
            for e in edges:
                cost = model.evaluate(pkg, e)
                nocache += cost.cost_nocache
                chosen += cost.cost
            reduction = 100.0 * (1.0 - chosen / nocache) if nocache else 0.0
            reductions[t].append(reduction)
    avg = [sum(reductions[t]) / len(reductions[t]) for t in THREADS]
    lo = [min(reductions[t]) for t in THREADS]
    hi = [max(reductions[t]) for t in THREADS]
    text = render_series(
        "Figure 14: DMAV caching cost reduction (%) over 6 largest circuits",
        "threads",
        THREADS,
        {"avg_reduction_%": avg, "min_%": lo, "max_%": hi},
    )
    return text, avg, reductions


@pytest.mark.benchmark(group="fig14")
def test_fig14_caching(benchmark):
    text, avg, reductions = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    emit("fig14_caching", text)
    # Cost-model-gated caching can never increase cost.
    assert all(r >= -1e-9 for rs in reductions.values() for r in rs)
    # The benefit grows from the serial case (where caching cannot help)
    # to multi-threaded runs (the paper's core observation)...
    assert avg[-1] > avg[0]
    # ...and is material (paper: 13.53% cost reduction at saturation).
    assert max(avg) > 10.0
    assert avg[-1] > 5.0


@pytest.mark.benchmark(group="fig14-micro")
@pytest.mark.parametrize("variant", ["cached", "nocache"])
def test_fig14_micro_dmav(benchmark, variant, threads):
    """Micro-benchmark: one dense fused gate where caching pays off."""
    import numpy as np

    from repro.core.dmav import dmav_cached, dmav_nocache
    from repro.dd import DDPackage, mm_multiply, single_qubit_gate

    n = 12
    pkg = DDPackage(n)
    h = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
    gate = pkg.identity_edge(n - 1)
    for q in (n - 1, n - 2, n - 3):
        gate = mm_multiply(pkg, single_qubit_gate(pkg, h, q), gate)
    rng = np.random.default_rng(1)
    v = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
    v /= np.linalg.norm(v)

    fn = dmav_cached if variant == "cached" else dmav_nocache
    w, _ = benchmark(fn, pkg, gate, v, threads)
    from repro.dd import matrix_to_dense

    np.testing.assert_allclose(w, matrix_to_dense(pkg, gate) @ v, atol=1e-9)
