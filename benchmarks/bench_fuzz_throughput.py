"""Fuzz-harness throughput: oracle cost breakdown per campaign second.

The nightly CI fuzz job is budgeted in wall seconds, so the number of
circuits it actually covers is set by per-oracle cost.  This bench runs a
short deterministic campaign and renders where the time goes -- which
oracles dominate, how many checks per second the harness sustains -- so
oracle-cost regressions show up as coverage regressions here before they
silently shrink the nightly campaign.
"""

from __future__ import annotations

import pytest

from repro.bench.tables import render_table
from repro.verify.fuzz import run_campaign

from conftest import emit

ITERATIONS = 40
SEED = 7


def run_experiment(threads: int):
    result = run_campaign(
        seed=SEED,
        iterations=ITERATIONS,
        threads=threads,
        shrink=False,
        out_dir=None,
    )
    rows = []
    for name in sorted(
        result.oracle_seconds, key=result.oracle_seconds.get, reverse=True
    ):
        runs = result.oracle_runs.get(name, 0)
        secs = result.oracle_seconds[name]
        rows.append(
            [
                name,
                str(runs),
                f"{secs * 1e3:.1f}",
                f"{secs * 1e3 / runs:.2f}" if runs else "-",
                result.worst_tier.get(name, "-"),
            ]
        )
    total_checks = sum(result.oracle_runs.values())
    rows.append(
        [
            "TOTAL",
            str(total_checks),
            f"{result.seconds * 1e3:.1f}",
            f"{total_checks / result.seconds:.1f} checks/s",
            "",
        ]
    )
    table = render_table(
        f"Fuzz oracle throughput, seed={SEED}, {ITERATIONS} circuits, "
        f"{threads} threads",
        ["oracle", "runs", "total (ms)", "per run (ms)", "worst tier"],
        rows,
    )
    return table, result


@pytest.mark.benchmark(group="fuzz-throughput")
def test_fuzz_throughput(benchmark, threads):
    table, result = benchmark.pedantic(
        run_experiment, args=(threads,), rounds=1, iterations=1
    )
    emit("fuzz_throughput", table)
    # The campaign itself must be clean -- a violation here is a real bug.
    assert result.ok, [v.outcome.oracle for v in result.violations]
    assert result.iterations == ITERATIONS
