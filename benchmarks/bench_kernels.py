"""Micro-benchmarks for the core kernels (pytest-benchmark groups).

Not a paper artifact; these watch the building blocks the experiments rest
on: DD gate application, DMAV, conversion, array-backend gate application,
and DD construction.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.backends import apply_gate_array
from repro.backends.gatecache import build_gate_dd
from repro.circuits import Gate
from repro.core.conversion import convert_parallel
from repro.core.dmav import dmav_cached, dmav_nocache
from repro.dd import (
    DDPackage,
    mv_multiply,
    vector_from_array,
    vector_to_array,
    zero_state,
)

N = 12
H = np.array([[1, 1], [1, -1]]) / math.sqrt(2)


@pytest.fixture(scope="module")
def setup():
    pkg = DDPackage(N)
    rng = np.random.default_rng(7)
    arr = rng.normal(size=1 << N) + 1j * rng.normal(size=1 << N)
    arr /= np.linalg.norm(arr)
    state_dd = vector_from_array(pkg, arr)
    gates = {
        "h_low": build_gate_dd(pkg, Gate("h", (0,))),
        "h_high": build_gate_dd(pkg, Gate("h", (N - 1,))),
        "cx": build_gate_dd(pkg, Gate("cx", (0,), (N - 1,))),
        "rz": build_gate_dd(pkg, Gate("rz", (N // 2,), params=(0.4,))),
    }
    return pkg, arr, state_dd, gates


@pytest.mark.benchmark(group="kernel-dmav")
@pytest.mark.parametrize("gate", ["h_low", "h_high", "cx", "rz"])
def test_dmav_nocache_kernel(benchmark, setup, gate):
    pkg, arr, _, gates = setup
    benchmark(dmav_nocache, pkg, gates[gate], arr, 4)


@pytest.mark.benchmark(group="kernel-dmav")
@pytest.mark.parametrize("gate", ["h_high", "cx"])
def test_dmav_cached_kernel(benchmark, setup, gate):
    pkg, arr, _, gates = setup
    benchmark(dmav_cached, pkg, gates[gate], arr, 4)


@pytest.mark.benchmark(group="kernel-array")
@pytest.mark.parametrize(
    "gate",
    [Gate("h", (0,)), Gate("h", (N - 1,)), Gate("cx", (0,), (N - 1,))],
    ids=["h_low", "h_high", "cx"],
)
def test_array_apply_kernel(benchmark, gate):
    # Own state: apply_gate_array mutates in place, and unitarity keeps the
    # repeated application numerically stable across benchmark rounds.
    rng = np.random.default_rng(11)
    arr = rng.normal(size=1 << N) + 1j * rng.normal(size=1 << N)
    arr /= np.linalg.norm(arr)

    def run():
        apply_gate_array(arr, gate)

    benchmark(run)


@pytest.mark.benchmark(group="kernel-ddmv")
def test_dd_mv_multiply_kernel(benchmark, setup):
    pkg, _, state_dd, gates = setup

    def run():
        pkg.clear_compute_tables()
        return mv_multiply(pkg, gates["h_high"], state_dd)

    benchmark(run)


@pytest.mark.benchmark(group="kernel-convert")
def test_conversion_kernel(benchmark, setup, threads):
    pkg, arr, state_dd, _ = setup
    out, _ = benchmark(convert_parallel, pkg, state_dd, threads)
    np.testing.assert_allclose(out, arr, atol=1e-9)


@pytest.mark.benchmark(group="kernel-build")
def test_vector_from_array_kernel(benchmark):
    rng = np.random.default_rng(9)
    arr = rng.normal(size=1 << N) + 1j * rng.normal(size=1 << N)

    def run():
        pkg = DDPackage(N)
        return vector_from_array(pkg, arr)

    benchmark(run)


@pytest.mark.benchmark(group="kernel-build")
def test_gate_dd_build_kernel(benchmark):
    pkg = DDPackage(N)
    gate = Gate("u3", (3,), params=(0.3, 0.7, 1.1))

    def run():
        return build_gate_dd(pkg, gate)

    benchmark(run)
