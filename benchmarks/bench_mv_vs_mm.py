"""Matrix-vector vs matrix-matrix DD simulation (Zulehner & Wille [100]).

Reference [100] -- the source of the k-operations baseline -- asks when
accumulating the circuit as one DD operator (MM) beats applying gates to
the state (MV).  This bench reruns that comparison on this substrate:
operator-friendly circuits (GHZ, adder) vs state-friendly ones (random /
supremacy), reporting runtime and final DD sizes.

Expected shape (as in [100]): MM's accumulated operator stays compact on
structured circuits and explodes on irregular ones, where MV's state DD
(and ultimately FlatDD's flat array) is the right representation.
"""

from __future__ import annotations

import pytest

from repro.backends import DDMatrixSimulator, DDSimulator
from repro.bench.tables import render_table
from repro.circuits import get_circuit

from conftest import emit

CASES = [
    ("ghz", 14, {}, "structured"),
    ("adder", 14, {}, "structured"),
    ("wstate", 12, {}, "structured"),
    ("supremacy", 8, {"cycles": 8}, "irregular"),
    ("dnn", 8, {"layers": 3}, "irregular"),
]


def run_experiment():
    rows = []
    stats = {}
    for family, n, kwargs, kind in CASES:
        circuit = get_circuit(family, n, **kwargs)
        mv = DDSimulator().run(circuit, max_seconds=30)
        mm = DDMatrixSimulator().run(circuit, max_seconds=30)
        assert not mv.metadata["timed_out"]
        if not mm.metadata["timed_out"]:
            fid = mv.fidelity(mm)
            assert fid == pytest.approx(1.0, abs=1e-8), family
        stats[family] = (kind, mv, mm)
        rows.append(
            [
                f"{family}_n{n}",
                kind,
                f"{mv.runtime_seconds:.3f}",
                mv.metadata["final_dd_size"],
                ("> 30" if mm.metadata["timed_out"]
                 else f"{mm.runtime_seconds:.3f}"),
                mm.metadata["operator_dd_size"],
            ]
        )
    table = render_table(
        "MV vs MM DD simulation (per ref [100])",
        ["circuit", "structure", "MV time (s)", "state DD",
         "MM time (s)", "operator DD"],
        rows,
    )
    return table, stats


@pytest.mark.benchmark(group="mv-vs-mm")
def test_mv_vs_mm(benchmark):
    table, stats = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("mv_vs_mm", table)
    # Structured circuits: the whole-circuit operator stays compact.
    for family in ("ghz", "adder"):
        _, mv, mm = stats[family]
        assert mm.metadata["operator_dd_size"] < 2000
    # Irregular circuits: the operator dwarfs the state DD.
    for family in ("supremacy", "dnn"):
        _, mv, mm = stats[family]
        assert (
            mm.metadata["timed_out"]
            or mm.metadata["operator_dd_size"]
            > 3 * mv.metadata["final_dd_size"]
        )
