"""Plan-cache ablation: compiled DMAV plans + arena vs per-gate re-planning.

The plan compiler (``repro.core.plan``) lifts the array-phase bookkeeping
-- cost-model verdicts, Algorithm 1/2 task partitions, writer lists --
out of the hot loop, and the buffer arena (``repro.parallel.arena``)
replaces the per-gate output/partial allocations with recycled dirty
buffers.  This experiment measures exactly what ``--no-plan-cache``
ablates: array-phase seconds (the sum of per-gate ``dmav`` trace records)
with plans on vs off, on the two workload shapes the tentpole targets --
QFT (no repeated gate roots: amortization comes from the structural memo
sharing border tasks across distinct roots) and supremacy (repeated
roots: whole plans are served from cache).

Runs interleave the two variants and take per-variant minima so slow
drifting machine load cancels out of the ratio.

Shape targets: >= 1.3x array-phase speedup on both workloads at 4
threads, and zero arena allocations after warm-up (one output ping-pong
pair, a partial pool that grows once).
"""

from __future__ import annotations

import time

import pytest

from repro.bench.tables import render_table
from repro.circuits import get_circuit
from repro.common.config import FlatDDConfig
from repro.core import FlatDDSimulator

from conftest import emit, record

WORKLOADS = [
    ("qft", 20),
    ("supremacy", 20),
]
REPEATS = 4
MIN_SPEEDUP = 1.3


def _array_phase_run(circuit, threads, plan_cache):
    cfg = FlatDDConfig(
        threads=threads, plan_cache=plan_cache, force_convert_at=0
    )
    result = FlatDDSimulator(cfg).run(circuit)
    seconds = sum(
        g.seconds for g in result.gate_trace if g.phase == "dmav"
    )
    return seconds, result


def run_experiment(threads: int = 4):
    rows = []
    measured = {}
    for family, n in WORKLOADS:
        circuit = get_circuit(family, n)
        on_times, off_times = [], []
        counters = gauges = None
        for _ in range(REPEATS):
            off_s, _ = _array_phase_run(circuit, threads, False)
            on_s, result = _array_phase_run(circuit, threads, True)
            off_times.append(off_s)
            on_times.append(on_s)
            obs = result.metadata["obs"]
            counters, gauges = obs["counters"], obs["gauges"]
        speedup = min(off_times) / min(on_times)
        hit_rate = gauges["dmav.plan.hit_rate"]["value"]
        rows.append([
            f"{family}-{n}",
            f"{min(off_times):.3f}",
            f"{min(on_times):.3f}",
            f"{speedup:.2f}x",
            f"{100.0 * hit_rate:.1f}%",
            str(counters["dmav.plan.compiles"]),
            str(counters["dmav.arena.partial_allocs"]),
        ])
        measured[f"{family}-{n}"] = {
            "speedup": speedup,
            "counters": counters,
            "gauges": gauges,
        }
    text = render_table(
        "Plan-cache ablation: array-phase seconds, plans on vs off "
        f"(min of {REPEATS} interleaved runs, {threads} threads, "
        "force_convert_at=0)",
        ["workload", "no-plan s", "plan s", "speedup",
         "task hit rate", "compiles", "partial allocs"],
        rows,
    )
    return text, measured


@pytest.mark.benchmark(group="plan-cache")
def test_plan_cache_speedup(benchmark, threads):
    text, measured = benchmark.pedantic(
        lambda: run_experiment(threads), rounds=1, iterations=1
    )
    emit("plan_cache", text)
    record(
        "plan_cache",
        {
            name: {
                "array_phase_speedup": m["speedup"],
                "plan_hits": m["counters"]["dmav.plan.hits"],
                "plan_compiles": m["counters"]["dmav.plan.compiles"],
                "arena_partial_allocs": (
                    m["counters"]["dmav.arena.partial_allocs"]
                ),
                "plan_hit_rate": m["gauges"]["dmav.plan.hit_rate"]["value"],
            }
            for name, m in measured.items()
        },
        config_digest=f"threads={threads};repeats={REPEATS}",
    )
    for name, m in measured.items():
        assert m["speedup"] >= MIN_SPEEDUP, (
            f"{name}: plan cache speedup {m['speedup']:.2f}x "
            f"below the {MIN_SPEEDUP}x floor"
        )
        counters = m["counters"]
        # Amortization actually happened: tasks were served from the
        # structural memo, and the arena stopped allocating after
        # warm-up (one ping-pong output pair; the partial pool grows
        # once to the widest gate's needs, bounded by the thread count).
        assert counters["dmav.plan.hits"] > 0, name
        assert counters["dmav.arena.output_allocs"] == 1, name
        assert counters["dmav.arena.partial_allocs"] <= threads, name
        assert m["gauges"]["dmav.arena.bytes"]["value"] > 0, name
