"""Regularity study: entanglement entropy vs DD size vs conversion point.

An analysis bench beyond the paper's figures that quantifies its central
claim.  Along a DNN circuit's execution we track (a) the state DD's node
count (what the EWMA monitor sees), and (b) the mid-cut entanglement
entropy (the physics behind it).  The conversion trigger should fire while
entropy is climbing towards its Page-value plateau, and DD size should
correlate with entropy across circuit families.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import StatevectorSimulator
from repro.bench.tables import render_series, render_table
from repro.circuits import get_circuit
from repro.core import FlatDDSimulator
from repro.dd import DDPackage, entanglement_entropy, node_count, vector_from_array

from conftest import emit


def trace_entropy_and_size(family: str, n: int, kwargs: dict, stride: int):
    circuit = get_circuit(family, n, **kwargs)
    sv = StatevectorSimulator()
    checkpoints = list(range(stride, len(circuit) + 1, stride))
    entropies, sizes = [], []
    for stop in checkpoints:
        arr = sv.run(circuit[:stop]).state
        pkg = DDPackage(n)
        state = vector_from_array(pkg, arr)
        entropies.append(entanglement_entropy(pkg, state, n // 2))
        sizes.append(node_count(state))
    return circuit, checkpoints, entropies, sizes


def run_experiment():
    n = 10
    circuit, checkpoints, entropies, sizes = trace_entropy_and_size(
        "dnn", n, {"layers": 4}, stride=8
    )
    flat = FlatDDSimulator(threads=2).run(circuit)
    conv = flat.metadata["conversion_gate_index"]
    text = render_series(
        f"Regularity study (dnn n={n}): mid-cut entropy and DD size per "
        f"gate checkpoint (FlatDD converted at gate {conv})",
        "gate",
        checkpoints,
        {
            "entropy_ebits": entropies,
            "dd_nodes": [float(s) for s in sizes],
        },
    )
    # Cross-family snapshot at the final state.
    rows = []
    finals = {}
    for family, kwargs in (
        ("ghz", {}), ("adder", {}), ("qft", {}),
        ("dnn", {"layers": 4}), ("supremacy", {"cycles": 10}),
    ):
        c = get_circuit(family, n, **kwargs)
        arr = StatevectorSimulator().run(c).state
        pkg = DDPackage(n)
        state = vector_from_array(pkg, arr)
        s = entanglement_entropy(pkg, state, n // 2)
        size = node_count(state)
        finals[family] = (s, size)
        rows.append([family, f"{s:.3f}", size])
    text += "\n" + render_table(
        "Final-state mid-cut entropy vs DD size across families",
        ["family", "entropy (ebits)", "dd nodes"],
        rows,
    )
    return text, entropies, sizes, conv, checkpoints, finals


@pytest.mark.benchmark(group="regularity")
def test_regularity_study(benchmark):
    text, entropies, sizes, conv, checkpoints, finals = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    emit("regularity_study", text)

    # Entropy and DD size both grow along the circuit...
    assert entropies[-1] > entropies[0] + 1.0
    assert sizes[-1] > 4 * sizes[0]
    # ...and they are strongly rank-correlated.
    order_e = np.argsort(entropies)
    order_s = np.argsort(sizes)
    agreement = np.mean(order_e == order_s)
    corr = np.corrcoef(entropies, sizes)[0, 1]
    assert corr > 0.7 or agreement > 0.6

    # The EWMA trigger fired before the state reached its entropy plateau
    # (that is the point of converting early).
    assert conv is not None and conv < checkpoints[-1]

    # Cross-family: entangled-but-regular GHZ has 1 ebit and a tiny DD;
    # irregular families have high entropy AND wide DDs.
    assert finals["ghz"][0] == pytest.approx(1.0, abs=1e-6)
    assert finals["ghz"][1] < 30
    for family in ("dnn", "supremacy"):
        assert finals[family][0] > 3.0
        assert finals[family][1] > 500
