"""Scaling study: runtime vs qubit count for all three simulators.

Not a single paper artifact but the synthesis of its argument: on regular
circuits DD cost is flat in n while array cost grows as 2**n; on irregular
circuits DD cost explodes while FlatDD tracks the array slope with a lower
constant at scale.  This bench measures both families across n and checks
the crossovers land the right way.
"""

from __future__ import annotations

import pytest

from repro.backends import DDSimulator, StatevectorSimulator
from repro.bench.tables import render_series
from repro.circuits import get_circuit
from repro.core import FlatDDSimulator

from conftest import emit

REGULAR_NS = [10, 12, 14, 16, 18]
IRREGULAR_NS = [8, 10, 12, 14]


def run_regular():
    flat, dd, qpp = [], [], []
    for n in REGULAR_NS:
        c = get_circuit("adder", n)
        flat.append(FlatDDSimulator(threads=4).run(c).runtime_seconds)
        dd.append(DDSimulator().run(c).runtime_seconds)
        qpp.append(StatevectorSimulator(threads=4).run(c).runtime_seconds)
    return flat, dd, qpp


def run_irregular():
    flat, dd, qpp = [], [], []
    for n in IRREGULAR_NS:
        c = get_circuit("supremacy", n, cycles=10)
        flat.append(FlatDDSimulator(threads=4).run(c).runtime_seconds)
        r = DDSimulator().run(c, max_seconds=15)
        dd.append(
            15.0 if r.metadata["timed_out"] else r.runtime_seconds
        )
        qpp.append(StatevectorSimulator(threads=4).run(c).runtime_seconds)
    return flat, dd, qpp


@pytest.mark.benchmark(group="scaling")
def test_scaling_regular(benchmark):
    flat, dd, qpp = benchmark.pedantic(run_regular, rounds=1, iterations=1)
    emit(
        "scaling_regular",
        render_series(
            "Scaling on regular circuits (adder): runtime (s) vs n",
            "n", REGULAR_NS,
            {"flatdd": flat, "ddsim": dd, "quantumpp": qpp},
        ),
    )
    # Array cost grows steeply with n; DD-mode cost stays near-flat.
    assert qpp[-1] / qpp[0] > 10
    assert flat[-1] / flat[0] < qpp[-1] / qpp[0]
    # At the top size the DD-phase simulators beat the array baseline.
    assert flat[-1] < qpp[-1]
    assert dd[-1] < qpp[-1]


@pytest.mark.benchmark(group="scaling")
def test_scaling_irregular(benchmark):
    flat, dd, qpp = benchmark.pedantic(run_irregular, rounds=1, iterations=1)
    emit(
        "scaling_irregular",
        render_series(
            "Scaling on irregular circuits (supremacy): runtime (s) vs n "
            "(ddsim capped at 15 s)",
            "n", IRREGULAR_NS,
            {"flatdd": flat, "ddsim": dd, "quantumpp": qpp},
        ),
    )
    # DDSIM blows up: by the largest size it is far slower than FlatDD.
    assert dd[-1] > 20 * flat[-1]
    # FlatDD stays within a small factor of the array baseline throughout
    # (and overtakes it at larger n, per Table 1).
    assert all(f < 10 * q for f, q in zip(flat, qpp))
