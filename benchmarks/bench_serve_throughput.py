"""Serving-layer throughput: batch jobs/sec and cache-hit leverage.

The serving subsystem's pitch is that duplicate-heavy batches cost one
simulation per unique circuit.  This bench runs the same 60-job batch
(20 unique circuits, 3 copies each) twice -- once with the result cache
disabled and once enabled -- so the table shows both raw service
overhead (jobs/sec with no dedup help) and the cache's multiplier.
"""

from __future__ import annotations

import pytest

from repro.bench.tables import render_table
from repro.circuits import get_circuit
from repro.common.config import ServeConfig
from repro.serve import SimulationService

from conftest import emit, record

UNIQUE = 20
COPIES = 3
QUBITS = 6
GATES = 30


def _jobs():
    circuits = [
        get_circuit("random", QUBITS, gates=GATES, seed=s)
        for s in range(UNIQUE)
    ]
    return [c for c in circuits for _ in range(COPIES)]


def run_experiment(threads: int):
    rows = []
    reports = {}
    for label, cache_entries in (("no cache", 0), ("cached", 512)):
        config = ServeConfig(
            threads=threads, cache_max_entries=cache_entries
        )
        with SimulationService(config) as svc:
            svc.submit_many(_jobs())
            report = svc.drain()
        reports[label] = report
        rows.append(
            [
                label,
                str(report.jobs),
                f"{report.elapsed_seconds * 1e3:.1f}",
                f"{report.jobs_per_second:.1f}",
                f"{100.0 * report.cache['hit_rate']:.0f}%",
                str(report.groups),
            ]
        )
    base = reports["no cache"].elapsed_seconds
    cached = reports["cached"].elapsed_seconds
    rows.append(
        [
            "speedup",
            "",
            f"{base / cached:.2f}x" if cached else "-",
            "",
            "",
            "",
        ]
    )
    table = render_table(
        f"Serve throughput, {UNIQUE * COPIES} jobs "
        f"({UNIQUE} unique x{COPIES}), random n={QUBITS}, {threads} threads",
        ["mode", "jobs", "wall (ms)", "jobs/s", "hit rate", "groups"],
        rows,
    )
    return table, reports


@pytest.mark.benchmark(group="serve-throughput")
def test_serve_throughput(benchmark, threads):
    table, reports = benchmark.pedantic(
        run_experiment, args=(threads,), rounds=1, iterations=1
    )
    emit("serve_throughput", table)
    record(
        "serve_throughput",
        {
            label.replace(" ", "_"): {
                "jobs_per_second": report.jobs_per_second,
                "elapsed_seconds": report.elapsed_seconds,
                "cache_hit_rate": report.cache["hit_rate"],
            }
            for label, report in reports.items()
        },
        config_digest=(
            f"threads={threads};unique={UNIQUE};copies={COPIES};"
            f"qubits={QUBITS};gates={GATES}"
        ),
    )
    for report in reports.values():
        assert report.ok and report.internal_errors == 0
    # 2 of every 3 jobs are duplicates; the cache must convert them.
    assert reports["cached"].cache["hit_rate"] >= 0.4
    assert reports["no cache"].cache["hits"] == 0
