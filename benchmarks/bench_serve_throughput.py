"""Serving-layer throughput: batch jobs/sec and cache-hit leverage.

The serving subsystem's pitch is that duplicate-heavy batches cost one
simulation per unique circuit.  This bench runs the same 60-job batch
(20 unique circuits, 3 copies each) twice -- once with the result cache
disabled and once enabled -- so the table shows both raw service
overhead (jobs/sec with no dedup help) and the cache's multiplier.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.tables import render_table
from repro.circuits import get_circuit
from repro.cluster.broker import ClusterService
from repro.common.config import ServeConfig
from repro.serve import SimulationService

from conftest import emit, record

UNIQUE = 20
COPIES = 3
QUBITS = 6
GATES = 30

#: Fleet sizes for the process-scaling study (threads vs processes).
PROC_COUNTS = (1, 2, 4)


def _jobs():
    circuits = [
        get_circuit("random", QUBITS, gates=GATES, seed=s)
        for s in range(UNIQUE)
    ]
    return [c for c in circuits for _ in range(COPIES)]


def run_experiment(threads: int):
    rows = []
    reports = {}
    for label, cache_entries in (("no cache", 0), ("cached", 512)):
        config = ServeConfig(
            threads=threads, cache_max_entries=cache_entries
        )
        with SimulationService(config) as svc:
            svc.submit_many(_jobs())
            report = svc.drain()
        reports[label] = report
        rows.append(
            [
                label,
                str(report.jobs),
                f"{report.elapsed_seconds * 1e3:.1f}",
                f"{report.jobs_per_second:.1f}",
                f"{100.0 * report.cache['hit_rate']:.0f}%",
                str(report.groups),
            ]
        )
    base = reports["no cache"].elapsed_seconds
    cached = reports["cached"].elapsed_seconds
    rows.append(
        [
            "speedup",
            "",
            f"{base / cached:.2f}x" if cached else "-",
            "",
            "",
            "",
        ]
    )
    table = render_table(
        f"Serve throughput, {UNIQUE * COPIES} jobs "
        f"({UNIQUE} unique x{COPIES}), random n={QUBITS}, {threads} threads",
        ["mode", "jobs", "wall (ms)", "jobs/s", "hit rate", "groups"],
        rows,
    )
    return table, reports


def run_process_scaling(threads: int):
    """Same 60-job batch through thread-pool vs process-fleet dispatch.

    One row per execution engine: the in-process thread pool at the
    session thread count, then the :class:`ClusterService` fleet at
    1/2/4 worker processes.  Both paths share the dedup scheduler and
    result cache, so the comparison isolates dispatch cost: GIL-shared
    threads vs wire-serialized jobs to separate interpreters.  Numbers
    are recorded as measured -- on a single-core host the fleet pays
    spawn + serialization overhead and will *not* beat threads; the
    point of the baseline is tracking that overhead, not proving a
    speedup the hardware cannot deliver.
    """
    rows = []
    metrics = {}

    def run(label, service, procs_key):
        with service as svc:
            svc.submit_many(_jobs())
            report = svc.drain()
        cluster = report.cluster or {}
        rows.append(
            [
                label,
                str(report.jobs),
                f"{report.elapsed_seconds * 1e3:.1f}",
                f"{report.jobs_per_second:.1f}",
                f"{100.0 * report.cache['hit_rate']:.0f}%",
                str(cluster.get("dispatched", "-")),
            ]
        )
        metrics[f"{procs_key}_jobs_per_second"] = report.jobs_per_second
        metrics[f"{procs_key}_elapsed_seconds"] = report.elapsed_seconds
        return report

    reports = {
        "threads": run(
            f"threads x{threads}",
            SimulationService(ServeConfig(threads=threads)),
            "threads",
        )
    }
    for procs in PROC_COUNTS:
        reports[f"procs{procs}"] = run(
            f"procs x{procs}",
            ClusterService(ServeConfig(threads=1), processes=procs),
            f"procs{procs}",
        )
    base = metrics["procs1_elapsed_seconds"]
    for procs in PROC_COUNTS[1:]:
        elapsed = metrics[f"procs{procs}_elapsed_seconds"]
        metrics[f"procs{procs}_scaling_speedup"] = (
            base / elapsed if elapsed else 0.0
        )
    table = render_table(
        f"Serve process scaling, {UNIQUE * COPIES} jobs "
        f"({UNIQUE} unique x{COPIES}), random n={QUBITS}, "
        f"{os.cpu_count() or 0} cores",
        ["engine", "jobs", "wall (ms)", "jobs/s", "hit rate", "dispatched"],
        rows,
    )
    return table, reports, metrics


@pytest.mark.benchmark(group="serve-throughput")
def test_serve_throughput(benchmark, threads):
    table, reports = benchmark.pedantic(
        run_experiment, args=(threads,), rounds=1, iterations=1
    )
    emit("serve_throughput", table)
    record(
        "serve_throughput",
        {
            label.replace(" ", "_"): {
                "jobs_per_second": report.jobs_per_second,
                "elapsed_seconds": report.elapsed_seconds,
                "cache_hit_rate": report.cache["hit_rate"],
            }
            for label, report in reports.items()
        },
        config_digest=(
            f"threads={threads};unique={UNIQUE};copies={COPIES};"
            f"qubits={QUBITS};gates={GATES}"
        ),
    )
    for report in reports.values():
        assert report.ok and report.internal_errors == 0
    # 2 of every 3 jobs are duplicates; the cache must convert them.
    assert reports["cached"].cache["hit_rate"] >= 0.4
    assert reports["no cache"].cache["hits"] == 0


@pytest.mark.benchmark(group="serve-throughput")
def test_serve_process_scaling(benchmark, threads):
    table, reports, metrics = benchmark.pedantic(
        run_process_scaling, args=(threads,), rounds=1, iterations=1
    )
    emit("serve_procs", table)
    record(
        "serve_procs",
        metrics,
        config_digest=(
            f"threads={threads};procs={','.join(map(str, PROC_COUNTS))};"
            f"unique={UNIQUE};copies={COPIES};qubits={QUBITS};gates={GATES}"
        ),
    )
    # Correctness invariants only: every engine finishes the batch clean
    # and the fleet actually dispatched work over the wire.  There is no
    # speedup assertion -- scaling is whatever the host's cores allow,
    # and the recorded baseline tracks it across commits instead.
    for report in reports.values():
        assert report.ok and report.internal_errors == 0
        # Every duplicate fans out from one simulation.  (Raw cache
        # counters would mislead here: the broker probes per *group*
        # while the thread pool probes per job, so hit rates differ
        # even though both serve the same 40 duplicates without
        # re-simulating.)
        assert report.deduped_jobs == UNIQUE * (COPIES - 1)
    for procs in PROC_COUNTS:
        cluster = reports[f"procs{procs}"].cluster
        assert cluster is not None and cluster["dispatched"] >= 1
        assert cluster["worker_deaths"] == 0
