"""Batched parameter sweeps: ``simulate_sweep`` vs looped single-shot runs.

The sweep executor (``repro.core.sweep``) amortizes everything a looped
``run()`` re-pays per parameter point: the DD phase and conversion run
once per shared-prefix group (rows are greedily grouped on bit-equal
bound gates ``[0 .. convert_at]``), per-row gate-DD builds start from a
transactional package mark instead of replaying the prefix, and the
array phase replays compiled DMAV plans over a tile-major row batch.
Every row stays bit-identical to its own single-shot run -- enforced
here against a sampled subset and continuously by the
``sweep_consistency`` fuzz oracle.

Three 100-point, 16-qubit workloads map the amortization regimes:

* ``qft-16-angles`` -- the QFT skeleton with all 120 controlled-phase
  angles drawn fresh per row.  Nothing is shared between rows and every
  gate goes to the array phase (``force_convert_at=0``), so this is the
  honest floor: the batched kernels roughly match the loop (the array
  phase is memory-bandwidth-bound; batching cannot beat cache-resident
  single-shot slices, it can only avoid re-paying setup).
* ``hea-16-full`` -- a 2-layer hardware-efficient ansatz with every
  rotation angle varied per row.  Same floor regime.
* ``hea-16-final-layer`` -- a 3-layer ansatz where rows share the first
  layers and vary only the final layer's 32 angles (the shape of a
  coordinate-descent / fine-tuning scan).  The shared prefix carries the
  expensive DD phase, so the loop re-pays ~1 s per point that the sweep
  pays once per group: this is the regime the sweep is built for and
  where the >= 3x acceptance floor applies.

The looped baseline is measured on ``LOOP_SAMPLE`` points and scaled to
the full row count (the loop's per-point cost is constant by
construction); sweep and loop measurements interleave across repeats so
machine drift cancels out of the ratio.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench.tables import render_table
from repro.circuits import Circuit, get_circuit
from repro.common.config import FlatDDConfig
from repro.core import FlatDDSimulator

from conftest import emit, record

POINTS = 100
LOOP_SAMPLE = 5
REPEATS = 2
MIN_SPEEDUP = 3.0       # hea-16-final-layer acceptance floor
MIN_FLOOR = 0.4         # sanity floor for the bandwidth-bound workloads
N_QUBITS = 16


def _hea(layers: int) -> Circuit:
    c = Circuit(N_QUBITS, name=f"hea{N_QUBITS}-{layers}l")
    for q in range(N_QUBITS):
        c.h(q)
    for _ in range(layers):
        for q in range(N_QUBITS):
            c.ry(0.0, q)
        for q in range(N_QUBITS):
            c.rz(0.0, q)
        for q in range(N_QUBITS - 1):
            c.cx(q, q + 1)
    return c


def _full_rows(circuit: Circuit, rng) -> list[tuple]:
    k = circuit.num_param_slots
    return [
        tuple(rng.uniform(-np.pi, np.pi, k)) for _ in range(POINTS)
    ]


def _final_layer_rows(circuit: Circuit, rng) -> list[tuple]:
    base = rng.uniform(-np.pi, np.pi, circuit.num_param_slots)
    rows = []
    for _ in range(POINTS):
        r = base.copy()
        r[-32:] = rng.uniform(-np.pi, np.pi, 32)
        rows.append(tuple(r))
    return rows


def _workloads(rng):
    hea3 = _hea(3)
    # Conversion point inside layer 2's rotation block: the shared
    # prefix (H + layer 1 + 12 rotations) is where the DD grows dense
    # and expensive, which is exactly the cost a looped baseline re-pays
    # per point and the sweep pays once per group.
    final_fca = N_QUBITS + (3 * N_QUBITS - 1) + 12
    return [
        ("qft-16-angles", get_circuit("qft", N_QUBITS), _full_rows, 0),
        ("hea-16-full", _hea(2), _full_rows, 0),
        ("hea-16-final-layer", hea3, _final_layer_rows, final_fca),
    ]


def run_experiment(threads: int = 4):
    rng = np.random.default_rng(20240816)
    table_rows = []
    measured = {}
    for name, circuit, make_rows, fca in _workloads(rng):
        rows = make_rows(circuit, rng)
        sim = FlatDDSimulator(
            FlatDDConfig(threads=threads, force_convert_at=fca)
        )
        sim.simulate_sweep(circuit, rows[:2])  # warm-up
        sweep_times, loop_times = [], []
        result = loop_states = None
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            result = sim.simulate_sweep(circuit, rows)
            sweep_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            loop_states = [
                sim.run(circuit.bind(r)).state for r in rows[:LOOP_SAMPLE]
            ]
            loop_times.append(
                (time.perf_counter() - t0) * (POINTS / LOOP_SAMPLE)
            )
        identical = all(
            np.array_equal(result.states[i], loop_states[i])
            for i in range(LOOP_SAMPLE)
        )
        sweep_s, loop_s = min(sweep_times), min(loop_times)
        speedup = loop_s / sweep_s
        counters = result.metadata["obs"]["counters"]
        table_rows.append([
            name,
            f"{loop_s:.2f}",
            f"{sweep_s:.2f}",
            f"{1000.0 * sweep_s / POINTS:.0f}",
            f"{speedup:.2f}x",
            str(counters["dmav.sweep.groups"]),
            str(counters["dmav.sweep.gates_batched"]),
            "yes" if identical else "NO",
        ])
        measured[name] = {
            "speedup": speedup,
            "sweep_seconds": sweep_s,
            "loop_seconds": loop_s,
            "bit_identical": identical,
            "counters": counters,
        }
    text = render_table(
        f"Parameter sweeps: {POINTS}-point sweep vs looped single-shot "
        f"(min of {REPEATS} interleaved repeats, {threads} threads; loop "
        f"scaled from {LOOP_SAMPLE} sampled points)",
        ["workload", "loop s", "sweep s", "ms/row", "speedup",
         "groups", "batched gates", "bit-identical"],
        table_rows,
    )
    return text, measured


@pytest.mark.benchmark(group="sweep")
def test_sweep_speedup(benchmark, threads):
    text, measured = benchmark.pedantic(
        lambda: run_experiment(threads), rounds=1, iterations=1
    )
    emit("sweep", text)
    record(
        "sweep",
        {
            name: {
                "speedup": m["speedup"],
                "sweep_seconds": m["sweep_seconds"],
                "groups": m["counters"]["dmav.sweep.groups"],
                "row_rewinds": m["counters"]["dmav.sweep.row_rewinds"],
                "gates_batched": m["counters"]["dmav.sweep.gates_batched"],
                "gates_rowloop": m["counters"]["dmav.sweep.gates_rowloop"],
            }
            for name, m in measured.items()
        },
        config_digest=(
            f"threads={threads};points={POINTS};repeats={REPEATS};"
            f"loop_sample={LOOP_SAMPLE}"
        ),
    )
    for name, m in measured.items():
        assert m["bit_identical"], (
            f"{name}: sweep rows diverged from single-shot states"
        )
        assert m["counters"]["dmav.sweep.gates_batched"] > 0, name
    shared = measured["hea-16-final-layer"]
    assert shared["counters"]["dmav.sweep.groups"] == 1, (
        "final-layer rows should share one prefix group"
    )
    assert shared["counters"]["dmav.sweep.row_rewinds"] == POINTS
    assert shared["speedup"] >= MIN_SPEEDUP, (
        f"hea-16-final-layer: sweep speedup {shared['speedup']:.2f}x "
        f"below the {MIN_SPEEDUP}x floor"
    )
    for name in ("qft-16-angles", "hea-16-full"):
        assert measured[name]["speedup"] >= MIN_FLOOR, (
            f"{name}: sweep fell below {MIN_FLOOR}x of the loop "
            f"({measured[name]['speedup']:.2f}x) -- batching overhead "
            "regressed past the bandwidth-parity band"
        )
