"""Table 1: overall runtime & memory, FlatDD vs DDSIM vs Quantum++.

Reproduces the paper's main table on the 12 scaled workloads: per-circuit
runtime/memory for all three simulators, speed-up columns, and the
geometric-mean row.  DDSIM runs that exceed the scaled timeout are shown as
"> T" exactly like the paper's "> 24 h" entries (their runtime enters the
geometric mean at the cap, so the reported mean is a lower bound, as in the
paper).

Paper shape targets: FlatDD ~matches DDSIM on regular circuits (Adder,
GHZ), beats it by large factors on irregular ones, and achieves a
geometric-mean speed-up >> 1 over DDSIM.  Against Quantum++, FlatDD wins on
the largest circuits (the paper's constant-factor advantage needs 2**n to
dominate Python dispatch overhead; see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.bench.runners import compare_backends
from repro.bench.tables import render_table
from repro.bench.workloads import TABLE1_WORKLOADS
from repro.metrics.stats import geometric_mean

from conftest import emit


def run_experiment(threads: int):
    rows = []
    raw = []
    for workload in TABLE1_WORKLOADS:
        row = compare_backends(workload, threads=threads)
        raw.append(row)
        t = workload.timeout_seconds
        rows.append(
            [
                workload.name,
                workload.n,
                row.gates,
                f"{row.flatdd.runtime_seconds:.3f}",
                f"{row.flatdd.memory_mb:.2f}",
                row.ddsim.runtime_str(t),
                (">" if row.ddsim.timed_out else "")
                + f" {row.ddsim_speedup:.2f}x",
                f"{row.ddsim.memory_mb:.2f}",
                f"{row.quantumpp.runtime_seconds:.3f}",
                f"{row.qpp_speedup:.2f}x",
                f"{row.quantumpp.memory_mb:.2f}",
            ]
        )
    gm = {
        "flat_t": geometric_mean([r.flatdd.runtime_seconds for r in raw]),
        "flat_m": geometric_mean([r.flatdd.memory_mb for r in raw]),
        "dd_speed": geometric_mean([r.ddsim_speedup for r in raw]),
        "dd_m": geometric_mean([r.ddsim.memory_mb for r in raw]),
        "qpp_speed": geometric_mean([r.qpp_speedup for r in raw]),
        "qpp_m": geometric_mean([r.quantumpp.memory_mb for r in raw]),
    }
    rows.append(
        [
            "geo-mean", "", "",
            f"{gm['flat_t']:.3f}", f"{gm['flat_m']:.2f}",
            "", f"> {gm['dd_speed']:.2f}x", f"{gm['dd_m']:.2f}",
            "", f"{gm['qpp_speed']:.2f}x", f"{gm['qpp_m']:.2f}",
        ]
    )
    table = render_table(
        "Table 1: FlatDD vs DDSIM vs Quantum++ "
        f"(t={threads}; timeouts stand in for the paper's 24 h cap)",
        ["circuit", "n", "gates", "FlatDD s", "FlatDD MB", "DDSIM s",
         "speed-up", "DDSIM MB", "Q++ s", "speed-up", "Q++ MB"],
        rows,
    )
    return table, raw, gm


@pytest.mark.benchmark(group="table1")
def test_table1_overall(benchmark, threads):
    table, raw, gm = benchmark.pedantic(
        run_experiment, args=(threads,), rounds=1, iterations=1
    )
    emit("table1_overall", table)

    by_name = {r.workload.name: r for r in raw}
    # Regular circuits: FlatDD stays in its DD phase and, like DDSIM,
    # finishes fast (< 1 s at these sizes; Table 1 shows the same).
    for name in ("adder", "ghz"):
        assert not by_name[name].flatdd.result.metadata["converted"]
        assert by_name[name].flatdd.runtime_seconds < 1.0
    # Irregular circuits: FlatDD beats DDSIM by large factors.
    for name in ("dnn_m", "dnn_l", "supremacy_m", "supremacy_l"):
        assert by_name[name].ddsim_speedup > 5.0, name
    # Headline: geometric-mean speed-up over DDSIM >> 1.
    assert gm["dd_speed"] > 5.0
    # Against Quantum++, FlatDD wins on the largest workloads.
    assert by_name["supremacy_l"].qpp_speedup > 1.0
