"""Table 2: DMAV-aware gate fusion vs no fusion vs k-operations.

On the six deep circuits (paper: > 1000 gates), compares FlatDD with
Algorithm 3's cost-aware fusion against FlatDD without fusion and FlatDD
with the k-operations strategy [100]:

* measured runtime (+ speed-up of cost-aware fusion over each),
* modeled DMAV cost in Section 3.2.3 units (+ reduction factors).

Paper shape: cost-aware fusion reduces modeled cost by large factors
(9.94x geo-mean vs no fusion, 5.59x vs k-operations) and never loses to
either alternative on cost.  Wall-clock speed-ups here are smaller than
the paper's 13.1x because per-gate arithmetic is numpy-batched rather than
scalar (see EXPERIMENTS.md), but the ordering cost(ours) <= cost(k-ops)
<= cost(none) must hold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.tables import render_table
from repro.bench.workloads import DEEP_WORKLOADS
from repro.core import FlatDDSimulator
from repro.metrics.stats import geometric_mean

from conftest import emit


def dmav_cost(result) -> float:
    """Total modeled DMAV cost of a run (sum of per-gate min(C1, C2))."""
    return sum(
        min(c1, c2) for _, c1, c2, _ in result.metadata["dmav_gate_costs"]
    )


def run_experiment(threads: int):
    rows = []
    speed_none, speed_kops = [], []
    red_none, red_kops = [], []
    for workload in DEEP_WORKLOADS:
        circuit = workload.build()
        ours = FlatDDSimulator(threads=threads, fusion="cost").run(circuit)
        none = FlatDDSimulator(threads=threads, fusion="none").run(circuit)
        kops = FlatDDSimulator(
            threads=threads, fusion="koperations", k_operations=4
        ).run(circuit)
        for other in (none, kops):
            fid = abs(np.vdot(ours.state, other.state)) ** 2
            assert fid == pytest.approx(1.0, abs=1e-7), workload.name
        c_ours, c_none, c_kops = map(dmav_cost, (ours, none, kops))
        speed_none.append(none.runtime_seconds / ours.runtime_seconds)
        speed_kops.append(kops.runtime_seconds / ours.runtime_seconds)
        red_none.append(c_none / c_ours)
        red_kops.append(c_kops / c_ours)
        rows.append(
            [
                workload.name,
                workload.n,
                len(circuit.gates),
                f"{ours.runtime_seconds:.3f}",
                f"{c_ours:.3g}",
                f"{none.runtime_seconds:.3f}",
                f"{speed_none[-1]:.2f}x",
                f"{c_none:.3g}",
                f"{red_none[-1]:.2f}x",
                f"{kops.runtime_seconds:.3f}",
                f"{speed_kops[-1]:.2f}x",
                f"{c_kops:.3g}",
                f"{red_kops[-1]:.2f}x",
            ]
        )
    rows.append(
        [
            "geo-mean", "", "", "", "",
            "", f"{geometric_mean(speed_none):.2f}x", "",
            f"{geometric_mean(red_none):.2f}x",
            "", f"{geometric_mean(speed_kops):.2f}x", "",
            f"{geometric_mean(red_kops):.2f}x",
        ]
    )
    table = render_table(
        f"Table 2: DMAV-aware fusion vs no fusion vs k-operations (t={threads})",
        ["circuit", "n", "gates",
         "ours s", "ours cost",
         "none s", "speed-up", "none cost", "red.",
         "k-ops s", "speed-up", "k-ops cost", "red."],
        rows,
    )
    return table, red_none, red_kops, speed_none


@pytest.mark.benchmark(group="table2")
def test_table2_fusion(benchmark, threads):
    table, red_none, red_kops, speed_none = benchmark.pedantic(
        run_experiment, args=(threads,), rounds=1, iterations=1
    )
    emit("table2_fusion", table)
    # Cost-aware fusion never models worse than either alternative.
    assert all(r >= 1.0 - 1e-9 for r in red_none)
    assert all(r >= 1.0 - 1e-9 for r in red_kops)
    # And the cost reductions are material (paper: 9.94x / 5.59x).
    assert geometric_mean(red_none) > 1.5
    assert geometric_mean(red_kops) >= 1.0
