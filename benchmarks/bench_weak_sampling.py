"""Weak vs strong simulation sampling (ref [36] of the paper).

Compares drawing K samples from a regular state via (a) DD-native weak
simulation (O(n) per shot, no amplitude vector) against (b) full
conversion + array sampling.  On regular states the weak path avoids the
entire 2**n expansion; on irregular states conversion amortizes across
many shots.  Both shapes are asserted.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.backends import DDSimulator
from repro.bench.tables import render_table
from repro.circuits import get_circuit
from repro.core.conversion import convert_parallel
from repro.sampling import sample_counts, sample_from_dd

from conftest import emit

SHOTS = 512


def run_case(family: str, n: int, kwargs: dict):
    result = DDSimulator().run(get_circuit(family, n, **kwargs), keep_dd=True)
    pkg = result.metadata["package"]
    state = result.metadata["state_dd"]
    rng = np.random.default_rng(0)

    t0 = time.perf_counter()
    weak = sample_from_dd(pkg, state, SHOTS, rng)
    weak_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    arr, _ = convert_parallel(pkg, state, threads=4)
    strong = sample_counts(arr, SHOTS, np.random.default_rng(0))
    strong_seconds = time.perf_counter() - t0

    # Distributions agree on the dominant outcomes.
    for bits, count in weak.most_common(3):
        p_weak = count / SHOTS
        p_strong = strong.get(bits, 0) / SHOTS
        assert abs(p_weak - p_strong) < 0.12, (family, bits)
    return weak_seconds, strong_seconds


def run_experiment():
    cases = [
        ("ghz", 20, {}, "regular"),
        ("adder", 20, {}, "regular"),
        ("wstate", 16, {}, "regular"),
        ("supremacy", 12, {"cycles": 10}, "irregular"),
    ]
    rows = []
    timings = {}
    for family, n, kwargs, kind in cases:
        weak_s, strong_s = run_case(family, n, kwargs)
        timings[family] = (kind, weak_s, strong_s)
        rows.append(
            [f"{family}_n{n}", kind, f"{weak_s * 1e3:.2f}",
             f"{strong_s * 1e3:.2f}", f"{strong_s / weak_s:.2f}x"]
        )
    table = render_table(
        f"Weak (DD-native) vs strong (convert + sample) sampling, "
        f"{SHOTS} shots",
        ["circuit", "structure", "weak (ms)", "convert+sample (ms)",
         "weak advantage"],
        rows,
    )
    return table, timings


@pytest.mark.benchmark(group="weak-sampling")
def test_weak_sampling(benchmark):
    table, timings = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("weak_sampling", table)
    # On large regular states, skipping the 2**n expansion wins clearly.
    kind, weak_s, strong_s = timings["ghz"]
    assert strong_s > 2 * weak_s
    kind, weak_s, strong_s = timings["adder"]
    assert strong_s > 2 * weak_s
