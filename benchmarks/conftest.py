"""Shared configuration for the benchmark suite.

Every experiment bench renders the paper-style table/series it reproduces,
prints it (visible with ``pytest -s``), and writes it under
``benchmarks/results/`` so EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

import sys

import pytest


def emit(name: str, text: str) -> None:
    """Print and persist one experiment's rendered output."""
    from repro.bench.tables import write_result

    path = write_result(name, text)
    # Write to the real stdout so the table is visible even when pytest
    # captures test output.
    sys.stdout.write(f"\n{text}\n[written to {path}]\n")


def record(name: str, metrics: dict, config_digest: str = "") -> None:
    """Persist one experiment's machine-readable ``BENCH_<name>.json``.

    The human table (``emit``) and this record are two views of the same
    run: the table goes into EXPERIMENTS.md, the record feeds
    ``python -m repro bench-compare`` so CI can diff runs over time.
    """
    from repro.bench.registry import write_bench_record

    path = write_bench_record(name, metrics, config_digest=config_digest)
    sys.stdout.write(f"[bench record written to {path}]\n")


@pytest.fixture(scope="session")
def threads() -> int:
    """Thread count used by the experiments (paper: 16; scaled here)."""
    return 4
