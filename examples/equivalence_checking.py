"""Verifying circuit optimizations with DD-based equivalence checking.

A compiler that fuses, reorders, or resynthesizes gates must not change
the circuit's unitary.  This example "optimizes" a QFT circuit two ways --
one correct, one subtly broken -- and uses the DD miter check (after
Burgholzer & Wille, reference [11] of the FlatDD paper) to catch the bug
that random testing on |0...0> alone would miss.

Run:  python examples/equivalence_checking.py
"""

import math

import numpy as np

from repro import Circuit, StatevectorSimulator, get_circuit
from repro.verify import check_equivalence, check_equivalence_stimuli


def correct_rewrite(circuit: Circuit) -> Circuit:
    """Replace each H-X-H sandwich... here: commute adjacent cp gates
    acting on disjoint qubit pairs (a legal reorder)."""
    gates = list(circuit.gates)
    out = Circuit(circuit.num_qubits, name=f"{circuit.name}_opt")
    i = 0
    while i < len(gates):
        if (
            i + 1 < len(gates)
            and not set(gates[i].qubits) & set(gates[i + 1].qubits)
        ):
            out.append(gates[i + 1])
            out.append(gates[i])
            i += 2
        else:
            out.append(gates[i])
            i += 1
    return out


def buggy_rewrite(circuit: Circuit) -> Circuit:
    """A typical off-by-one compiler bug: one rotation angle halved."""
    out = Circuit(circuit.num_qubits, name=f"{circuit.name}_buggy")
    touched = False
    for g in circuit.gates:
        if not touched and g.base_name == "p" and g.controls:
            from repro import Gate

            out.append(
                Gate(g.name, g.targets, g.controls, (g.params[0] / 2,))
            )
            touched = True
        else:
            out.append(g)
    return out


def main() -> None:
    original = get_circuit("qft", 6)
    good = correct_rewrite(original)
    bad = buggy_rewrite(original)

    print(f"original: {original}")
    print(f"reordered: {good}")
    print(f"buggy:     {bad}\n")

    res = check_equivalence(original, good)
    print(f"original vs reordered: "
          f"{'EQUIVALENT' if res.equivalent else 'NOT EQUIVALENT'} "
          f"(peak miter nodes {res.peak_nodes})")

    res = check_equivalence(original, bad)
    print(f"original vs buggy:     "
          f"{'EQUIVALENT' if res.equivalent else 'NOT EQUIVALENT'}")

    # Why simulation from |0...0> is not enough: QFT maps |0..0> to the
    # uniform superposition regardless of the broken phase.
    s_orig = StatevectorSimulator().run(original).state
    s_bad = StatevectorSimulator().run(bad).state
    fid = abs(np.vdot(s_orig, s_bad)) ** 2
    print(f"\n|<orig|buggy>|^2 from the |0...0> input alone: {fid:.6f} "
          "(the bug is invisible!)")

    res = check_equivalence_stimuli(original, bad, num_stimuli=4)
    print("random-stimuli check: "
          f"{'EQUIVALENT' if res.equivalent else 'NOT EQUIVALENT'} "
          "(random product states expose it)")


if __name__ == "__main__":
    main()
