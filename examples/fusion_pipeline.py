"""Inside the FlatDD pipeline: EWMA trace, conversion, fusion, cost model.

Walks a deep DNN-style circuit through FlatDD with full instrumentation
and prints what each stage of Figure 3 did: the DD-size trace the EWMA
monitor watched, the parallel conversion report, what the DMAV-aware
gate-fusion pass (Algorithm 3) merged, and which gates the Section 3.2.3
cost model routed through the caching DMAV variant.

Run:  python examples/fusion_pipeline.py
"""

from repro import FlatDDSimulator, get_circuit


def main() -> None:
    circuit = get_circuit("dnn", 12, layers=12)
    print(f"circuit: {circuit}\n")

    for fusion in ("none", "cost", "koperations"):
        result = FlatDDSimulator(threads=4, fusion=fusion).run(circuit)
        meta = result.metadata
        dmav_gates = sum(1 for g in result.gate_trace if g.phase == "dmav")
        line = (f"fusion={fusion:12s} runtime={result.runtime_seconds:6.3f}s "
                f"dmav_invocations={dmav_gates:4d} "
                f"total_macs={meta['dmav_macs_total']:>10}")
        if "fusion_result" in meta:
            fr = meta["fusion_result"]
            line += (f"  (absorbed {fr['absorbed_gates']} gates via "
                     f"{fr['ddmm_calls']} DDMM calls)")
        print(line)

    # Deep dive with cost-aware fusion.
    result = FlatDDSimulator(threads=4, fusion="cost").run(circuit)
    meta = result.metadata

    print("\n--- EWMA monitor (Section 3.1.1) ---")
    samples = meta["ewma_samples"]
    for s in samples[-5:]:
        flag = "  <-- trigger" if s.triggered else ""
        print(f"  gate {s.gate_index:3d}: dd_size={s.dd_size:5d} "
              f"ewma={s.ewma:8.1f}{flag}")

    print("\n--- parallel conversion (Section 3.1.2) ---")
    rep = meta["conversion_report"]
    print(f"  {rep.threads} threads, {rep.num_tasks} traversal tasks, "
          f"{rep.num_scalar_fills} scalar fills, {rep.seconds*1e3:.2f} ms")

    print("\n--- DMAV cost-model decisions (Section 3.2.3) ---")
    cached = [g for g in result.gate_trace if g.phase == "dmav" and g.cached]
    uncached = [
        g for g in result.gate_trace if g.phase == "dmav" and not g.cached
    ]
    print(f"  {len(cached)} fused gates ran with caching, "
          f"{len(uncached)} without")
    costs = meta["dmav_gate_costs"]
    heaviest = max(costs, key=lambda c: c[0])
    print(f"  heaviest gate: {heaviest[0]} MACs, "
          f"C1={heaviest[1]:.0f} C2={heaviest[2]:.0f} "
          f"-> {'cached' if heaviest[3] else 'uncached'}")


if __name__ == "__main__":
    main()
