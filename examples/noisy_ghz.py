"""Noisy GHZ preparation: trajectory simulation + weak-simulation sampling.

Prepares a GHZ state under increasing depolarizing noise, averages Monte
Carlo trajectories, and tracks how state fidelity and the GHZ parity
signature decay -- then shows DD-native weak simulation drawing samples
from the ideal circuit without ever building the 2**n amplitude array.

Run:  python examples/noisy_ghz.py
"""

import numpy as np

from repro import FlatDDSimulator, NoiseModel, get_circuit, run_trajectories
from repro.backends.gatecache import build_gate_dd
from repro.dd import DDPackage, mv_multiply, zero_state
from repro.sampling import sample_from_dd


def main() -> None:
    n = 8
    circuit = get_circuit("ghz", n)
    sim = FlatDDSimulator(threads=2)
    ideal = sim.run(circuit).state

    print(f"{'noise p':>8s} {'fidelity':>9s} {'+/-':>6s} {'P(ghz)':>8s}")
    for p in (0.0, 0.01, 0.05, 0.1, 0.2):
        result = run_trajectories(
            circuit,
            NoiseModel(depolarizing_1q=p, depolarizing_2q=2 * p),
            sim,
            num_trajectories=24,
            seed=1,
            ideal_state=ideal,
        )
        p_ghz = result.probabilities[0] + result.probabilities[-1]
        print(f"{p:8.2f} {result.mean_fidelity:9.4f} "
              f"{result.fidelity_std:6.3f} {p_ghz:8.4f}")

    # Weak simulation: sample the ideal circuit straight from the DD.
    pkg = DDPackage(n)
    state = zero_state(pkg)
    for gate in circuit.gates:
        state = mv_multiply(pkg, build_gate_dd(pkg, gate), state)
    counts = sample_from_dd(pkg, state, 2000, np.random.default_rng(0))
    print(f"\nweak simulation of the ideal circuit "
          f"({pkg.unique_node_count} DD nodes, no 2^{n} array):")
    for bits, c in counts.most_common():
        print(f"  |{bits}>: {c}")


if __name__ == "__main__":
    main()
