"""Quickstart: simulate a circuit with FlatDD and inspect the result.

Run:  python examples/quickstart.py
"""

from repro import DDSimulator, FlatDDSimulator, StatevectorSimulator, get_circuit


def main() -> None:
    # A 10-qubit Google-supremacy-style random circuit: regular at first,
    # then increasingly irregular -- exactly the workload FlatDD targets.
    circuit = get_circuit("supremacy", 10, cycles=10)
    print(f"circuit: {circuit}")

    # FlatDD: starts in DD mode, converts to DMAV when the EWMA monitor
    # sees the state DD blow up.
    flatdd = FlatDDSimulator(threads=4)
    result = flatdd.run(circuit)
    print(f"\nFlatDD finished in {result.runtime_seconds:.3f} s "
          f"({result.peak_memory_mb:.2f} MB peak)")
    meta = result.metadata
    if meta["converted"]:
        print(f"  converted DD -> flat array at gate "
              f"{meta['conversion_gate_index']} "
              f"(of {result.num_gates})")
    else:
        print("  stayed in DD mode for the whole circuit")

    probs = result.probabilities()
    top = probs.argsort()[-5:][::-1]
    print("\ntop-5 outcomes:")
    for idx in top:
        print(f"  |{idx:0{circuit.num_qubits}b}>  p = {probs[idx]:.5f}")

    # Cross-check against both baselines the paper compares with.
    ddsim = DDSimulator().run(circuit)
    qpp = StatevectorSimulator(threads=4).run(circuit)
    print(f"\nfidelity vs DDSIM:     {result.fidelity(ddsim):.12f}")
    print(f"fidelity vs Quantum++: {result.fidelity(qpp):.12f}")
    print(f"\nruntimes: flatdd={result.runtime_seconds:.3f}s  "
          f"ddsim={ddsim.runtime_seconds:.3f}s  "
          f"quantumpp={qpp.runtime_seconds:.3f}s")


if __name__ == "__main__":
    main()
