"""Why DDs win or lose: entanglement, DD width, and approximation.

The FlatDD paper's premise is that DD size tracks state regularity.  This
example makes that visible: it traces mid-cut entanglement entropy and DD
node count along a regular circuit (GHZ) and an irregular one (DNN),
prints each state's Schmidt-rank-vs-DD-width profile, and shows how much
of an irregular state's DD can be pruned for a bounded fidelity loss.

Run:  python examples/regularity_analysis.py
"""

from repro.backends import StatevectorSimulator
from repro.circuits import get_circuit
from repro.dd import (
    DDPackage,
    entanglement_entropy,
    node_count,
    prune_small_contributions,
    schmidt_rank_profile,
    vector_from_array,
)


def state_dd(circuit):
    arr = StatevectorSimulator().run(circuit).state
    pkg = DDPackage(circuit.num_qubits)
    return pkg, vector_from_array(pkg, arr)


def main() -> None:
    n = 10

    print("=== per-gate growth: ghz vs dnn ===")
    print(f"{'gates':>6s} {'ghz S':>7s} {'ghz DD':>7s} "
          f"{'dnn S':>7s} {'dnn DD':>7s}")
    ghz = get_circuit("ghz", n)
    dnn = get_circuit("dnn", n, layers=4)
    for frac in (0.25, 0.5, 0.75, 1.0):
        row = [f"{frac:6.0%}"]
        for circuit in (ghz, dnn):
            stop = max(1, int(frac * len(circuit)))
            pkg, state = state_dd(circuit[:stop])
            row.append(f"{entanglement_entropy(pkg, state, n // 2):7.3f}")
            row.append(f"{node_count(state):7d}")
        print(" ".join(row))

    print("\n=== Schmidt rank vs DD width (final dnn state) ===")
    pkg, state = state_dd(dnn)
    print(f"{'cut':>4s} {'schmidt rank':>13s} {'dd width':>9s}")
    for cut, rank, width in schmidt_rank_profile(pkg, state, max_cut=5):
        print(f"{cut:4d} {rank:13d} {width:9d}")

    print("\n=== approximation frontier (final dnn state) ===")
    print(f"{'budget':>8s} {'fidelity':>9s} {'nodes':>7s} {'reduction':>10s}")
    for budget in (0.01, 0.05, 0.1, 0.25):
        result = prune_small_contributions(pkg, state, budget)
        print(f"{budget:8.2f} {result.fidelity:9.4f} "
              f"{result.nodes_after:7d} {result.size_reduction:9.2f}x")


if __name__ == "__main__":
    main()
