"""Sampling from a quantum-supremacy-style circuit + Porter-Thomas check.

Google's supremacy experiment [Arute et al. 2019] samples bitstrings from
random circuits whose output probabilities follow the Porter-Thomas
(exponential) distribution.  This example simulates such a circuit with
FlatDD, samples from the exact distribution, and verifies the
Porter-Thomas signature -- the irregularity that defeats pure DD
simulators (Figure 1 of the FlatDD paper).

Run:  python examples/supremacy_sampling.py
"""

import numpy as np

from repro import FlatDDSimulator, get_circuit


def main() -> None:
    n = 12
    circuit = get_circuit("supremacy", n, cycles=12, seed=42)
    print(f"simulating {circuit} ...")
    result = FlatDDSimulator(threads=4).run(circuit)
    print(f"done in {result.runtime_seconds:.3f} s; converted at gate "
          f"{result.metadata['conversion_gate_index']}")

    probs = result.probabilities()
    dim = probs.size

    # Porter-Thomas: p-values of a chaotic circuit follow Exp(1/D); the
    # mean of D*p is 1 and the variance ~1.
    scaled = dim * probs
    print(f"\nPorter-Thomas check (D*p): mean={scaled.mean():.4f} "
          f"(expect 1.0), var={scaled.var():.4f} (expect ~1.0)")

    # Linear cross-entropy benchmarking fidelity of exact sampling is
    # <D*p> over samples ~ 2 for an ideal simulation of a chaotic circuit.
    rng = np.random.default_rng(0)
    samples = rng.choice(dim, size=20_000, p=probs)
    xeb = float(np.mean(dim * probs[samples]))
    print(f"linear XEB of exact sampler: {xeb:.3f} (expect ~2.0)")

    counts = np.bincount(samples % 8, minlength=8)
    print("\nsample histogram over the low 3 qubits:")
    for k, c in enumerate(counts):
        bar = "#" * int(60 * c / counts.max())
        print(f"  |{k:03b}> {bar} {c}")

    # The state DD the run abandoned: show why conversion was necessary.
    sizes = [g.dd_size for g in result.gate_trace if g.phase == "dd"]
    print(f"\nstate-DD size grew {sizes[0]} -> {sizes[-1]} nodes over the "
          f"DD phase (worst case is {2**n - 1}); FlatDD switched to its "
          "flat-array representation at that point.")


if __name__ == "__main__":
    main()
