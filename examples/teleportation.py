"""Quantum teleportation with real mid-circuit measurement.

Builds the textbook protocol as a dynamic circuit: Alice entangles with
Bob, Bell-measures her two qubits, and Bob applies the classically
controlled X/Z corrections.  Runs many shots, verifies the payload arrives
for every measurement outcome, and prints the outcome histogram.

Run:  python examples/teleportation.py
"""

import math

import numpy as np

from repro.circuits import Gate
from repro.dynamic import DynamicCircuit, run_dynamic, run_shots


def build(theta: float, lam: float) -> DynamicCircuit:
    c = DynamicCircuit(3, num_clbits=2, name="teleport")
    c.add("u3", 0, params=(theta, 0.0, lam))  # the payload |psi> on q0
    c.add("h", 1)                              # Bell pair on q1, q2
    c.add("cx", 1, 2)
    c.add("cx", 0, 1)                          # Bell measurement basis
    c.add("h", 0)
    c.measure(0, 0)
    c.measure(1, 1)
    c.c_if("x", 2, cbit=1)                     # Bob's corrections
    c.c_if("z", 2, cbit=0)
    return c


def main() -> None:
    theta, lam = 2 * math.pi / 5, 0.9
    payload = Gate("u3", (0,), params=(theta, 0.0, lam)).matrix() @ np.array(
        [1, 0], dtype=complex
    )
    print(f"teleporting |psi> = {payload[0]:.4f}|0> + {payload[1]:.4f}|1>\n")

    rng = np.random.default_rng(1)
    print("shot  m0 m1  fidelity(q2, |psi>)")
    for shot_no in range(6):
        shot = run_dynamic(build(theta, lam), rng)
        psi2 = np.zeros(2, dtype=complex)
        for idx, a in enumerate(shot.state):
            if abs(a) > 1e-12:
                psi2[(idx >> 2) & 1] += a
        fid = abs(np.vdot(payload, psi2)) ** 2
        m0, m1 = shot.classical_bits
        print(f"{shot_no:4d}   {m0}  {m1}   {fid:.12f}")

    counts = run_shots(build(theta, lam), 2000, seed=2)
    print("\nmeasurement outcome histogram (should be ~uniform):")
    for bits in sorted(counts):
        bar = "#" * (counts[bits] // 20)
        print(f"  {bits}: {bar} {counts[bits]}")


if __name__ == "__main__":
    main()
