"""VQE-style energy evaluation of a transverse-field Ising Hamiltonian.

Evaluates <psi(theta)| H |psi(theta)> for a hardware-efficient ansatz,
where H = -J sum Z_i Z_{i+1} - h sum X_i, and runs a small random-search
parameter update loop.  Expectation values are computed directly from the
simulator's exact state, demonstrating library use beyond plain
simulation.  VQE ansatz states are irregular (Figure 1), so FlatDD's
hybrid pipeline is the right engine.

Run:  python examples/vqe_expectation.py
"""

import math

import numpy as np

from repro import Circuit, FlatDDSimulator


def ansatz(n: int, params: np.ndarray) -> Circuit:
    """Hardware-efficient ansatz: RY columns + CZ ring, two layers."""
    c = Circuit(n, name="vqe_ansatz")
    k = 0
    for _ in range(2):
        for q in range(n):
            c.ry(float(params[k]), q)
            k += 1
        for q in range(n):
            c.cz(q, (q + 1) % n)
    return c


def ising_energy(state: np.ndarray, n: int, j: float, h: float) -> float:
    """<H> for H = -J sum Z_i Z_{i+1} - h sum X_i (exact, vectorized)."""
    probs = np.abs(state) ** 2
    idx = np.arange(state.size)
    energy = 0.0
    for q in range(n):
        z_q = 1 - 2 * ((idx >> q) & 1)
        z_next = 1 - 2 * ((idx >> ((q + 1) % n)) & 1)
        energy += -j * float(np.sum(probs * z_q * z_next))
        # <X_q>: overlap of the state with itself bit-flipped at q.
        energy += -h * float(np.real(np.vdot(state, state[idx ^ (1 << q)])))
    return energy


def main() -> None:
    n, j, h = 8, 1.0, 0.7
    rng = np.random.default_rng(3)
    params = rng.uniform(0, 2 * math.pi, size=2 * n)
    sim = FlatDDSimulator(threads=4)

    best = float("inf")
    print(f"random-search VQE on {n}-qubit transverse-field Ising "
          f"(J={j}, h={h})")
    for step in range(25):
        trial = params + rng.normal(scale=0.3, size=params.size)
        state = sim.run(ansatz(n, trial)).state
        energy = ising_energy(state, n, j, h)
        if energy < best:
            best, params = energy, trial
            print(f"  step {step:2d}: E = {energy:+.5f}  (improved)")

    # Exact ground state for reference (dense diagonalization).
    dim = 1 << n
    ham = np.zeros((dim, dim))
    idx = np.arange(dim)
    for q in range(n):
        z_q = 1 - 2 * ((idx >> q) & 1)
        z_n = 1 - 2 * ((idx >> ((q + 1) % n)) & 1)
        ham[idx, idx] += -j * z_q * z_n
        ham[idx ^ (1 << q), idx] += -h
    exact = float(np.linalg.eigvalsh(ham)[0])
    print(f"\nbest ansatz energy: {best:+.5f}")
    print(f"exact ground state: {exact:+.5f}")
    print(f"relative gap: {abs(best - exact) / abs(exact):.2%} "
          "(random search, few iterations -- a real optimizer closes this)")


if __name__ == "__main__":
    main()
