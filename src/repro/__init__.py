"""repro: a reproduction of FlatDD (ICPP 2024).

FlatDD is a quantum circuit simulator that combines decision diagrams (DD)
with flat arrays: it simulates in DD form while the state stays regular,
detects irregularity growth with an EWMA over DD sizes, converts the state
to a flat array in parallel, and finishes with parallel DD-matrix x
array-vector multiplication (DMAV) with result caching and cost-model-driven
gate fusion.

Quickstart::

    from repro import FlatDDSimulator, get_circuit

    circuit = get_circuit("supremacy", 10)
    result = FlatDDSimulator(threads=4).run(circuit)
    print(result.runtime_seconds, result.peak_memory_mb)
    print(result.probabilities()[:8])

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for the paper-vs-measured record.
"""

import logging as _logging

from repro.backends import (
    DDSimulator,
    GateRecord,
    SimulationResult,
    Simulator,
    StatevectorSimulator,
)
from repro.circuits import (
    CIRCUIT_FAMILIES,
    Circuit,
    Gate,
    get_circuit,
    parse_qasm,
    to_qasm,
)
from repro.common import FlatDDConfig
from repro.core import FlatDDSimulator
from repro.noise import NoiseModel, run_trajectories
from repro.observables import PauliString, PauliSum
from repro.sampling import sample_counts, sample_from_dd
from repro.serve import SimulationService
from repro.verify import check_equivalence

# Library-wide logger: silent unless the application configures handlers
# (the CLI's -v/--verbose does; see `python -m repro --help`).
_logging.getLogger("repro").addHandler(_logging.NullHandler())

__version__ = "1.7.0"

__all__ = [
    "CIRCUIT_FAMILIES",
    "Circuit",
    "DDSimulator",
    "FlatDDConfig",
    "FlatDDSimulator",
    "Gate",
    "GateRecord",
    "NoiseModel",
    "PauliString",
    "PauliSum",
    "SimulationResult",
    "SimulationService",
    "Simulator",
    "StatevectorSimulator",
    "check_equivalence",
    "get_circuit",
    "parse_qasm",
    "run_trajectories",
    "sample_counts",
    "sample_from_dd",
    "to_qasm",
    "__version__",
]
