"""Variational algorithms built on the simulators: VQE and QAOA."""

from repro.algorithms.ansatz import HardwareEfficientAnsatz, QAOAAnsatz
from repro.algorithms.qaoa import QAOA, QAOAResult
from repro.algorithms.vqe import VQE, VQEResult

__all__ = [
    "HardwareEfficientAnsatz",
    "QAOA",
    "QAOAAnsatz",
    "QAOAResult",
    "VQE",
    "VQEResult",
]
