"""Parameterized ansatz circuits for the variational algorithms."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import Circuit
from repro.common.errors import CircuitError
from repro.observables.pauli import PauliString, PauliSum

__all__ = ["HardwareEfficientAnsatz", "QAOAAnsatz"]


@dataclass(frozen=True)
class HardwareEfficientAnsatz:
    """RY+RZ rotation columns with a CZ entangler ring, ``layers`` deep.

    Parameter layout: per layer, first all RY angles (qubit order), then
    all RZ angles -- ``2 * n * layers`` parameters total.
    """

    num_qubits: int
    layers: int = 2

    def __post_init__(self) -> None:
        if self.num_qubits < 2:
            raise CircuitError("ansatz needs at least 2 qubits")
        if self.layers < 1:
            raise CircuitError("ansatz needs at least 1 layer")

    @property
    def num_parameters(self) -> int:
        return 2 * self.num_qubits * self.layers

    def build(self, params: np.ndarray) -> Circuit:
        params = np.asarray(params, dtype=float)
        if params.shape != (self.num_parameters,):
            raise CircuitError(
                f"expected {self.num_parameters} parameters, "
                f"got shape {params.shape}"
            )
        n = self.num_qubits
        c = Circuit(n, name=f"hea_n{n}_l{self.layers}")
        k = 0
        for _ in range(self.layers):
            for q in range(n):
                c.ry(float(params[k]), q)
                k += 1
            for q in range(n):
                c.rz(float(params[k]), q)
                k += 1
            for q in range(n):
                c.cz(q, (q + 1) % n)
        return c

    #: Which parameters are rotation angles eligible for the parameter-shift
    #: rule (all of them, for this ansatz).
    def shift_eligible(self) -> np.ndarray:
        return np.ones(self.num_parameters, dtype=bool)


@dataclass(frozen=True)
class QAOAAnsatz:
    """QAOA ansatz for a diagonal (Z-only) cost Hamiltonian.

    Alternates ``p`` rounds of cost evolution exp(-i gamma H_C) -- exact
    for Z/ZZ terms via rz / rzz gates -- and mixer evolution
    exp(-i beta sum X) via rx columns.  Parameters: [gamma_1, beta_1, ...,
    gamma_p, beta_p].
    """

    cost: PauliSum
    num_qubits: int
    rounds: int = 1

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise CircuitError("QAOA needs at least one round")
        for term in self.cost:
            if any(op != "Z" for _, op in term.paulis):
                raise CircuitError(
                    "QAOA cost Hamiltonian must be diagonal (Z/ZZ terms)"
                )
            if term.weight > 2:
                raise CircuitError(
                    "only 1- and 2-local cost terms are supported"
                )

    @property
    def num_parameters(self) -> int:
        return 2 * self.rounds

    def build(self, params: np.ndarray) -> Circuit:
        params = np.asarray(params, dtype=float)
        if params.shape != (self.num_parameters,):
            raise CircuitError(
                f"expected {self.num_parameters} parameters, "
                f"got shape {params.shape}"
            )
        n = self.num_qubits
        c = Circuit(n, name=f"qaoa_n{n}_p{self.rounds}")
        for q in range(n):
            c.h(q)
        for r in range(self.rounds):
            gamma, beta = params[2 * r], params[2 * r + 1]
            for term in self.cost:
                coeff = term.coefficient.real
                if term.weight == 0:
                    continue  # identity: global phase only
                if term.weight == 1:
                    q = term.paulis[0][0]
                    c.rz(2.0 * gamma * coeff, q)
                else:
                    (a, _), (b, _) = term.paulis
                    c.add("rzz", a, b, params=(2.0 * gamma * coeff,))
            for q in range(n):
                c.rx(2.0 * beta, q)
        return c
