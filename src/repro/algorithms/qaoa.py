"""QAOA driver for diagonal cost Hamiltonians (MaxCut-style problems)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.ansatz import QAOAAnsatz
from repro.backends.base import Simulator
from repro.common.errors import SimulationError
from repro.core import FlatDDSimulator
from repro.observables.pauli import PauliSum
from repro.sampling import most_likely

__all__ = ["QAOAResult", "QAOA"]


@dataclass
class QAOAResult:
    """QAOA optimization outcome."""

    expectation: float
    parameters: np.ndarray
    best_bitstring: str
    best_bitstring_value: float
    expectation_history: list[float]
    evaluations: int


class QAOA:
    """Coordinate-descent QAOA over ``rounds`` (gamma, beta) pairs.

    Maximizes ``<cost>`` (cost Hamiltonians like MaxCut are rewards);
    pass ``minimize=True`` to minimize instead.
    """

    def __init__(
        self,
        cost: PauliSum,
        num_qubits: int,
        rounds: int = 1,
        simulator: Simulator | None = None,
        minimize: bool = False,
        sweep: bool | None = None,
    ) -> None:
        self.cost = cost
        self.ansatz = QAOAAnsatz(cost, num_qubits, rounds)
        self.simulator = simulator or FlatDDSimulator(threads=2)
        self.sign = 1.0 if not minimize else -1.0
        if sweep is None:
            sweep = hasattr(self.simulator, "simulate_sweep")
        self.sweep = bool(sweep)
        self._template = None
        self.evaluations = 0

    def expectation(self, params: np.ndarray) -> float:
        state = self.simulator.run(self.ansatz.build(params)).state
        self.evaluations += 1
        return float(self.cost.expectation(state).real)

    def _expectations(self, rows: list[np.ndarray]) -> list[float]:
        """``<cost>`` for a batch of parameter vectors.

        With ``sweep`` enabled the grid goes through the simulator's
        batched ``simulate_sweep`` path; the sweep bit-identity contract
        keeps the optimization trajectory identical to per-row runs.
        """
        if not self.sweep:
            return [self.expectation(r) for r in rows]
        if self._template is None:
            self._template = self.ansatz.build(rows[0])
        param_rows = [self.ansatz.build(r).extract_params() for r in rows]
        states = self.simulator.simulate_sweep(self._template, param_rows).states
        self.evaluations += len(rows)
        return [float(self.cost.expectation(state).real) for state in states]

    def optimize(
        self,
        grid: int = 12,
        sweeps: int = 2,
        seed: int = 0,
    ) -> QAOAResult:
        """Cyclic coordinate descent with a shrinking grid per parameter."""
        if grid < 3:
            raise SimulationError("grid must be at least 3")
        rng = np.random.default_rng(seed)
        params = rng.uniform(0, np.pi, size=self.ansatz.num_parameters)
        history = [self.expectation(params)]
        span = np.pi
        for _ in range(sweeps):
            for k in range(params.size):
                candidates = params[k] + np.linspace(-span / 2, span / 2, grid)
                trials = []
                for cand in candidates:
                    trial = params.copy()
                    trial[k] = cand
                    trials.append(trial)
                values = [
                    self.sign * e for e in self._expectations(trials)
                ]
                params[k] = candidates[int(np.argmax(values))]
                history.append(self.sign * max(values))
            span /= 2.0
        state = self.simulator.run(self.ansatz.build(params)).state
        bitstring, _prob = most_likely(state)[0]
        # Value of the best bitstring under the diagonal cost.
        basis = np.zeros_like(state)
        basis[int(bitstring, 2)] = 1.0
        value = float(self.cost.expectation(basis).real)
        return QAOAResult(
            expectation=history[-1],
            parameters=params,
            best_bitstring=bitstring,
            best_bitstring_value=value,
            expectation_history=history,
            evaluations=self.evaluations,
        )
