"""Variational quantum eigensolver on top of the FlatDD simulator.

Exact-statevector VQE: energies come from
:meth:`repro.observables.PauliSum.expectation` over the simulated state,
gradients from the parameter-shift rule (exact for the RY/RZ/RX rotations
our ansatz uses), and optimization is plain gradient descent with optional
momentum.  Deterministic given the initial parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backends.base import Simulator
from repro.common.errors import SimulationError
from repro.core import FlatDDSimulator
from repro.observables.pauli import PauliSum

__all__ = ["VQEResult", "VQE"]


@dataclass
class VQEResult:
    """Optimization outcome."""

    energy: float
    parameters: np.ndarray
    energy_history: list[float]
    gradient_norms: list[float]
    evaluations: int

    @property
    def iterations(self) -> int:
        return len(self.energy_history) - 1


class VQE:
    """Gradient-descent VQE driver.

    ``ansatz`` must expose ``num_parameters`` and ``build(params)`` (see
    :mod:`repro.algorithms.ansatz`).
    """

    def __init__(
        self,
        hamiltonian: PauliSum,
        ansatz,
        simulator: Simulator | None = None,
        sweep: bool | None = None,
    ) -> None:
        if not len(hamiltonian):
            raise SimulationError("empty Hamiltonian")
        self.hamiltonian = hamiltonian
        self.ansatz = ansatz
        self.simulator = simulator or FlatDDSimulator(threads=2)
        if sweep is None:
            sweep = hasattr(self.simulator, "simulate_sweep")
        self.sweep = bool(sweep)
        self._template = None
        self.evaluations = 0

    # ------------------------------------------------------------------

    def energy(self, params: np.ndarray) -> float:
        """<H> of the ansatz state at ``params``."""
        state = self.simulator.run(self.ansatz.build(params)).state
        self.evaluations += 1
        return float(self.hamiltonian.expectation(state).real)

    def _energies(self, rows: list[np.ndarray]) -> list[float]:
        """Energies for a batch of parameter vectors.

        With ``sweep`` enabled the whole batch goes through the
        simulator's ``simulate_sweep`` path (one DD/conversion per unique
        prefix, batched array replay); otherwise each row is a single-shot
        ``run``.  The sweep contract makes both bit-identical, and either
        way one evaluation is counted per row.
        """
        if not self.sweep:
            return [self.energy(r) for r in rows]
        if self._template is None:
            self._template = self.ansatz.build(rows[0])
        param_rows = [self.ansatz.build(r).extract_params() for r in rows]
        states = self.simulator.simulate_sweep(self._template, param_rows).states
        self.evaluations += len(rows)
        return [
            float(self.hamiltonian.expectation(state).real)
            for state in states
        ]

    def gradient(self, params: np.ndarray) -> np.ndarray:
        """Exact gradient via the parameter-shift rule.

        For a gate exp(-i theta P/2) (P a Pauli), dE/dtheta =
        (E(theta + pi/2) - E(theta - pi/2)) / 2.  All 2P shifted
        evaluations form one batch for :meth:`_energies`.
        """
        rows: list[np.ndarray] = []
        for k in range(params.size):
            plus = params.copy()
            plus[k] += np.pi / 2
            minus = params.copy()
            minus[k] -= np.pi / 2
            rows.append(plus)
            rows.append(minus)
        energies = self._energies(rows)
        grad = np.zeros_like(params, dtype=float)
        for k in range(params.size):
            grad[k] = 0.5 * (energies[2 * k] - energies[2 * k + 1])
        return grad

    def minimize(
        self,
        initial: np.ndarray | None = None,
        iterations: int = 50,
        learning_rate: float = 0.1,
        momentum: float = 0.0,
        tol: float = 1e-6,
        seed: int = 0,
    ) -> VQEResult:
        """Gradient descent from ``initial`` (random if omitted)."""
        if iterations < 1:
            raise SimulationError("need at least one iteration")
        rng = np.random.default_rng(seed)
        params = (
            np.asarray(initial, dtype=float).copy()
            if initial is not None
            else rng.uniform(0, 2 * np.pi, size=self.ansatz.num_parameters)
        )
        history = [self.energy(params)]
        grad_norms: list[float] = []
        velocity = np.zeros_like(params)
        for _ in range(iterations):
            grad = self.gradient(params)
            gnorm = float(np.linalg.norm(grad))
            grad_norms.append(gnorm)
            if gnorm < tol:
                break
            velocity = momentum * velocity - learning_rate * grad
            params = params + velocity
            history.append(self.energy(params))
        return VQEResult(
            energy=history[-1],
            parameters=params,
            energy_history=history,
            gradient_norms=grad_norms,
            evaluations=self.evaluations,
        )
