"""Baseline simulators: array-based (Quantum++) and DD-based (DDSIM)."""

from repro.backends.base import GateRecord, SimulationResult, Simulator
from repro.backends.ddmm import DDMatrixSimulator
from repro.backends.ddsim import DDSimulator
from repro.backends.gatecache import GateDDCache, build_gate_dd
from repro.backends.statevector import StatevectorSimulator, apply_gate_array

__all__ = [
    "DDMatrixSimulator",
    "DDSimulator",
    "GateDDCache",
    "GateRecord",
    "SimulationResult",
    "Simulator",
    "StatevectorSimulator",
    "apply_gate_array",
    "build_gate_dd",
]
