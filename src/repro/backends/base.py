"""Common backend interfaces: results, per-gate traces, simulator protocol.

All three simulators (array-based "Quantum++", DD-based "DDSIM", and FlatDD)
return a :class:`SimulationResult` so the benches can compare them with the
same code paths the paper's tables use (runtime, memory, per-gate traces).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.circuits.circuit import Circuit

__all__ = ["GateRecord", "SimulationResult", "Simulator"]


@dataclass
class GateRecord:
    """Per-gate instrumentation: what Figures 3 and 11 plot.

    ``dd_size`` is the state DD's node count after the gate (DD phases only);
    ``phase`` distinguishes FlatDD's regimes ("dd", "convert", "dmav").
    ``macs`` records the cost-model MAC count for DMAV gates.
    """

    index: int
    name: str
    seconds: float
    phase: str = "array"
    dd_size: int | None = None
    macs: int | None = None
    cached: bool | None = None


@dataclass
class SimulationResult:
    """Outcome of simulating one circuit on one backend."""

    backend: str
    circuit_name: str
    num_qubits: int
    num_gates: int
    state: np.ndarray
    runtime_seconds: float
    peak_memory_bytes: int
    gate_trace: list[GateRecord] = field(default_factory=list)
    #: Backend-specific extras (conversion point, thread count, fusion
    #: statistics, modeled parallel runtime, ...).
    metadata: dict = field(default_factory=dict)

    @property
    def peak_memory_mb(self) -> float:
        return self.peak_memory_bytes / (1024.0 * 1024.0)

    def probabilities(self) -> np.ndarray:
        """|amplitude|^2 distribution of the final state."""
        return np.abs(self.state) ** 2

    def fidelity(self, other: "SimulationResult | np.ndarray") -> float:
        """|<a|b>|^2 against another result/state (1.0 = same state)."""
        other_state = other.state if isinstance(other, SimulationResult) else other
        return float(abs(np.vdot(self.state, other_state)) ** 2)


class Simulator(abc.ABC):
    """A strong simulator: computes the full final state of a circuit."""

    name: str = "simulator"

    @abc.abstractmethod
    def run(self, circuit: Circuit) -> SimulationResult:
        """Simulate ``circuit`` from |0...0> and return the final state."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"
