"""Matrix-matrix DD simulation (Zulehner & Wille, DATE 2019 -- ref [100]).

Instead of applying each gate to the state (matrix-vector), this backend
multiplies the circuit's gates into a single DD operator and applies it
once.  Reference [100] -- the paper's k-operations baseline -- studies
exactly this trade-off: matrix-matrix pays off when the accumulated
operator stays compact (narrow or structured circuits) and loses badly
when it becomes dense.  Exposed as a backend so the trade-off can be
measured directly against :class:`~repro.backends.ddsim.DDSimulator`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backends.base import GateRecord, SimulationResult, Simulator
from repro.backends.gatecache import GateDDCache
from repro.circuits.circuit import Circuit
from repro.dd.operations import mm_multiply, mv_multiply
from repro.dd.package import DDPackage
from repro.dd.vector import node_count, vector_to_array, zero_state
from repro.dd.matrix import matrix_node_count
from repro.metrics.memory import MemoryMeter, dd_bytes

__all__ = ["DDMatrixSimulator"]


class DDMatrixSimulator(Simulator):
    """Accumulate the whole circuit as one DD operator, then apply it."""

    GC_THRESHOLD = 200_000

    def __init__(self) -> None:
        self.name = "ddmm"

    def run(
        self,
        circuit: Circuit,
        max_seconds: float | None = None,
        keep_dd: bool = False,
    ) -> SimulationResult:
        n = circuit.num_qubits
        pkg = DDPackage(n)
        gates = GateDDCache(pkg)
        meter = MemoryMeter()
        trace: list[GateRecord] = []
        timed_out = False
        start = time.perf_counter()
        operator = pkg.identity_edge(n - 1)
        for i, gate in enumerate(circuit.gates):
            g0 = time.perf_counter()
            operator = mm_multiply(pkg, gates.get(gate), operator)
            trace.append(
                GateRecord(
                    index=i,
                    name=gate.name,
                    seconds=time.perf_counter() - g0,
                    phase="ddmm",
                    dd_size=matrix_node_count(operator),
                )
            )
            meter.sample(dd_bytes(pkg))
            if pkg.unique_node_count > self.GC_THRESHOLD:
                pkg.collect_garbage([operator, *gates.roots()])
            if (
                max_seconds is not None
                and time.perf_counter() - start > max_seconds
            ):
                timed_out = True
                break
        state_dd = mv_multiply(pkg, operator, zero_state(pkg))
        metadata = {
            "timed_out": timed_out,
            "gates_applied": len(trace),
            "operator_dd_size": matrix_node_count(operator),
            "final_dd_size": node_count(state_dd),
        }
        if keep_dd:
            state = np.empty(0, dtype=np.complex128)
            metadata["state_dd"] = state_dd
            metadata["operator_dd"] = operator
            metadata["package"] = pkg
        else:
            state = vector_to_array(pkg, state_dd)
            meter.sample(dd_bytes(pkg) + state.nbytes)
        return SimulationResult(
            backend=self.name,
            circuit_name=circuit.name,
            num_qubits=n,
            num_gates=len(circuit.gates),
            state=state,
            runtime_seconds=time.perf_counter() - start,
            peak_memory_bytes=meter.peak_bytes,
            gate_trace=trace,
            metadata=metadata,
        )
