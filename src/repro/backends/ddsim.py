"""Pure decision-diagram simulator (the paper's DDSIM baseline [99]).

The state is a vector DD; each gate is a DD matrix-vector multiplication
(Section 2.2), memoized through the package's compute tables.  DDSIM is
single-threaded -- the paper runs it on one thread because "DDSIM does not
support multithreading" -- and that inherent seriality is exactly what
FlatDD's DMAV phase removes.

Instrumentation records the per-gate DD size (the ``s_i`` signal of the
EWMA monitor) and per-gate runtime, which is what Figures 1, 3 and 11 plot.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backends.base import GateRecord, SimulationResult, Simulator
from repro.backends.gatecache import GateDDCache
from repro.circuits.circuit import Circuit
from repro.dd.operations import mv_multiply
from repro.dd.package import DDPackage
from repro.dd.vector import node_count, vector_to_array, zero_state
from repro.metrics.memory import MemoryMeter, dd_bytes
from repro.obs.collect import build_obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER

__all__ = ["DDSimulator"]


class DDSimulator(Simulator):
    """DDSIM-equivalent: sequential DD-based strong simulation."""

    #: Run garbage collection when the unique tables exceed this many nodes.
    GC_THRESHOLD = 200_000

    def __init__(self, gc_threshold: int | None = None) -> None:
        self.name = "ddsim"
        if gc_threshold is not None:
            self.GC_THRESHOLD = gc_threshold

    def run(
        self,
        circuit: Circuit,
        max_seconds: float | None = None,
        keep_dd: bool = False,
        tracer=None,
    ) -> SimulationResult:
        """Simulate; ``max_seconds`` mimics the paper's 24 h timeout.

        On timeout the result's metadata has ``timed_out=True`` and the
        state is the (converted) partial state reached so far.

        ``keep_dd=True`` skips the final DD-to-array export and returns the
        state as a DD (``metadata["state_dd"]`` + ``metadata["package"]``,
        with ``result.state`` a zero-length array).  This is how DD
        simulation reaches qubit counts whose 2**n amplitude vector could
        never be materialized -- e.g. a 64-qubit GHZ state: query it with
        :func:`repro.dd.amplitude` or sample it with
        :func:`repro.sampling.sample_from_dd`.

        ``tracer`` (a :class:`repro.obs.Tracer`) records the "dd_phase"
        and "conversion" phase spans, one span per gate (with the DD
        size), and dd_size counter samples.
        """
        n = circuit.num_qubits
        tr = tracer if tracer is not None else NULL_TRACER
        tracing = tr.enabled
        registry = MetricsRegistry()
        pkg = DDPackage(n)
        gates = GateDDCache(pkg)
        state = zero_state(pkg)
        meter = MemoryMeter()
        trace: list[GateRecord] = []
        timed_out = False
        start = time.perf_counter()
        for i, gate in enumerate(circuit.gates):
            g0 = time.perf_counter()
            mdd = gates.get(gate)
            state = mv_multiply(pkg, mdd, state)
            size = node_count(state)
            g1 = time.perf_counter()
            trace.append(
                GateRecord(
                    index=i,
                    name=gate.name,
                    seconds=g1 - g0,
                    phase="dd",
                    dd_size=size,
                )
            )
            if tracing:
                tr.record(gate.name, "dd", g0, g1, gate_index=i, dd_size=size)
                tr.sample("dd_size", size, ts=g1)
            meter.sample(dd_bytes(pkg))
            if pkg.unique_node_count > self.GC_THRESHOLD:
                removed = pkg.collect_garbage([state, *gates.roots()])
                if tracing:
                    tr.instant("gc", "dd", gate_index=i, reclaimed=removed)
            if max_seconds is not None and time.perf_counter() - start > max_seconds:
                timed_out = True
                break
        if tracing:
            tr.record(
                "dd_phase", "phase", start, time.perf_counter(),
                gates=len(trace),
            )
        registry.gauge("dd.size").set(node_count(state))
        registry.counter("dd_phase.gates").inc(len(trace))
        metadata = {
            "timed_out": timed_out,
            "gates_applied": len(trace),
            "final_dd_size": node_count(state),
            "gate_dd_cache_hits": gates.hits,
            "gate_dd_cache_misses": gates.misses,
        }
        if keep_dd:
            array = np.empty(0, dtype=np.complex128)
            metadata["state_dd"] = state
            metadata["package"] = pkg
        else:
            # Final DD-to-array conversion so results are comparable across
            # backends (DDSIM's sequential exporter; Figure 13's baseline).
            c0 = time.perf_counter()
            array = vector_to_array(pkg, state)
            c1 = time.perf_counter()
            metadata["convert_seconds"] = c1 - c0
            if tracing:
                tr.record("conversion", "phase", c0, c1, sequential=True)
            registry.gauge("conversion.seconds").set(c1 - c0)
            meter.sample(dd_bytes(pkg) + array.nbytes)
        runtime = time.perf_counter() - start
        metadata["dd_stats"] = pkg.stats.as_dict()
        registry.gauge("sim.mem.peak_bytes").set(meter.peak_bytes)
        metadata["obs"] = build_obs(
            tracer=tr if tracing else None,
            registry=registry,
            package=pkg,
            gate_cache=gates,
            wall_seconds=runtime,
        )
        return SimulationResult(
            backend=self.name,
            circuit_name=circuit.name,
            num_qubits=n,
            num_gates=len(circuit.gates),
            state=array,
            runtime_seconds=runtime,
            peak_memory_bytes=meter.peak_bytes,
            gate_trace=trace,
            metadata=metadata,
        )
