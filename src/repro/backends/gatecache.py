"""Gate-matrix DD construction and caching shared by DDSIM and FlatDD.

Gate DDs depend only on the gate's signature (base name, qubits, params),
so repeated gates -- ubiquitous in the benchmark circuits -- reuse one DD.
The cached edges also act as garbage-collection roots for the package.
"""

from __future__ import annotations

from repro.circuits.gates import Gate
from repro.dd.matrix import controlled_gate, single_qubit_gate, two_qubit_gate
from repro.dd.node import Edge
from repro.dd.package import DDPackage

__all__ = ["GateDDCache", "build_gate_dd"]


def build_gate_dd(pkg: DDPackage, gate: Gate) -> Edge:
    """Construct the full ``2**n x 2**n`` DD of one circuit gate."""
    u = gate.matrix()
    if gate.controls:
        return controlled_gate(pkg, u, gate.targets, gate.controls)
    if len(gate.targets) == 1:
        return single_qubit_gate(pkg, u, gate.targets[0])
    return two_qubit_gate(pkg, u, gate.targets[0], gate.targets[1])


class GateDDCache:
    """Signature-keyed cache of gate matrix DDs for one package."""

    def __init__(self, pkg: DDPackage) -> None:
        self.pkg = pkg
        self._cache: dict[tuple, Edge] = {}
        self.hits = 0
        self.misses = 0

    def get(self, gate: Gate) -> Edge:
        key = gate.signature
        edge = self._cache.get(key)
        if edge is None:
            self.misses += 1
            edge = build_gate_dd(self.pkg, gate)
            self._cache[key] = edge
        else:
            self.hits += 1
        return edge

    def roots(self) -> list[Edge]:
        """All cached edges (keep-alive roots for garbage collection)."""
        return list(self._cache.values())

    def clear(self) -> None:
        """Drop all cached gate DDs (checkpoint barrier support)."""
        self._cache.clear()

    def mark(self) -> int:
        """Rewind point for :meth:`rewind` (the cache is insert-only)."""
        return len(self._cache)

    def rewind(self, mark: int) -> None:
        """Drop every entry added since ``mark`` (counters kept).

        Paired with :meth:`mark` and
        :meth:`repro.dd.package.DDPackage.rewind_to_mark`, this lets the
        sweep executor rewind the cache before building each row's gate
        DDs, so every row's builds see exactly the state a single-shot
        run would (a row's own gates must not serve a later row's
        lookups, and parameter-independent gates must be *rebuilt* per
        row so their nodes get the creation indices the row's own run
        would have assigned).
        """
        while len(self._cache) > mark:
            self._cache.popitem()

    def __len__(self) -> int:
        return len(self._cache)
