"""Gate-matrix DD construction and caching shared by DDSIM and FlatDD.

Gate DDs depend only on the gate's signature (base name, qubits, params),
so repeated gates -- ubiquitous in the benchmark circuits -- reuse one DD.
The cached edges also act as garbage-collection roots for the package.
"""

from __future__ import annotations

from repro.circuits.gates import Gate
from repro.dd.matrix import controlled_gate, single_qubit_gate, two_qubit_gate
from repro.dd.node import Edge
from repro.dd.package import DDPackage

__all__ = ["GateDDCache", "build_gate_dd"]


def build_gate_dd(pkg: DDPackage, gate: Gate, windowed: bool = False) -> Edge:
    """Construct the matrix DD of one circuit gate.

    ``windowed=True`` builds only the gate's active-qubit window (root at
    ``max(gate.qubits)``; levels above it are implicit identity), which is
    what identity-skipped application consumes.  ``windowed=False`` wraps
    the same window subtree in weight-1 pass-through levels to full
    height, bit-identical to the historic full-height construction.
    """
    u = gate.matrix()
    top = max(gate.qubits) if windowed else None
    if gate.controls:
        return controlled_gate(pkg, u, gate.targets, gate.controls, top=top)
    if len(gate.targets) == 1:
        return single_qubit_gate(pkg, u, gate.targets[0], top=top)
    return two_qubit_gate(
        pkg, u, gate.targets[0], gate.targets[1], top=top
    )


class GateDDCache:
    """Signature-keyed cache of gate matrix DDs for one package."""

    def __init__(self, pkg: DDPackage) -> None:
        self.pkg = pkg
        self._cache: dict[tuple, Edge] = {}
        self.hits = 0
        self.misses = 0

    def get(self, gate: Gate, windowed: bool = False) -> Edge:
        key = (gate.signature, windowed)
        edge = self._cache.get(key)
        if edge is None:
            self.misses += 1
            edge = build_gate_dd(self.pkg, gate, windowed=windowed)
            self._cache[key] = edge
        else:
            self.hits += 1
        return edge

    def roots(self) -> list[Edge]:
        """All cached edges (keep-alive roots for garbage collection)."""
        return list(self._cache.values())

    def clear(self) -> None:
        """Drop all cached gate DDs (checkpoint barrier support)."""
        self._cache.clear()

    def drop_windowed(self) -> None:
        """Drop every identity-skipped (windowed) entry.

        Called right after DD-to-array conversion: the DD phase is over,
        windowed gate DDs are never consulted again, and keeping them as
        garbage-collection roots would pin their pass-through nodes in
        memory through the whole array phase.
        """
        for key in [k for k in self._cache if k[1]]:
            del self._cache[key]

    def mark(self) -> int:
        """Rewind point for :meth:`rewind` (the cache is insert-only)."""
        return len(self._cache)

    def rewind(self, mark: int) -> None:
        """Drop every entry added since ``mark`` (counters kept).

        Paired with :meth:`mark` and
        :meth:`repro.dd.package.DDPackage.rewind_to_mark`, this lets the
        sweep executor rewind the cache before building each row's gate
        DDs, so every row's builds see exactly the state a single-shot
        run would (a row's own gates must not serve a later row's
        lookups, and parameter-independent gates must be *rebuilt* per
        row so their nodes get the creation indices the row's own run
        would have assigned).
        """
        while len(self._cache) > mark:
            self._cache.popitem()

    def __len__(self) -> int:
        return len(self._cache)
