"""Array-based statevector simulator (the paper's Quantum++ baseline [19]).

Gate matrices stay 2x2 / 4x4; the state is one flat complex array updated
in place per gate (Equations 2-3 of the paper).  Two apply modes:

* ``indexed`` (default, the faithful Quantum++ model): for every gate the
  simulator materializes the index sets of the touched amplitude pairs via
  bit arithmetic, then gathers/updates/scatters.  This reproduces the O(n)
  per-amplitude indexing work the paper contrasts DMAV against
  (Section 3.2.1).
* ``reshape``: a view-based einsum fast path for uncontrolled gates,
  included as the "best-case array simulator" ablation.

Multi-threading chunks the gathered index ranges across a
:class:`~repro.parallel.pool.TaskRunner` (OpenMP-style data parallelism,
like Quantum++'s Eigen/OpenMP backend).
"""

from __future__ import annotations

import time

import numpy as np

from repro.backends.base import GateRecord, SimulationResult, Simulator
from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.common.errors import SimulationError
from repro.common.bits import indices_matching
from repro.metrics.memory import MemoryMeter, array_bytes
from repro.obs.collect import build_obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.parallel.partition import chunk_bounds
from repro.parallel.pool import TaskRunner

__all__ = ["StatevectorSimulator", "apply_gate_array"]


def _gate_index_sets(gate: Gate, n: int) -> list[np.ndarray]:
    """Index arrays for the amplitude groups a gate mixes.

    Returns ``2**k`` arrays (k = target count) where position ``b`` holds
    the indices whose target bits spell ``b`` and whose control bits are 1.
    """
    fixed = {c: 1 for c in gate.controls}
    for t in gate.targets:
        fixed[t] = 0
    base = indices_matching(n, fixed)
    sets = []
    for b in range(1 << len(gate.targets)):
        idx = base.copy()
        # targets[0] is the most significant bit of the gate-matrix index.
        for pos, t in enumerate(reversed(gate.targets)):
            if (b >> pos) & 1:
                idx |= 1 << t
        sets.append(idx)
    return sets


def apply_gate_array(
    state: np.ndarray,
    gate: Gate,
    runner: TaskRunner | None = None,
) -> None:
    """In-place indexed application of ``gate`` to ``state``.

    This is the library-level kernel (also used by FlatDD's examples for
    spot checks); the simulator class adds instrumentation around it.
    """
    n = state.size.bit_length() - 1
    u = gate.matrix()
    sets = _gate_index_sets(gate, n)
    amps = [state[idx] for idx in sets]

    def update(lo: int, hi: int) -> None:
        for i, idx in enumerate(sets):
            acc = u[i, 0] * amps[0][lo:hi]
            for j in range(1, len(sets)):
                acc += u[i, j] * amps[j][lo:hi]
            state[idx[lo:hi]] = acc

    size = sets[0].size
    if runner is None or runner.threads == 1 or size < 1024:
        update(0, size)
    else:
        bounds = chunk_bounds(size, runner.threads)
        runner.run([lambda b=b: update(*b) for b in bounds])


def _apply_reshape(state: np.ndarray, gate: Gate) -> np.ndarray:
    """View-based fast path for uncontrolled gates; returns the new array."""
    n = state.size.bit_length() - 1
    u = gate.matrix()
    if gate.controls:
        raise SimulationError("reshape path does not take controlled gates")
    if len(gate.targets) == 1:
        k = gate.targets[0]
        view = state.reshape(1 << (n - k - 1), 2, 1 << k)
        return np.einsum("ab,ibk->iak", u, view, optimize=True).reshape(-1)
    # Two targets: expose both qubit axes with one reshape, contract, fold.
    t0, t1 = gate.targets
    a, b = max(t0, t1), min(t0, t1)
    view = state.reshape(1 << (n - a - 1), 2, 1 << (a - b - 1), 2, 1 << b)
    # u4 axes: [t0_out, t1_out, t0_in, t1_in]; reorder so axis pairs match
    # (bit a, bit b) of the state index.
    u4 = u.reshape(2, 2, 2, 2)
    if (t0, t1) != (a, b):
        u4 = u4.transpose(1, 0, 3, 2)
    out = np.einsum("acbd,ibjdk->iajck", u4, view, optimize=True)
    return out.reshape(-1)


class StatevectorSimulator(Simulator):
    """Quantum++-style flat-array simulator."""

    def __init__(
        self,
        threads: int = 1,
        mode: str = "indexed",
        use_thread_pool: bool = False,
    ) -> None:
        if mode not in ("indexed", "reshape"):
            raise SimulationError(f"unknown apply mode {mode!r}")
        self.threads = threads
        self.mode = mode
        self.use_thread_pool = use_thread_pool
        self.name = f"quantumpp[{mode},t={threads}]"

    def run(self, circuit: Circuit, tracer=None) -> SimulationResult:
        """Simulate ``circuit`` gate by gate on a flat amplitude array.

        ``tracer`` (a :class:`repro.obs.Tracer`) records one
        "array_phase" span plus a per-gate span (category "array").
        """
        n = circuit.num_qubits
        tr = tracer if tracer is not None else NULL_TRACER
        tracing = tr.enabled
        registry = MetricsRegistry()
        state = np.zeros(1 << n, dtype=np.complex128)
        state[0] = 1.0
        meter = MemoryMeter()
        meter.sample(array_bytes(state))
        trace: list[GateRecord] = []
        start = time.perf_counter()
        with TaskRunner(
            self.threads, self.use_thread_pool, tracer=tr if tracing else None
        ) as runner:
            for i, gate in enumerate(circuit.gates):
                g0 = time.perf_counter()
                if self.mode == "reshape" and not gate.controls:
                    state = _apply_reshape(state, gate)
                else:
                    apply_gate_array(state, gate, runner)
                g1 = time.perf_counter()
                trace.append(
                    GateRecord(
                        index=i,
                        name=gate.name,
                        seconds=g1 - g0,
                        phase="array",
                    )
                )
                if tracing:
                    tr.record(gate.name, "array", g0, g1, gate_index=i)
                # Working set: the state plus the gathered amplitude groups
                # (2**k index+value arrays of half/quarter length each).
                k = len(gate.targets)
                scratch = (1 << k) * (state.size >> k) * (16 + 8)
                meter.sample(array_bytes(state) + scratch)
        runtime = time.perf_counter() - start
        if tracing:
            tr.record(
                "array_phase", "phase", start, start + runtime,
                gates=len(trace),
            )
        registry.counter("array.gates").inc(len(trace))
        registry.gauge("array.state_bytes").set(state.nbytes)
        registry.gauge("sim.mem.peak_bytes").set(meter.peak_bytes)
        metadata = {
            "threads": self.threads,
            "mode": self.mode,
            "obs": build_obs(
                tracer=tr if tracing else None,
                registry=registry,
                runner=runner,
                wall_seconds=runtime,
            ),
        }
        return SimulationResult(
            backend=self.name,
            circuit_name=circuit.name,
            num_qubits=n,
            num_gates=len(circuit.gates),
            state=state,
            runtime_seconds=runtime,
            peak_memory_bytes=meter.peak_bytes,
            gate_trace=trace,
            metadata=metadata,
        )
