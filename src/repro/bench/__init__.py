"""Benchmark harness: workloads, runners, records, tables, regression gate."""

from repro.bench.model import ThreadScalingModel
from repro.bench.registry import (
    BenchRecord,
    ComparisonReport,
    MetricComparison,
    bench_record_path,
    compare_records,
    load_bench_record,
    machine_fingerprint,
    write_bench_record,
)
from repro.bench.runners import BackendRow, ComparisonRow, compare_backends, run_backend
from repro.bench.tables import render_series, render_table, write_result
from repro.bench.workloads import DEEP_WORKLOADS, TABLE1_WORKLOADS, Workload, load

__all__ = [
    "BackendRow",
    "BenchRecord",
    "ComparisonReport",
    "ComparisonRow",
    "DEEP_WORKLOADS",
    "MetricComparison",
    "TABLE1_WORKLOADS",
    "ThreadScalingModel",
    "Workload",
    "bench_record_path",
    "compare_backends",
    "compare_records",
    "load",
    "load_bench_record",
    "machine_fingerprint",
    "render_series",
    "render_table",
    "run_backend",
    "write_bench_record",
    "write_result",
]
