"""Benchmark harness: workloads, runners, scaling model, table rendering."""

from repro.bench.model import ThreadScalingModel
from repro.bench.runners import BackendRow, ComparisonRow, compare_backends, run_backend
from repro.bench.tables import render_series, render_table, write_result
from repro.bench.workloads import DEEP_WORKLOADS, TABLE1_WORKLOADS, Workload, load

__all__ = [
    "BackendRow",
    "ComparisonRow",
    "DEEP_WORKLOADS",
    "TABLE1_WORKLOADS",
    "ThreadScalingModel",
    "Workload",
    "compare_backends",
    "load",
    "render_series",
    "render_table",
    "run_backend",
    "write_result",
]
