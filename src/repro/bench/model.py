"""Thread-scaling model for the Figure 12 / Figure 14 reproductions.

The container has one CPU core (DESIGN.md substitution 1), so wall-clock
cannot show multi-thread speedups.  Instead, the benches apply the paper's
own computational cost model (Equations 5-6) to the *actual* DMAV-phase
gate DDs of a real run:

    T(t) = T_dd  +  T_conv(1) / t  +  tau * sum_g min(C1_g(t), C2_g(t))
         + kappa * G

* ``T_dd`` -- measured DD-phase seconds (inherently serial, as in DDSIM).
* ``T_conv`` -- measured conversion seconds, divided by t (the conversion
  is embarrassingly parallel after the junction split).
* ``tau`` -- seconds per modeled cost unit, calibrated so the model
  reproduces the *measured* DMAV time at the reference thread count.
* ``kappa * G`` -- fixed per-gate dispatch overhead (G = DMAV gate count),
  estimated from the cheapest observed gate; this term is what makes the
  curve saturate around 16 threads exactly as Figure 12 reports.

The model runs on the run's own package and gate edges
(``keep_internals=True``), so H, K2 and b at each t are the real
Algorithm 2 quantities, not approximations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.base import SimulationResult
from repro.core.cost_model import CostModel

__all__ = ["ThreadScalingModel"]


@dataclass
class ThreadScalingModel:
    """Calibrated T(t) predictor for one FlatDD run."""

    dd_seconds: float
    conv_seconds: float
    dmav_seconds: float
    gate_count: int
    costs_by_t: dict[int, float]
    reference_threads: int
    kappa: float
    tau: float

    @classmethod
    def from_result(
        cls,
        result: SimulationResult,
        thread_counts: list[int],
        simd_width: int = 2,
        cache_policy: str = "auto",
    ) -> "ThreadScalingModel":
        """Calibrate from a run made with ``keep_internals=True``."""
        pkg = result.metadata["package"]
        edges = result.metadata.get("dmav_edges", [])
        t_ref = result.metadata["threads"]
        dmav_records = [g for g in result.gate_trace if g.phase == "dmav"]
        dd_records = [g for g in result.gate_trace if g.phase == "dd"]
        dd_seconds = sum(g.seconds for g in dd_records)
        conv = result.metadata.get("conversion_report")
        conv_seconds = conv.seconds * conv.threads if conv else 0.0
        dmav_seconds = sum(g.seconds for g in dmav_records)
        gate_count = len(dmav_records)

        costs_by_t: dict[int, float] = {}
        for t in sorted({*thread_counts, t_ref}):
            model = CostModel(t, simd_width)
            total = 0.0
            for e in edges:
                cost = model.evaluate(pkg, e)
                if cache_policy == "always":
                    total += cost.cost_cache
                elif cache_policy == "never":
                    total += cost.cost_nocache
                else:
                    total += cost.cost
            costs_by_t[t] = total

        # kappa: per-gate dispatch floor, from the cheapest observed gate.
        kappa = min((g.seconds for g in dmav_records), default=0.0)
        # tau: make the model exact at the reference thread count.
        ref_cost = costs_by_t.get(t_ref, 0.0)
        work_seconds = max(dmav_seconds - kappa * gate_count, 0.0)
        tau = work_seconds / ref_cost if ref_cost > 0 else 0.0
        return cls(
            dd_seconds=dd_seconds,
            conv_seconds=conv_seconds,
            dmav_seconds=dmav_seconds,
            gate_count=gate_count,
            costs_by_t=costs_by_t,
            reference_threads=t_ref,
            kappa=kappa,
            tau=tau,
        )

    def cost(self, threads: int) -> float:
        """Total modeled DMAV cost (Eq. 5/6 units) at ``threads``."""
        return self.costs_by_t[threads]

    def runtime(self, threads: int) -> float:
        """Modeled end-to-end seconds at ``threads``."""
        return (
            self.dd_seconds
            + self.conv_seconds / threads
            + self.tau * self.costs_by_t[threads]
            + self.kappa * self.gate_count
        )
