"""Benchmark-trajectory registry: machine-readable records + regression gate.

Every benchmark table so far has been a human artifact (``emit`` writes
``benchmarks/results/*.txt``).  This module adds the machine half: a
:class:`BenchRecord` is one run's flat metric dict plus enough context
to compare it honestly -- a machine fingerprint, the git revision, and a
config digest -- serialized as ``BENCH_<name>.json``.  Two records of
the same benchmark can then go through :func:`compare_records`, which
applies a per-metric tolerance and a direction convention, producing the
regression verdict behind ``python -m repro bench-compare``.

Direction convention (which way is worse) is inferred from the metric
name unless overridden:

* ``*_seconds`` / ``*_s`` / ``*_ms`` / ``*_bytes`` / ``*_allocs`` /
  ``*_misses`` -- lower is better (a rise is a regression).
* ``*_per_second`` / ``*_rate`` / ``*_speedup`` / ``*_hits`` -- higher
  is better (a drop is a regression).
* anything else -- treated as lower-is-better, the conservative default
  for cost-like metrics.

Comparisons are ratio-based: metric ``m`` regresses when it is worse
than baseline by more than ``threshold`` (relative).  Zero/near-zero
baselines fall back to absolute comparison against ``threshold`` itself
so a 0 -> 0.0001 jitter never fires the gate.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field

__all__ = [
    "BenchRecord",
    "MetricComparison",
    "ComparisonReport",
    "bench_record_path",
    "compare_records",
    "load_bench_record",
    "machine_fingerprint",
    "metric_direction",
    "write_bench_record",
]

#: Record format version, bumped on breaking schema changes.
SCHEMA_VERSION = 1

_LOWER_SUFFIXES = (
    "_seconds", "_s", "_ms", "_bytes", "_allocs", "_misses", "_errors",
    "_retries", "_evictions",
)
_HIGHER_SUFFIXES = ("_per_second", "_rate", "_speedup", "_hits", "_fidelity")


def metric_direction(name: str) -> str:
    """``"lower"`` or ``"higher"``: which way is *better* for ``name``."""
    if name.endswith(_HIGHER_SUFFIXES):
        return "higher"
    if name.endswith(_LOWER_SUFFIXES):
        return "lower"
    return "lower"


def machine_fingerprint() -> dict:
    """Hardware/software context a measurement is only comparable within."""
    import numpy

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "cpus": os.cpu_count() or 0,
    }


def git_rev(cwd: str | None = None) -> str:
    """Current git revision (short), or "unknown" outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5, cwd=cwd,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


@dataclass
class BenchRecord:
    """One benchmark run: flat metrics plus provenance."""

    name: str
    #: Flat metric name -> numeric value.  Nested dicts are flattened at
    #: write time (``{"a": {"b": 1}}`` -> ``{"a.b": 1}``).
    metrics: dict[str, float]
    machine: dict = field(default_factory=machine_fingerprint)
    git_rev: str = field(default_factory=git_rev)
    #: Digest of whatever configuration shaped the run (free-form; the
    #: compare tool warns when baseline/current digests differ).
    config_digest: str = ""
    created: float = field(default_factory=time.time)
    schema: int = SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "name": self.name,
            "metrics": self.metrics,
            "machine": self.machine,
            "git_rev": self.git_rev,
            "config_digest": self.config_digest,
            "created": self.created,
        }


def _flatten(metrics: dict, prefix: str = "") -> dict[str, float]:
    out: dict[str, float] = {}
    for key, value in metrics.items():
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            out.update(_flatten(value, name))
        elif isinstance(value, bool) or value is None:
            continue
        elif isinstance(value, (int, float)):
            out[name] = float(value)
    return out


def bench_record_path(name: str, directory: str | None = None) -> str:
    """``<dir>/BENCH_<name>.json``; dir defaults to ``$REPRO_BENCH_DIR``
    then ``benchmarks/results/`` next to the repo root."""
    if directory is None:
        directory = os.environ.get("REPRO_BENCH_DIR")
    if directory is None:
        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))))
        directory = os.path.join(root, "benchmarks", "results")
    return os.path.join(directory, f"BENCH_{name}.json")


def write_bench_record(
    name: str,
    metrics: dict,
    directory: str | None = None,
    config_digest: str = "",
) -> str:
    """Flatten ``metrics`` and write ``BENCH_<name>.json``; returns path."""
    record = BenchRecord(
        name=name,
        metrics=_flatten(metrics),
        config_digest=config_digest,
    )
    path = bench_record_path(name, directory)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_bench_record(path: str) -> BenchRecord:
    """Parse a ``BENCH_*.json`` file back into a :class:`BenchRecord`."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "metrics" not in data:
        raise ValueError(f"{path}: not a benchmark record")
    return BenchRecord(
        name=data.get("name", os.path.basename(path)),
        metrics={k: float(v) for k, v in data["metrics"].items()},
        machine=data.get("machine", {}),
        git_rev=data.get("git_rev", "unknown"),
        config_digest=data.get("config_digest", ""),
        created=data.get("created", 0.0),
        schema=data.get("schema", SCHEMA_VERSION),
    )


@dataclass(frozen=True)
class MetricComparison:
    """One metric's baseline-vs-current verdict."""

    name: str
    baseline: float
    current: float
    direction: str
    #: Relative change in the *worse* direction (positive = worse).
    worsening: float
    regressed: bool
    improved: bool

    def format_row(self) -> str:
        arrow = "REGRESSED" if self.regressed else (
            "improved" if self.improved else "ok"
        )
        return (
            f"{self.name:<40s} {self.baseline:>12.6g} {self.current:>12.6g} "
            f"{100.0 * self.worsening:>+8.1f}% {arrow}"
        )


@dataclass
class ComparisonReport:
    """Full bench-compare outcome over the shared metric set."""

    baseline_name: str
    current_name: str
    threshold: float
    rows: list[MetricComparison] = field(default_factory=list)
    #: Metrics present in only one record (never a failure by itself).
    missing_in_current: list[str] = field(default_factory=list)
    missing_in_baseline: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricComparison]:
        return [r for r in self.rows if r.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format_text(self) -> str:
        head = (
            f"bench-compare: {self.current_name} vs baseline "
            f"{self.baseline_name} (threshold {100.0 * self.threshold:.0f}%)"
        )
        header = (
            f"{'metric':<40s} {'baseline':>12s} {'current':>12s} "
            f"{'worse by':>9s} verdict"
        )
        lines = [head, header, "-" * len(header)]
        lines += [row.format_row() for row in self.rows]
        for warning in self.warnings:
            lines.append(f"warning: {warning}")
        if self.missing_in_current:
            lines.append(
                "missing in current: " + ", ".join(self.missing_in_current)
            )
        if self.missing_in_baseline:
            lines.append(
                "new in current: " + ", ".join(self.missing_in_baseline)
            )
        verdict = (
            "OK: no regressions"
            if self.ok
            else f"FAIL: {len(self.regressions)} metric(s) regressed"
        )
        lines.append(verdict)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "baseline": self.baseline_name,
            "current": self.current_name,
            "threshold": self.threshold,
            "ok": self.ok,
            "regressions": [r.name for r in self.regressions],
            "rows": [
                {
                    "metric": r.name,
                    "baseline": r.baseline,
                    "current": r.current,
                    "direction": r.direction,
                    "worsening": r.worsening,
                    "regressed": r.regressed,
                }
                for r in self.rows
            ],
            "missing_in_current": self.missing_in_current,
            "missing_in_baseline": self.missing_in_baseline,
            "warnings": self.warnings,
        }


def compare_records(
    baseline: BenchRecord,
    current: BenchRecord,
    threshold: float = 0.10,
    per_metric_threshold: dict[str, float] | None = None,
    directions: dict[str, str] | None = None,
) -> ComparisonReport:
    """Compare two records metric by metric with relative tolerance.

    ``threshold`` is the default allowed relative worsening (0.10 =
    10%); ``per_metric_threshold`` overrides it by exact metric name.
    ``directions`` overrides the name-based better-direction inference.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    report = ComparisonReport(
        baseline_name=baseline.name,
        current_name=current.name,
        threshold=threshold,
    )
    if baseline.machine and current.machine and baseline.machine != current.machine:
        report.warnings.append(
            "machine fingerprints differ; timing ratios may be noise"
        )
    if (
        baseline.config_digest
        and current.config_digest
        and baseline.config_digest != current.config_digest
    ):
        report.warnings.append("config digests differ")
    shared = sorted(set(baseline.metrics) & set(current.metrics))
    report.missing_in_current = sorted(
        set(baseline.metrics) - set(current.metrics)
    )
    report.missing_in_baseline = sorted(
        set(current.metrics) - set(baseline.metrics)
    )
    for name in shared:
        base, cur = baseline.metrics[name], current.metrics[name]
        direction = (directions or {}).get(name, metric_direction(name))
        limit = (per_metric_threshold or {}).get(name, threshold)
        signed = cur - base if direction == "lower" else base - cur
        if abs(base) > 1e-12:
            worsening = signed / abs(base)
            regressed = worsening > limit
            improved = worsening < -limit
        else:
            # Zero baseline: relative change is undefined; gate on the
            # absolute move exceeding the tolerance itself.
            worsening = signed
            regressed = signed > limit
            improved = signed < -limit
        report.rows.append(
            MetricComparison(
                name=name,
                baseline=base,
                current=cur,
                direction=direction,
                worsening=worsening,
                regressed=regressed,
                improved=improved,
            )
        )
    return report
