"""Experiment runners: simulate workloads on each backend, with timeouts.

These produce the raw rows that the table/figure benches format.  All
comparisons verify cross-backend fidelity before reporting numbers, so a
bench can never silently publish timings of a wrong result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backends import DDSimulator, SimulationResult, StatevectorSimulator
from repro.bench.workloads import Workload
from repro.common.config import FlatDDConfig
from repro.core import FlatDDSimulator

__all__ = ["BackendRow", "ComparisonRow", "run_backend", "compare_backends"]


@dataclass
class BackendRow:
    """One (workload, backend) measurement."""

    backend: str
    runtime_seconds: float
    memory_mb: float
    timed_out: bool
    result: SimulationResult
    #: Observability payload of the run (``metadata["obs"]``): counters,
    #: gauges, and -- when the run was traced -- the per-phase summary.
    obs: dict = field(default_factory=dict)

    def runtime_str(self, timeout: float) -> str:
        if self.timed_out:
            return f"> {timeout:g}"
        return f"{self.runtime_seconds:.3f}"


@dataclass
class ComparisonRow:
    """One Table 1 row: FlatDD vs DDSIM vs Quantum++ on one workload."""

    workload: Workload
    gates: int
    flatdd: BackendRow
    ddsim: BackendRow
    quantumpp: BackendRow

    @property
    def ddsim_speedup(self) -> float:
        """DDSIM runtime / FlatDD runtime (> 1 means FlatDD faster)."""
        return self.ddsim.runtime_seconds / self.flatdd.runtime_seconds

    @property
    def qpp_speedup(self) -> float:
        return self.quantumpp.runtime_seconds / self.flatdd.runtime_seconds


def run_backend(
    kind: str,
    workload: Workload,
    threads: int = 4,
    config: FlatDDConfig | None = None,
    tracer=None,
) -> BackendRow:
    """Run one workload on one backend ('flatdd' | 'ddsim' | 'quantumpp').

    Pass a :class:`repro.obs.Tracer` as ``tracer`` to capture the run's
    span timeline in addition to the always-collected counters.
    """
    circuit = workload.build()
    if kind == "flatdd":
        sim = FlatDDSimulator(config) if config else FlatDDSimulator(threads=threads)
        result = sim.run(
            circuit, max_seconds=workload.timeout_seconds, tracer=tracer
        )
    elif kind == "ddsim":
        # The paper runs DDSIM single-threaded ("DDSIM does not support
        # multithreading").
        result = DDSimulator().run(
            circuit, max_seconds=workload.timeout_seconds, tracer=tracer
        )
    elif kind == "quantumpp":
        result = StatevectorSimulator(threads=threads).run(
            circuit, tracer=tracer
        )
    else:
        raise ValueError(f"unknown backend kind {kind!r}")
    timed_out = bool(result.metadata.get("timed_out", False))
    return BackendRow(
        backend=result.backend,
        runtime_seconds=result.runtime_seconds,
        memory_mb=result.peak_memory_mb,
        timed_out=timed_out,
        result=result,
        obs=result.metadata.get("obs", {}),
    )


def compare_backends(
    workload: Workload, threads: int = 4
) -> ComparisonRow:
    """Run all three simulators on a workload and verify they agree."""
    circuit = workload.build()
    flatdd = run_backend("flatdd", workload, threads)
    ddsim = run_backend("ddsim", workload, threads)
    qpp = run_backend("quantumpp", workload, threads)
    # Fidelity check (skipped against a timed-out partial DDSIM state).
    fid = abs(np.vdot(flatdd.result.state, qpp.result.state)) ** 2
    if abs(fid - 1.0) > 1e-6:
        raise AssertionError(
            f"{workload.name}: FlatDD/Quantum++ disagree (fidelity {fid})"
        )
    if not ddsim.timed_out:
        fid = abs(np.vdot(flatdd.result.state, ddsim.result.state)) ** 2
        if abs(fid - 1.0) > 1e-6:
            raise AssertionError(
                f"{workload.name}: FlatDD/DDSIM disagree (fidelity {fid})"
            )
    return ComparisonRow(
        workload=workload,
        gates=len(circuit.gates),
        flatdd=flatdd,
        ddsim=ddsim,
        quantumpp=qpp,
    )
