"""Plain-text table/series rendering for the benchmark harness.

The benches print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent and write each
experiment's output under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from typing import Sequence

__all__ = ["render_table", "render_series", "write_result"]


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: str = "",
) -> str:
    """Fixed-width text table with a title rule, like the paper's tables."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    rule = "-" * len(line)
    body = [
        "  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells
    ]
    parts = [title, "=" * len(title), line, rule, *body]
    if note:
        parts += [rule, note]
    return "\n".join(parts) + "\n"


def render_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
    fmt: str = "{:.4g}",
) -> str:
    """A figure rendered as labelled numeric series (one row per x)."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x, *(fmt.format(v[i]) for v in series.values())])
    return render_table(title, headers, rows)


def write_result(name: str, text: str) -> str:
    """Write an experiment's rendered output under benchmarks/results/."""
    base = os.environ.get(
        "REPRO_RESULTS_DIR",
        os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), "benchmarks",
            "results"),
    )
    os.makedirs(base, exist_ok=True)
    path = os.path.join(base, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return path
