"""The evaluation workloads, scaled from the paper's Table 1.

The paper evaluates 12 circuits at 16-31 qubits on a 64-core Xeon; this
reproduction scales qubit counts to what pure Python simulates in seconds
(DESIGN.md substitution 4).  Each entry records the paper circuit it stands
in for, so EXPERIMENTS.md can put them side by side.

``timeout_seconds`` mirrors the paper's 24-hour cap: DDSIM runs that exceed
it are reported as ``> timeout`` exactly like Table 1's "> 24 h" rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits import Circuit, get_circuit

__all__ = ["Workload", "TABLE1_WORKLOADS", "DEEP_WORKLOADS", "load"]


@dataclass(frozen=True)
class Workload:
    """One benchmark circuit, tied to its Table 1 ancestor."""

    name: str
    family: str
    n: int
    kwargs: dict = field(default_factory=dict)
    #: The paper's circuit this is scaled from, e.g. "DNN n=16".
    paper_circuit: str = ""
    #: Regular circuits stay in FlatDD's DD phase end to end.
    regular: bool = False
    #: Per-backend timeout standing in for the paper's 24 h cap.
    timeout_seconds: float = 20.0

    def build(self) -> Circuit:
        c = get_circuit(self.family, self.n, **self.kwargs)
        c.name = self.name
        return c


#: Scaled version of Table 1's 12 circuits (same families, same ordering).
#: Sizes sit where 2**n dominates interpreter constants -- the regime the
#: paper's 16-31 qubit range occupies on its C++ substrate.
TABLE1_WORKLOADS: list[Workload] = [
    Workload("dnn_s", "dnn", 12, {"layers": 8}, "DNN n=16 (2032 gates)"),
    Workload("dnn_m", "dnn", 14, {"layers": 10}, "DNN n=20 (6214 gates)"),
    Workload("dnn_l", "dnn", 16, {"layers": 12}, "DNN n=25 (9644 gates)"),
    Workload("adder", "adder", 20, {}, "Adder n=28 (117 gates)", regular=True),
    Workload("ghz", "ghz", 20, {}, "GHZ state n=23 (46 gates)", regular=True),
    Workload("vqe", "vqe", 12, {"layers": 2}, "VQE n=16 (95 gates)"),
    Workload("knn_s", "knn", 15, {}, "KNN n=25 (39 gates)"),
    Workload("knn_l", "knn", 17, {}, "KNN n=31 (48 gates)"),
    Workload("swaptest", "swaptest", 15, {}, "Swap test n=25 (39 gates)"),
    Workload(
        "supremacy_s", "supremacy", 12, {"cycles": 14},
        "Quantum supremacy n=20 (4500 gates)",
    ),
    Workload(
        "supremacy_m", "supremacy", 14, {"cycles": 16},
        "Quantum supremacy n=24 (5560 gates)",
    ),
    Workload(
        "supremacy_l", "supremacy", 16, {"cycles": 16},
        "Quantum supremacy n=26 (5990 gates)",
    ),
]

#: Table 2's six deep circuits (> 1000 gates in the paper): the DNN and
#: supremacy triples, deepened so fusion has thousands of gates to chew on.
DEEP_WORKLOADS: list[Workload] = [
    Workload("dnn_s", "dnn", 10, {"layers": 26}, "DNN n=16 (2032 gates)"),
    Workload("dnn_m", "dnn", 12, {"layers": 32}, "DNN n=20 (6214 gates)"),
    Workload("dnn_l", "dnn", 14, {"layers": 36}, "DNN n=25 (9644 gates)"),
    Workload(
        "supremacy_s", "supremacy", 10, {"cycles": 60},
        "Quantum supremacy n=20 (4500 gates)",
    ),
    Workload(
        "supremacy_m", "supremacy", 12, {"cycles": 70},
        "Quantum supremacy n=24 (5560 gates)",
    ),
    Workload(
        "supremacy_l", "supremacy", 14, {"cycles": 80},
        "Quantum supremacy n=26 (5990 gates)",
    ),
]


def load(name: str, table: list[Workload] | None = None) -> Workload:
    """Look up a workload by name (Table 1 set by default)."""
    for w in table or TABLE1_WORKLOADS:
        if w.name == name:
            return w
    raise KeyError(f"unknown workload {name!r}")
