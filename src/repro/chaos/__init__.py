"""Deterministic chaos-injection harness for the serving fleet.

``repro.chaos`` drives the serve/cluster stack through seeded fault
schedules -- transport corruption, worker kills and stalls, disk
failures -- and asserts the self-healing invariants after every run.
See :mod:`repro.chaos.runner` for the campaign loop,
:mod:`repro.chaos.schedule` for the fault vocabulary and JSON replay
format, :mod:`repro.chaos.injectors` for the hook-point controller,
:mod:`repro.chaos.invariants` for what must hold, and
:mod:`repro.chaos.faults` for plantable recovery bugs.

CLI: ``repro chaos --seed 0 --iterations 25`` (see ``repro chaos -h``).
"""

from repro.chaos.schedule import (
    ChaosFault,
    ChaosSchedule,
    FAULT_KINDS,
    REGIMES,
    load_schedule,
    schedule_for_iteration,
    schedule_to_json,
    shrink_schedule,
)
from repro.chaos.injectors import ChaosController
from repro.chaos.runner import (
    ChaosCampaignResult,
    ChaosFailure,
    ChaosRunOutcome,
    run_chaos_campaign,
    run_chaos_iteration,
)
from repro.chaos.faults import FAULTS, plant_fault

__all__ = [
    "ChaosCampaignResult",
    "ChaosController",
    "ChaosFailure",
    "ChaosFault",
    "ChaosRunOutcome",
    "ChaosSchedule",
    "FAULTS",
    "FAULT_KINDS",
    "REGIMES",
    "load_schedule",
    "plant_fault",
    "run_chaos_campaign",
    "run_chaos_iteration",
    "schedule_for_iteration",
    "schedule_to_json",
    "shrink_schedule",
]
