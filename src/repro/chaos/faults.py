"""Planted recovery bugs: prove the chaos harness catches regressions.

Mirrors :mod:`repro.verify.fuzz.faults` for the serving stack's fault
*handling* instead of simulator numerics: each entry is a context
manager that breaks one self-healing mechanism for the duration of a
campaign, so ``repro chaos --plant-bug NAME`` demonstrates end to end
that the invariant checker fails, and the shrinker reduces the failing
schedule to the minimal fault sequence that exposes it.

Every planted bug must be caught by at least one invariant:

* ``respawn-accounting`` -- the breaker stops counting failures: no
  sliding window, no quarantine, zero backoff.  A ``crashloop`` fault
  then respawns the slot in a hot loop until the supervisor's last-ditch
  budget runs out, tripping the bounded-respawn invariant.
* ``resume-reexecute`` -- resume stops seeding the cache from journaled
  DONE records (the journal silently drops the state payload), so every
  journaled job re-executes on ``--resume``, tripping the
  zero-re-execution invariant.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext

__all__ = ["FAULTS", "plant_fault"]


@contextmanager
def _respawn_accounting():
    """Breaker amnesia: deaths are logged but never windowed."""
    from repro.cluster.breaker import SlotBreaker

    original = SlotBreaker.record_failure

    def broken(self, slot, now):
        self.death_counts[slot] += 1
        return 0.0  # no window, no quarantine, no backoff

    SlotBreaker.record_failure = broken
    try:
        yield
    finally:
        SlotBreaker.record_failure = original


@contextmanager
def _resume_reexecute():
    """Journal replay drops DONE state payloads: nothing seeds the cache.

    Patched at the replay layer (not the writers: worker processes are
    spawned fresh and never see an in-process monkey-patch), in both the
    journal module and the service module that imported the name.
    """
    from repro.serve import journal as journal_mod
    from repro.serve import service as service_mod

    original = journal_mod.replay_journal

    def broken(path):
        recovery = original(path)
        for record in recovery.done_payloads.values():
            record.pop("state_b64", None)
        return recovery

    journal_mod.replay_journal = broken
    service_mod.replay_journal = broken
    try:
        yield
    finally:
        journal_mod.replay_journal = original
        service_mod.replay_journal = original


FAULTS = {
    "respawn-accounting": _respawn_accounting,
    "resume-reexecute": _resume_reexecute,
}


def plant_fault(name: str | None):
    """Context manager installing planted bug ``name`` (None = healthy)."""
    if name is None:
        return nullcontext()
    try:
        factory = FAULTS[name]
    except KeyError:
        raise ValueError(
            f"unknown planted chaos bug {name!r} (have {sorted(FAULTS)})"
        ) from None
    return factory()
