"""Chaos injectors: the controller behind the broker's hook points.

:class:`ChaosController` is the single object wired into a run.  It
implements every hook the serving stack exposes for fault injection --
all broker-side, because spawned worker processes inherit nothing and
cannot be monkey-patched from the harness:

* ``ClusterDispatcher.chaos`` -- the broker calls ``worker_up`` /
  ``dispatch`` / ``result`` from inside its dispatch loop.  ``dispatch``
  advances the global event counter and fires the schedule's faults for
  that point; ``worker_up`` installs the transport filter on each new
  connection (and re-kills crash-looping slots); ``result`` applies
  armed result-frame corruption.
* ``Connection.send_filter`` -- outbound frame rewriting (corrupt /
  truncate / duplicate / delay / drop), installed per connection.
* ``JobJournal.fault_hook`` -- injected ``OSError`` on broker-journal
  appends (the runner installs :meth:`ChaosController.journal_hook`).

Process faults act on real pids via ``os.kill`` (SIGKILL / SIGSTOP), so
the broker sees exactly what a production crash looks like: socket EOF,
a stale heartbeat, a silent pre-connect death.

Every injection is recorded in :attr:`ChaosController.fired` and counted
under ``cluster.chaos.*`` in the run's metrics registry, so a chaos
report can show which faults actually landed (a scheduled point past the
last dispatch never fires -- and shrinks away).
"""

from __future__ import annotations

import errno
import logging
import os
import signal
import threading

from repro.chaos.schedule import ChaosFault, ChaosSchedule

__all__ = ["ChaosController"]

_log = logging.getLogger("repro.chaos.injectors")


class ChaosController:
    """Fires one schedule's faults against a live cluster dispatcher."""

    def __init__(self, schedule: ChaosSchedule, registry=None) -> None:
        self.schedule = schedule
        self.registry = registry
        #: event point -> faults still waiting to fire there.
        self._pending: dict[int, list[ChaosFault]] = {}
        for fault in schedule.faults:
            self._pending.setdefault(fault.at, []).append(fault)
        self.dispatch_index = 0
        #: Injection log: ``{"at": point, "kind": ..., "slot": ...}``.
        self.fired: list[dict] = []
        #: Slots being crash-looped (killed again on every respawn until
        #: the breaker quarantines them).
        self.crashloop_slots: set[int] = set()
        #: SIGSTOPped pids, resumed in :meth:`cleanup` if the broker's
        #: stale-heartbeat kill never reached them.
        self.stopped_pids: set[int] = set()
        #: Per-connection queues of armed frame operations.
        self._frame_ops: dict[object, list[ChaosFault]] = {}
        #: Armed ``corrupt_result`` count (consumed by the next DONE).
        self._corrupt_results = 0
        self._journal_errors = 0
        #: True when the schedule asks for a torn WAL tail; the runner
        #: applies it after the run, before the resume pass.
        self.torn_wal = False
        self._timers: list[threading.Timer] = []
        self._lock = threading.Lock()

    # -- broker hooks (called from the dispatch loop) -------------------

    def worker_up(self, dispatcher, slot: int, conn) -> None:
        """New connect-back: install the frame filter, honor crashloops."""
        conn.send_filter = self._send_filter
        if slot in self.crashloop_slots:
            if dispatcher.breaker.is_quarantined(slot):
                self.crashloop_slots.discard(slot)
            else:
                self._kill(dispatcher, slot, "crashloop")

    def dispatch(self, dispatcher, slot: int, job) -> None:
        """One MSG_JOB is about to be sent: fire this point's faults."""
        point = self.dispatch_index
        self.dispatch_index += 1
        if slot in self.crashloop_slots:
            # A crash-looping slot dies on every dispatch *and* every
            # respawn until the breaker quarantines it.
            if dispatcher.breaker.is_quarantined(slot):
                self.crashloop_slots.discard(slot)
            else:
                self._kill(dispatcher, slot, "crashloop")
        for fault in self._pending.pop(point, ()):
            self._apply(fault, dispatcher, slot)

    def result(self, dispatcher, slot: int, msg: dict, payload: bytes):
        """Inbound result frame: apply armed result corruption."""
        if self._corrupt_results > 0 and msg.get("state") == "DONE":
            self._corrupt_results -= 1
            msg = dict(msg)
            msg["array"] = dict(msg.get("array") or {})
            msg["array"]["dtype"] = "chaos-corrupt"
            self._note("corrupt_result", slot)
        return msg, payload

    def journal_hook(self, journal, record: dict) -> None:
        """``JobJournal.fault_hook``: fail broker-journal appends."""
        if self._journal_errors > 0 and journal.writer_id == "main":
            self._journal_errors -= 1
            self._note("journal_error", -1)
            raise OSError(errno.ENOSPC, "chaos: injected disk-full")

    # -- fault application ---------------------------------------------

    def _apply(self, fault: ChaosFault, dispatcher, slot: int) -> None:
        kind = fault.kind
        if kind in (
            "corrupt_frame",
            "truncate_frame",
            "duplicate_frame",
            "delay_frame",
        ):
            # Arm the op on the dispatched-to connection: the MSG_JOB
            # send follows this hook immediately, on the same thread.
            conn = dispatcher._conns.get(slot)
            if conn is None:
                return
            with self._lock:
                self._frame_ops.setdefault(conn, []).append(fault)
        elif kind == "drop_conn":
            conn = dispatcher._conns.get(slot)
            if conn is not None:
                self._note(kind, slot)
                conn.close()
        elif kind == "corrupt_result":
            self._corrupt_results += 1
        elif kind == "kill_worker":
            self._kill(dispatcher, slot, kind)
        elif kind == "stop_worker":
            pid = dispatcher.supervisor.pid(slot)
            if pid is not None:
                self._note(kind, slot)
                try:
                    os.kill(pid, signal.SIGSTOP)
                    self.stopped_pids.add(pid)
                except OSError:  # pragma: no cover - raced an exit
                    pass
        elif kind == "crashloop":
            self.crashloop_slots.add(slot)
            self._kill(dispatcher, slot, kind)
        elif kind == "journal_error":
            self._journal_errors += 1
        elif kind == "torn_wal":
            self.torn_wal = True
            self._note(kind, -1)
        else:  # pragma: no cover - schedule validation rejects these
            _log.warning("unknown chaos fault kind %r", kind)

    def _kill(self, dispatcher, slot: int, kind: str) -> None:
        pid = dispatcher.supervisor.pid(slot)
        if pid is None:
            return
        self._note(kind, slot, pid=pid)
        try:
            os.kill(pid, signal.SIGKILL)
        except OSError:  # pragma: no cover - already gone
            pass

    # -- transport filter (runs on whichever thread sends) --------------

    def _send_filter(self, conn, header, payload, frame):
        with self._lock:
            ops = self._frame_ops.get(conn)
            fault = ops.pop(0) if ops else None
        if fault is None:
            return frame
        kind = fault.kind
        self._note(kind, int(header.get("slot", -1)))
        if kind == "corrupt_frame":
            # Flip the magic: the worker sees deterministic, immediate
            # framing corruption (not a stalled half-frame).
            mangled = bytearray(frame)
            mangled[0] ^= 0xFF
            return bytes(mangled)
        if kind == "truncate_frame":
            # "Drop a connection mid-frame": half the bytes go out, then
            # the link dies under the reader.
            self._later(0.05, conn.close)
            return frame[: max(1, len(frame) // 2)]
        if kind == "duplicate_frame":
            return [frame, frame]
        if kind == "delay_frame":
            self._later(fault.arg or 0.1, self._send_raw, conn, frame)
            return None
        return frame  # pragma: no cover - only frame ops are armed

    @staticmethod
    def _send_raw(conn, frame: bytes) -> None:
        """Late delivery for ``delay_frame`` (bypasses the filter)."""
        try:
            with conn._send_lock:
                conn._sock.sendall(frame)
        except OSError:  # pragma: no cover - peer died while delayed
            pass

    def _later(self, delay: float, fn, *args) -> None:
        timer = threading.Timer(delay, fn, args)
        timer.daemon = True
        timer.start()
        self._timers.append(timer)

    # -- bookkeeping ----------------------------------------------------

    def _note(self, kind: str, slot: int, pid: int | None = None) -> None:
        entry = {"at": self.dispatch_index, "kind": kind, "slot": slot}
        if pid is not None:
            entry["pid"] = pid
        self.fired.append(entry)
        if self.registry is not None:
            self.registry.counter("cluster.chaos.injected").inc()
            self.registry.counter(f"cluster.chaos.{kind}").inc()

    def fired_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for entry in self.fired:
            out[entry["kind"]] = out.get(entry["kind"], 0) + 1
        return out

    def cleanup(self) -> None:
        """Cancel delayed sends; resume any still-SIGSTOPped worker."""
        for timer in self._timers:
            timer.cancel()
        for pid in self.stopped_pids:
            try:
                os.kill(pid, signal.SIGCONT)
            except OSError:
                pass
