"""The chaos harness's invariant checker.

After every chaos run (and again after its resume pass) the harness
asserts the properties the serving stack promises to keep *under any
scheduled fault*:

1. **Exactly-once terminal**: every submitted job reaches a terminal
   state exactly once (the transition state machine admits no second
   terminal edge; an observer counts them anyway -- belt and braces).
2. **Completion**: every job ends DONE.  Schedules are capped (at most
   one crashloop, bounded process faults, jobs carry a deep retry
   budget) so the fleet always stays viable; anything short of DONE
   means recovery lost or gave up on work it should have finished.
3. **Bit-identity**: each DONE state vector (and sampled counts) equals
   the in-process :class:`~repro.serve.service.SimulationService`
   reference exactly -- the fleet under chaos must stay bit-identical
   to a single quiet process.
4. **Bounded respawns**: per-slot respawn counts never exceed the
   breaker's trip point plus the schedule's own process-fault count.
   Disabling the breaker's accounting (the planted
   ``respawn-accounting`` bug) makes a crashloop blow through this.
5. **Fleet recovery**: a started fleet ends with every non-quarantined
   slot accounted for -- fully dead only if fully quarantined.  The
   runner's wall-clock watchdog bounds the "within bounded time" half.
6. **No orphans**: after teardown every pid the supervisor ever
   launched is gone (zombies included, via ``/proc`` state).
7. **Resume zero re-execution**: a resume over the surviving journal
   segments completes every journaled-DONE job as a cache hit.
"""

from __future__ import annotations

import os
import time

import numpy as np

__all__ = [
    "check_no_orphans",
    "check_resume",
    "check_run",
    "terminal_observer",
]


def terminal_observer(counts: dict[str, int]):
    """A job observer that counts terminal transitions per job id."""

    def observe(job, old_state, new_state) -> None:
        if new_state.terminal:
            counts[job.job_id] = counts.get(job.job_id, 0) + 1

    return observe


def check_run(
    jobs,
    terminal_counts: dict[str, int],
    reference: dict,
    stats: dict,
    schedule,
    timed_out: bool,
    time_budget: float,
    fired: list[dict] | None = None,
) -> list[str]:
    """Invariants 1-5 over one finished chaos run.

    ``stats`` is the dispatcher's ``cluster_stats()`` plus ``alive`` and
    ``started`` (captured before teardown); ``reference`` maps job_id ->
    ``(state, counts)`` from the in-process reference run; ``fired`` is
    the controller's injection log (used for the breaker-accounting
    check: crashloop deaths are consecutive by construction, so enough
    of them *must* trip quarantine).
    """
    violations: list[str] = []
    if timed_out:
        violations.append(
            f"campaign run exceeded its {time_budget:.0f}s time budget "
            "(fleet did not recover in bounded time)"
        )
    for job in jobs:
        seen = terminal_counts.get(job.job_id, 0)
        if seen != 1:
            violations.append(
                f"job {job.job_id}: {seen} terminal transition(s), "
                "expected exactly 1"
            )
        if job.state.value != "DONE":
            violations.append(
                f"job {job.job_id}: ended {job.state.value}"
                + (f" ({job.error})" if job.error else "")
            )
            continue
        ref_state, ref_counts = reference[job.job_id]
        if job.result is None or not np.array_equal(
            job.result.state, ref_state
        ):
            violations.append(
                f"job {job.job_id}: state vector differs from the "
                "in-process reference"
            )
        elif (job.result.counts or None) != (ref_counts or None):
            violations.append(
                f"job {job.job_id}: sampled counts differ from the "
                "in-process reference"
            )
    bound = stats["breaker_failures"] + schedule.process_fault_count()
    for slot, count in stats.get("respawn_counts", {}).items():
        if count > bound:
            violations.append(
                f"slot {slot}: {count} respawns exceeds the bound of "
                f"{bound} (breaker_failures + scheduled process faults) "
                "-- respawn backoff/quarantine accounting is broken"
            )
    if (
        stats.get("started")
        and stats.get("alive", 0) == 0
        and len(stats.get("quarantined", ())) < stats.get("processes", 0)
    ):
        violations.append(
            "fleet ended with zero live workers but is not fully "
            "quarantined -- it should have recovered"
        )
    # Breaker accounting: crashloop kills are consecutive deaths with no
    # intervening success (the worker dies before it can complete
    # anything), so K of them inside one run *must* quarantine the slot.
    crashloop_pids: dict[int, set] = {}
    for entry in fired or ():
        if entry.get("kind") == "crashloop":
            # Unique pids, not kill attempts: the controller may fire at
            # both dispatch and connect-back against one doomed pid, but
            # the breaker (correctly) counts that death once.
            crashloop_pids.setdefault(entry.get("slot", -1), set()).add(
                entry.get("pid")
            )
    quarantined = set(stats.get("quarantined", ()))
    for slot, pids in crashloop_pids.items():
        kills = len(pids)
        if kills >= stats["breaker_failures"] and slot not in quarantined:
            violations.append(
                f"slot {slot}: {kills} crashloop deaths reached the "
                f"breaker threshold ({stats['breaker_failures']}) but the "
                "slot was never quarantined -- breaker accounting is "
                "broken"
            )
    return violations


def check_resume(resume_jobs, journaled_done: set[str]) -> list[str]:
    """Invariant 7: journaled-DONE jobs resume as cache hits, the rest
    simply re-run -- and everything still completes."""
    violations: list[str] = []
    for job in resume_jobs:
        if job.state.value != "DONE":
            violations.append(
                f"resume: job {job.job_id} ended {job.state.value}"
            )
            continue
        if job.job_id in journaled_done and not (
            job.result is not None and job.result.cache_hit
        ):
            violations.append(
                f"resume: job {job.job_id} was journaled DONE but was "
                "re-executed instead of served from the seeded cache"
            )
    return violations


def _pid_running(pid: int) -> bool:
    """Is ``pid`` still a live (non-zombie) process?"""
    try:
        with open(f"/proc/{pid}/stat", "r") as fh:
            # Field 3 follows the parenthesized comm, which may itself
            # contain spaces/parens -- split on the *last* ") ".
            state = fh.read().rsplit(") ", 1)[1].split(" ", 1)[0]
        return state not in ("Z", "X")
    except (OSError, IndexError):
        pass
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True  # pragma: no cover - non-/proc fallback


def check_no_orphans(pids, timeout: float = 10.0) -> list[str]:
    """Invariant 6: after teardown no launched pid survives.

    Teardown is asynchronous (terminate -> join -> kill escalation), so
    poll up to ``timeout`` before declaring an orphan.
    """
    deadline = time.monotonic() + timeout
    remaining = [pid for pid in pids if _pid_running(pid)]
    while remaining and time.monotonic() < deadline:
        time.sleep(0.05)
        remaining = [pid for pid in remaining if _pid_running(pid)]
    return [
        f"orphan worker process survived teardown (pid {pid})"
        for pid in remaining
    ]
