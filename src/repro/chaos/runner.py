"""Seeded chaos campaigns over the serving fleet.

:func:`run_chaos_campaign` mirrors the fuzz harness's
:func:`repro.verify.fuzz.runner.run_campaign` shape for fault-tolerance
instead of numerics.  Each iteration:

1. draws a :class:`~repro.chaos.schedule.ChaosSchedule` from
   ``(seed, iteration)`` (or replays one loaded from JSON),
2. runs the fixed campaign workload on a fresh 2-process
   :class:`~repro.cluster.broker.ClusterService` (journaled, tight
   heartbeat/backoff intervals so recovery happens in test time) with a
   :class:`~repro.chaos.injectors.ChaosController` firing the
   schedule's faults,
3. applies any scheduled torn-WAL tail, then runs a **resume pass**
   over the surviving journal segments on an in-process service,
4. asserts the full invariant set (:mod:`repro.chaos.invariants`):
   exactly-once terminal states, completion, bit-identity against an
   in-process reference, bounded respawns, fleet recovery, no orphan
   processes, and zero re-execution of journaled work on resume.

A failing schedule is shrunk to a minimal fault list with the fuzz
harness's delta-debugging reducer (each shrink check is a full fleet
run, so the check budget is small) and written out as a replayable JSON
artifact -- the chaos analogue of a fuzz regression file.

``plant_bug`` installs a known recovery bug (:mod:`repro.chaos.faults`)
for the whole campaign to prove the harness catches it.
"""

from __future__ import annotations

import logging
import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field

from repro.chaos.injectors import ChaosController
from repro.chaos.invariants import (
    check_no_orphans,
    check_resume,
    check_run,
    terminal_observer,
)
from repro.chaos.schedule import (
    ChaosSchedule,
    schedule_for_iteration,
    schedule_to_json,
    shrink_schedule,
)
from repro.chaos.faults import plant_fault
from repro.circuits import get_circuit
from repro.common.config import ServeConfig
from repro.serve.jobs import Job
from repro.serve.journal import JobJournal, journal_segments, replay_journal
from repro.serve.service import SimulationService, run_jobs

__all__ = [
    "ChaosCampaignResult",
    "ChaosFailure",
    "ChaosRunOutcome",
    "campaign_jobs",
    "harness_config",
    "run_chaos_campaign",
    "run_chaos_iteration",
]

_log = logging.getLogger("repro.chaos.runner")

#: Fleet timing for chaos runs: fast heartbeats and short backoffs so a
#: worker death -> detection -> respawn cycle fits in test time, and an
#: I/O deadline short enough that a wedged link fails the run, not CI.
HEARTBEAT_INTERVAL = 0.1
HEARTBEAT_TIMEOUT = 3.0

#: The campaign workload: small circuits (spawned single-core workers
#: must finish in milliseconds), one dedup pair (exercises cache
#: fan-out under chaos), and sampled jobs (counts must stay
#: bit-identical too).  ``(family, qubits, shots, sample_seed)``.
_WORKLOAD = (
    ("ghz", 4, 0, 0),
    ("ghz", 4, 0, 0),  # dedup pair with the line above
    ("qft", 4, 0, 0),
    ("wstate", 4, 24, 7),
    ("ghz", 5, 16, 3),
    ("qft", 3, 0, 0),
)

#: Deep per-job retry budget: scheduled faults burn requeues, and the
#: invariant is that jobs *complete* -- the budget must never be the
#: reason a chaos run fails.
_JOB_RETRIES = 10


def harness_config(**overrides) -> ServeConfig:
    """The chaos fleet's ServeConfig: tight recovery knobs."""
    defaults = dict(
        threads=1,
        max_retries=_JOB_RETRIES,
        io_deadline_seconds=10.0,
        respawn_backoff_base=0.05,
        respawn_backoff_max=0.4,
        breaker_failures=3,
        breaker_window_seconds=60.0,
        brownout_min_alive_fraction=0.5,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def campaign_jobs(config: ServeConfig) -> list[Job]:
    """A fresh copy of the campaign workload (jobs are stateful)."""
    jobs = []
    for index, (family, qubits, shots, sample_seed) in enumerate(_WORKLOAD):
        jobs.append(
            Job(
                circuit=get_circuit(family, qubits),
                backend=config.backend,
                shots=shots,
                sample_seed=sample_seed,
                max_retries=_JOB_RETRIES,
                job_id=f"c{index:04d}",
            )
        )
    return jobs


def reference_results(config: ServeConfig) -> dict:
    """In-process golden results: job_id -> (state, counts)."""
    jobs = campaign_jobs(config)
    with SimulationService(config) as svc:
        svc.submit_many(jobs)
        svc.drain()
    out = {}
    for job in jobs:
        if job.state.value != "DONE" or job.result is None:
            raise RuntimeError(
                f"reference run failed for job {job.job_id}: "
                f"{job.state.value} {job.error}"
            )
        out[job.job_id] = (
            job.result.state.copy(),
            dict(job.result.counts) if job.result.counts else None,
        )
    return out


@dataclass
class ChaosRunOutcome:
    """One chaos iteration's verdict."""

    schedule: ChaosSchedule
    violations: list[str] = field(default_factory=list)
    fired: dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations


def run_chaos_iteration(
    schedule: ChaosSchedule,
    reference: dict,
    config: ServeConfig | None = None,
    processes: int = 2,
    time_budget: float = 60.0,
) -> ChaosRunOutcome:
    """Run the campaign workload once under ``schedule``'s faults."""
    from repro.cluster.broker import ClusterService

    cfg = config or harness_config()
    started_at = time.perf_counter()
    tmpdir = tempfile.mkdtemp(prefix="repro-chaos-")
    journal_path = os.path.join(tmpdir, "chaos.journal.jsonl")
    jobs = campaign_jobs(cfg)
    terminal_counts: dict[str, int] = {}
    observer = terminal_observer(terminal_counts)
    for job in jobs:
        job.observers.append(observer)
    controller = ChaosController(schedule)
    timed_out = threading.Event()
    violations: list[str] = []
    old_hook = JobJournal.fault_hook
    svc = ClusterService(
        cfg,
        processes=processes,
        journal_path=journal_path,
        heartbeat_interval=HEARTBEAT_INTERVAL,
        heartbeat_timeout=HEARTBEAT_TIMEOUT,
    )
    controller.registry = svc.registry
    svc.pool.chaos = controller

    def unwedge() -> None:
        # The watchdog: recovery must happen in bounded time.  Force
        # the drain loop to conclude (drain + dead workers -> every
        # in-flight entry resolves) so the harness can report instead
        # of hanging with the fleet.
        timed_out.set()
        svc.request_drain()
        svc.pool.supervisor.terminate_all()

    watchdog = threading.Timer(time_budget, unwedge)
    watchdog.daemon = True
    try:
        JobJournal.fault_hook = controller.journal_hook
        watchdog.start()
        try:
            run_jobs(jobs, config=cfg, service=svc, journal_path=journal_path)
        except Exception as exc:  # the harness must report, not die
            violations.append(f"chaos run raised {type(exc).__name__}: {exc}")
        stats = svc.pool.cluster_stats()
        stats["alive"] = svc.pool.supervisor.alive
        stats["started"] = svc.pool._started
        stats["breaker_failures"] = cfg.breaker_failures
        pids = svc.pool.supervisor.all_pids()
    finally:
        watchdog.cancel()
        JobJournal.fault_hook = old_hook
        controller.cleanup()
        svc.close()
    violations += check_run(
        jobs,
        terminal_counts,
        reference,
        stats,
        schedule,
        timed_out.is_set(),
        time_budget,
        fired=controller.fired,
    )
    violations += check_no_orphans(pids)
    try:
        if controller.torn_wal and os.path.exists(journal_path):
            with open(journal_path, "a", encoding="utf-8") as fh:
                fh.write('{"type":"transition","job_id":"c00')  # torn tail
        segments = journal_segments(journal_path)
        if segments:
            recovery = replay_journal(
                segments if len(segments) > 1 else journal_path
            )
            journaled_done = set(recovery.done_payloads)
            resume_jobs = campaign_jobs(cfg)
            try:
                run_jobs(
                    resume_jobs,
                    config=cfg,
                    journal_path=journal_path,
                    resume=True,
                )
            except Exception as exc:
                violations.append(
                    f"resume pass raised {type(exc).__name__}: {exc}"
                )
            else:
                violations += check_resume(resume_jobs, journaled_done)
        else:
            violations.append("no journal segment survived the run")
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    return ChaosRunOutcome(
        schedule=schedule,
        violations=violations,
        fired=controller.fired_counts(),
        elapsed_seconds=time.perf_counter() - started_at,
    )


@dataclass
class ChaosFailure:
    """A failing iteration with its (shrunk) replayable schedule."""

    iteration: int
    violations: list[str]
    schedule: dict
    shrunk: dict
    schedule_path: str | None = None
    shrunk_path: str | None = None

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "violations": self.violations,
            "schedule": self.schedule,
            "shrunk": self.shrunk,
            "schedule_path": self.schedule_path,
            "shrunk_path": self.shrunk_path,
        }


@dataclass
class ChaosCampaignResult:
    """Everything one chaos campaign learned."""

    seed: int
    iterations: int
    processes: int
    regimes: list[str] | None
    plant_bug: str | None
    elapsed_seconds: float = 0.0
    runs: int = 0
    fault_counts: dict[str, int] = field(default_factory=dict)
    failures: list[ChaosFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary_dict(self) -> dict:
        return {
            "seed": self.seed,
            "iterations": self.iterations,
            "runs": self.runs,
            "processes": self.processes,
            "regimes": self.regimes,
            "plant_bug": self.plant_bug,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "fault_counts": dict(sorted(self.fault_counts.items())),
            "failures": [f.to_dict() for f in self.failures],
            "ok": self.ok,
        }

    def format_text(self) -> str:
        lines = [
            f"chaos: {self.runs} run(s) in {self.elapsed_seconds:.1f}s "
            f"(seed={self.seed}, processes={self.processes}"
            + (f", plant_bug={self.plant_bug}" if self.plant_bug else "")
            + ")",
            "  faults injected: "
            + (
                " ".join(
                    f"{k}={v}" for k, v in sorted(self.fault_counts.items())
                )
                or "(none fired)"
            ),
        ]
        if self.ok:
            lines.append("  all invariants held")
        for failure in self.failures:
            lines.append(
                f"  FAILURE iteration {failure.iteration}: "
                f"{failure.violations[0]}"
                + (
                    f" (+{len(failure.violations) - 1} more)"
                    if len(failure.violations) > 1
                    else ""
                )
            )
            shrunk = failure.shrunk.get("faults", [])
            lines.append(
                "    shrunk schedule: "
                + (
                    " ".join(f"{f['kind']}@{f['at']}" for f in shrunk)
                    or "(empty)"
                )
                + (
                    f" -> {failure.shrunk_path}"
                    if failure.shrunk_path
                    else ""
                )
            )
        return "\n".join(lines)


def run_chaos_campaign(
    seed: int = 0,
    iterations: int = 25,
    processes: int = 2,
    regimes: list[str] | None = None,
    schedule: ChaosSchedule | None = None,
    shrink: bool = True,
    shrink_max_checks: int = 6,
    out_dir: str | None = None,
    plant_bug: str | None = None,
    time_budget: float = 60.0,
    progress=None,
) -> ChaosCampaignResult:
    """Run a seeded chaos campaign; returns the campaign result.

    ``schedule`` replays one fixed schedule instead of drawing per
    iteration.  ``plant_bug`` installs a known recovery bug for the
    whole campaign (including shrink re-runs, so shrinking converges on
    the minimal schedule that exposes it).  Failing schedules (original
    and shrunk) are written to ``out_dir`` as replayable JSON when set.
    """
    cfg = harness_config()
    result = ChaosCampaignResult(
        seed=seed,
        iterations=iterations,
        processes=processes,
        regimes=list(regimes) if regimes else None,
        plant_bug=plant_bug,
    )
    started = time.perf_counter()
    with plant_fault(plant_bug):
        reference = reference_results(cfg)
        for iteration in range(iterations):
            sched = (
                schedule
                if schedule is not None
                else schedule_for_iteration(seed, iteration, regimes=regimes)
            )
            outcome = run_chaos_iteration(
                sched,
                reference,
                config=cfg,
                processes=processes,
                time_budget=time_budget,
            )
            result.runs += 1
            for kind, count in outcome.fired.items():
                result.fault_counts[kind] = (
                    result.fault_counts.get(kind, 0) + count
                )
            status = (
                f"iteration {iteration}: {sched.describe()} -> "
                + ("ok" if outcome.ok else "FAIL")
                + f" ({outcome.elapsed_seconds:.1f}s)"
            )
            _log.info("%s", status)
            if progress is not None:
                progress(status)
            if outcome.ok:
                continue
            shrunk = sched
            if shrink and sched.faults:
                shrunk = shrink_schedule(
                    sched,
                    lambda s: bool(
                        run_chaos_iteration(
                            s,
                            reference,
                            config=cfg,
                            processes=processes,
                            time_budget=time_budget,
                        ).violations
                    ),
                    max_checks=shrink_max_checks,
                )
            failure = ChaosFailure(
                iteration=iteration,
                violations=outcome.violations,
                schedule=sched.to_dict(),
                shrunk=shrunk.to_dict(),
            )
            if out_dir:
                os.makedirs(out_dir, exist_ok=True)
                stem = os.path.join(
                    out_dir, f"chaos_seed{seed}_i{iteration}"
                )
                failure.schedule_path = schedule_to_json(
                    sched, f"{stem}.json"
                )
                failure.shrunk_path = schedule_to_json(
                    shrunk, f"{stem}_shrunk.json"
                )
            result.failures.append(failure)
    result.elapsed_seconds = time.perf_counter() - started
    return result
