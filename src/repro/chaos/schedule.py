"""Seeded chaos schedules: which fault fires at which dispatch event.

A :class:`ChaosSchedule` is an ordered list of ``(event_point, fault)``
pairs.  The *event point* is the broker's global dispatch counter: the
n-th ``MSG_JOB`` handed to a worker is event ``n`` (requeues count, so a
schedule can target a job's retry as well as its first dispatch).  The
:class:`~repro.chaos.injectors.ChaosController` fires every fault whose
point matches the current dispatch, against the slot being dispatched
to -- deterministic given the schedule and the broker's deterministic
lowest-slot-first placement.

Schedules are drawn from a seeded ``numpy`` generator per
``(seed, iteration)`` (:func:`schedule_for_iteration`), round-trip
through JSON (:func:`schedule_to_json` / :func:`load_schedule`,
format ``repro-chaos-schedule-v1``) for replay and CI artifacts, and
shrink to a minimal failing fault list with the same delta-debugging
reducer the fuzz harness uses (:func:`shrink_schedule`, built on
:func:`repro.verify.fuzz.shrink.shrink_sequence`).

Fault kinds by regime:

========== =================================================================
transport  ``corrupt_frame``   flip the magic of the next frame to the slot
           ``truncate_frame``  send half the frame, then drop the connection
           ``duplicate_frame`` send the job frame twice
           ``delay_frame``     hold the frame back for ``arg`` seconds
           ``drop_conn``       close the worker's connection mid-dispatch
           ``corrupt_result``  mangle the next DONE result's array descriptor
process    ``kill_worker``     SIGKILL the dispatched-to worker
           ``stop_worker``     SIGSTOP it (stale-heartbeat path must kill it)
           ``crashloop``       SIGKILL the slot on every respawn until the
                               breaker quarantines it
disk       ``journal_error``   next broker-journal append raises ENOSPC
           ``torn_wal``        append a half-written record before resume
========== =================================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ChaosFault",
    "ChaosSchedule",
    "FAULT_KINDS",
    "REGIMES",
    "load_schedule",
    "schedule_for_iteration",
    "schedule_from_dict",
    "schedule_to_json",
    "shrink_schedule",
]

SCHEDULE_FORMAT = "repro-chaos-schedule-v1"

TRANSPORT_FAULTS = (
    "corrupt_frame",
    "truncate_frame",
    "duplicate_frame",
    "delay_frame",
    "drop_conn",
    "corrupt_result",
)
PROCESS_FAULTS = ("kill_worker", "stop_worker", "crashloop")
DISK_FAULTS = ("journal_error", "torn_wal")

FAULT_KINDS = TRANSPORT_FAULTS + PROCESS_FAULTS + DISK_FAULTS

REGIMES: dict[str, tuple[str, ...]] = {
    "transport": TRANSPORT_FAULTS,
    "process": PROCESS_FAULTS,
    "disk": DISK_FAULTS,
    "mixed": FAULT_KINDS,
}

#: Event points are drawn from ``[0, MAX_EVENT_POINT)``.  The harness
#: workload dispatches ~5 groups plus requeues; points past the last
#: dispatch simply never fire (and shrink away).
MAX_EVENT_POINT = 8

#: At most this many process faults per schedule, and at most one
#: ``crashloop``: the invariant "every job still completes" needs the
#: fleet to stay viable, and a schedule that quarantines every slot
#: would fail for a reason the harness *intends* (see
#: ``docs/RESILIENCE.md``), not because recovery is broken.
MAX_PROCESS_FAULTS = 3


@dataclass(frozen=True)
class ChaosFault:
    """One scheduled fault: fire ``kind`` at dispatch event ``at``."""

    at: int
    kind: str
    #: Kind-specific knob (currently only ``delay_frame``'s hold time).
    arg: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown chaos fault kind {self.kind!r}")

    def to_dict(self) -> dict:
        return {"at": self.at, "kind": self.kind, "arg": self.arg}

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosFault":
        arg = data.get("arg")
        return cls(
            at=int(data["at"]),
            kind=data["kind"],
            arg=float(arg) if arg is not None else None,
        )


@dataclass(frozen=True)
class ChaosSchedule:
    """A replayable fault plan for one chaos run."""

    seed: int
    iteration: int
    regime: str
    faults: tuple[ChaosFault, ...]

    def process_fault_count(self) -> int:
        return sum(1 for f in self.faults if f.kind in PROCESS_FAULTS)

    def has(self, kind: str) -> bool:
        return any(f.kind == kind for f in self.faults)

    def with_faults(self, faults) -> "ChaosSchedule":
        """The same schedule metadata over a different fault list."""
        return ChaosSchedule(
            seed=self.seed,
            iteration=self.iteration,
            regime=self.regime,
            faults=tuple(faults),
        )

    def to_dict(self) -> dict:
        return {
            "format": SCHEDULE_FORMAT,
            "seed": self.seed,
            "iteration": self.iteration,
            "regime": self.regime,
            "faults": [f.to_dict() for f in self.faults],
        }

    def describe(self) -> str:
        """One-line human form: ``kill_worker@2 corrupt_frame@4``."""
        if not self.faults:
            return "(no faults)"
        return " ".join(f"{f.kind}@{f.at}" for f in self.faults)


def schedule_from_dict(data: dict) -> ChaosSchedule:
    """Rebuild a schedule from its JSON document (validates format)."""
    if data.get("format") != SCHEDULE_FORMAT:
        raise ValueError(
            f"not a chaos schedule (format={data.get('format')!r})"
        )
    return ChaosSchedule(
        seed=int(data.get("seed", 0)),
        iteration=int(data.get("iteration", 0)),
        regime=str(data.get("regime", "mixed")),
        faults=tuple(ChaosFault.from_dict(f) for f in data["faults"]),
    )


def schedule_to_json(schedule: ChaosSchedule, path: str) -> str:
    """Write the schedule as a replayable JSON file; returns ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(schedule.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_schedule(path: str) -> ChaosSchedule:
    """Read a replayable schedule back from its JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return schedule_from_dict(json.load(fh))


def schedule_for_iteration(
    seed: int,
    iteration: int,
    regimes: list[str] | None = None,
    max_faults: int = 4,
) -> ChaosSchedule:
    """Draw iteration ``i``'s schedule deterministically from the seed.

    Same ``(seed, iteration, regimes)`` -> same schedule, on any machine
    (``numpy`` Generator streams are versioned and reproducible), so a
    failure seen in CI replays locally from just the seed.
    """
    names = list(regimes) if regimes else list(REGIMES)
    for name in names:
        if name not in REGIMES:
            raise ValueError(
                f"unknown chaos regime {name!r} (have {sorted(REGIMES)})"
            )
    rng = np.random.default_rng(np.random.SeedSequence([seed, iteration]))
    regime = names[int(rng.integers(0, len(names)))]
    kinds = REGIMES[regime]
    count = int(rng.integers(1, max_faults + 1))
    faults: list[ChaosFault] = []
    process_used = 0
    crashloop_used = False
    for _ in range(count):
        kind = kinds[int(rng.integers(0, len(kinds)))]
        if kind in PROCESS_FAULTS and process_used >= MAX_PROCESS_FAULTS:
            continue
        if kind == "crashloop" and crashloop_used:
            kind = "kill_worker"
        at = int(rng.integers(0, MAX_EVENT_POINT))
        arg = None
        if kind == "delay_frame":
            arg = round(float(rng.uniform(0.02, 0.12)), 4)
        if kind in PROCESS_FAULTS:
            process_used += 1
        if kind == "crashloop":
            crashloop_used = True
        faults.append(ChaosFault(at=at, kind=kind, arg=arg))
    faults.sort(key=lambda f: (f.at, f.kind))
    return ChaosSchedule(
        seed=seed, iteration=iteration, regime=regime, faults=tuple(faults)
    )


def shrink_schedule(
    schedule: ChaosSchedule,
    still_fails,
    max_checks: int = 8,
) -> ChaosSchedule:
    """Minimize a failing schedule's fault list.

    ``still_fails(candidate_schedule) -> bool`` re-runs the chaos
    iteration; every check is a full fleet run, so ``max_checks``
    defaults far lower than circuit shrinking's.  Delegates the chunked
    deletion to :func:`repro.verify.fuzz.shrink.shrink_sequence`.
    """
    from repro.verify.fuzz.shrink import shrink_sequence

    if not schedule.faults:
        return schedule
    best = shrink_sequence(
        list(schedule.faults),
        lambda faults: still_fails(schedule.with_faults(faults)),
        max_checks=max_checks,
    )
    return schedule.with_faults(best)
