"""Quantum circuit IR: gates, circuits, OpenQASM 2.0 I/O, generators,
analysis and transpilation."""

from repro.circuits.analysis import CircuitSummary, layerize, summarize
from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate, gate_matrix, known_gates
from repro.circuits.generators import CIRCUIT_FAMILIES, get_circuit
from repro.circuits.optimize import cancel_inverse_pairs, merge_rotations, optimize
from repro.circuits.qasm import parse_qasm, to_qasm
from repro.circuits.transpile import BASIS_GATES, decompose, zyz_angles

__all__ = [
    "BASIS_GATES",
    "CIRCUIT_FAMILIES",
    "Circuit",
    "CircuitSummary",
    "Gate",
    "cancel_inverse_pairs",
    "decompose",
    "gate_matrix",
    "get_circuit",
    "known_gates",
    "layerize",
    "merge_rotations",
    "optimize",
    "parse_qasm",
    "summarize",
    "to_qasm",
    "zyz_angles",
]
