"""Circuit structure analysis: layering, parallelism, and summaries.

These utilities answer the questions the paper's workload discussion asks
of a circuit -- how deep is it, how entangling, how parallel -- and
provide the ASAP layering used to reason about schedule-level parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate

__all__ = ["layerize", "CircuitSummary", "summarize"]


def layerize(circuit: Circuit) -> list[list[Gate]]:
    """ASAP layering: gates grouped into maximal parallel layers.

    A gate joins the earliest layer after every earlier gate that shares a
    qubit with it.
    """
    frontier = [0] * circuit.num_qubits
    layers: list[list[Gate]] = []
    for gate in circuit.gates:
        layer = max((frontier[q] for q in gate.qubits), default=0)
        while len(layers) <= layer:
            layers.append([])
        layers[layer].append(gate)
        for q in gate.qubits:
            frontier[q] = layer + 1
    return layers


@dataclass(frozen=True)
class CircuitSummary:
    """Aggregate structural metrics of a circuit."""

    num_qubits: int
    num_gates: int
    depth: int
    two_qubit_gates: int
    entangling_depth: int
    #: Mean gates per layer: the schedule-level parallelism available.
    parallelism: float
    #: Histogram of gate names.
    gate_counts: dict

    @property
    def two_qubit_fraction(self) -> float:
        return self.two_qubit_gates / max(self.num_gates, 1)


def summarize(circuit: Circuit) -> CircuitSummary:
    """Compute a :class:`CircuitSummary` for one circuit."""
    layers = layerize(circuit)
    # Entangling depth: layers that contain at least one multi-qubit gate.
    entangling_depth = sum(
        1 for layer in layers if any(len(g.qubits) >= 2 for g in layer)
    )
    num_gates = len(circuit.gates)
    return CircuitSummary(
        num_qubits=circuit.num_qubits,
        num_gates=num_gates,
        depth=len(layers),
        two_qubit_gates=circuit.two_qubit_gate_count,
        entangling_depth=entangling_depth,
        parallelism=num_gates / max(len(layers), 1),
        gate_counts=dict(circuit.gate_counts),
    )
