"""Quantum circuit container with a fluent gate-append API.

A :class:`Circuit` is an ordered list of :class:`~repro.circuits.gates.Gate`
objects over ``num_qubits`` qubits.  The simulators consume circuits by
iterating over ``circuit.gates``; everything else here (builders, stats,
slicing) is convenience for the generators, examples, and benches.
"""

from __future__ import annotations

import hashlib
import math
from collections import Counter
from typing import Iterable, Iterator

from repro.common.errors import CircuitError
from repro.circuits.gates import Gate

__all__ = ["Circuit"]

#: Decimal places gate parameters are rounded to before hashing.  Two
#: parameters that agree to 12 decimals build gate matrices identical far
#: below the complex-table tolerance (1e-10), so they are the same gate
#: for every consumer of the fingerprint.
FINGERPRINT_DECIMALS = 12


def _canonical_param(value: float) -> str:
    """Stable text form of one gate parameter.

    Rounds to :data:`FINGERPRINT_DECIMALS` so float-formatting noise
    (``0.1 + 0.2`` vs ``0.3``) collapses, and normalizes ``-0.0`` to
    ``0.0`` so sign-of-zero never splits a cache key.
    """
    v = round(float(value), FINGERPRINT_DECIMALS)
    if v == 0.0:  # collapses -0.0 too
        v = 0.0
    return repr(v)


class Circuit:
    """An ordered sequence of gates on ``num_qubits`` qubits."""

    def __init__(
        self,
        num_qubits: int,
        gates: Iterable[Gate] = (),
        name: str = "circuit",
    ) -> None:
        if num_qubits < 1:
            raise CircuitError(f"need at least 1 qubit, got {num_qubits}")
        self.num_qubits = num_qubits
        self.name = name
        self.gates: list[Gate] = []
        for g in gates:
            self.append(g)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def append(self, gate: Gate) -> "Circuit":
        """Append a gate after validating its qubits fit this circuit."""
        for q in gate.qubits:
            if q >= self.num_qubits:
                raise CircuitError(
                    f"gate {gate} uses qubit {q} but circuit has "
                    f"{self.num_qubits} qubits"
                )
        self.gates.append(gate)
        return self

    def add(
        self,
        name: str,
        *qubits: int,
        params: tuple[float, ...] = (),
        controls: tuple[int, ...] = (),
    ) -> "Circuit":
        """Append gate ``name``; alias controls are split off automatically.

        ``add("cx", 0, 1)`` means control 0, target 1 (OpenQASM order).
        """
        from repro.circuits.gates import CONTROLLED_ALIASES

        extra = CONTROLLED_ALIASES.get(name, (None, 0))[1]
        ctrl = tuple(qubits[:extra]) + tuple(controls)
        targets = tuple(qubits[extra:])
        return self.append(
            Gate(name=name, targets=targets, controls=ctrl, params=params)
        )

    # Fluent single-gate helpers used pervasively by generators/examples.
    def h(self, q: int) -> "Circuit":
        return self.add("h", q)

    def x(self, q: int) -> "Circuit":
        return self.add("x", q)

    def y(self, q: int) -> "Circuit":
        return self.add("y", q)

    def z(self, q: int) -> "Circuit":
        return self.add("z", q)

    def s(self, q: int) -> "Circuit":
        return self.add("s", q)

    def t(self, q: int) -> "Circuit":
        return self.add("t", q)

    def rx(self, theta: float, q: int) -> "Circuit":
        return self.add("rx", q, params=(theta,))

    def ry(self, theta: float, q: int) -> "Circuit":
        return self.add("ry", q, params=(theta,))

    def rz(self, theta: float, q: int) -> "Circuit":
        return self.add("rz", q, params=(theta,))

    def p(self, lam: float, q: int) -> "Circuit":
        return self.add("p", q, params=(lam,))

    def cx(self, control: int, target: int) -> "Circuit":
        return self.add("cx", control, target)

    def cz(self, control: int, target: int) -> "Circuit":
        return self.add("cz", control, target)

    def cp(self, lam: float, control: int, target: int) -> "Circuit":
        return self.add("cp", control, target, params=(lam,))

    def swap(self, a: int, b: int) -> "Circuit":
        return self.add("swap", a, b)

    def ccx(self, c1: int, c2: int, target: int) -> "Circuit":
        return self.add("ccx", c1, c2, target)

    def cswap(self, control: int, a: int, b: int) -> "Circuit":
        return self.add("cswap", control, a, b)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return Circuit(self.num_qubits, self.gates[idx], name=self.name)
        return self.gates[idx]

    @property
    def gate_counts(self) -> Counter:
        """Histogram of gate names."""
        return Counter(g.name for g in self.gates)

    @property
    def two_qubit_gate_count(self) -> int:
        return sum(1 for g in self.gates if len(g.qubits) >= 2)

    def depth(self) -> int:
        """Circuit depth: longest chain of gates sharing qubits."""
        frontier = [0] * self.num_qubits
        for g in self.gates:
            layer = 1 + max(frontier[q] for q in g.qubits)
            for q in g.qubits:
                frontier[q] = layer
        return max(frontier, default=0)

    def used_qubits(self) -> set[int]:
        return {q for g in self.gates for q in g.qubits}

    # ------------------------------------------------------------------
    # Parameter binding (sweep support)
    # ------------------------------------------------------------------

    @property
    def num_param_slots(self) -> int:
        """Total gate-parameter slots, in gate order.

        This is the row width :meth:`bind` expects -- *not* necessarily an
        ansatz's logical parameter count (one logical parameter may feed
        several gate slots; see ``repro.algorithms.ansatz``).
        """
        return sum(len(g.params) for g in self.gates)

    def extract_params(self) -> tuple[float, ...]:
        """All gate parameters flattened in gate order (``bind``'s inverse)."""
        return tuple(p for g in self.gates for p in g.params)

    def bind(self, values) -> "Circuit":
        """A new circuit with every gate-parameter slot replaced in order.

        ``values`` supplies one float per slot, consumed sequentially in
        gate order (``len(values)`` must equal :attr:`num_param_slots`;
        :class:`~repro.common.errors.CircuitError` otherwise).
        Parameterless gates are reused as-is.  ``circuit.bind(
        circuit.extract_params())`` reproduces the circuit exactly.
        """
        import dataclasses

        values = tuple(float(v) for v in values)
        if len(values) != self.num_param_slots:
            raise CircuitError(
                f"bind() got {len(values)} values for "
                f"{self.num_param_slots} parameter slots"
            )
        bound = Circuit(self.num_qubits, name=self.name)
        pos = 0
        for g in self.gates:
            k = len(g.params)
            if k:
                bound.append(
                    dataclasses.replace(g, params=values[pos:pos + k])
                )
                pos += k
            else:
                bound.gates.append(g)
        return bound

    def to_wire(self) -> dict:
        """JSON-serializable form of the circuit (see :meth:`from_wire`).

        Gates are ``[name, targets, controls, params]`` rows; parameters
        survive exactly (JSON doubles round-trip bit-for-bit), so the
        rebuilt circuit has an identical :meth:`fingerprint`.  This is
        the job payload the cluster wire protocol ships to worker
        processes.
        """
        return {
            "num_qubits": self.num_qubits,
            "name": self.name,
            "gates": [
                [
                    g.name,
                    list(g.targets),
                    list(g.controls),
                    [float(p) for p in g.params],
                ]
                for g in self.gates
            ],
        }

    @classmethod
    def from_wire(cls, data: dict) -> "Circuit":
        """Rebuild a circuit from :meth:`to_wire` output.

        Gate validation reruns on every row, so a malformed payload
        raises :class:`~repro.common.errors.CircuitError` instead of
        constructing an unrunnable circuit.
        """
        try:
            circuit = cls(
                int(data["num_qubits"]), name=str(data.get("name", "circuit"))
            )
            rows = data["gates"]
        except (KeyError, TypeError, ValueError) as exc:
            raise CircuitError(f"bad wire circuit {data!r}: {exc}") from exc
        for row in rows:
            try:
                name, targets, controls, params = row
            except (TypeError, ValueError) as exc:
                raise CircuitError(f"bad wire gate row {row!r}") from exc
            circuit.append(
                Gate(
                    name=str(name),
                    targets=tuple(int(q) for q in targets),
                    controls=tuple(int(q) for q in controls),
                    params=tuple(float(p) for p in params),
                )
            )
        return circuit

    def fingerprint(self, params=None) -> str:
        """Stable SHA-256 content hash of the circuit's semantics.

        The digest covers the qubit count and, per gate in sequence, the
        *base* gate name (so aliases like ``cx``/``cnot`` hash alike),
        target and control qubit tuples, and parameters rounded to
        :data:`FINGERPRINT_DECIMALS` decimals via :func:`_canonical_param`.
        The circuit ``name`` is deliberately excluded: two circuits with
        the same gates are the same workload.

        ``params``, when given, is a parameter row for :meth:`bind`: the
        digest is that of the *bound* circuit, so a sweep row keys caches
        exactly like the equivalent single-shot circuit
        (``c.fingerprint(params=row) == c.bind(row).fingerprint()``).

        This is the content-address used by the serving layer's result
        cache (:mod:`repro.serve.cache`) and handy standalone for
        deduplicating fuzz corpora.  The leading ``v1`` tag versions the
        encoding so a future change cannot silently alias old keys.
        """
        if params is not None:
            return self.bind(params).fingerprint()
        h = hashlib.sha256()
        h.update(f"v1;n={self.num_qubits}".encode("ascii"))
        for g in self.gates:
            h.update(
                ";{}|t{}|c{}|p{}".format(
                    g.base_name,
                    ",".join(map(str, g.targets)),
                    ",".join(map(str, g.controls)),
                    ",".join(_canonical_param(p) for p in g.params),
                ).encode("ascii")
            )
        return h.hexdigest()

    def inverse(self) -> "Circuit":
        """Adjoint circuit (gates reversed and individually inverted).

        Only gates with simple inverses in the library are supported; this
        covers the benchmark generators (used for echo-verification tests).
        """
        inv_name = {
            "s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t",
            "sx": "sxdg", "sxdg": "sx", "sy": "sydg", "sydg": "sy",
            "sw": "swdg", "swdg": "sw",
        }
        self_inverse = {"id", "x", "y", "z", "h", "swap", "cx", "cnot", "cy",
                        "cz", "ch", "ccx", "toffoli", "ccz", "cswap",
                        "fredkin"}
        out = Circuit(self.num_qubits, name=f"{self.name}_dg")
        for g in reversed(self.gates):
            if g.name in self_inverse:
                out.append(g)
            elif g.name in inv_name:
                out.append(Gate(inv_name[g.name], g.targets, g.controls))
            elif g.base_name in ("rx", "ry", "rz", "p", "u1", "rzz", "rxx",
                                 "fsim"):
                out.append(
                    Gate(g.name, g.targets, g.controls,
                         tuple(-p for p in g.params))
                )
            elif g.base_name in ("u3", "u"):
                theta, phi, lam = g.params
                out.append(
                    Gate("u3", g.targets, g.controls, (-theta, -lam, -phi))
                )
            elif g.base_name == "u2":
                phi, lam = g.params
                out.append(
                    Gate(
                        "u3", g.targets, g.controls,
                        (-math.pi / 2, -lam, -phi),
                    )
                )
            elif g.base_name == "iswap":
                # iswap^-1 = fsim(pi/2, 0) (fsim(-pi/2, 0) is iswap).
                out.append(
                    Gate("fsim", g.targets, g.controls, (math.pi / 2, 0.0))
                )
            else:
                raise CircuitError(f"no inverse rule for gate {g.name!r}")
        return out

    def __repr__(self) -> str:
        return (
            f"Circuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"gates={len(self.gates)}, depth={self.depth()})"
        )
