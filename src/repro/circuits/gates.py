"""Gate library: names, parameterized matrix builders, and the Gate record.

The library covers what the paper's benchmark circuits need (QASMBench /
MQT Bench / Google-supremacy gate sets): Pauli family, Hadamard, phase
family (s/t/p/rz), rotations, sqrt-gates used by supremacy circuits
(sx, sy, sw), u2/u3, and the controlled/two-qubit forms (cx, cz, cp, crx,
cry, crz, cu1, swap, iswap, fsim, ccx, ccz, cswap).

A :class:`Gate` is immutable and hashable; ``signature`` is the cache key
used by the simulators to reuse gate matrix DDs.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.common.errors import CircuitError

__all__ = ["Gate", "gate_matrix", "known_gates", "GATE_BUILDERS"]

_SQ2 = 1.0 / math.sqrt(2.0)


def _mat(rows) -> np.ndarray:
    return np.array(rows, dtype=np.complex128)


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _mat([[c, -1j * s], [-1j * s, c]])


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _mat([[c, -s], [s, c]])


def _rz(theta: float) -> np.ndarray:
    return _mat([[cmath.exp(-0.5j * theta), 0], [0, cmath.exp(0.5j * theta)]])


def _phase(lam: float) -> np.ndarray:
    return _mat([[1, 0], [0, cmath.exp(1j * lam)]])


def _u3(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _mat([
        [c, -cmath.exp(1j * lam) * s],
        [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
    ])


def _u2(phi: float, lam: float) -> np.ndarray:
    return _u3(math.pi / 2, phi, lam)


def _fsim(theta: float, phi: float) -> np.ndarray:
    c, s = math.cos(theta), math.sin(theta)
    return _mat([
        [1, 0, 0, 0],
        [0, c, -1j * s, 0],
        [0, -1j * s, c, 0],
        [0, 0, 0, cmath.exp(-1j * phi)],
    ])


def _rzz(theta: float) -> np.ndarray:
    p = cmath.exp(-0.5j * theta)
    m = cmath.exp(0.5j * theta)
    return np.diag([p, m, m, p]).astype(np.complex128)


def _rxx(theta: float) -> np.ndarray:
    # RXX(t) = cos(t/2) I - i sin(t/2) X(x)X.
    xx = np.zeros((4, 4), dtype=np.complex128)
    for i in range(4):
        xx[i, 3 - i] = 1
    return math.cos(theta / 2) * np.eye(4) - 1j * math.sin(theta / 2) * xx


# sqrt(X), sqrt(Y), sqrt(W) -- the one-qubit gates of Google's quantum
# supremacy experiment [7].  W = (X + Y) / sqrt(2).
_SX = 0.5 * _mat([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]])
_SY = 0.5 * _mat([[1 + 1j, -1 - 1j], [1 + 1j, 1 + 1j]])
_SW = _mat([
    [(1 + 1j) / 2, -1j * _SQ2],
    [_SQ2, (1 + 1j) / 2],
])

#: name -> (number of target qubits, number of parameters, builder).
GATE_BUILDERS: dict[str, tuple[int, int, Callable[..., np.ndarray]]] = {
    "id": (1, 0, lambda: np.eye(2, dtype=np.complex128)),
    "x": (1, 0, lambda: _mat([[0, 1], [1, 0]])),
    "y": (1, 0, lambda: _mat([[0, -1j], [1j, 0]])),
    "z": (1, 0, lambda: _mat([[1, 0], [0, -1]])),
    "h": (1, 0, lambda: _mat([[_SQ2, _SQ2], [_SQ2, -_SQ2]])),
    "s": (1, 0, lambda: _mat([[1, 0], [0, 1j]])),
    "sdg": (1, 0, lambda: _mat([[1, 0], [0, -1j]])),
    "t": (1, 0, lambda: _phase(math.pi / 4)),
    "tdg": (1, 0, lambda: _phase(-math.pi / 4)),
    "sx": (1, 0, lambda: _SX.copy()),
    "sy": (1, 0, lambda: _SY.copy()),
    "sw": (1, 0, lambda: _SW.copy()),
    "sxdg": (1, 0, lambda: _SX.conj().T.copy()),
    "sydg": (1, 0, lambda: _SY.conj().T.copy()),
    "swdg": (1, 0, lambda: _SW.conj().T.copy()),
    "rx": (1, 1, _rx),
    "ry": (1, 1, _ry),
    "rz": (1, 1, _rz),
    "p": (1, 1, _phase),
    "u1": (1, 1, _phase),
    "u2": (1, 2, _u2),
    "u3": (1, 3, _u3),
    "u": (1, 3, _u3),
    "swap": (2, 0, lambda: _mat([
        [1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]])),
    "iswap": (2, 0, lambda: _mat([
        [1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]])),
    "fsim": (2, 2, _fsim),
    "rzz": (2, 1, _rzz),
    "rxx": (2, 1, _rxx),
}

#: Aliases that are controlled versions of base gates: name -> (base, extra
#: implicit controls taken from the front of the qubit list).
CONTROLLED_ALIASES: dict[str, tuple[str, int]] = {
    "cx": ("x", 1),
    "cnot": ("x", 1),
    "cy": ("y", 1),
    "cz": ("z", 1),
    "ch": ("h", 1),
    "cp": ("p", 1),
    "cu1": ("p", 1),
    "crx": ("rx", 1),
    "cry": ("ry", 1),
    "crz": ("rz", 1),
    "ccx": ("x", 2),
    "toffoli": ("x", 2),
    "ccz": ("z", 2),
    "cswap": ("swap", 1),
    "fredkin": ("swap", 1),
}


def known_gates() -> list[str]:
    """All gate names accepted by :meth:`Gate` / the QASM parser."""
    return sorted(set(GATE_BUILDERS) | set(CONTROLLED_ALIASES))


def gate_matrix(name: str, params: tuple[float, ...] = ()) -> np.ndarray:
    """The unitary acting on the *target* qubits of gate ``name``.

    For controlled aliases this is the base matrix (controls are handled
    structurally by the simulators, not by expanding the matrix).
    """
    base = name
    if name in CONTROLLED_ALIASES:
        base = CONTROLLED_ALIASES[name][0]
    if base not in GATE_BUILDERS:
        raise CircuitError(f"unknown gate {name!r}")
    _, nparams, builder = GATE_BUILDERS[base]
    if len(params) != nparams:
        raise CircuitError(
            f"gate {name!r} takes {nparams} parameter(s), got {len(params)}"
        )
    return builder(*params)


@dataclass(frozen=True)
class Gate:
    """One circuit operation: a (possibly controlled) unitary on targets.

    ``targets`` order matters for multi-target gates: ``targets[0]`` is the
    most significant bit of the gate matrix index.  ``controls`` all trigger
    on |1>.
    """

    name: str
    targets: tuple[int, ...]
    controls: tuple[int, ...] = ()
    params: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        base = self.name
        extra = 0
        if base in CONTROLLED_ALIASES:
            base, extra = CONTROLLED_ALIASES[base]
        if base not in GATE_BUILDERS:
            raise CircuitError(f"unknown gate {self.name!r}")
        ntargets, nparams, _ = GATE_BUILDERS[base]
        if len(self.targets) != ntargets:
            raise CircuitError(
                f"gate {self.name!r} needs {ntargets} target(s), "
                f"got {self.targets}"
            )
        if len(self.params) != nparams:
            raise CircuitError(
                f"gate {self.name!r} takes {nparams} parameter(s), "
                f"got {self.params}"
            )
        touched = (*self.targets, *self.controls)
        if len(set(touched)) != len(touched):
            raise CircuitError(f"gate {self.name!r} repeats a qubit: {touched}")
        if any(q < 0 for q in touched):
            raise CircuitError(f"negative qubit index in {self.name!r}")

    @property
    def base_name(self) -> str:
        """Gate name with controlled aliases resolved (``cx`` -> ``x``)."""
        if self.name in CONTROLLED_ALIASES:
            return CONTROLLED_ALIASES[self.name][0]
        return self.name

    @property
    def all_controls(self) -> tuple[int, ...]:
        """Explicit controls (alias controls are already in ``controls``)."""
        return self.controls

    @property
    def qubits(self) -> tuple[int, ...]:
        return (*self.controls, *self.targets)

    def matrix(self) -> np.ndarray:
        """The unitary on the target qubits (2x2 or 4x4)."""
        return gate_matrix(self.base_name, self.params)

    @property
    def signature(self) -> tuple:
        """Hashable key identifying this gate's full-circuit unitary."""
        return (self.base_name, self.targets, self.controls, self.params)

    @property
    def is_diagonal(self) -> bool:
        """True when the gate matrix is diagonal (useful for fast paths)."""
        m = self.matrix()
        return bool(np.allclose(m, np.diag(np.diag(m))))

    def __str__(self) -> str:
        parts = [self.name]
        if self.params:
            parts.append("(" + ", ".join(f"{p:g}" for p in self.params) + ")")
        qubits = ", ".join(map(str, self.qubits))
        return f"{''.join(parts)} {qubits}"
