"""Benchmark circuit generators with a by-name registry.

``get_circuit("dnn", 10)`` builds the scaled equivalent of the paper's
benchmark of the same family; see DESIGN.md substitution 3 for why these
are generated rather than loaded from QASMBench / MQT Bench.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import CircuitError
from repro.circuits.circuit import Circuit
from repro.circuits.generators.algorithms import (
    bernstein_vazirani,
    deutsch_jozsa,
    grover,
    hidden_shift,
    qpe,
    quantum_volume,
)
from repro.circuits.generators.irregular import dnn, random_circuit, supremacy, vqe
from repro.circuits.generators.kernels import knn, swaptest
from repro.circuits.generators.regular import adder, ghz, qft, wstate

__all__ = [
    "adder",
    "bernstein_vazirani",
    "deutsch_jozsa",
    "dnn",
    "get_circuit",
    "ghz",
    "grover",
    "hidden_shift",
    "knn",
    "qft",
    "qpe",
    "quantum_volume",
    "random_circuit",
    "supremacy",
    "swaptest",
    "vqe",
    "wstate",
    "CIRCUIT_FAMILIES",
]

#: Family name -> generator. All generators take ``n`` first; extra keyword
#: arguments (layers, cycles, seed, ...) pass through ``get_circuit``.
CIRCUIT_FAMILIES: dict[str, Callable[..., Circuit]] = {
    "ghz": ghz,
    "adder": adder,
    "wstate": wstate,
    "qft": qft,
    "dnn": dnn,
    "vqe": vqe,
    "supremacy": supremacy,
    "swaptest": swaptest,
    "knn": knn,
    "random": random_circuit,
    "grover": grover,
    # Note: bv, dj and qpe interpret ``n`` as their data/counting register
    # size and add one extra qubit.
    "bv": bernstein_vazirani,
    "dj": deutsch_jozsa,
    "qpe": qpe,
    "qvolume": quantum_volume,
    "hiddenshift": hidden_shift,
}


def get_circuit(family: str, n: int, **kwargs) -> Circuit:
    """Build benchmark circuit ``family`` on ``n`` qubits."""
    try:
        gen = CIRCUIT_FAMILIES[family]
    except KeyError:
        raise CircuitError(
            f"unknown circuit family {family!r}; known: "
            f"{sorted(CIRCUIT_FAMILIES)}"
        ) from None
    return gen(n, **kwargs)
