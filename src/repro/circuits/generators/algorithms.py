"""Textbook algorithm circuits (QASMBench / MQT Bench families).

These extend the benchmark suite beyond the paper's twelve circuits with
families whose outputs are *checkable*: Grover search peaks on the marked
item, Bernstein-Vazirani reveals the hidden string deterministically,
Deutsch-Jozsa distinguishes constant from balanced oracles, quantum phase
estimation reads out a known eigenphase, and the hidden-shift circuit
returns its shift.  ``quantum_volume`` adds the square random-SU(4) model
circuit used for hardware benchmarking (irregular, like supremacy).
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import CircuitError
from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate

__all__ = [
    "grover",
    "bernstein_vazirani",
    "deutsch_jozsa",
    "qpe",
    "quantum_volume",
    "hidden_shift",
]


def _multi_controlled_z(c: Circuit, qubits: list[int]) -> None:
    """Z on qubits[-1] controlled on all others.

    The gate record supports any number of controls natively (both the DD
    construction and the array backend handle multi-controls), so no
    ancilla-based decomposition is needed.
    """
    *controls, target = qubits
    c.append(Gate("z", (target,), tuple(controls)))


def grover(n: int, marked: int | None = None, iterations: int | None = None) -> Circuit:
    """Grover search over n qubits for a single marked item.

    Uses phase oracles (marked-state Z and the |0..0> reflection) built
    from multi-controlled Z, so no ancilla is needed.  The default
    iteration count is the optimal floor(pi/4 * sqrt(2**n)).
    """
    if n < 2:
        raise CircuitError("grover needs at least 2 qubits")
    if marked is None:
        marked = (1 << n) - 2
    if not 0 <= marked < (1 << n):
        raise CircuitError(f"marked item {marked} out of range")
    if iterations is None:
        iterations = max(1, int(math.floor(math.pi / 4 * math.sqrt(2 ** n))))
    c = Circuit(n, name=f"grover_n{n}")
    for q in range(n):
        c.h(q)
    zeros = [q for q in range(n) if not (marked >> q) & 1]
    all_qubits = list(range(n))
    for _ in range(iterations):
        # Oracle: flip the phase of |marked>.
        for q in zeros:
            c.x(q)
        _multi_controlled_z(c, all_qubits)
        for q in zeros:
            c.x(q)
        # Diffusion: reflect about the uniform superposition.
        for q in range(n):
            c.h(q)
            c.x(q)
        _multi_controlled_z(c, all_qubits)
        for q in range(n):
            c.x(q)
            c.h(q)
    return c


def bernstein_vazirani(n: int, secret: int | None = None) -> Circuit:
    """Bernstein-Vazirani: recover an n-bit secret in one oracle query.

    Data qubits 0..n-1, oracle ancilla at qubit n (so the circuit has
    n + 1 qubits).  The final state has the data register equal to the
    secret with certainty.
    """
    if n < 1:
        raise CircuitError("bernstein-vazirani needs at least 1 data qubit")
    if secret is None:
        secret = (0b1011010110 % (1 << n)) | 1
    if not 0 <= secret < (1 << n):
        raise CircuitError(f"secret {secret} out of range")
    c = Circuit(n + 1, name=f"bv_n{n + 1}")
    anc = n
    c.x(anc)
    c.h(anc)
    for q in range(n):
        c.h(q)
    for q in range(n):
        if (secret >> q) & 1:
            c.cx(q, anc)
    for q in range(n):
        c.h(q)
    return c


def deutsch_jozsa(n: int, balanced: bool = True, seed: int = 17) -> Circuit:
    """Deutsch-Jozsa with a constant or an inner-product balanced oracle.

    Data qubits 0..n-1, ancilla at n.  Constant oracle: identity (f = 0).
    Balanced oracle: f(x) = s.x for a random non-zero mask s.
    """
    if n < 1:
        raise CircuitError("deutsch-jozsa needs at least 1 data qubit")
    c = Circuit(n + 1, name=f"dj_{'bal' if balanced else 'const'}_n{n + 1}")
    anc = n
    c.x(anc)
    c.h(anc)
    for q in range(n):
        c.h(q)
    if balanced:
        rng = np.random.default_rng(seed)
        mask = int(rng.integers(1, 1 << n))
        for q in range(n):
            if (mask >> q) & 1:
                c.cx(q, anc)
    for q in range(n):
        c.h(q)
    return c


def qpe(n_counting: int, phase: float = 0.3125) -> Circuit:
    """Quantum phase estimation of a phase gate's eigenphase.

    ``n_counting`` counting qubits estimate ``phase`` (in turns) of the
    eigenvalue exp(2*pi*i*phase) of P(2*pi*phase) on the target qubit
    (prepared in |1>, its eigenstate).  With a phase representable in
    ``n_counting`` bits the readout is exact.
    """
    if n_counting < 1:
        raise CircuitError("qpe needs at least 1 counting qubit")
    if not 0.0 <= phase < 1.0:
        raise CircuitError(f"phase must be in [0, 1), got {phase}")
    n = n_counting + 1
    target = n_counting
    c = Circuit(n, name=f"qpe_n{n}")
    c.x(target)
    for q in range(n_counting):
        c.h(q)
    for q in range(n_counting):
        # Controlled-P(2^q * 2*pi*phase) from counting qubit q.
        angle = 2 * math.pi * phase * (1 << q)
        c.cp(angle, q, target)
    # Inverse QFT on the counting register (without the final swaps; the
    # counting bits come out reversed and we account for that here by
    # running the textbook iQFT with swaps).
    for i in range(n_counting // 2):
        c.swap(i, n_counting - 1 - i)
    for i in range(n_counting):
        for j in range(i):
            c.cp(-math.pi / (1 << (i - j)), j, i)
        c.h(i)
    return c


def quantum_volume(n: int, depth: int | None = None, seed: int = 23) -> Circuit:
    """Quantum-volume model circuit: layers of random SU(4) on qubit pairs.

    Each layer permutes the qubits randomly and applies an independent
    Haar-random SU(4) to each adjacent pair -- maximally irregular, like
    the supremacy workloads.
    """
    if n < 2:
        raise CircuitError("quantum volume needs at least 2 qubits")
    depth = depth if depth is not None else n
    rng = np.random.default_rng(seed)
    c = Circuit(n, name=f"qvolume_n{n}")
    for _ in range(depth):
        perm = rng.permutation(n)
        for k in range(0, n - 1, 2):
            a, b = int(perm[k]), int(perm[k + 1])
            m = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
            q, _ = np.linalg.qr(m)
            q = q / np.linalg.det(q) ** 0.25
            c.append(UnitaryGate(q, (a, b)))
    return c


class UnitaryGate(Gate):
    """A Gate subclass carrying an explicit matrix (for QV circuits)."""

    _MATRICES: dict[int, np.ndarray] = {}
    _counter = [0]

    def __new__(cls, u: np.ndarray, targets: tuple[int, ...]):
        # Gate is a frozen dataclass; stash the matrix out of band keyed by
        # a unique parameter so signatures stay hashable and distinct.
        key = cls._counter[0]
        cls._counter[0] += 1
        cls._MATRICES[key] = np.asarray(u, dtype=np.complex128)
        self = Gate.__new__(cls)
        object.__setattr__(self, "name", "unitary")
        object.__setattr__(self, "targets", tuple(targets))
        object.__setattr__(self, "controls", ())
        object.__setattr__(self, "params", (float(key),))
        return self

    def __init__(self, *args, **kwargs):  # dataclass __init__ bypassed
        pass

    def __post_init__(self):  # pragma: no cover - not called
        pass

    @property
    def base_name(self) -> str:
        return "unitary"

    def matrix(self) -> np.ndarray:
        return self._MATRICES[int(self.params[0])]

    @property
    def signature(self) -> tuple:
        return ("unitary", self.targets, self.controls, self.params)

    @property
    def is_diagonal(self) -> bool:
        m = self.matrix()
        return bool(np.allclose(m, np.diag(np.diag(m))))


def hidden_shift(n: int, shift: int | None = None) -> Circuit:
    """Hidden-shift circuit for bent functions (QASMBench 'hs' family).

    Uses the Maiorana-McFarland bent function f(x, y) = x . y on n = 2m
    qubits: H column, shifted-f phase oracle, f~ oracle, H column; the
    output equals the shift deterministically.
    """
    if n < 2 or n % 2:
        raise CircuitError(f"hidden shift needs even n >= 2, got {n}")
    if shift is None:
        shift = (0b0110110101 % (1 << n)) | 1
    if not 0 <= shift < (1 << n):
        raise CircuitError(f"shift {shift} out of range")
    m = n // 2
    c = Circuit(n, name=f"hiddenshift_n{n}")
    for q in range(n):
        c.h(q)
    # Oracle for f(x + s): X-conjugated phase function.
    for q in range(n):
        if (shift >> q) & 1:
            c.x(q)
    for k in range(m):
        c.cz(k, m + k)
    for q in range(n):
        if (shift >> q) & 1:
            c.x(q)
    for q in range(n):
        c.h(q)
    # Dual bent function (same CZ pattern for Maiorana-McFarland).
    for k in range(m):
        c.cz(k, m + k)
    for q in range(n):
        c.h(q)
    return c
