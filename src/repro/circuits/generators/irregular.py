"""Irregular-structure circuits: quantum DNN, VQE ansatz, supremacy.

These are the paper's "DD-hostile" workloads: random-parameter rotations
and dense entanglement quickly destroy amplitude regularity, so the DD
representation of the state blows up (Figure 1, Figure 11) and FlatDD
converts to its flat-array phase early on.

Constructions follow the sources the paper cites:

* ``dnn``   -- layered quantum neural network in the style of QASMBench's
  ``dnn_n16`` / Beer et al. [10]: per layer, parameterized single-qubit
  rotations (u3-style as RZ-RY-RZ) on every qubit plus a full CX
  entangling ladder, repeated until the requested gate count.
* ``vqe``   -- hardware-efficient VQE ansatz: RY+RZ columns with a CZ ring.
* ``supremacy`` -- Google's 2D random circuit pattern [7]: per cycle a
  random one-qubit gate from {sqrt(X), sqrt(Y), sqrt(W)} on each qubit
  (never repeating on the same qubit in consecutive cycles) followed by CZ
  on a cycling pattern of grid couplings.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import CircuitError
from repro.circuits.circuit import Circuit

__all__ = ["dnn", "vqe", "supremacy", "random_circuit"]


def dnn(n: int, layers: int = 8, seed: int = 7) -> Circuit:
    """Layered quantum-DNN ansatz with random trained weights.

    Each layer: RZ-RY-RZ on every qubit (a general SU(2) rotation, as the
    u3 gates of QASMBench's dnn circuits) followed by a CX ladder over all
    neighbouring pairs, giving ``(3n + n - 1)`` gates per layer.
    """
    rng = np.random.default_rng(seed)
    c = Circuit(n, name=f"dnn_n{n}")
    for _ in range(layers):
        for q in range(n):
            c.rz(float(rng.uniform(0, 2 * math.pi)), q)
            c.ry(float(rng.uniform(0, 2 * math.pi)), q)
            c.rz(float(rng.uniform(0, 2 * math.pi)), q)
        for q in range(n - 1):
            c.cx(q, q + 1)
    return c


def vqe(n: int, layers: int = 2, seed: int = 11) -> Circuit:
    """Hardware-efficient VQE ansatz (RY+RZ columns, CZ entangler ring)."""
    rng = np.random.default_rng(seed)
    c = Circuit(n, name=f"vqe_n{n}")
    for q in range(n):
        c.ry(float(rng.uniform(0, 2 * math.pi)), q)
    for _ in range(layers):
        for q in range(n):
            c.rz(float(rng.uniform(0, 2 * math.pi)), q)
            c.ry(float(rng.uniform(0, 2 * math.pi)), q)
        for q in range(n):
            c.cz(q, (q + 1) % n)
    return c


def _grid_shape(n: int) -> tuple[int, int]:
    """Near-square grid with rows*cols == n (favouring wider grids)."""
    best = (1, n)
    for rows in range(1, int(math.isqrt(n)) + 1):
        if n % rows == 0:
            best = (rows, n // rows)
    return best


def _grid_couplings(rows: int, cols: int) -> list[list[tuple[int, int]]]:
    """The cycling CZ patterns of the supremacy layout.

    Eight patterns: horizontal pairs at even/odd column offsets split by row
    parity, and the vertical analogues -- a faithful simplification of the
    ABCDCDAB pattern of [7] that works for any grid shape.
    """
    def q(r: int, c: int) -> int:
        return r * cols + c

    patterns: list[list[tuple[int, int]]] = []
    for offset in (0, 1):
        for parity in (0, 1):
            horiz = [
                (q(r, c), q(r, c + 1))
                for r in range(rows)
                for c in range(offset + (r % 2 == parity), cols - 1, 2)
            ]
            vert = [
                (q(r, c), q(r + 1, c))
                for r in range(rows - 1)
                for c in range(offset + (r % 2 == parity) % 2, cols, 2)
            ]
            if horiz:
                patterns.append(horiz)
            if vert:
                patterns.append(vert)
    return [p for p in patterns if p] or [[(0, 1)]]


def supremacy(n: int, cycles: int = 10, seed: int = 3) -> Circuit:
    """Google-style random quantum circuit on a 2D grid (n = rows * cols).

    Per cycle: one random gate from {sx, sy, sw} per qubit (not repeating
    the previous cycle's choice on that qubit), then CZ along the cycle's
    coupling pattern.  Starts with a Hadamard column as in [7].
    """
    if n < 2:
        raise CircuitError("supremacy circuit needs at least 2 qubits")
    rows, cols = _grid_shape(n)
    rng = np.random.default_rng(seed)
    singles = ("sx", "sy", "sw")
    patterns = _grid_couplings(rows, cols)
    c = Circuit(n, name=f"supremacy_n{n}")
    for q in range(n):
        c.h(q)
    prev = [-1] * n
    for cycle in range(cycles):
        for q in range(n):
            choice = int(rng.integers(0, 3))
            if choice == prev[q]:
                choice = (choice + 1 + int(rng.integers(0, 2))) % 3
            prev[q] = choice
            c.add(singles[choice], q)
        for a, b in patterns[cycle % len(patterns)]:
            c.cz(a, b)
    return c


def random_circuit(n: int, gates: int = 50, seed: int = 0) -> Circuit:
    """Uniformly random circuit over a broad gate set (test workloads)."""
    rng = np.random.default_rng(seed)
    one_q = ("h", "x", "y", "z", "s", "t", "sx")
    rot = ("rx", "ry", "rz", "p")
    c = Circuit(n, name=f"random_n{n}")
    for _ in range(gates):
        kind = rng.integers(0, 4)
        if kind == 0:
            c.add(str(rng.choice(one_q)), int(rng.integers(0, n)))
        elif kind == 1:
            c.add(
                str(rng.choice(rot)),
                int(rng.integers(0, n)),
                params=(float(rng.uniform(0, 2 * math.pi)),),
            )
        elif kind == 2 and n >= 2:
            a, b = rng.choice(n, size=2, replace=False)
            c.add(str(rng.choice(("cx", "cz"))), int(a), int(b))
        else:
            if n >= 2:
                a, b = rng.choice(n, size=2, replace=False)
                c.swap(int(a), int(b))
            else:
                c.h(0)
    return c
