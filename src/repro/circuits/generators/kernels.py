"""Swap-test-style kernel circuits: swap test and quantum KNN.

QASMBench's ``swap_test`` and ``knn`` benchmarks both measure state overlap
with the controlled-SWAP construction: an ancilla in superposition controls
pairwise swaps between two data registers, and the final ancilla amplitude
encodes |<a|b>|^2.  They are the paper's mixed-regularity workloads: state
preparation is rotation-heavy (irregular) while the cswap cascade is
permutation-like (regular).

Both circuits use ``n = 2k + 1`` qubits: ancilla on qubit ``n - 1``, data
registers on qubits ``[0..k)`` and ``[k..2k)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import CircuitError
from repro.circuits.circuit import Circuit

__all__ = ["swaptest", "knn"]


def _prepare(c: Circuit, qubits: range, angles: np.ndarray) -> None:
    """Amplitude-ish encoding: an RY column then a CX entangling chain."""
    qs = list(qubits)
    for q, theta in zip(qs, angles):
        c.ry(float(theta), q)
    for a, b in zip(qs, qs[1:]):
        c.cx(a, b)


def swaptest(n: int, seed: int = 5) -> Circuit:
    """Swap test between two randomly prepared k-qubit states."""
    if n < 3 or n % 2 == 0:
        raise CircuitError(f"swap test needs odd n >= 3, got {n}")
    k = (n - 1) // 2
    rng = np.random.default_rng(seed)
    c = Circuit(n, name=f"swaptest_n{n}")
    anc = n - 1
    _prepare(c, range(0, k), rng.uniform(0, math.pi, size=k))
    _prepare(c, range(k, 2 * k), rng.uniform(0, math.pi, size=k))
    c.h(anc)
    for i in range(k):
        c.cswap(anc, i, k + i)
    c.h(anc)
    return c


def knn(n: int, seed: int = 9) -> Circuit:
    """Quantum KNN kernel (QASMBench 'knn'): swap test with feature-map prep.

    Identical interference structure to the swap test but with a deeper,
    entangling feature-map preparation per register (RY+RZ columns and CX
    chains), matching the heavier state-prep of the QASMBench circuit.
    """
    if n < 3 or n % 2 == 0:
        raise CircuitError(f"knn needs odd n >= 3, got {n}")
    k = (n - 1) // 2
    rng = np.random.default_rng(seed)
    c = Circuit(n, name=f"knn_n{n}")
    anc = n - 1
    for base in (0, k):
        qs = list(range(base, base + k))
        for rep in range(2):
            for q in qs:
                c.ry(float(rng.uniform(0, math.pi)), q)
                c.rz(float(rng.uniform(0, 2 * math.pi)), q)
            for a, b in zip(qs, qs[1:]):
                c.cx(a, b)
    c.h(anc)
    for i in range(k):
        c.cswap(anc, i, k + i)
    c.h(anc)
    return c
