"""Regular-structure circuits: GHZ, ripple-carry adder, W-state, QFT.

These are the "DD-friendly" workloads of the paper (Figure 1, Table 1):
their state vectors keep a highly regular amplitude distribution, so the
DD stays tiny throughout the simulation and FlatDD never leaves its DD
phase on them.
"""

from __future__ import annotations

import math

from repro.common.errors import CircuitError
from repro.circuits.circuit import Circuit

__all__ = ["ghz", "adder", "wstate", "qft"]


def ghz(n: int) -> Circuit:
    """GHZ state preparation: H then a CX chain (MQT Bench 'ghz')."""
    c = Circuit(n, name=f"ghz_n{n}")
    c.h(0)
    for q in range(n - 1):
        c.cx(q, q + 1)
    return c


def adder(n: int, a_value: int | None = None, b_value: int | None = None) -> Circuit:
    """Cuccaro ripple-carry adder (QASMBench 'adder' family).

    Layout (n = 2k + 2): qubit 0 = carry-in, then alternating b_i/a_i pairs,
    last qubit = carry-out; computes b <- a + b.  ``a_value``/``b_value``
    preset the inputs with X gates (defaults exercise carries).
    """
    if n < 4 or n % 2:
        raise CircuitError(f"adder needs even n >= 4, got {n}")
    k = (n - 2) // 2
    if a_value is None:
        a_value = (1 << k) - 1  # all-ones maximizes carry propagation
    if b_value is None:
        b_value = 1
    a = [1 + 2 * i + 1 for i in range(k)]  # a_i qubits
    b = [1 + 2 * i for i in range(k)]      # b_i qubits
    cin, cout = 0, n - 1
    c = Circuit(n, name=f"adder_n{n}")
    for i in range(k):
        if (a_value >> i) & 1:
            c.x(a[i])
        if (b_value >> i) & 1:
            c.x(b[i])

    def maj(x: int, y: int, z: int) -> None:
        c.cx(z, y)
        c.cx(z, x)
        c.ccx(x, y, z)

    def uma(x: int, y: int, z: int) -> None:
        c.ccx(x, y, z)
        c.cx(z, x)
        c.cx(x, y)

    maj(cin, b[0], a[0])
    for i in range(1, k):
        maj(a[i - 1], b[i], a[i])
    c.cx(a[k - 1], cout)
    for i in range(k - 1, 0, -1):
        uma(a[i - 1], b[i], a[i])
    uma(cin, b[0], a[0])
    return c


def wstate(n: int) -> Circuit:
    """W-state preparation via cascaded controlled rotations (MQT Bench)."""
    c = Circuit(n, name=f"wstate_n{n}")
    c.x(n - 1)
    for i in range(n - 1, 0, -1):
        theta = 2 * math.acos(math.sqrt(1.0 / (i + 1)))
        # Controlled-RY(theta) from qubit i to qubit i-1, decomposed.
        c.ry(theta / 2, i - 1)
        c.cx(i, i - 1)
        c.ry(-theta / 2, i - 1)
        c.cx(i, i - 1)
        c.cx(i - 1, i)
    return c


def qft(n: int, *, inverse: bool = False) -> Circuit:
    """Quantum Fourier transform (controlled-phase ladder + swaps)."""
    c = Circuit(n, name=f"{'iqft' if inverse else 'qft'}_n{n}")
    sign = -1.0 if inverse else 1.0
    for i in range(n - 1, -1, -1):
        c.h(i)
        for j in range(i - 1, -1, -1):
            c.cp(sign * math.pi / (1 << (i - j)), j, i)
    for i in range(n // 2):
        c.swap(i, n - 1 - i)
    return c
