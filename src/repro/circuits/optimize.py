"""Peephole circuit optimization (after Liu, Bello & Zhou, CGO 2021 [81]).

Two classic local passes, iterated to a fixpoint:

* :func:`cancel_inverse_pairs` -- remove adjacent gate pairs that compose
  to the identity (self-inverse gates repeated, s/sdg, t/tdg, rotation
  followed by its negation), where "adjacent" means no intervening gate
  touches any of their qubits.
* :func:`merge_rotations` -- fuse runs of same-axis rotations on one qubit
  into a single gate, dropping angles that collapse to (a multiple of)
  2*pi.

Both passes preserve the circuit's unitary exactly (verified by the DD
equivalence checker in the tests) -- rotation merging is phase-exact
because rz(a) rz(b) = rz(a+b) as matrices.
"""

from __future__ import annotations

import math

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate

__all__ = ["cancel_inverse_pairs", "merge_rotations", "optimize"]

_SELF_INVERSE = {
    "id", "x", "y", "z", "h", "swap", "cx", "cnot", "cy", "cz", "ch",
    "ccx", "toffoli", "ccz", "cswap", "fredkin",
}
_NAME_INVERSE = {
    "s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t",
    "sx": "sxdg", "sxdg": "sx", "sy": "sydg", "sydg": "sy",
    "sw": "swdg", "swdg": "sw",
}
#: Rotation families that add angles: name -> period of the *matrix*.
_ROTATIONS = {
    "rx": 4 * math.pi, "ry": 4 * math.pi, "rz": 4 * math.pi,
    "p": 2 * math.pi, "u1": 2 * math.pi,
    "rzz": 4 * math.pi, "rxx": 4 * math.pi,
    "cp": 2 * math.pi, "cu1": 2 * math.pi,
    "crx": 4 * math.pi, "cry": 4 * math.pi, "crz": 4 * math.pi,
}

_ANGLE_EPS = 1e-12


def _are_inverses(a: Gate, b: Gate) -> bool:
    if a.targets != b.targets or a.controls != b.controls:
        return False
    if a.base_name != b.base_name and a.name not in _NAME_INVERSE:
        return False
    if a.name in _SELF_INVERSE and b.name in _SELF_INVERSE:
        return a.base_name == b.base_name
    if _NAME_INVERSE.get(a.name) == b.name:
        return True
    if a.base_name in _ROTATIONS and a.base_name == b.base_name:
        period = _ROTATIONS[a.base_name]
        total = (a.params[0] + b.params[0]) % period
        return min(total, period - total) < _ANGLE_EPS
    return False


def cancel_inverse_pairs(circuit: Circuit) -> Circuit:
    """Remove adjacent inverse pairs (adjacency up to commuting gates).

    Single backward-scan pass, repeated to a fixpoint: for each incoming
    gate, the most recent emitted gate that shares any of its qubits is
    its effective neighbour; if it is the exact inverse on the same qubit
    set, both disappear.
    """
    gates = list(circuit.gates)
    while True:
        out: list[Gate] = []
        changed = False
        for g in gates:
            qubits = set(g.qubits)
            neighbour = None
            for j in range(len(out) - 1, -1, -1):
                if qubits & set(out[j].qubits):
                    neighbour = j
                    break
            if (
                neighbour is not None
                and set(out[neighbour].qubits) == qubits
                and _are_inverses(out[neighbour], g)
            ):
                out.pop(neighbour)
                changed = True
            else:
                out.append(g)
        gates = out
        if not changed:
            break
    return Circuit(circuit.num_qubits, gates, name=f"{circuit.name}_opt")


def merge_rotations(circuit: Circuit) -> Circuit:
    """Fuse adjacent same-axis rotations; drop full-period results."""
    out: list[Gate] = []
    for g in circuit.gates:
        if (
            out
            and g.base_name in _ROTATIONS
            and out[-1].base_name == g.base_name
            and out[-1].targets == g.targets
            and out[-1].controls == g.controls
        ):
            prev = out.pop()
            period = _ROTATIONS[g.base_name]
            total = (prev.params[0] + g.params[0]) % period
            if min(total, period - total) < _ANGLE_EPS:
                continue  # fully cancelled
            out.append(Gate(g.name, g.targets, g.controls, (total,)))
        else:
            out.append(g)
    return Circuit(circuit.num_qubits, out, name=f"{circuit.name}_opt")


def optimize(circuit: Circuit, max_rounds: int = 8) -> Circuit:
    """Alternate both passes until the gate count stops shrinking."""
    current = circuit
    for _ in range(max_rounds):
        merged = merge_rotations(current)
        cancelled = cancel_inverse_pairs(merged)
        if len(cancelled) == len(current):
            cancelled.name = f"{circuit.name}_opt"
            return cancelled
        current = cancelled
    current.name = f"{circuit.name}_opt"
    return current
