"""OpenQASM 2.0 subset parser and writer.

The paper's benchmark circuits come from QASMBench and MQT Bench, which ship
OpenQASM 2.0.  This module implements the subset those suites use:

* ``OPENQASM 2.0;`` header and ``include "qelib1.inc";``
* ``qreg``/``creg`` declarations (multiple quantum registers are flattened
  into one qubit index space in declaration order),
* applications of the qelib1 gates known to
  :mod:`repro.circuits.gates`, with parameter expressions over ``pi``
  (``+ - * / ^``, unary minus, parentheses),
* ``barrier`` (ignored) and ``measure`` (ignored -- the simulators compute
  the full final state, matching the paper's strong-simulation workload).

Parse errors raise :class:`~repro.common.errors.QasmError` with the line.
"""

from __future__ import annotations

import ast
import math
import operator
import re

from repro.common.errors import QasmError
from repro.circuits.circuit import Circuit
from repro.circuits.gates import CONTROLLED_ALIASES, GATE_BUILDERS, Gate

__all__ = ["parse_qasm", "to_qasm"]

_BINOPS = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.Pow: operator.pow,
}


def _eval_param(expr: str, line: int) -> float:
    """Safely evaluate a QASM parameter expression (numbers, pi, + - * / ^)."""
    expr = expr.strip().replace("^", "**")
    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError as exc:
        raise QasmError(f"bad parameter expression {expr!r}", line) from exc

    def ev(node: ast.AST) -> float:
        if isinstance(node, ast.Expression):
            return ev(node.body)
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            return float(node.value)
        if isinstance(node, ast.Name) and node.id == "pi":
            return math.pi
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return -ev(node.operand)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.UAdd):
            return ev(node.operand)
        if isinstance(node, ast.BinOp) and type(node.op) in _BINOPS:
            return _BINOPS[type(node.op)](ev(node.left), ev(node.right))
        raise QasmError(f"unsupported expression {expr!r}", line)

    return ev(tree)


_QREG_RE = re.compile(r"^qreg\s+([A-Za-z_][\w]*)\s*\[\s*(\d+)\s*\]$")
_CREG_RE = re.compile(r"^creg\s+([A-Za-z_][\w]*)\s*\[\s*(\d+)\s*\]$")
_GATE_RE = re.compile(
    r"^([A-Za-z_][\w]*)\s*(?:\(([^)]*)\))?\s+(.+)$"
)
_QUBIT_RE = re.compile(r"^([A-Za-z_][\w]*)\s*\[\s*(\d+)\s*\]$")


def parse_qasm(text: str, name: str = "qasm") -> Circuit:
    """Parse an OpenQASM 2.0 program into a :class:`Circuit`."""
    # Strip comments, then split on ';' while tracking line numbers.
    registers: dict[str, tuple[int, int]] = {}  # name -> (offset, size)
    total_qubits = 0
    statements: list[tuple[int, str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("//", 1)[0].strip()
        if not line:
            continue
        for stmt in line.split(";"):
            stmt = stmt.strip()
            if stmt:
                statements.append((lineno, stmt))

    gates: list[Gate] = []
    saw_header = False
    for lineno, stmt in statements:
        low = stmt.lower()
        if low.startswith("openqasm"):
            saw_header = True
            continue
        if low.startswith("include"):
            continue
        if low.startswith("barrier") or low.startswith("measure"):
            continue
        if low.startswith("creg"):
            if not _CREG_RE.match(stmt):
                raise QasmError(f"malformed creg: {stmt!r}", lineno)
            continue
        m = _QREG_RE.match(stmt)
        if m:
            reg, size = m.group(1), int(m.group(2))
            if reg in registers:
                raise QasmError(f"duplicate register {reg!r}", lineno)
            registers[reg] = (total_qubits, size)
            total_qubits += size
            continue
        m = _GATE_RE.match(stmt)
        if not m:
            raise QasmError(f"cannot parse statement {stmt!r}", lineno)
        gname, params_src, operands_src = m.groups()
        gname = gname.lower()
        if gname not in GATE_BUILDERS and gname not in CONTROLLED_ALIASES:
            raise QasmError(f"unknown gate {gname!r}", lineno)
        params: tuple[float, ...] = ()
        if params_src is not None:
            params = tuple(
                _eval_param(p, lineno) for p in params_src.split(",") if p.strip()
            )
        qubits = []
        for operand in operands_src.split(","):
            operand = operand.strip()
            qm = _QUBIT_RE.match(operand)
            if not qm:
                raise QasmError(
                    f"only indexed qubit operands are supported: {operand!r}",
                    lineno,
                )
            reg, idx = qm.group(1), int(qm.group(2))
            if reg not in registers:
                raise QasmError(f"unknown register {reg!r}", lineno)
            offset, size = registers[reg]
            if idx >= size:
                raise QasmError(
                    f"index {idx} out of range for {reg}[{size}]", lineno
                )
            qubits.append(offset + idx)
        extra = CONTROLLED_ALIASES.get(gname, (None, 0))[1]
        gates.append(
            Gate(
                name=gname,
                targets=tuple(qubits[extra:]),
                controls=tuple(qubits[:extra]),
                params=params,
            )
        )
    if not saw_header:
        raise QasmError("missing OPENQASM header", None)
    if total_qubits == 0:
        raise QasmError("no qreg declared", None)
    return Circuit(total_qubits, gates, name=name)


def to_qasm(circuit: Circuit) -> str:
    """Serialize a circuit to OpenQASM 2.0 (round-trips with parse_qasm)."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    for g in circuit.gates:
        params = ""
        if g.params:
            params = "(" + ",".join(repr(p) for p in g.params) + ")"
        operands = ",".join(f"q[{q}]" for q in g.qubits)
        lines.append(f"{g.name}{params} {operands};")
    return "\n".join(lines) + "\n"
