"""Gate decomposition to a {u3, p, rz, ry, cx} basis.

A minimal transpiler: every library gate is rewritten into single-qubit
rotations plus CX, using the textbook constructions

* ZYZ (Euler) decomposition for arbitrary single-qubit unitaries,
* the ABC decomposition ``CU = P(alpha)_c . A cx B cx C`` for singly
  controlled single-qubit gates,
* standard networks for swap (3 CX), iswap, rzz/rxx/fsim, Toffoli
  (6-CX network), ccz and Fredkin.

Global phases cannot be expressed in this basis, so :func:`decompose`
returns the accumulated phase alongside the circuit: the decomposed
circuit equals ``phase * original`` exactly.  Gates with three or more
controls and explicit-matrix gates (quantum volume) are not supported.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from repro.common.errors import CircuitError
from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate

__all__ = ["decompose", "zyz_angles", "BASIS_GATES"]

#: Gate names the decomposed circuit may contain.
BASIS_GATES = frozenset({"u3", "p", "rz", "ry", "cx"})


def zyz_angles(u: np.ndarray) -> tuple[float, float, float, float]:
    """Euler angles (alpha, beta, gamma, delta) with
    ``U = exp(i*alpha) Rz(beta) Ry(gamma) Rz(delta)`` exactly."""
    u = np.asarray(u, dtype=np.complex128)
    if u.shape != (2, 2):
        raise CircuitError(f"zyz_angles needs a 2x2 matrix, got {u.shape}")
    det = u[0, 0] * u[1, 1] - u[0, 1] * u[1, 0]
    alpha = cmath.phase(det) / 2.0
    v = u * cmath.exp(-1j * alpha)  # now in SU(2)
    gamma = 2.0 * math.atan2(abs(v[1, 0]), abs(v[0, 0]))
    if abs(v[0, 0]) > 1e-12 and abs(v[1, 0]) > 1e-12:
        beta = cmath.phase(v[1, 1]) + cmath.phase(v[1, 0])
        delta = cmath.phase(v[1, 1]) - cmath.phase(v[1, 0])
    elif abs(v[0, 0]) > 1e-12:  # diagonal: gamma = 0
        beta = 2.0 * cmath.phase(v[1, 1])
        delta = 0.0
    else:  # anti-diagonal: gamma = pi
        beta = 2.0 * cmath.phase(v[1, 0])
        delta = 0.0
    return alpha, beta, gamma, delta


def _emit_zyz(
    out: Circuit, q: int, beta: float, gamma: float, delta: float
) -> None:
    """Append Rz(beta) Ry(gamma) Rz(delta) acting on ``q`` (delta first)."""
    if abs(delta) > 1e-12:
        out.rz(delta, q)
    if abs(gamma) > 1e-12:
        out.ry(gamma, q)
    if abs(beta) > 1e-12:
        out.rz(beta, q)


def _decompose_1q(out: Circuit, gate: Gate) -> complex:
    alpha, beta, gamma, delta = zyz_angles(gate.matrix())
    _emit_zyz(out, gate.targets[0], beta, gamma, delta)
    # U = e^{i alpha} (emitted ops), so the emitted circuit realizes
    # e^{-i alpha} U: that is this gate's contribution to the global phase.
    return cmath.exp(-1j * alpha)


def _decompose_controlled_1q(out: Circuit, gate: Gate) -> complex:
    """ABC decomposition of a singly controlled single-qubit gate."""
    control = gate.controls[0]
    target = gate.targets[0]
    alpha, beta, gamma, delta = zyz_angles(gate.matrix())
    # A = Rz(beta) Ry(gamma/2); B = Ry(-gamma/2) Rz(-(delta+beta)/2);
    # C = Rz((delta-beta)/2); ABC = I and A X B X C = Rz Ry Rz.
    _emit_zyz(out, target, (delta - beta) / 2.0, 0.0, 0.0)  # C = Rz((d-b)/2)
    out.cx(control, target)
    # B = Ry(-gamma/2) Rz(-(delta+beta)/2): Rz applied first.
    _emit_zyz(out, target, 0.0, -gamma / 2.0, -(delta + beta) / 2.0)
    out.cx(control, target)
    _emit_zyz(out, target, beta, gamma / 2.0, 0.0)  # A = Rz(beta) Ry(g/2)
    if abs(alpha) > 1e-12:
        out.p(alpha, control)
    return 1.0 + 0j


def _decompose_swap(out: Circuit, a: int, b: int) -> None:
    out.cx(a, b)
    out.cx(b, a)
    out.cx(a, b)


def _decompose_rzz(out: Circuit, theta: float, a: int, b: int) -> None:
    out.cx(a, b)
    out.rz(theta, b)
    out.cx(a, b)


def _decompose_ccx(out: Circuit, c1: int, c2: int, t: int) -> complex:
    """Standard 6-CX Toffoli network over {h, t, tdg} expressed in basis."""
    phase = 1.0 + 0j
    h_angles = zyz_angles(Gate("h", (0,)).matrix())
    quarter = math.pi / 4

    def h_gate(q: int) -> None:
        nonlocal phase
        _emit_zyz(out, q, h_angles[1], h_angles[2], h_angles[3])
        phase *= cmath.exp(-1j * h_angles[0])

    h_gate(t)
    out.cx(c2, t)
    out.p(-quarter, t)
    out.cx(c1, t)
    out.p(quarter, t)
    out.cx(c2, t)
    out.p(-quarter, t)
    out.cx(c1, t)
    out.p(quarter, c2)
    out.p(quarter, t)
    h_gate(t)
    out.cx(c1, c2)
    out.p(quarter, c1)
    out.p(-quarter, c2)
    out.cx(c1, c2)
    return phase


def decompose(circuit: Circuit) -> tuple[Circuit, complex]:
    """Rewrite ``circuit`` into BASIS_GATES; returns (circuit, phase).

    The decomposed circuit's unitary equals ``phase * U_original``.
    """
    out = Circuit(circuit.num_qubits, name=f"{circuit.name}_basis")
    phase: complex = 1.0
    for gate in circuit.gates:
        base = gate.base_name
        ncontrols = len(gate.controls)
        if base == "unitary":
            raise CircuitError(
                "explicit-matrix gates are not supported by decompose()"
            )
        if ncontrols == 0 and len(gate.targets) == 1:
            if base == "rz" or base == "ry" or base == "p":
                out.append(Gate(base, gate.targets, params=gate.params))
            else:
                phase *= _decompose_1q(out, gate)
        elif ncontrols == 1 and len(gate.targets) == 1:
            if base == "x":
                out.cx(gate.controls[0], gate.targets[0])
            else:
                phase *= _decompose_controlled_1q(out, gate)
        elif ncontrols == 0 and len(gate.targets) == 2:
            a, b = gate.targets
            if base == "swap":
                _decompose_swap(out, a, b)
            elif base == "rzz":
                _decompose_rzz(out, gate.params[0], a, b)
            elif base == "rxx":
                # rxx = (H (x) H) rzz (H (x) H).
                for q in (a, b):
                    phase *= _decompose_1q(out, Gate("h", (q,)))
                _decompose_rzz(out, gate.params[0], a, b)
                for q in (a, b):
                    phase *= _decompose_1q(out, Gate("h", (q,)))
            elif base == "iswap":
                # iswap = (S (x) S) . H_a . CX(a,b) . CX(b,a) . H_b.
                out.append(Gate("p", (b,), params=(math.pi / 2,)))
                out.append(Gate("p", (a,), params=(math.pi / 2,)))
                phase *= _decompose_1q(out, Gate("h", (a,)))
                out.cx(a, b)
                out.cx(b, a)
                phase *= _decompose_1q(out, Gate("h", (b,)))
            elif base == "fsim":
                theta, phi = gate.params
                # fsim(theta, phi) = CP(-phi) . Ryy(theta) . Rxx(theta):
                # XX and YY commute and exp(-i t (XX+YY)/2) gives the
                # fsim swap block; the CP supplies the |11> phase.
                for q in (a, b):
                    phase *= _decompose_1q(out, Gate("h", (q,)))
                _decompose_rzz(out, theta, a, b)
                for q in (a, b):
                    phase *= _decompose_1q(out, Gate("h", (q,)))
                for q in (a, b):
                    out.append(Gate("p", (q,), params=(-math.pi / 2,)))
                    phase *= _decompose_1q(out, Gate("h", (q,)))
                _decompose_rzz(out, theta, a, b)
                for q in (a, b):
                    phase *= _decompose_1q(out, Gate("h", (q,)))
                    out.append(Gate("p", (q,), params=(math.pi / 2,)))
                phase *= _decompose_controlled_1q(
                    out, Gate("cp", (b,), (a,), (-phi,))
                )
            else:
                raise CircuitError(f"no decomposition rule for {gate.name!r}")
        elif ncontrols == 2 and len(gate.targets) == 1 and base == "x":
            phase *= _decompose_ccx(out, *gate.controls, gate.targets[0])
        elif ncontrols == 2 and len(gate.targets) == 1 and base == "z":
            c1, c2 = gate.controls
            t = gate.targets[0]
            phase *= _decompose_1q(out, Gate("h", (t,)))
            phase *= _decompose_ccx(out, c1, c2, t)
            phase *= _decompose_1q(out, Gate("h", (t,)))
        elif ncontrols == 1 and base == "swap":
            c = gate.controls[0]
            a, b = gate.targets
            out.cx(b, a)
            phase *= _decompose_ccx(out, c, a, b)
            out.cx(b, a)
        else:
            raise CircuitError(
                f"no decomposition rule for {gate.name!r} with "
                f"{ncontrols} controls"
            )
    return out, phase
