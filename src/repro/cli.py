"""Command-line interface.

Examples::

    python -m repro families
    python -m repro simulate --family supremacy --qubits 12 --threads 4
    python -m repro simulate circuit.qasm --backend ddsim --shots 1000
    python -m repro simulate --family supremacy --qubits 12 \\
        --trace trace.json --profile
    python -m repro compare --family dnn --qubits 12
    python -m repro equivalence a.qasm b.qasm
    python -m repro fuzz --seed 0 --iterations 50
    python -m repro fuzz --plant-bug t-phase --out-dir /tmp/fuzz_demo
    python -m repro serve batch.jsonl --threads 4 --json
    python -m repro serve batch.jsonl --processes 4 --journal wal.jsonl
    python -m repro serve batch.jsonl --plant-bug transient-crash
    python -m repro serve batch.jsonl --telemetry tele.jsonl \\
        --prometheus metrics.prom --trace batch.json
    python -m repro chaos --seed 0 --iterations 25
    python -m repro chaos --plant-bug respawn-accounting --out-dir /tmp/chaos
    python -m repro report tele.jsonl
    python -m repro bench-compare BENCH_a.json BENCH_b.json --threshold 0.2

``--trace out.json`` writes a Chrome trace-event file (open in Perfetto
or ``chrome://tracing``); ``--profile`` prints the per-phase breakdown;
``-v``/``-vv`` turn on INFO/DEBUG logging from the ``repro`` logger.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys

import numpy as np

from repro import __version__
from repro.backends import DDSimulator, StatevectorSimulator
from repro.circuits import CIRCUIT_FAMILIES, Circuit, get_circuit, parse_qasm
from repro.common.errors import (
    CheckpointError,
    ReproError,
    ResourceExhaustedError,
)
from repro.core import FlatDDSimulator
from repro.obs import Tracer, format_summary_table, write_chrome_trace
from repro.sampling import sample_counts
from repro.verify import check_equivalence

__all__ = ["main", "build_parser"]

_log = logging.getLogger("repro.cli")


def _configure_logging(verbosity: int) -> None:
    """Attach a stderr handler to the library-wide ``repro`` logger.

    Verbosity 0 shows warnings/errors only; 1 adds INFO; 2+ adds DEBUG.
    Re-invocations (tests call :func:`main` repeatedly) replace the
    previous CLI handler instead of stacking duplicates.
    """
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_cli", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler._repro_cli = True
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    logger.addHandler(handler)
    level = (
        logging.WARNING if verbosity <= 0
        else logging.INFO if verbosity == 1
        else logging.DEBUG
    )
    logger.setLevel(level)


def _load_circuit(args: argparse.Namespace) -> Circuit:
    if args.qasm_file:
        with open(args.qasm_file, "r", encoding="utf-8") as fh:
            return parse_qasm(fh.read(), name=args.qasm_file)
    if not args.family:
        raise ReproError("provide a QASM file or --family/--qubits")
    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    return get_circuit(args.family, args.qubits, **kwargs)


def _make_simulator(args: argparse.Namespace):
    if args.backend == "flatdd":
        return FlatDDSimulator(
            threads=args.threads,
            fusion=args.fusion,
            memory_budget_bytes=getattr(args, "memory_budget", None),
            plan_cache=not getattr(args, "no_plan_cache", False),
            force_convert_at=getattr(args, "force_convert_at", None),
            identity_skip=not getattr(args, "no_identity_skip", False),
            qubit_order=getattr(args, "qubit_order", "natural"),
        )
    if args.backend == "ddsim":
        return DDSimulator()
    if args.backend == "quantumpp":
        return StatevectorSimulator(threads=args.threads)
    raise ReproError(f"unknown backend {args.backend!r}")


def _add_circuit_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("qasm_file", nargs="?", help="OpenQASM 2.0 file")
    p.add_argument("--family", help="generator family (see 'families')")
    p.add_argument("--qubits", type=int, default=8)
    p.add_argument("--seed", type=int, default=None,
                   help="generator seed (random families)")


def _add_dd_shrink_args(p: argparse.ArgumentParser) -> None:
    """DD-phase shrinking flags shared by simulate/sweep/compare."""
    p.add_argument("--qubit-order", default="natural",
                   choices=["natural", "interaction", "sift"],
                   help="DD-phase variable order (flatdd only): "
                        "'interaction' places frequently interacting "
                        "qubits adjacent; 'sift' refines that order by "
                        "local search; conversion restores canonical "
                        "amplitude order (docs/PERFORMANCE.md)")
    p.add_argument("--no-identity-skip", action="store_true",
                   help="build full-height gate DDs instead of "
                        "identity-skipped windows (flatdd only; "
                        "bit-identical performance ablation)")


def cmd_families(args: argparse.Namespace) -> int:
    for name in sorted(CIRCUIT_FAMILIES):
        print(name)
    return 0


def _make_tracer(args: argparse.Namespace) -> Tracer | None:
    """One tracer per run when --trace or --profile asked for one."""
    if getattr(args, "trace", None) or getattr(args, "profile", False):
        return Tracer()
    return None


def _backend_trace_path(path: str, backend: str) -> str:
    """Insert the backend name before the extension ('t.json' -> 't.flatdd.json')."""
    stem, ext = os.path.splitext(path)
    return f"{stem}.{backend}{ext or '.json'}"


def cmd_simulate(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args)
    sim = _make_simulator(args)
    tracer = _make_tracer(args)
    run_kwargs: dict = {"tracer": tracer}
    resilience_flags = (
        args.checkpoint_every, args.checkpoint, args.resume_from,
        args.memory_budget,
    )
    if any(flag is not None for flag in resilience_flags):
        if args.backend != "flatdd":
            raise ReproError(
                "--checkpoint/--resume-from/--memory-budget require the "
                "flatdd backend"
            )
        if args.checkpoint_every is not None and args.checkpoint is None:
            raise ReproError("--checkpoint-every requires --checkpoint PATH")
        run_kwargs.update(
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=args.checkpoint,
            resume_from=args.resume_from,
        )
    _log.info(
        "simulating %s (%d qubits, %d gates) on %s",
        circuit.name, circuit.num_qubits, len(circuit.gates), sim.name,
    )
    result = sim.run(circuit, **run_kwargs)
    payload = {
        "circuit": circuit.name,
        "qubits": circuit.num_qubits,
        "gates": len(circuit.gates),
        "backend": result.backend,
        "runtime_seconds": round(result.runtime_seconds, 6),
        "peak_memory_mb": round(result.peak_memory_mb, 3),
    }
    if "conversion_gate_index" in result.metadata:
        payload["converted_at"] = result.metadata["conversion_gate_index"]
    if result.metadata.get("resumed"):
        payload["resumed_from"] = args.resume_from
    if result.metadata.get("checkpoints_written"):
        payload["checkpoints_written"] = result.metadata["checkpoints_written"]
    if args.shots:
        counts = sample_counts(
            result.state, args.shots, np.random.default_rng(args.sample_seed)
        )
        payload["counts"] = dict(counts.most_common(args.top))
    else:
        probs = result.probabilities()
        top = probs.argsort()[::-1][: args.top]
        payload["top_outcomes"] = {
            format(int(i), f"0{circuit.num_qubits}b"): round(float(probs[i]), 8)
            for i in top
        }
    if args.json:
        obs = result.metadata.get("obs")
        if obs is not None:
            payload["obs"] = {
                "counters": obs.get("counters", {}),
                "gauges": obs.get("gauges", {}),
            }
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key}: {value}")
    if tracer is not None:
        if args.trace:
            events = write_chrome_trace(args.trace, tracer)
            _log.info("wrote %d trace events to %s", events, args.trace)
        if args.profile:
            print()
            print(format_summary_table(tracer, result.runtime_seconds))
    return 0


def _load_param_rows(path: str) -> list[tuple]:
    """Parameter rows from a JSON array-of-arrays or JSONL file."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = [
            json.loads(line)
            for line in text.splitlines()
            if line.strip() and not line.strip().startswith("#")
        ]
    if not isinstance(doc, list) or not all(
        isinstance(row, list) for row in doc
    ):
        raise ReproError(
            f"{path}: expected a JSON array of parameter rows "
            "(or JSONL, one row per line)"
        )
    return [tuple(float(x) for x in row) for row in doc]


def cmd_sweep(args: argparse.Namespace) -> int:
    """Batched parameter sweep (``simulate_sweep``) of one template."""
    circuit = _load_circuit(args)
    if (args.params is None) == (args.points is None):
        raise ReproError("provide exactly one of --params FILE or --points N")
    if args.params is not None:
        rows = _load_param_rows(args.params)
    else:
        if args.points < 1:
            raise ReproError("--points must be >= 1")
        rng = np.random.default_rng(args.sweep_seed)
        slots = circuit.num_param_slots
        rows = [
            tuple(rng.uniform(-np.pi, np.pi, slots))
            for _ in range(args.points)
        ]
    sim = FlatDDSimulator(
        threads=args.threads,
        fusion=args.fusion,
        memory_budget_bytes=args.memory_budget,
        force_convert_at=args.force_convert_at,
        identity_skip=not args.no_identity_skip,
        qubit_order=args.qubit_order,
    )
    _log.info(
        "sweeping %s (%d qubits, %d gates) over %d row(s) on %s",
        circuit.name, circuit.num_qubits, len(circuit.gates), len(rows),
        sim.name,
    )
    result = sim.simulate_sweep(
        circuit, rows, checkpoint_path=args.checkpoint
    )
    runtime = result.runtime_seconds
    payload = {
        "circuit": circuit.name,
        "qubits": circuit.num_qubits,
        "gates": len(circuit.gates),
        "backend": result.backend,
        "rows": result.num_rows,
        "unique_rows": result.metadata.get("unique_rows"),
        "groups": result.metadata.get("groups"),
        "mode": result.metadata.get("mode"),
        "runtime_seconds": round(runtime, 6),
        "rows_per_second": round(result.num_rows / runtime, 3)
        if runtime else 0.0,
        "peak_memory_mb": round(
            result.peak_memory_bytes / (1024 * 1024), 3
        ),
    }
    if args.json:
        obs = result.metadata.get("obs")
        if obs is not None:
            payload["obs"] = {
                "counters": obs.get("counters", {}),
                "gauges": obs.get("gauges", {}),
            }
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key}: {value}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args)
    rows = []
    reference = None
    for backend in ("flatdd", "quantumpp", "ddsim"):
        args.backend = backend
        sim = _make_simulator(args)
        tracer = _make_tracer(args)
        run_kwargs = {"tracer": tracer}
        if backend in ("flatdd", "ddsim") and args.timeout:
            run_kwargs["max_seconds"] = args.timeout
        _log.info("running %s on %s", circuit.name, sim.name)
        result = sim.run(circuit, **run_kwargs)
        fidelity = None
        if reference is None:
            reference = result
        elif not result.metadata.get("timed_out"):
            fidelity = result.fidelity(reference)
        if tracer is not None and args.trace:
            path = _backend_trace_path(args.trace, backend)
            events = write_chrome_trace(path, tracer)
            _log.info("wrote %d trace events to %s", events, path)
        rows.append((result, fidelity, tracer))
    print(f"{circuit.name}: {circuit.num_qubits} qubits, "
          f"{len(circuit.gates)} gates")
    print(f"{'backend':24s} {'runtime (s)':>12s} {'mem (MB)':>10s} "
          f"{'fidelity':>10s}")
    for result, fidelity, _tracer in rows:
        timed_out = result.metadata.get("timed_out")
        runtime = (f"> {args.timeout:g}" if timed_out
                   else f"{result.runtime_seconds:.3f}")
        fid = "-" if fidelity is None else f"{fidelity:.8f}"
        print(f"{result.backend:24s} {runtime:>12s} "
              f"{result.peak_memory_mb:>10.2f} {fid:>10s}")
    if args.profile:
        for result, _fidelity, tracer in rows:
            print()
            print(f"-- {result.backend} --")
            print(format_summary_table(tracer, result.runtime_seconds))
    return 0


def _report_trace_file(path: str) -> int:
    """Summarize one telemetry/trace artifact as a terminal table.

    Accepts a TelemetrySampler JSONL time series, a tracer JSONL event
    stream, or a Chrome trace-event JSON file; picks by content, not
    extension, so renamed artifacts still work.
    """
    from repro.obs import format_summary_table, format_telemetry_report
    from repro.obs.telemetry import load_telemetry
    from repro.obs.tracer import Span, Tracer

    with open(path, "r", encoding="utf-8") as fh:
        head = fh.read(4096).lstrip()
    if head.startswith("{") and '"traceEvents"' in head:
        # Chrome trace: rebuild the spans and reuse the --profile table.
        with open(path, "r", encoding="utf-8") as fh:
            events = json.load(fh).get("traceEvents", [])
        tracer = Tracer()
        for e in events:
            if e.get("ph") != "X":
                continue
            tracer.spans.append(
                Span(
                    name=e.get("name", "?"),
                    category=e.get("cat", "span"),
                    start=e.get("ts", 0.0) / 1e6,
                    duration=e.get("dur", 0.0) / 1e6,
                    thread_id=e.get("tid", 0),
                    args=e.get("args") or None,
                )
            )
        job_spans = [s for s in tracer.spans if s.category == "job"]
        print(f"trace {path}: {len(tracer.spans)} span(s), "
              f"{len(job_spans)} job-tree span(s)")
        print(format_summary_table(tracer, tracer.wall_seconds()))
        return 0
    try:
        records = load_telemetry(path)
    except ValueError as exc:
        raise ReproError(
            f"{path}: not a telemetry/trace file ({exc})"
        ) from exc
    if records and "counters" in records[0]:
        print(format_telemetry_report(records, path))
        return 0
    # Tracer JSONL: reuse the phase table via reconstructed spans.
    tracer = Tracer()
    for r in records:
        if r.get("type") != "span":
            continue
        tracer.spans.append(
            Span(
                name=r.get("name", "?"),
                category=r.get("cat", "span"),
                start=r.get("ts", 0.0),
                duration=r.get("dur", 0.0),
                thread_id=r.get("tid", 0),
                depth=r.get("depth", 0),
                args=r.get("args") or None,
            )
        )
    print(f"trace {path}: {len(tracer.spans)} span(s)")
    print(format_summary_table(tracer, tracer.wall_seconds()))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Summarize a trace/telemetry file, or concatenate bench results."""
    import glob

    if args.trace_file:
        return _report_trace_file(args.trace_file)
    results_dir = args.results_dir
    files = sorted(glob.glob(os.path.join(results_dir, "*.txt")))
    if not files:
        _log.error(
            "no result files under %s; run "
            "`pytest benchmarks/ --benchmark-only` first",
            results_dir,
        )
        return 1
    sections = []
    for path in files:
        with open(path, "r", encoding="utf-8") as fh:
            sections.append(fh.read().rstrip())
    report = (
        "FlatDD reproduction: experiment report\n"
        + "#" * 46 + "\n\n"
        + "\n\n".join(sections)
        + "\n"
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report)
        print(f"wrote {len(files)} experiment sections to {args.output}")
    else:
        print(report, end="")
    return 0


def cmd_summarize(args: argparse.Namespace) -> int:
    from repro.circuits import summarize

    circuit = _load_circuit(args)
    s = summarize(circuit)
    print(f"circuit:           {circuit.name}")
    print(f"qubits:            {s.num_qubits}")
    print(f"gates:             {s.num_gates}")
    print(f"depth:             {s.depth}")
    print(f"two-qubit gates:   {s.two_qubit_gates} "
          f"({100 * s.two_qubit_fraction:.1f}%)")
    print(f"entangling depth:  {s.entangling_depth}")
    print(f"parallelism:       {s.parallelism:.2f} gates/layer")
    print("gate counts:       "
          + ", ".join(f"{k}={v}" for k, v in sorted(s.gate_counts.items())))
    return 0


def cmd_transpile(args: argparse.Namespace) -> int:
    from repro.circuits import decompose, to_qasm

    circuit = _load_circuit(args)
    out, phase = decompose(circuit)
    text = to_qasm(out)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {len(out)} gates to {args.output} "
              f"(global phase {phase:.6f})")
    else:
        print(text, end="")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run a JSONL batch manifest through the simulation service."""
    from repro.common.config import ServeConfig
    from repro.serve import run_manifest
    from repro.verify.fuzz import plant_fault

    config = ServeConfig(
        backend=args.backend,
        threads=args.threads,
        workers=args.workers,
        use_thread_pool=args.workers > 1 and args.thread_pool,
        queue_capacity=args.queue_capacity,
        max_qubits=args.max_qubits,
        default_deadline_seconds=args.deadline,
        max_retries=args.max_retries,
        cache_max_entries=args.cache_entries,
    )
    if args.resume and not args.journal:
        raise ReproError("--resume requires --journal PATH")
    if args.journal_fsync and not args.journal:
        raise ReproError("--journal-fsync requires --journal PATH")
    tracer = _make_tracer(args)
    service = sampler = None
    if args.processes > 0:
        import signal

        from repro.cluster.broker import ClusterService

        service = ClusterService(
            config, tracer=tracer, processes=args.processes,
            journal_path=args.journal,
        )

        def _graceful_drain(signum, frame):
            _log.warning(
                "SIGTERM: draining the fleet (in-flight jobs finish, the "
                "rest stay journaled for --resume)"
            )
            service.request_drain()

        try:
            signal.signal(signal.SIGTERM, _graceful_drain)
        except ValueError:  # pragma: no cover - not the main thread
            pass
    if args.telemetry or args.prometheus:
        from repro.obs import TelemetrySampler
        from repro.serve import SimulationService

        if service is None:
            service = SimulationService(config, tracer=tracer)
        sampler = TelemetrySampler(
            service.registry,
            jsonl_path=args.telemetry,
            interval_seconds=args.telemetry_interval,
            prometheus_path=args.prometheus,
        ).start()
    try:
        with plant_fault(args.plant_bug):
            report, _jobs = run_manifest(
                args.manifest, config=config, tracer=tracer,
                service=service,
                journal_path=args.journal, resume=args.resume,
                journal_fsync=args.journal_fsync or None,
            )
    finally:
        if sampler is not None:
            sampler.stop()
            _log.info(
                "telemetry: %d sample(s)%s%s", sampler.samples_taken,
                f" -> {args.telemetry}" if args.telemetry else "",
                f", prometheus -> {args.prometheus}" if args.prometheus
                else "",
            )
        if service is not None:
            service.close()
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format_text())
        failed = [
            row for row in report.job_rows
            if row["state"] in ("FAILED", "TIMEOUT")
        ]
        for row in failed:
            print(
                f"  {row['state']} {row['job_id']} ({row['circuit']}): "
                f"{row['error']}"
            )
    if tracer is not None:
        if args.trace:
            events = write_chrome_trace(args.trace, tracer)
            _log.info("wrote %d trace events to %s", events, args.trace)
        if args.profile:
            print()
            print(format_summary_table(tracer, report.elapsed_seconds))
    return 0 if report.ok else 1


def cmd_bench_compare(args: argparse.Namespace) -> int:
    """Compare two BENCH_*.json records; non-zero exit on regression."""
    from repro.bench.registry import compare_records, load_bench_record

    try:
        baseline = load_bench_record(args.baseline)
        current = load_bench_record(args.current)
    except (ValueError, json.JSONDecodeError) as exc:
        raise ReproError(f"bad benchmark record: {exc}") from exc
    per_metric: dict[str, float] = {}
    for spec in args.metric_threshold or []:
        name, sep, value = spec.partition("=")
        try:
            fraction = float(value)
        except ValueError:
            sep = ""
        if not sep:
            raise ReproError(
                f"--metric-threshold takes NAME=FRACTION, got {spec!r}"
            )
        per_metric[name] = fraction
    comparison = compare_records(
        baseline, current,
        threshold=args.threshold,
        per_metric_threshold=per_metric,
    )
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2))
    else:
        print(comparison.format_text())
    if args.report_only:
        return 0
    return 0 if comparison.ok else 1


def cmd_equivalence(args: argparse.Namespace) -> int:
    with open(args.file1, "r", encoding="utf-8") as fh:
        c1 = parse_qasm(fh.read(), name=args.file1)
    with open(args.file2, "r", encoding="utf-8") as fh:
        c2 = parse_qasm(fh.read(), name=args.file2)
    result = check_equivalence(c1, c2, strategy=args.strategy)
    verdict = "EQUIVALENT" if result.equivalent else "NOT EQUIVALENT"
    print(f"{verdict} (method={result.method}, "
          f"peak miter nodes={result.peak_nodes})")
    if result.equivalent and abs(result.phase - 1.0) > 1e-9:
        print(f"global phase: {result.phase:.6f}")
    return 0 if result.equivalent else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential/metamorphic fuzz campaign (see docs/TESTING.md)."""
    from repro.verify.fuzz import ORACLES, REGIMES, run_campaign

    if args.list_oracles:
        for name, (family, _fn) in ORACLES.items():
            print(f"{name:32s} {family}")
        return 0
    regimes = tuple(args.regimes.split(",")) if args.regimes else None
    oracles = args.oracles.split(",") if args.oracles else None
    tracer = _make_tracer(args)
    result = run_campaign(
        seed=args.seed,
        iterations=args.iterations,
        budget_seconds=args.budget_seconds,
        regimes=regimes,
        oracles=oracles,
        max_qubits=args.max_qubits,
        max_gates=args.max_gates,
        threads=args.threads,
        shrink=not args.no_shrink,
        out_dir=None if args.no_persist else args.out_dir,
        plant_bug=args.plant_bug,
        tracer=tracer,
    )
    if args.json:
        print(json.dumps(result.summary_dict(), indent=2))
    else:
        checks = sum(result.oracle_runs.values())
        print(
            f"fuzz: seed={result.seed} iterations={result.iterations} "
            f"oracle checks={checks} violations={len(result.violations)} "
            f"({result.seconds:.1f}s"
            + (", stopped by budget)" if result.stopped_by_budget else ")")
        )
        for name in result.oracle_runs:
            tier = result.worst_tier.get(name, "-")
            print(
                f"  {name:32s} runs={result.oracle_runs[name]:5d} "
                f"worst tier={tier}"
            )
        for v in result.violations:
            where = v.regression_path or "(not persisted)"
            print(
                f"  VIOLATION iter={v.iteration} oracle={v.outcome.oracle} "
                f"max_error={v.outcome.max_error:.3g} "
                f"shrunk {v.original_gates} -> {v.shrunk_gates} gates "
                f"on {v.shrunk_qubits} qubits -> {where}"
            )
    if tracer is not None:
        if args.trace:
            events = write_chrome_trace(args.trace, tracer)
            _log.info("wrote %d trace events to %s", events, args.trace)
        if args.profile:
            print()
            print(format_summary_table(tracer, result.seconds))
    return 0 if result.ok else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    """Seeded chaos campaign against the process fleet (docs/RESILIENCE.md)."""
    from repro.chaos import REGIMES, load_schedule, run_chaos_campaign

    if args.list_faults:
        for name, kinds in sorted(REGIMES.items()):
            print(f"{name:12s} {' '.join(kinds)}")
        return 0
    regimes = args.regimes.split(",") if args.regimes else None
    if regimes:
        for name in regimes:
            if name not in REGIMES:
                raise ReproError(
                    f"unknown chaos regime {name!r} "
                    f"(have {sorted(REGIMES)})"
                )
    schedule = load_schedule(args.schedule) if args.schedule else None
    try:
        result = run_chaos_campaign(
            seed=args.seed,
            iterations=1 if schedule is not None else args.iterations,
            processes=args.processes,
            regimes=regimes,
            schedule=schedule,
            shrink=not args.no_shrink,
            out_dir=args.out_dir,
            plant_bug=args.plant_bug,
            time_budget=args.time_budget,
            progress=None if args.json else print,
        )
    except ValueError as exc:
        raise ReproError(str(exc)) from exc
    if args.json:
        print(json.dumps(result.summary_dict(), indent=2))
    else:
        print(result.format_text())
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlatDD reproduction: hybrid DD/flat-array quantum "
        "circuit simulation",
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log to stderr via the 'repro' logger (-v INFO, -vv DEBUG)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("families", help="list circuit generator families")
    p.set_defaults(func=cmd_families)

    p = sub.add_parser("simulate", help="simulate one circuit")
    _add_circuit_args(p)
    p.add_argument("--backend", default="flatdd",
                   choices=["flatdd", "ddsim", "quantumpp"])
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--fusion", default="none",
                   choices=["none", "cost", "koperations"])
    p.add_argument("--shots", type=int, default=0,
                   help="sample this many bitstrings instead of listing "
                        "exact top outcomes")
    p.add_argument("--sample-seed", type=int, default=0)
    p.add_argument("--top", type=int, default=5)
    p.add_argument("--json", action="store_true")
    p.add_argument("--trace", metavar="PATH",
                   help="write a Chrome trace-event JSON of the run "
                        "(open in Perfetto / chrome://tracing)")
    p.add_argument("--profile", action="store_true",
                   help="print a per-phase timing breakdown")
    p.add_argument("--no-plan-cache", action="store_true",
                   help="disable the DMAV plan compiler / buffer arena "
                        "(flatdd only; bit-identical performance "
                        "ablation)")
    _add_dd_shrink_args(p)
    p.add_argument("--force-convert-at", type=int, default=None,
                   metavar="GATE",
                   help="force DD-to-array conversion right after this "
                        "gate index instead of waiting for the EWMA "
                        "trigger (flatdd only)")
    p.add_argument("--checkpoint", metavar="PATH", default=None,
                   help="rolling snapshot file (flatdd only; see "
                        "docs/RESILIENCE.md)")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   help="write the snapshot every N applied gates")
    p.add_argument("--resume-from", metavar="PATH", default=None,
                   help="continue bit-identically from a snapshot file")
    p.add_argument("--memory-budget", type=int, default=None,
                   help="memory budget in bytes (flatdd only): DD-phase "
                        "breach converts early, array-phase breach "
                        "checkpoints and exits with code 3")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser(
        "sweep",
        help="batched parameter sweep of one circuit template "
             "(flatdd simulate_sweep; see docs/PERFORMANCE.md)",
    )
    _add_circuit_args(p)
    p.add_argument("--params", metavar="PATH", default=None,
                   help="JSON array (or JSONL) of parameter rows binding "
                        "the template's parameter slots")
    p.add_argument("--points", type=int, default=None, metavar="N",
                   help="generate N random rows uniform in [-pi, pi) "
                        "instead of --params")
    p.add_argument("--sweep-seed", type=int, default=0,
                   help="rng seed for --points row generation")
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--fusion", default="none",
                   choices=["none", "cost", "koperations"])
    _add_dd_shrink_args(p)
    p.add_argument("--force-convert-at", type=int, default=None,
                   metavar="GATE",
                   help="force DD-to-array conversion right after this "
                        "gate index instead of waiting for the EWMA "
                        "trigger")
    p.add_argument("--memory-budget", type=int, default=None,
                   help="memory budget in bytes; a mid-sweep breach "
                        "checkpoints (with --checkpoint) and exits "
                        "with code 3")
    p.add_argument("--checkpoint", metavar="PATH", default=None,
                   help="write the diagnostic sweep snapshot here on a "
                        "memory-budget breach")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("compare", help="run all three backends")
    _add_circuit_args(p)
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--fusion", default="none",
                   choices=["none", "cost", "koperations"])
    _add_dd_shrink_args(p)
    p.add_argument("--timeout", type=float, default=30.0)
    p.add_argument("--trace", metavar="PATH",
                   help="write one Chrome trace per backend "
                        "(PATH gets the backend name inserted)")
    p.add_argument("--profile", action="store_true",
                   help="print a per-phase breakdown per backend")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "report",
        help="summarize a trace/telemetry file, or collect benchmark "
             "result tables into one report",
    )
    p.add_argument(
        "trace_file", nargs="?", default=None,
        help="telemetry JSONL, tracer JSONL, or Chrome trace file to "
             "summarize as a terminal table (omit to collect benchmark "
             "results instead)",
    )
    p.add_argument(
        "--results-dir",
        default="benchmarks/results",
        help="directory with the per-experiment .txt outputs",
    )
    p.add_argument("--output", "-o", help="write the report here")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "bench-compare",
        help="diff two BENCH_*.json benchmark records; exits non-zero "
             "on a regression beyond the threshold",
    )
    p.add_argument("baseline", help="baseline BENCH_*.json record")
    p.add_argument("current", help="current BENCH_*.json record")
    p.add_argument("--threshold", type=float, default=0.10,
                   help="allowed relative worsening per metric "
                        "(default 0.10 = 10%%)")
    p.add_argument("--metric-threshold", action="append", metavar="NAME=F",
                   help="per-metric override, e.g. "
                        "elapsed_seconds=0.25 (repeatable)")
    p.add_argument("--report-only", action="store_true",
                   help="always exit 0: print the comparison but do not "
                        "gate (CI report mode)")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_bench_compare)

    p = sub.add_parser("summarize", help="circuit structure summary")
    _add_circuit_args(p)
    p.set_defaults(func=cmd_summarize)

    p = sub.add_parser(
        "transpile", help="decompose to the {u3,p,rz,ry,cx} basis"
    )
    _add_circuit_args(p)
    p.add_argument("--output", "-o", help="write QASM here (default stdout)")
    p.set_defaults(func=cmd_transpile)

    p = sub.add_parser(
        "fuzz",
        help="randomized differential/metamorphic correctness campaign",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (every iteration derives from it)")
    p.add_argument("--iterations", type=int, default=100)
    p.add_argument("--budget-seconds", type=float, default=None,
                   help="stop after this much wall time even if iterations "
                        "remain")
    p.add_argument("--regimes", metavar="A,B,...",
                   help="restrict circuit regimes (default: all; see "
                        "docs/TESTING.md)")
    p.add_argument("--oracles", metavar="A,B,...",
                   help="restrict oracles (default: all)")
    p.add_argument("--list-oracles", action="store_true",
                   help="print the oracle catalog and exit")
    p.add_argument("--max-qubits", type=int, default=6)
    p.add_argument("--max-gates", type=int, default=60)
    p.add_argument("--threads", type=int, default=2)
    p.add_argument("--no-shrink", action="store_true",
                   help="keep failing circuits unminimized")
    p.add_argument("--out-dir", default="tests/data/fuzz_regressions",
                   help="where shrunk failing cases land as replayable "
                        "JSON files")
    p.add_argument("--no-persist", action="store_true",
                   help="report violations without writing regression files")
    p.add_argument("--plant-bug", metavar="NAME", default=None,
                   help="install a named fault (t-phase, swap-noop, "
                        "conversion-drop) to demo the harness end to end")
    p.add_argument("--json", action="store_true")
    p.add_argument("--trace", metavar="PATH",
                   help="write a Chrome trace-event JSON of the campaign")
    p.add_argument("--profile", action="store_true",
                   help="print the per-phase/oracle timing breakdown")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "chaos",
        help="seeded chaos-injection campaign against the process fleet "
             "(fault schedules + self-healing invariant checks; see "
             "docs/RESILIENCE.md)",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (every iteration's schedule "
                        "derives from it)")
    p.add_argument("--iterations", type=int, default=25)
    p.add_argument("--schedule", metavar="PATH", default=None,
                   help="replay one fault schedule from JSON instead of "
                        "drawing seeded schedules")
    p.add_argument("--regimes", metavar="A,B,...",
                   help="restrict fault regimes (transport, process, "
                        "disk, mixed; default: all)")
    p.add_argument("--list-faults", action="store_true",
                   help="print the fault vocabulary per regime and exit")
    p.add_argument("--processes", type=int, default=2,
                   help="worker fleet size under test")
    p.add_argument("--time-budget", type=float, default=60.0,
                   metavar="SECONDS",
                   help="per-iteration recovery deadline; exceeding it is "
                        "an invariant violation")
    p.add_argument("--no-shrink", action="store_true",
                   help="keep failing schedules unminimized")
    p.add_argument("--out-dir", default=None, metavar="DIR",
                   help="write failing schedules (original and shrunk) "
                        "here as replayable JSON")
    p.add_argument("--plant-bug", metavar="NAME", default=None,
                   help="install a named recovery bug (respawn-accounting, "
                        "resume-reexecute) to demo the harness end to end")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "serve",
        help="run a JSONL batch manifest through the simulation service",
    )
    p.add_argument("manifest", help="JSON Lines file, one job per line "
                                    "(see docs/SERVING.md)")
    p.add_argument("--backend", default="flatdd",
                   choices=["flatdd", "ddsim", "quantumpp"],
                   help="default backend for jobs that do not name one")
    p.add_argument("--threads", type=int, default=4,
                   help="simulator threads per job (clamped per circuit)")
    p.add_argument("--workers", type=int, default=1,
                   help="concurrent worker slots in the pool")
    p.add_argument("--thread-pool", action="store_true",
                   help="run worker slots on real threads (default inline)")
    p.add_argument("--processes", type=int, default=0, metavar="N",
                   help="execute on a fleet of N worker processes instead "
                        "of in-process threads (escapes the GIL; see "
                        "docs/SERVING.md 'Process fleet')")
    p.add_argument("--queue-capacity", type=int, default=4096,
                   help="admission limit; beyond it jobs are rejected")
    p.add_argument("--max-qubits", type=int, default=26,
                   help="admission limit on circuit width")
    p.add_argument("--deadline", type=float, default=None,
                   help="default per-job wall-clock budget in seconds")
    p.add_argument("--max-retries", type=int, default=2,
                   help="transient-fault retry budget per job")
    p.add_argument("--cache-entries", type=int, default=512,
                   help="result-cache entry bound (0 disables caching)")
    p.add_argument("--plant-bug", metavar="NAME", default=None,
                   help="install a named fault (e.g. transient-crash) to "
                        "demo the retry/failure paths end to end")
    p.add_argument("--journal", metavar="PATH", default=None,
                   help="write-ahead JSONL journal of job-state "
                        "transitions (crash durability)")
    p.add_argument("--resume", action="store_true",
                   help="replay an existing --journal first: DONE jobs "
                        "complete from the result cache, the rest re-run")
    p.add_argument("--journal-fsync", action="store_true",
                   help="fsync the journal after every record (survives "
                        "power loss, not just process crashes; slower)")
    p.add_argument("--telemetry", metavar="PATH", default=None,
                   help="sample the service metrics registry on an "
                        "interval into a JSONL time series "
                        "(summarize later with 'repro report PATH')")
    p.add_argument("--telemetry-interval", type=float, default=0.25,
                   metavar="SECONDS",
                   help="telemetry sampling interval (default 0.25s)")
    p.add_argument("--prometheus", metavar="PATH", default=None,
                   help="write a Prometheus text-exposition dump of the "
                        "final metrics snapshot")
    p.add_argument("--json", action="store_true")
    p.add_argument("--trace", metavar="PATH",
                   help="write a Chrome trace-event JSON of the batch")
    p.add_argument("--profile", action="store_true",
                   help="print the per-phase timing breakdown")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("equivalence", help="DD equivalence check")
    p.add_argument("file1")
    p.add_argument("file2")
    p.add_argument("--strategy", default="alternate",
                   choices=["alternate", "naive"])
    p.set_defaults(func=cmd_equivalence)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args.verbose)
    try:
        return args.func(args)
    except ResourceExhaustedError as exc:
        # Exit 3: the job needs more memory, retry elsewhere (possibly
        # resuming from exc.checkpoint_path).
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except CheckpointError as exc:
        # Exit 4: the snapshot itself is unusable; resuming is hopeless.
        print(f"error: {exc}", file=sys.stderr)
        return 4
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
