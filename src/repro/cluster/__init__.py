"""repro.cluster -- multi-process serving fleet.

The serving layer's admission-controlled queue, dedup scheduler, result
cache, journal, and reports all live in :mod:`repro.serve`; this package
adds the machinery to execute those batches across **OS processes**
instead of threads, escaping the GIL for CPU-bound simulation:

* :mod:`~repro.cluster.protocol` -- length-prefixed JSON+binary framing.
* :mod:`~repro.cluster.transport` -- loopback-TCP connections.
* :mod:`~repro.cluster.worker` -- the worker-process entry point.
* :mod:`~repro.cluster.supervisor` -- process spawn/watch/respawn.
* :mod:`~repro.cluster.breaker` -- respawn backoff + per-slot circuit
  breaker (crash-looping slots are quarantined).
* :mod:`~repro.cluster.broker` -- dispatch, fan-out, fault handling, and
  :class:`~repro.cluster.broker.ClusterService` (the drop-in service).

``repro serve --processes N`` is the CLI surface; see docs/SERVING.md.
"""

from repro.cluster.protocol import (
    MAX_HEADER_BYTES,
    MAX_PAYLOAD_BYTES,
    pack_frame,
    read_frame,
    unpack_frame,
)

__all__ = [
    "MAX_HEADER_BYTES",
    "MAX_PAYLOAD_BYTES",
    "ClusterDispatcher",
    "ClusterService",
    "SlotBreaker",
    "pack_frame",
    "read_frame",
    "unpack_frame",
]


def __getattr__(name):
    # Lazy: importing repro.cluster from a spawned worker must not drag
    # in the broker (and its service/scheduler imports) before needed.
    if name in ("ClusterDispatcher", "ClusterService"):
        from repro.cluster import broker

        return getattr(broker, name)
    if name == "SlotBreaker":
        from repro.cluster.breaker import SlotBreaker

        return SlotBreaker
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
