"""Per-slot failure accounting: respawn backoff and circuit breaking.

PR 8's broker respawned a dead worker slot immediately and
unconditionally (up to a small budget).  That is the wrong shape for a
*crash-looping* slot -- a worker that dies on startup (bad interpreter
state, poisoned cache directory, OOM-killer target) gets respawned in a
hot loop, burning a process spawn (~0.35 s of interpreter start here)
per iteration and flooding the journal with death records.

:class:`SlotBreaker` gives every slot two independent guards:

* **Jittered exponential backoff** -- the n-th *consecutive* death of a
  slot delays its replacement by ``base * 2**(n-1)`` seconds (capped),
  multiplied by a deterministic jitter in ``[0.5, 1.5)`` so a fleet
  whose workers all died together does not respawn in lockstep.
* **Circuit breaker** -- a slot that dies ``failures`` times inside a
  sliding ``window_seconds`` window is *quarantined*: no further
  respawns, and the broker subtracts its capacity from admission
  control (see ``ClusterDispatcher.brownout_reason``).

A slot that completes a job (``record_success``) resets both its
consecutive-death count and its failure window: crash *looping* trips
the breaker, an occasional death amid useful work does not.

Determinism: the jitter is derived from ``(seed, slot, n)`` via
``random.Random``, never from wall-clock entropy, so a chaos replay
observes identical backoff decisions.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["SlotBreaker"]


class SlotBreaker:
    """Failure window + backoff state for a fleet of worker slots.

    Single-threaded by design: the broker's dispatch loop is the only
    caller (reader threads publish events, they never touch the breaker
    directly).
    """

    def __init__(
        self,
        slots: int,
        failures: int = 3,
        window_seconds: float = 60.0,
        backoff_base: float = 0.25,
        backoff_max: float = 10.0,
        registry: "MetricsRegistry | None" = None,
        seed: int = 0,
    ) -> None:
        self.slots = slots
        self.failures = failures
        self.window_seconds = window_seconds
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.registry = registry
        self.seed = seed
        #: Sliding window of death timestamps per slot.
        self._window: dict[int, list[float]] = {s: [] for s in range(slots)}
        #: Consecutive deaths since the last completed job, per slot.
        self._consecutive: dict[int, int] = {s: 0 for s in range(slots)}
        #: Lifetime death count per slot (never reset; for stats/tests).
        self.death_counts: dict[int, int] = {s: 0 for s in range(slots)}
        self._quarantined: set[int] = set()

    # -- recording ---------------------------------------------------

    def record_failure(self, slot: int, now: float) -> float | None:
        """Note one death of ``slot`` at monotonic time ``now``.

        Returns the backoff delay (seconds) before the slot may be
        respawned, or ``None`` if this death tripped the breaker and the
        slot is now quarantined (no respawn).  Idempotent per actual
        death -- the caller dedupes EOF-vs-poll double reports.
        """
        if slot in self._quarantined:
            return None
        self.death_counts[slot] += 1
        self._consecutive[slot] += 1
        window = self._window[slot]
        window.append(now)
        cutoff = now - self.window_seconds
        while window and window[0] < cutoff:
            window.pop(0)
        if self.registry is not None:
            self.registry.counter("cluster.breaker.failures").inc()
        if len(window) >= self.failures:
            self._quarantined.add(slot)
            if self.registry is not None:
                self.registry.counter("cluster.breaker.trips").inc()
                self.registry.gauge("cluster.breaker.quarantined").set(
                    len(self._quarantined)
                )
            return None
        if self.registry is not None:
            self.registry.counter("cluster.breaker.backoffs").inc()
        return self.backoff_delay(slot, self._consecutive[slot])

    def record_success(self, slot: int) -> None:
        """A worker on ``slot`` completed a job: reset its guards."""
        self._consecutive[slot] = 0
        self._window[slot].clear()

    # -- queries -----------------------------------------------------

    def backoff_delay(self, slot: int, consecutive: int) -> float:
        """Jittered exponential delay for the n-th consecutive death."""
        n = max(1, consecutive)
        delay = min(self.backoff_max, self.backoff_base * 2 ** (n - 1))
        rng = random.Random(f"{self.seed}:{slot}:{n}")
        return delay * (0.5 + rng.random())

    def is_quarantined(self, slot: int) -> bool:
        return slot in self._quarantined

    @property
    def quarantined(self) -> frozenset[int]:
        return frozenset(self._quarantined)

    def healthy_slots(self) -> int:
        """Slots not quarantined (alive, backing off, or respawnable)."""
        return self.slots - len(self._quarantined)

    def stats(self) -> dict:
        return {
            "quarantined": sorted(self._quarantined),
            "death_counts": dict(self.death_counts),
        }
