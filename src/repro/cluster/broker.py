"""Broker: dispatches batch groups to worker processes over the wire.

:class:`ClusterDispatcher` is the process-fleet drop-in for the
in-process :class:`~repro.serve.workers.WorkerPool`: it exposes the same
``execute_groups(groups, cache) / internal_errors / close()`` surface,
so :class:`~repro.serve.service.SimulationService.drain` (and therefore
manifests, reports, journaling, and ``--resume``) work unchanged on top
of it.  :class:`ClusterService` is exactly that composition.

Semantics mirror the thread pool's group execution on purpose -- the
fleet must be bit-identical to a single process:

* A group's *representative* job is dispatched to one worker; members
  are fanned out from the result cache when it completes (cache hits by
  construction, same as the in-process path).
* A FAILED/TIMEOUT representative fails alone; the group requeues so the
  next member executes fresh.
* Shots are (re)sampled broker-side by the shared
  :func:`~repro.serve.workers.finish_job` from ``(state, sample_seed)``.

Fault handling:

* **Dead workers** are detected two ways: the per-connection reader
  thread sees the socket EOF within milliseconds of a crash/SIGKILL, and
  a stale heartbeat (worker alive but wedged) gets the process killed,
  which becomes that same EOF.  Either way the in-flight job requeues.
* **Requeues are bounded** by the job's existing retry budget
  (``max_retries``): each fatal dispatch burns one retry; past the
  budget the job FAILs permanently, exactly like a persistent transient
  fault in-process.
* **Crashed slots respawn** behind a :class:`~repro.cluster.breaker
  .SlotBreaker`: each consecutive death delays the replacement by a
  jittered exponential backoff, and a slot that dies K times inside a
  window is *quarantined* -- no more respawns, capacity subtracted from
  admission control.  So one bad worker neither shrinks the fleet for
  the rest of the batch nor burns CPU in a spawn loop.
* **Brownout**: when the fleet's healthy capacity falls below
  ``ServeConfig.brownout_min_alive_fraction``, new submissions are shed
  at admission (:meth:`ClusterDispatcher.brownout_reason`, consulted by
  the job queue's ``shed_check``) with a structured reject-with-reason
  instead of queuing work the fleet cannot absorb.
* **Graceful drain** (:meth:`ClusterDispatcher.request_drain`, wired to
  SIGTERM by the CLI) stops new dispatch, lets in-flight jobs finish,
  and leaves the rest PENDING for ``--resume``.

Chaos hook points: a :attr:`ClusterDispatcher.chaos` controller (see
:mod:`repro.chaos.injectors`), when set, observes worker connect-backs
(``worker_up``), job dispatches (``dispatch``), and result frames
(``result``) from inside the dispatch loop.  Production leaves it None;
the hooks cost one attribute check each.
"""

from __future__ import annotations

import logging
import queue as queue_mod
import secrets
import threading
import time
from collections import deque

import numpy as np

from repro.cluster import protocol
from repro.cluster.breaker import SlotBreaker
from repro.cluster.supervisor import WorkerSupervisor, worker_spec
from repro.cluster.transport import Connection, Listener
from repro.common.config import ServeConfig
from repro.common.errors import ProtocolError, ServeError
from repro.common.wire import array_from_bytes
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.serve.cache import ResultCache
from repro.serve.jobs import Job, JobState
from repro.serve.service import SimulationService
from repro.serve.workers import (
    finalize_job_trace,
    finish_job,
    publish_sweep_rows,
)

__all__ = ["ClusterDispatcher", "ClusterService"]

_log = logging.getLogger("repro.cluster.broker")

#: How often workers beat, and how long silence means "wedged".
DEFAULT_HEARTBEAT_INTERVAL = 0.5
DEFAULT_HEARTBEAT_TIMEOUT = 15.0


class ClusterDispatcher:
    """Owns the fleet: listener, worker lifecycles, and job dispatch."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        tracer=None,
        registry: MetricsRegistry | None = None,
        processes: int = 2,
        journal_path: str | None = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
    ) -> None:
        if processes < 1:
            raise ServeError(f"need at least 1 process, got {processes}")
        self.config = config or ServeConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = registry if registry is not None else MetricsRegistry()
        self.processes = processes
        self.heartbeat_timeout = heartbeat_timeout
        self.internal_errors = 0
        self.listener = Listener(io_timeout=self.config.io_deadline_seconds)
        #: Per-spawn secret: a connecting peer that cannot echo it is not
        #: one of our workers and is dropped at the handshake.
        self.token = secrets.token_hex(16)
        self.supervisor = WorkerSupervisor(
            processes,
            make_spec=lambda slot: worker_spec(
                slot,
                self.listener.host,
                self.listener.port,
                self.token,
                self.config,
                journal_path,
                heartbeat_interval,
            ),
        )
        #: Reader/accept threads publish here; only the dispatch loop
        #: (the thread inside ``execute_groups``) consumes.
        self._events: queue_mod.Queue = queue_mod.Queue()
        self._conns: dict[int, Connection] = {}
        self._lock = threading.Lock()
        self._last_beat: dict[int, float] = {}
        self._started = False
        self._closed = False
        self._draining = False
        #: Backoff + quarantine accounting for crash-looping slots.
        self.breaker = SlotBreaker(
            processes,
            failures=self.config.breaker_failures,
            window_seconds=self.config.breaker_window_seconds,
            backoff_base=self.config.respawn_backoff_base,
            backoff_max=self.config.respawn_backoff_max,
            registry=self.registry,
        )
        #: slot -> monotonic time its delayed respawn becomes due.
        self._respawn_due: dict[int, float] = {}
        #: Dead pids already run through the breaker: the EOF "down"
        #: event and :meth:`WorkerSupervisor.poll_dead` both report the
        #: same death; the breaker must count it once.
        self._noted_dead_pids: set[int] = set()
        self._last_maintenance = 0.0
        #: Chaos controller hook (:mod:`repro.chaos.injectors`); None in
        #: production.
        self.chaos = None
        # Fleet stats surfaced in the serve report's ``cluster`` block.
        self.dispatched = 0
        self.results = 0
        self.worker_deaths = 0
        self.requeues = 0
        self.brownout_rejections = 0

    # -- fleet lifecycle ----------------------------------------------

    def start(self) -> None:
        """Spawn the fleet and begin accepting connect-backs (idempotent)."""
        if self._started:
            return
        self._started = True
        self.supervisor.start_all()
        threading.Thread(
            target=self._accept_loop, name="cluster-accept", daemon=True
        ).start()

    def request_drain(self) -> None:
        """Graceful drain: no new dispatch; in-flight jobs finish."""
        self._draining = True

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with self._lock:
            conns = list(self._conns.values())
        for conn in conns:
            try:
                conn.send({"type": protocol.MSG_DRAIN})
            except (OSError, ProtocolError):
                pass
        self.supervisor.terminate_all()
        for conn in conns:
            conn.close()
        self.listener.close()

    # -- connection plumbing (accept + reader threads) -----------------

    def _accept_loop(self) -> None:
        while not self._closed:
            conn = self.listener.accept(timeout=0.2)
            if conn is None:
                continue
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def _serve_connection(self, conn: Connection) -> None:
        """Handshake one connect-back, then pump its frames as events."""
        try:
            frame = conn.recv()
        except (ProtocolError, OSError):
            conn.close()
            return
        if frame is None:
            conn.close()
            return
        header, _ = frame
        if header.get("type") != protocol.MSG_HELLO or not secrets.compare_digest(
            str(header.get("token", "")), self.token
        ):
            _log.warning("rejecting connection with bad hello/token")
            conn.close()
            return
        slot = int(header.get("slot", -1))
        with self._lock:
            self._conns[slot] = conn
        self._events.put(("up", slot, conn, None, None))
        while True:
            try:
                frame = conn.recv()
            except (ProtocolError, OSError):
                break
            if frame is None:
                break
            msg, payload = frame
            kind = msg["type"]
            if kind == protocol.MSG_HEARTBEAT:
                self._events.put(("beat", slot, conn, None, None))
            elif kind == protocol.MSG_RESULT:
                self._events.put(("result", slot, conn, msg, payload))
            elif kind == protocol.MSG_BYE:
                break
        self._events.put(("down", slot, conn, None, None))

    # -- the dispatch loop --------------------------------------------

    def execute_groups(self, groups, cache: ResultCache) -> None:
        """Run every group on the fleet; never raises on behalf of a job."""
        if not groups:
            return
        # The fleet spawns lazily inside _fill_workers: a drain whose
        # groups are all served from cache (e.g. a full --resume) never
        # pays for worker processes at all.
        now = time.monotonic()
        with self._lock:
            ready = set(self._conns)
        for slot in ready:
            # Fresh staleness baseline per drain: beats queued between
            # drains have not been consumed yet and must not read as
            # silence.
            self._last_beat[slot] = now
        pending: deque = deque(groups)
        inflight: dict[int, tuple] = {}
        dispatch_counts: dict[str, int] = {}
        while pending or inflight:
            if self._draining and not inflight:
                break  # leave the rest PENDING for --resume
            if not self._draining:
                self._fill_workers(pending, ready, inflight, dispatch_counts, cache)
            if not pending and not inflight:
                break
            # Time-based, not idle-based: a steady stream of heartbeats
            # must not starve stale-detection or due respawns.
            self._maintenance(pending, ready, inflight, dispatch_counts)
            try:
                kind, slot, conn, msg, payload = self._events.get(timeout=0.05)
            except queue_mod.Empty:
                continue
            if kind == "up":
                self._last_beat[slot] = time.monotonic()
                if self.chaos is not None:
                    self.chaos.worker_up(self, slot, conn)
                if slot not in inflight:
                    ready.add(slot)
            elif kind == "beat":
                with self._lock:
                    current = self._conns.get(slot)
                if current is conn:
                    self._last_beat[slot] = time.monotonic()
                    self.registry.counter("cluster.heartbeats").inc()
            elif kind == "result":
                entry = inflight.get(slot)
                if entry is None or entry[2] is not conn:
                    continue  # stale frame from a replaced connection
                if msg.get("job_id") not in (None, entry[1].job_id):
                    # A duplicated or delayed frame from an earlier
                    # dispatch must not complete the job currently in
                    # flight with the wrong state vector.
                    self.registry.counter("cluster.stale_results").inc()
                    continue
                if self.chaos is not None:
                    msg, payload = self.chaos.result(self, slot, msg, payload)
                group, job, _ = inflight.pop(slot)
                ready.add(slot)
                self.breaker.record_success(slot)
                self.registry.gauge(f"cluster.worker.w{slot}.inflight").set(0)
                self._handle_result(
                    group, job, msg, payload, cache, pending
                )
            elif kind == "down":
                self._on_worker_down(
                    slot, conn, pending, inflight, ready, dispatch_counts
                )

    def _fill_workers(
        self, pending, ready, inflight, dispatch_counts, cache
    ) -> None:
        """Serve cached groups, then hand one group to each idle worker."""
        while pending:
            group = pending[0]
            job = self._next_member(group)
            if job is None:
                pending.popleft()
                continue
            if self._serve_group_from_cache(group, job, cache):
                pending.popleft()
                continue
            self.start()  # this group needs a real worker
            if not ready:
                return
            pending.popleft()
            slot = min(ready)  # deterministic placement, lowest slot first
            ready.discard(slot)
            if not self._dispatch(slot, group, job, inflight, dispatch_counts):
                pending.appendleft(group)  # connection raced away; retry

    @staticmethod
    def _next_member(group) -> Job | None:
        """The group's current representative: redispatch a RUNNING rep
        (its worker died), else the first still-PENDING member."""
        for job in group.jobs:
            if job.state is JobState.RUNNING:
                return job
        for job in group.jobs:
            if job.state is JobState.PENDING:
                return job
        return None

    def _dispatch(
        self, slot: int, group, job: Job, inflight, dispatch_counts
    ) -> bool:
        with self._lock:
            conn = self._conns.get(slot)
        if conn is None:  # pragma: no cover - raced a disconnect
            return False
        if job.state is JobState.PENDING:
            job.transition(JobState.RUNNING)
        if job.trace is not None:
            job.trace.mark("run")
        dispatch_counts[job.job_id] = dispatch_counts.get(job.job_id, 0) + 1
        if self.chaos is not None:
            self.chaos.dispatch(self, slot, job)
        try:
            conn.send(
                {"type": protocol.MSG_JOB, "job": job.to_wire()},
                b"",
            )
        except (OSError, ProtocolError):
            # The reader thread will surface this as a "down" event,
            # which requeues the job like any other dead worker.  A
            # send deadline (ProtocolError "timeout") means the peer is
            # wedged; the stale-heartbeat path kills it the same way.
            pass
        inflight[slot] = (group, job, conn)
        self.dispatched += 1
        self.registry.counter("cluster.jobs.dispatched").inc()
        self.registry.counter(f"cluster.worker.w{slot}.jobs").inc()
        self.registry.gauge(f"cluster.worker.w{slot}.inflight").set(1)
        return True

    # -- completing jobs ----------------------------------------------

    def _serve_group_from_cache(self, group, rep: Job, cache) -> bool:
        """Finish the whole group from cache if its result is present.

        Mirrors the in-process pool's cache-check-before-execute; this
        is also what makes ``--resume`` zero-re-execution: journal-seeded
        entries complete their groups without any dispatch.
        """
        if rep.param_sets is not None:
            entries = [
                cache.get(rep.row_cache_key(row)) for row in rep.param_sets
            ]
            if any(entry is None for entry in entries):
                return False
            state = np.vstack([entry.state for entry in entries])
            runtime = max(entry.runtime_seconds for entry in entries)
            metadata = {"mode": "sweep", "rows": len(entries)}
        else:
            entry = cache.get(group.key)
            if entry is None:
                return False
            state = entry.state
            runtime = entry.runtime_seconds
            metadata = entry.metadata
        for job in group.jobs:
            if job.done:
                continue
            if job.state is JobState.PENDING:
                job.transition(JobState.RUNNING)
            if job.trace is not None:
                job.trace.mark("run")
            self.registry.counter("serve.jobs.cache_hits").inc()
            finish_job(job, state, runtime, True, dict(metadata), self.registry)
            finalize_job_trace(job, self.registry, self.tracer)
        return True

    def _handle_result(
        self, group, job: Job, msg: dict, payload: bytes, cache, pending
    ) -> None:
        self.results += 1
        self.registry.counter("cluster.results").inc()
        job.attempts = max(job.attempts, int(msg.get("attempts", 1)))
        if msg.get("internal_error"):
            self.internal_errors += 1
            self.registry.counter("serve.worker.internal_errors").inc()
        state_name = msg.get("state")
        if state_name == JobState.DONE.value:
            try:
                state = array_from_bytes(msg["array"], payload)
            except (ProtocolError, KeyError) as exc:
                # A corrupt result is a transient fault: requeue within
                # the retry budget rather than trusting bad bytes.
                _log.warning(
                    "discarding corrupt result for job %s: %s",
                    job.job_id, exc,
                )
                self._requeue_or_fail(
                    group, job, pending, None,
                    f"corrupt result frame: {exc}",
                )
                return
            wire = msg.get("result") or {}
            runtime = float(wire.get("runtime_seconds", 0.0))
            backend = wire.get("backend", job.backend)
            metadata = dict(wire.get("metadata") or {})
            if job.param_sets is not None:
                publish_sweep_rows(job, state, runtime, cache, backend)
                metadata.setdefault("mode", "sweep")
                finish_job(
                    job, state, runtime, False, metadata, self.registry
                )
            else:
                entry = cache.put(
                    group.key,
                    state,
                    runtime,
                    metadata={"backend": backend, "producer": job.job_id},
                )
                finish_job(
                    job,
                    entry.state if entry is not None else state,
                    runtime,
                    False,
                    metadata,
                    self.registry,
                )
            finalize_job_trace(job, self.registry, self.tracer)
            if len(group.jobs) > 1:
                # Fan the duplicates out from the cache (bit-identical
                # states by construction, same as the in-process pool).
                self._serve_group_from_cache(group, job, cache)
        else:
            job.error = msg.get("error") or f"worker reported {state_name}"
            if state_name == JobState.TIMEOUT.value:
                job.transition(JobState.TIMEOUT)
                self.registry.counter("serve.jobs.timeout").inc()
                self.tracer.instant("job_timeout", "serve", job_id=job.job_id)
            else:
                job.transition(JobState.FAILED)
                self.registry.counter("serve.jobs.failed").inc()
                self.tracer.instant("job_failed", "serve", job_id=job.job_id)
            _log.warning("job %s %s: %s", job.job_id, state_name, job.error)
            finalize_job_trace(job, self.registry, self.tracer)
            if any(not j.done for j in group.jobs):
                # Next member becomes the representative and runs fresh.
                pending.appendleft(group)

    # -- fault paths ---------------------------------------------------

    def _on_worker_down(
        self, slot, conn, pending, inflight, ready, dispatch_counts
    ) -> None:
        with self._lock:
            if self._conns.get(slot) is conn:
                del self._conns[slot]
        ready.discard(slot)
        self._last_beat.pop(slot, None)
        entry = inflight.get(slot)
        if entry is not None and entry[2] is conn:
            group, job, _ = inflight.pop(slot)
            self.worker_deaths += 1
            self.registry.counter("cluster.worker.deaths").inc()
            self.registry.gauge(f"cluster.worker.w{slot}.inflight").set(0)
            _log.warning(
                "worker %d died with job %s in flight", slot, job.job_id
            )
            self._requeue_or_fail(
                group, job, pending, dispatch_counts,
                "worker process died while running the job",
            )
        self._note_death(slot)

    def _requeue_or_fail(
        self, group, job: Job, pending, dispatch_counts, reason: str
    ) -> None:
        """Requeue a lost in-flight job, bounded by its retry budget."""
        dispatches = (
            dispatch_counts.get(job.job_id, 1)
            if dispatch_counts is not None
            else job.attempts or 1
        )
        if dispatches > job.max_retries:
            job.error = (
                f"{reason}; {dispatches} dispatch(es) spent the retry budget"
            )
            job.transition(JobState.FAILED)
            self.registry.counter("serve.jobs.failed").inc()
            self.tracer.instant("job_failed", "serve", job_id=job.job_id)
            finalize_job_trace(job, self.registry, self.tracer)
            if any(not j.done for j in group.jobs):
                pending.appendleft(group)
            return
        self.requeues += 1
        self.registry.counter("cluster.requeues").inc()
        self.registry.counter("serve.jobs.retries").inc()
        self.tracer.instant(
            "requeue", "serve", job_id=job.job_id, reason=reason
        )
        # The job stays RUNNING (same as in-process retries); it is the
        # group's representative again on the next dispatch.
        pending.appendleft(group)

    def _note_death(self, slot: int) -> None:
        """Run one worker death through the breaker, once per pid.

        Deaths reach the loop twice -- socket EOF and
        :meth:`WorkerSupervisor.poll_dead` -- so this dedupes on the dead
        pid before recording the failure and scheduling the (backed-off)
        respawn.  A quarantine verdict cancels any scheduled respawn.
        """
        if self._draining or self._closed:
            return
        pid = self.supervisor.pid(slot)
        if pid is None or pid in self._noted_dead_pids:
            return
        if self.supervisor.is_alive(slot):
            # Connection dropped but the process lives: the stale
            # heartbeat path will kill it, and that death is noted.
            return
        self._noted_dead_pids.add(pid)
        now = time.monotonic()
        delay = self.breaker.record_failure(slot, now)
        if delay is None:
            self._respawn_due.pop(slot, None)
            _log.warning(
                "worker slot %d quarantined after %d deaths in %.0fs",
                slot,
                self.breaker.failures,
                self.breaker.window_seconds,
            )
            return
        self._respawn_due[slot] = now + delay
        _log.info(
            "worker slot %d death noted; respawn backed off %.2fs",
            slot, delay,
        )

    def _maintenance(self, pending, ready, inflight, dispatch_counts) -> None:
        """Stale heartbeats, silent deaths, due respawns, hopeless fleets.

        Called on every dispatch-loop iteration (rate-limited), not just
        when the event queue goes idle -- a fleet that heartbeats busily
        must still detect a wedged worker among the chatter.
        """
        now = time.monotonic()
        if now - self._last_maintenance < 0.05:
            return
        self._last_maintenance = now
        for slot, beat in list(self._last_beat.items()):
            if now - beat > self.heartbeat_timeout:
                _log.warning(
                    "worker %d heartbeat stale (%.1fs); killing it",
                    slot, now - beat,
                )
                del self._last_beat[slot]
                self.registry.counter("cluster.stale_heartbeats").inc()
                self.supervisor.kill(slot)
                with self._lock:
                    conn = self._conns.get(slot)
                if conn is not None:
                    conn.close()  # reader EOF turns this into "down"
        # Workers that died before ever connecting make no events.
        with self._lock:
            connected = set(self._conns)
        for slot in self.supervisor.poll_dead():
            if slot not in connected:
                self._note_death(slot)
        if (pending or inflight) and not self._draining and not self._closed:
            for slot, due in sorted(self._respawn_due.items()):
                if now >= due:
                    del self._respawn_due[slot]
                    if self.supervisor.respawn(slot):
                        self.registry.counter("cluster.respawns").inc()
        if (
            self._started
            and not ready
            and not inflight
            and pending
            and self.supervisor.alive == 0
            and not self._respawn_due
            and all(
                self.breaker.is_quarantined(slot)
                or not self.supervisor.can_respawn(slot)
                for slot in range(self.processes)
            )
        ):
            # The whole fleet is gone and cannot come back: fail what is
            # left instead of waiting forever.
            _log.error("no live workers remain; failing %d group(s)",
                       len(pending))
            while pending:
                group = pending.popleft()
                for job in group.jobs:
                    if job.done:
                        continue
                    if job.state is JobState.PENDING:
                        job.transition(JobState.RUNNING)
                    job.error = "no live worker processes remain"
                    job.transition(JobState.FAILED)
                    self.registry.counter("serve.jobs.failed").inc()
                    finalize_job_trace(job, self.registry, self.tracer)

    # -- admission / brownout ------------------------------------------

    def healthy_capacity(self) -> int:
        """Worker slots that are quarantine-free and alive or respawnable."""
        healthy = 0
        for slot in range(self.processes):
            if self.breaker.is_quarantined(slot):
                continue
            if (
                self._started
                and not self.supervisor.is_alive(slot)
                and not self.supervisor.can_respawn(slot)
                and slot not in self._respawn_due
            ):
                continue
            healthy += 1
        return healthy

    def brownout_reason(self) -> str | None:
        """Admission-time shed check (wired to ``JobQueue.shed_check``).

        Returns ``"brownout"`` while the fleet's healthy capacity sits
        below ``brownout_min_alive_fraction`` of its nominal size, which
        the queue turns into a structured
        :class:`~repro.common.errors.AdmissionError` -- backpressure
        with a reason, instead of queueing jobs the fleet cannot absorb.
        """
        fraction = self.config.brownout_min_alive_fraction
        if fraction <= 0 or not self._started:
            return None
        healthy = self.healthy_capacity()
        active = healthy < fraction * self.processes
        self.registry.gauge("cluster.brownout.active").set(1 if active else 0)
        if active:
            self.brownout_rejections += 1
            self.registry.counter("cluster.brownout.rejections").inc()
            return "brownout"
        return None

    # -- reporting -----------------------------------------------------

    def cluster_stats(self) -> dict:
        """The serve report's ``cluster`` block."""
        with self._lock:
            connected = len(self._conns)
        return {
            "processes": self.processes,
            "connected": connected,
            "dispatched": self.dispatched,
            "results": self.results,
            "worker_deaths": self.worker_deaths,
            "requeues": self.requeues,
            "respawns": self.supervisor.respawns,
            "respawn_counts": dict(self.supervisor.respawn_counts),
            "quarantined": sorted(self.breaker.quarantined),
            "healthy_capacity": self.healthy_capacity(),
            "brownout_rejections": self.brownout_rejections,
            "drained": self._draining,
        }


class ClusterService(SimulationService):
    """A :class:`SimulationService` whose execution engine is the fleet.

    Identical public surface -- submit/poll/cancel/drain, manifests,
    journaling, ``--resume`` -- with the in-process worker pool swapped
    for a :class:`ClusterDispatcher`.  Worker processes are spawned
    lazily on the first drain that has work.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        tracer=None,
        processes: int = 2,
        journal_path: str | None = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        **overrides,
    ) -> None:
        super().__init__(config, tracer=tracer, **overrides)
        self.pool.close()  # replace the thread pool with the fleet
        self.processes = processes
        self.pool = ClusterDispatcher(
            self.config,
            tracer=self.tracer,
            registry=self.registry,
            processes=processes,
            journal_path=journal_path,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
        )
        # Brownout: admission consults the fleet's health before queuing.
        self.queue.shed_check = self.pool.brownout_reason

    def request_drain(self) -> None:
        """Graceful SIGTERM path: finish in-flight work, keep the rest."""
        self.pool.request_drain()
