"""Length-prefixed wire protocol for the process fleet.

One **frame** carries one message: a fixed 12-byte prefix, a JSON header,
and an optional opaque binary payload (final state vectors ship as raw
complex128 bytes, never base64, so a result frame costs one memcpy)::

    +-------+------------+-------------+----------------+---------------+
    | magic | header_len | payload_len | header (JSON)  | payload (raw) |
    | 4 B   | u32 BE     | u32 BE      | header_len B   | payload_len B |
    +-------+------------+-------------+----------------+---------------+

The magic (``b"RPF1"``) pins both the protocol identity and its version;
a reader that sees anything else is talking to the wrong peer or lost
framing, and the only safe move is to drop the connection.  Malformed
input always raises a structured
:class:`~repro.common.errors.ProtocolError` (``exc.kind`` says why) --
truncated frames, oversized declarations, and undecodable headers can
never hang a reader or desynchronize silently.

Message headers are dicts with a mandatory ``"type"`` key.  The fleet
uses six types (:data:`MSG_HELLO`, :data:`MSG_HEARTBEAT`,
:data:`MSG_JOB`, :data:`MSG_RESULT`, :data:`MSG_DRAIN`, :data:`MSG_BYE`);
the framing itself is type-agnostic and reusable.

Size bounds: headers are small control data (4 MiB cap); payloads hold
state vectors -- the default 1 GiB cap fits a 26-qubit complex128 state,
matching the serve layer's ``max_qubits`` admission default.  Both caps
are enforced on *declared* lengths before any allocation, so a corrupt
or hostile prefix cannot OOM the reader.
"""

from __future__ import annotations

import json
import struct
from typing import Callable

from repro.common.errors import ProtocolError

__all__ = [
    "MAGIC",
    "MAX_HEADER_BYTES",
    "MAX_PAYLOAD_BYTES",
    "MSG_BYE",
    "MSG_DRAIN",
    "MSG_HEARTBEAT",
    "MSG_HELLO",
    "MSG_JOB",
    "MSG_RESULT",
    "PREFIX_BYTES",
    "pack_frame",
    "read_frame",
    "unpack_frame",
]

#: Protocol identity + version, first bytes of every frame.
MAGIC = b"RPF1"

_PREFIX = struct.Struct("!4sII")

#: Size of the fixed frame prefix (magic + two u32 lengths).
PREFIX_BYTES = _PREFIX.size

#: Headers are JSON control data; anything bigger is a framing error.
MAX_HEADER_BYTES = 4 * 1024 * 1024

#: Payload cap: one complex128 state of 26 qubits is exactly 1 GiB.
MAX_PAYLOAD_BYTES = 1024 ** 3

# Fleet message types.
MSG_HELLO = "hello"
MSG_HEARTBEAT = "heartbeat"
MSG_JOB = "job"
MSG_RESULT = "result"
MSG_DRAIN = "drain"
MSG_BYE = "bye"


def pack_frame(
    header: dict,
    payload: bytes = b"",
    *,
    max_header_bytes: int = MAX_HEADER_BYTES,
    max_payload_bytes: int = MAX_PAYLOAD_BYTES,
) -> bytes:
    """Encode one message as a complete frame.

    The sender enforces the same size caps as the reader, so an
    oversized message fails loudly at the producer instead of poisoning
    the stream for the peer.
    """
    if not isinstance(header, dict) or "type" not in header:
        raise ProtocolError(
            "malformed_header",
            f"frame header must be a dict with a 'type' key, got "
            f"{header!r}",
        )
    blob = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(blob) > max_header_bytes:
        raise ProtocolError(
            "oversized_header",
            f"header is {len(blob)} bytes, cap is {max_header_bytes}",
        )
    if len(payload) > max_payload_bytes:
        raise ProtocolError(
            "oversized_payload",
            f"payload is {len(payload)} bytes, cap is "
            f"{max_payload_bytes}",
        )
    return _PREFIX.pack(MAGIC, len(blob), len(payload)) + blob + payload


def _read_exact(
    read: Callable[[int], bytes], n: int, *, eof_ok: bool = False
) -> bytes | None:
    """Read exactly ``n`` bytes from ``read(k) -> up-to-k bytes``.

    ``b""`` from ``read`` means EOF.  EOF before the first byte returns
    None when ``eof_ok`` (a clean close between frames); EOF anywhere
    else is a truncated frame and raises.
    """
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = read(n - got)
        if not chunk:
            if eof_ok and got == 0:
                return None
            raise ProtocolError(
                "truncated",
                f"stream ended after {got} of {n} expected bytes",
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(
    read: Callable[[int], bytes],
    *,
    max_header_bytes: int = MAX_HEADER_BYTES,
    max_payload_bytes: int = MAX_PAYLOAD_BYTES,
) -> tuple[dict, bytes] | None:
    """Read one complete frame from a blocking ``read(n)`` source.

    Returns ``(header, payload)``, or None on a clean EOF at a frame
    boundary (the peer closed between messages).  Any other shortfall or
    corruption raises :class:`~repro.common.errors.ProtocolError`.
    """
    prefix = _read_exact(read, PREFIX_BYTES, eof_ok=True)
    if prefix is None:
        return None
    magic, header_len, payload_len = _PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise ProtocolError(
            "bad_magic",
            f"expected frame magic {MAGIC!r}, got {magic!r}",
        )
    if header_len > max_header_bytes:
        raise ProtocolError(
            "oversized_header",
            f"declared header of {header_len} bytes exceeds cap "
            f"{max_header_bytes}",
        )
    if payload_len > max_payload_bytes:
        raise ProtocolError(
            "oversized_payload",
            f"declared payload of {payload_len} bytes exceeds cap "
            f"{max_payload_bytes}",
        )
    blob = _read_exact(read, header_len)
    payload = _read_exact(read, payload_len) if payload_len else b""
    try:
        header = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(
            "malformed_header", f"undecodable frame header: {exc}"
        ) from exc
    if not isinstance(header, dict) or "type" not in header:
        raise ProtocolError(
            "malformed_header",
            f"frame header must be a dict with a 'type' key, got "
            f"{header!r}",
        )
    return header, payload


def unpack_frame(
    buffer: bytes,
    *,
    max_header_bytes: int = MAX_HEADER_BYTES,
    max_payload_bytes: int = MAX_PAYLOAD_BYTES,
) -> tuple[dict, bytes]:
    """Decode exactly one frame from an in-memory buffer.

    Convenience for tests and journaled frames; trailing bytes after the
    frame are a framing error (one buffer, one frame).
    """
    view = memoryview(buffer)
    pos = 0

    def read(n: int) -> bytes:
        nonlocal pos
        chunk = bytes(view[pos:pos + n])
        pos += len(chunk)
        return chunk

    frame = read_frame(
        read,
        max_header_bytes=max_header_bytes,
        max_payload_bytes=max_payload_bytes,
    )
    if frame is None:
        raise ProtocolError("truncated", "empty buffer, expected a frame")
    if pos != len(buffer):
        raise ProtocolError(
            "malformed_header",
            f"{len(buffer) - pos} unexpected trailing byte(s) after the "
            "frame",
        )
    return frame
