"""Worker-process lifecycle: spawn, watch, respawn, terminate.

The supervisor owns the ``multiprocessing`` side of the fleet: it starts
one OS process per worker slot (``spawn`` start method, so children
inherit nothing but their spec and every respawn is identical to the
first launch), detects exits via ``Process.is_alive``, and respawns
crashed slots within a bounded budget so a persistent crash loop cannot
spin forever.

Connections and job dispatch live in :mod:`repro.cluster.broker`; the
supervisor only deals in processes.  The two detect death independently
-- the broker's reader thread sees the socket EOF within milliseconds of
a SIGKILL, while :meth:`WorkerSupervisor.poll_dead` catches a process
that died before ever connecting.

The respawn budget here is a last-ditch backstop; the *operative* guard
against crash loops is the broker's :class:`~repro.cluster.breaker
.SlotBreaker`, which quarantines a slot after K deaths in a window and
spaces respawns with jittered exponential backoff.  The budget defaults
high enough that the breaker always trips first.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import signal
from dataclasses import asdict

from repro.common.config import ServeConfig

__all__ = ["WorkerSupervisor", "worker_spec"]

_log = logging.getLogger("repro.cluster.supervisor")

#: Respawns allowed per slot before the broker gives up on it.  Set
#: above the breaker's trip point (``ServeConfig.breaker_failures``) so
#: quarantine -- not budget exhaustion -- is what stops a crash loop.
DEFAULT_RESPAWN_BUDGET = 8


def worker_spec(
    slot: int,
    host: str,
    port: int,
    token: str,
    config: ServeConfig,
    journal_path: str | None,
    heartbeat_interval: float,
) -> dict:
    """The plain-dict launch spec handed to ``worker_main``.

    Primitives only: the spec crosses the ``spawn`` boundary as pickled
    arguments, and the worker rebuilds its :class:`ServeConfig` from the
    dict -- the same construction path as the broker's, so worker-side
    simulators are configured identically to in-process ones.
    """
    return {
        "slot": slot,
        "host": host,
        "port": port,
        "token": token,
        "config": asdict(config),
        "journal_segment": (
            f"{journal_path}.w{slot}.jsonl" if journal_path else None
        ),
        "heartbeat_interval": heartbeat_interval,
    }


class WorkerSupervisor:
    """Spawns and tracks the fleet's worker processes by slot."""

    def __init__(
        self,
        processes: int,
        make_spec,
        respawn_budget: int = DEFAULT_RESPAWN_BUDGET,
    ) -> None:
        if processes < 1:
            raise ValueError(f"need at least 1 process, got {processes}")
        self.processes = processes
        #: ``make_spec(slot) -> dict`` builds the launch spec per slot
        #: (the broker closes over its listener address and token).
        self._make_spec = make_spec
        self._ctx = multiprocessing.get_context("spawn")
        self._procs: dict[int, multiprocessing.Process] = {}
        self._respawns_left = {
            slot: respawn_budget for slot in range(processes)
        }
        self.respawns = 0
        #: Respawns per slot (for bounded-respawn invariant checks).
        self.respawn_counts: dict[int, int] = {
            slot: 0 for slot in range(processes)
        }
        #: Every pid ever launched, per slot -- the chaos harness's
        #: no-orphan invariant sweeps this after teardown.
        self.pid_history: dict[int, list[int]] = {
            slot: [] for slot in range(processes)
        }

    # -- lifecycle -----------------------------------------------------

    def spawn(self, slot: int) -> None:
        """Launch (or relaunch) the worker process for ``slot``."""
        from repro.cluster.worker import worker_main

        proc = self._ctx.Process(
            target=worker_main,
            args=(self._make_spec(slot),),
            name=f"repro-worker-{slot}",
            daemon=True,
        )
        proc.start()
        self._procs[slot] = proc
        self.pid_history[slot].append(proc.pid)
        _log.info("worker slot %d spawned (pid %d)", slot, proc.pid)

    def start_all(self) -> None:
        for slot in range(self.processes):
            if slot not in self._procs:
                self.spawn(slot)

    def can_respawn(self, slot: int) -> bool:
        return self._respawns_left.get(slot, 0) > 0

    def respawn(self, slot: int) -> bool:
        """Relaunch a dead slot if its budget allows; False when spent."""
        if self._respawns_left.get(slot, 0) <= 0:
            _log.warning(
                "worker slot %d crashed and its respawn budget is spent",
                slot,
            )
            return False
        self._respawns_left[slot] -= 1
        self.respawns += 1
        self.respawn_counts[slot] = self.respawn_counts.get(slot, 0) + 1
        self.spawn(slot)
        return True

    # -- inspection ----------------------------------------------------

    def poll_dead(self) -> list[int]:
        """Slots whose process has exited (caught even pre-connect)."""
        return [
            slot
            for slot, proc in self._procs.items()
            if not proc.is_alive()
        ]

    def pid(self, slot: int) -> int | None:
        proc = self._procs.get(slot)
        return proc.pid if proc is not None else None

    def is_alive(self, slot: int) -> bool:
        proc = self._procs.get(slot)
        return proc is not None and proc.is_alive()

    @property
    def alive(self) -> int:
        return sum(1 for p in self._procs.values() if p.is_alive())

    def all_pids(self) -> list[int]:
        """Every pid this supervisor ever launched (dead or alive)."""
        return [pid for pids in self.pid_history.values() for pid in pids]

    # -- teardown ------------------------------------------------------

    def kill(self, slot: int) -> None:
        """Hard-kill one slot (used when its heartbeat went stale)."""
        proc = self._procs.get(slot)
        if proc is not None and proc.is_alive():
            proc.kill()

    def terminate_all(self, grace_seconds: float = 5.0) -> None:
        """Stop every worker: join briefly, then escalate to kill."""
        for proc in self._procs.values():
            if proc.is_alive():
                # A SIGSTOPped worker cannot act on SIGTERM; resume it
                # first so graceful shutdown has a chance before the
                # SIGKILL escalation below.
                try:
                    os.kill(proc.pid, signal.SIGCONT)
                except (OSError, TypeError):  # pragma: no cover
                    pass
                proc.terminate()
        for proc in self._procs.values():
            proc.join(timeout=grace_seconds)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.kill()
                proc.join(timeout=grace_seconds)
        self._procs.clear()
