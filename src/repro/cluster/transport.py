"""Socket transport for the process fleet: loopback TCP, framed messages.

The broker listens on an ephemeral loopback port; workers are handed the
``(host, port, token)`` triple at spawn and connect back.  Loopback TCP
(rather than inherited pipes) keeps the transport independent of the
``multiprocessing`` start method -- ``spawn`` children inherit nothing
but their arguments -- and makes every connection identical whether the
worker is the original or a respawned replacement.

:class:`Connection` is a thin blocking wrapper over one socket speaking
:mod:`repro.cluster.protocol` frames.  Sends are serialized by a lock so
the worker's heartbeat thread and its result sends never interleave
bytes; receives are single-reader by construction (one reader thread per
connection on the broker, the main loop on the worker).
"""

from __future__ import annotations

import socket
import threading

from repro.cluster.protocol import (
    MAX_PAYLOAD_BYTES,
    pack_frame,
    read_frame,
)

__all__ = ["Connection", "Listener", "connect"]


class Connection:
    """One framed, bidirectional message stream over a socket."""

    def __init__(
        self,
        sock: socket.socket,
        max_payload_bytes: int = MAX_PAYLOAD_BYTES,
    ) -> None:
        self._sock = sock
        self.max_payload_bytes = max_payload_bytes
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - not a TCP socket
            pass
        self._rfile = sock.makefile("rb")
        self._send_lock = threading.Lock()
        self._closed = False

    def fileno(self) -> int:
        return self._sock.fileno()

    def send(self, header: dict, payload: bytes = b"") -> None:
        """Send one message atomically (whole frame under the lock)."""
        frame = pack_frame(
            header, payload, max_payload_bytes=self.max_payload_bytes
        )
        with self._send_lock:
            self._sock.sendall(frame)

    def recv(self) -> tuple[dict, bytes] | None:
        """Block for one message; None on clean EOF.

        Raises :class:`~repro.common.errors.ProtocolError` on framing
        corruption and ``OSError`` if the socket dies mid-read; callers
        treat both as a dead peer.
        """
        return read_frame(
            self._rfile.read, max_payload_bytes=self.max_payload_bytes
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._rfile.close()
        except OSError:  # pragma: no cover
            pass
        self._sock.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Listener:
    """Loopback TCP accept socket for the broker."""

    def __init__(self, host: str = "127.0.0.1", backlog: int = 32) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, 0))
        self._sock.listen(backlog)
        self.host, self.port = self._sock.getsockname()[:2]
        self._closed = False

    def accept(self, timeout: float | None = None) -> Connection | None:
        """One incoming connection, or None on timeout/closed listener."""
        self._sock.settimeout(timeout)
        try:
            sock, _addr = self._sock.accept()
        except (socket.timeout, OSError):
            return None
        sock.settimeout(None)
        return Connection(sock)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._sock.close()

    def __enter__(self) -> "Listener":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def connect(
    host: str, port: int, timeout: float = 30.0
) -> Connection:
    """Worker-side connect-back to the broker's listener."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    return Connection(sock)
