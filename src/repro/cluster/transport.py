"""Socket transport for the process fleet: loopback TCP, framed messages.

The broker listens on an ephemeral loopback port; workers are handed the
``(host, port, token)`` triple at spawn and connect back.  Loopback TCP
(rather than inherited pipes) keeps the transport independent of the
``multiprocessing`` start method -- ``spawn`` children inherit nothing
but their arguments -- and makes every connection identical whether the
worker is the original or a respawned replacement.

:class:`Connection` is a thin blocking wrapper over one socket speaking
:mod:`repro.cluster.protocol` frames.  Sends are serialized by a lock so
the worker's heartbeat thread and its result sends never interleave
bytes; receives are single-reader by construction (one reader thread per
connection on the broker, the main loop on the worker).

Both directions carry an I/O deadline (``io_timeout``): a peer that
neither produces bytes nor accepts them within the window raises
``ProtocolError("timeout", ...)`` instead of blocking forever.  A
half-open TCP peer (e.g. a SIGSTOPped worker with a full receive
buffer) otherwise wedges the sender for good -- the deadline turns that
hang into a structured error the broker's fault paths already handle.

For fault injection, a connection accepts an optional ``send_filter``
hook: a callable seeing every outbound frame that may pass it through,
rewrite it, duplicate it, or drop it.  The chaos harness
(:mod:`repro.chaos`) is the only intended user; production code leaves
it ``None``.
"""

from __future__ import annotations

import socket
import threading
from typing import Callable, Optional

from repro.common.errors import ProtocolError
from repro.cluster.protocol import (
    MAX_PAYLOAD_BYTES,
    pack_frame,
    read_frame,
)

__all__ = ["Connection", "Listener", "connect", "DEFAULT_IO_TIMEOUT"]

#: Default send/recv deadline.  Generous -- it exists to catch wedged
#: peers, not slow ones; ServeConfig.io_deadline_seconds overrides it.
DEFAULT_IO_TIMEOUT: float = 120.0

#: Chaos hook signature: ``(conn, header, payload, frame) -> bytes |
#: list[bytes] | None``.  Return the frame (possibly rewritten), a list
#: of frames (duplication), or None to drop the send on the floor.
SendFilter = Callable[
    ["Connection", dict, bytes, bytes], "bytes | list[bytes] | None"
]


class Connection:
    """One framed, bidirectional message stream over a socket."""

    def __init__(
        self,
        sock: socket.socket,
        max_payload_bytes: int = MAX_PAYLOAD_BYTES,
        io_timeout: float | None = DEFAULT_IO_TIMEOUT,
    ) -> None:
        self._sock = sock
        self.max_payload_bytes = max_payload_bytes
        self.io_timeout = io_timeout
        self.send_filter: Optional[SendFilter] = None
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - not a TCP socket
            pass
        sock.settimeout(io_timeout)
        self._rfile = sock.makefile("rb")
        self._send_lock = threading.Lock()
        self._closed = False

    def fileno(self) -> int:
        return self._sock.fileno()

    def send(self, header: dict, payload: bytes = b"") -> None:
        """Send one message atomically (whole frame under the lock).

        Raises ``ProtocolError("timeout", ...)`` when the peer stops
        draining its receive buffer for ``io_timeout`` seconds, and
        ``OSError`` if the socket dies outright.
        """
        frame: bytes | list[bytes] | None = pack_frame(
            header, payload, max_payload_bytes=self.max_payload_bytes
        )
        if self.send_filter is not None:
            frame = self.send_filter(self, header, payload, frame)
            if frame is None:
                return
        frames = frame if isinstance(frame, list) else [frame]
        with self._send_lock:
            try:
                for chunk in frames:
                    self._sock.sendall(chunk)
            except socket.timeout as exc:
                raise ProtocolError(
                    "timeout",
                    f"send stalled for {self.io_timeout}s "
                    f"(msg {header.get('msg', '?')!r}): peer not draining",
                ) from exc

    def recv(self) -> tuple[dict, bytes] | None:
        """Block for one message; None on clean EOF.

        Raises :class:`~repro.common.errors.ProtocolError` on framing
        corruption, ``ProtocolError("timeout", ...)`` when no complete
        frame arrives within ``io_timeout`` seconds, and ``OSError`` if
        the socket dies mid-read; callers treat all but the idle-timeout
        case as a dead peer.
        """
        try:
            return read_frame(
                self._rfile.read, max_payload_bytes=self.max_payload_bytes
            )
        except socket.timeout as exc:
            raise ProtocolError(
                "timeout",
                f"no frame within {self.io_timeout}s",
            ) from exc

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._rfile.close()
        except OSError:  # pragma: no cover
            pass
        self._sock.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Listener:
    """Loopback TCP accept socket for the broker."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        backlog: int = 32,
        io_timeout: float | None = DEFAULT_IO_TIMEOUT,
    ) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, 0))
        self._sock.listen(backlog)
        self.host, self.port = self._sock.getsockname()[:2]
        self.io_timeout = io_timeout
        self._closed = False

    def accept(self, timeout: float | None = None) -> Connection | None:
        """One incoming connection, or None on timeout/closed listener."""
        self._sock.settimeout(timeout)
        try:
            sock, _addr = self._sock.accept()
        except (socket.timeout, OSError):
            return None
        return Connection(sock, io_timeout=self.io_timeout)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._sock.close()

    def __enter__(self) -> "Listener":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def connect(
    host: str,
    port: int,
    timeout: float = 30.0,
    io_timeout: float | None = DEFAULT_IO_TIMEOUT,
) -> Connection:
    """Worker-side connect-back to the broker's listener."""
    sock = socket.create_connection((host, port), timeout=timeout)
    return Connection(sock, io_timeout=io_timeout)
