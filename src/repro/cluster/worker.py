"""Worker-process entry point for the serving fleet.

Each worker is one OS process with one execution engine: it connects
back to the broker, authenticates with the spawn token, then loops
``recv job -> execute -> send result`` until the broker says drain (or
the socket dies -- a vanished broker means the worker must exit, not
linger as an orphan).

Execution reuses the in-process :class:`~repro.serve.workers.WorkerPool`
via its single-job entry point, so retry/backoff, deadline enforcement,
sweep semantics, and simulator construction are *identical* to the
thread-pool path -- the fleet escapes the GIL without forking the
execution semantics.  A heartbeat thread beats independently of the main
loop, so a worker deep in a long simulation still proves liveness.

Durability: when the fleet is journaled, the worker appends each job's
terminal transition to its own journal segment (``<journal>.w<slot>``,
see :func:`repro.serve.journal.journal_segments`) *before* the result
frame is sent.  A SIGKILL that lands between compute and send therefore
loses nothing: ``--resume`` merges the segment and serves the journaled
state from cache.
"""

from __future__ import annotations

import logging
import os
import threading

from repro.cluster import protocol
from repro.cluster.transport import connect
from repro.common.config import ServeConfig
from repro.common.errors import ProtocolError
from repro.common.wire import array_to_bytes
from repro.obs.metrics import MetricsRegistry
from repro.serve.cache import ResultCache
from repro.serve.jobs import Job, JobState
from repro.serve.journal import JobJournal
from repro.serve.workers import WorkerPool

__all__ = ["worker_main"]

_log = logging.getLogger("repro.cluster.worker")


def _result_frame(job: Job, slot: int) -> tuple[dict, bytes]:
    """Encode one finished job as a result frame (header, payload)."""
    header: dict = {
        "type": protocol.MSG_RESULT,
        "slot": slot,
        "job_id": job.job_id,
        "state": job.state.value,
        "attempts": job.attempts,
    }
    if job.state is JobState.DONE and job.result is not None:
        meta, payload = array_to_bytes(job.result.state)
        header["result"] = job.result.to_wire(include_state=False)
        header["array"] = meta
        return header, payload
    header["error"] = job.error
    return header, b""


def worker_main(spec: dict) -> None:
    """Run one fleet worker to completion (the spawned process target)."""
    slot = int(spec["slot"])
    logging.basicConfig(
        level=logging.WARNING,
        format=f"[worker {slot}] %(levelname)s %(name)s: %(message)s",
    )
    config = ServeConfig(**spec["config"])
    conn = connect(
        spec["host"], spec["port"], io_timeout=config.io_deadline_seconds
    )
    registry = MetricsRegistry()
    pool = WorkerPool(config, registry=registry)
    #: Worker-local result cache.  The broker already dedups across the
    #: fleet, so this only catches a re-dispatch of work this worker
    #: produced earlier in the batch -- cheap insurance, never needed
    #: for correctness.
    cache = ResultCache(
        max_entries=config.cache_max_entries,
        max_bytes=config.cache_max_bytes,
    )
    journal = None
    if spec.get("journal_segment"):
        journal = JobJournal(
            spec["journal_segment"],
            resume=True,
            writer_id=f"w{slot}",
            fsync=config.journal_fsync,
            registry=registry,
        )
    stop = threading.Event()

    def heartbeat() -> None:
        interval = float(spec["heartbeat_interval"])
        while not stop.wait(interval):
            try:
                conn.send({"type": protocol.MSG_HEARTBEAT, "slot": slot})
            except (OSError, ProtocolError):
                return  # broker is gone; the main loop will exit too

    try:
        conn.send(
            {
                "type": protocol.MSG_HELLO,
                "token": spec["token"],
                "slot": slot,
                "pid": os.getpid(),
            }
        )
        beat = threading.Thread(
            target=heartbeat, name=f"heartbeat-{slot}", daemon=True
        )
        beat.start()
        while True:
            try:
                frame = conn.recv()
            except ProtocolError as exc:
                if exc.kind == "timeout":
                    # Idle past the I/O deadline, not dead: probe the
                    # link with a heartbeat and keep waiting.  A broker
                    # that truly vanished fails the probe (or the next
                    # recv) and the worker exits instead of lingering.
                    try:
                        conn.send(
                            {"type": protocol.MSG_HEARTBEAT, "slot": slot}
                        )
                        continue
                    except (OSError, ProtocolError):
                        pass
                _log.warning("broker connection lost; exiting")
                return
            except OSError:
                _log.warning("broker connection lost; exiting")
                return
            if frame is None:
                return  # broker closed cleanly
            header, _payload = frame
            if header["type"] in (protocol.MSG_DRAIN, protocol.MSG_BYE):
                try:
                    conn.send({"type": protocol.MSG_BYE, "slot": slot})
                except (OSError, ProtocolError):
                    pass
                return
            if header["type"] != protocol.MSG_JOB:
                continue
            job = Job.from_wire(header["job"])
            if journal is not None:
                journal.observe(job)
            internal = False
            try:
                pool.run_job(job, cache)
            except Exception:
                # A worker-side bug outside the pool's own isolation:
                # report the job FAILED rather than dying with it.
                _log.exception("internal error running job %s", job.job_id)
                internal = True
                if not job.done:
                    if job.state is JobState.PENDING:
                        job.transition(JobState.RUNNING)
                    job.error = "internal worker error (see worker log)"
                    job.transition(JobState.FAILED)
            out_header, payload = _result_frame(job, slot)
            if internal:
                out_header["internal_error"] = True
            try:
                conn.send(out_header, payload)
            except (OSError, ProtocolError):
                _log.warning("broker vanished mid-send; exiting")
                return
    finally:
        stop.set()
        if journal is not None:
            journal.close()
        pool.close()
        conn.close()
