"""Shared utilities: errors, bit tricks, configuration constants."""

from repro.common.bits import (
    bit,
    clear_bit,
    ilog2,
    indices_matching,
    indices_with_bit,
    insert_zero_bit,
    is_power_of_two,
    set_bit,
)
from repro.common.config import (
    DEFAULT_BETA,
    DEFAULT_EPSILON,
    DEFAULT_THREADS,
    SIMD_WIDTH,
    TOLERANCE,
    FlatDDConfig,
    ServeConfig,
)
from repro.common.errors import (
    AdmissionError,
    CircuitError,
    DDError,
    ParallelError,
    QasmError,
    ReproError,
    ServeError,
    SimulationError,
)

__all__ = [
    "bit",
    "clear_bit",
    "ilog2",
    "indices_matching",
    "indices_with_bit",
    "insert_zero_bit",
    "is_power_of_two",
    "set_bit",
    "DEFAULT_BETA",
    "DEFAULT_EPSILON",
    "DEFAULT_THREADS",
    "SIMD_WIDTH",
    "TOLERANCE",
    "FlatDDConfig",
    "ServeConfig",
    "AdmissionError",
    "CircuitError",
    "DDError",
    "ParallelError",
    "QasmError",
    "ReproError",
    "ServeError",
    "SimulationError",
]
