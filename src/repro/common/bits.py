"""Bit-manipulation helpers shared across the DD package and the backends.

Index convention (used everywhere in the library): amplitude index ``i`` of an
``n``-qubit state has bit ``k`` equal to the value of qubit ``k``.  Qubit 0 is
the *least significant* qubit and sits at DD level 0, directly above the
terminal node; qubit ``n - 1`` is the most significant and sits at the root.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "is_power_of_two",
    "ilog2",
    "bit",
    "set_bit",
    "clear_bit",
    "insert_zero_bit",
    "indices_with_bit",
    "indices_matching",
]


def is_power_of_two(x: int) -> bool:
    """Return True if ``x`` is a positive power of two (1, 2, 4, ...)."""
    return x > 0 and (x & (x - 1)) == 0


def ilog2(x: int) -> int:
    """Exact integer log2 of a positive power of two.

    Raises ``ValueError`` for anything else, to catch silent misuse in the
    thread-partitioning code where ``t`` must be a power of two.
    """
    if not is_power_of_two(x):
        raise ValueError(f"{x} is not a positive power of two")
    return x.bit_length() - 1


def bit(i: int, k: int) -> int:
    """Value (0 or 1) of bit ``k`` of ``i``."""
    return (i >> k) & 1


def set_bit(i: int, k: int) -> int:
    """``i`` with bit ``k`` forced to 1."""
    return i | (1 << k)


def clear_bit(i: int, k: int) -> int:
    """``i`` with bit ``k`` forced to 0."""
    return i & ~(1 << k)


def insert_zero_bit(i: int, k: int) -> int:
    """Insert a 0 bit at position ``k``, shifting higher bits up.

    This maps a compact enumeration of ``2**(n-1)`` indices to the subset of
    ``2**n`` indices whose ``k``-th bit is zero -- the core index trick of
    array-based simulators (Equation 2 of the paper).
    """
    low = i & ((1 << k) - 1)
    high = (i >> k) << (k + 1)
    return high | low


def indices_with_bit(n: int, k: int, value: int) -> np.ndarray:
    """All ``n``-bit indices whose bit ``k`` equals ``value``, ascending.

    Vectorized: returns an ``int64`` array of length ``2**(n-1)``.
    """
    base = np.arange(1 << (n - 1), dtype=np.int64)
    low = base & ((1 << k) - 1)
    high = (base >> k) << (k + 1)
    out = high | low
    if value:
        out |= 1 << k
    return out


def indices_matching(n: int, fixed: dict[int, int]) -> np.ndarray:
    """All ``n``-bit indices whose bits match the ``{position: value}`` map.

    Used to enumerate the amplitudes touched by multi-controlled gates.  The
    result has length ``2**(n - len(fixed))`` and is sorted ascending.
    """
    free = [k for k in range(n) if k not in fixed]
    base = np.arange(1 << len(free), dtype=np.int64)
    out = np.zeros_like(base)
    for pos, k in enumerate(free):
        out |= ((base >> pos) & 1) << k
    const = 0
    for k, v in fixed.items():
        if v not in (0, 1):
            raise ValueError(f"bit value must be 0 or 1, got {v}")
        if v:
            const |= 1 << k
    out |= const
    out.sort()
    return out
