"""Numeric and modeling constants shared across the library.

These mirror the constants the paper fixes for its evaluation:

* ``DEFAULT_BETA`` / ``DEFAULT_EPSILON`` -- the EWMA conversion trigger
  (Section 3.1.1; the paper uses beta = 0.9, epsilon = 2 for every run).
* ``SIMD_WIDTH`` -- the ``d`` of Equation 6.  The paper uses AVX2 on
  ``double complex`` (d = 2); we keep the same default for the cost model
  even though the arithmetic here is batched through numpy.
* ``TOLERANCE`` -- the complex-table tolerance used to canonicalize edge
  weights, as in DDSIM's complex-number package [98].
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass

#: Tolerance for treating two complex numbers as identical in the complex
#: table, and for treating an edge weight as exactly zero.
TOLERANCE: float = 1e-10

#: Decimal places used to bucket complex values in the complex table.  Chosen
#: so that ``round(x, CTABLE_DECIMALS)`` collapses values within TOLERANCE.
CTABLE_DECIMALS: int = 10

#: EWMA smoothing factor (beta in Equation 4).
DEFAULT_BETA: float = 0.9

#: Conversion threshold (epsilon in Section 3.1.1).
DEFAULT_EPSILON: float = 2.0

#: SIMD lane count d in the cost model (Equation 6). AVX2 fits two
#: double-precision complex numbers per register.
SIMD_WIDTH: int = 2

#: Default number of worker threads (the paper evaluates FlatDD at t = 16).
DEFAULT_THREADS: int = 4

#: Level at or below which the DMAV/conversion kernels bottom out on dense
#: cached blocks instead of recursing (pure-Python substitution for the
#: per-scalar MAC loop; see DESIGN.md substitution 2).  A node at level l
#: spans 2**(l+1) amplitudes, so level 5 means 64-element blocks.
DENSE_BLOCK_LEVEL: int = 5

# ---------------------------------------------------------------------------
# Memory-model constants (bytes), used by repro.metrics.memory to reproduce
# the paper's RSS comparison analytically (DESIGN.md substitution 5). Sizes
# are taken from DDSIM's C++ structs rather than CPython object overheads so
# the *ratios* between simulators match what the paper measures.
# ---------------------------------------------------------------------------

#: A vector DD node: 2 edges (pointer + complex-pair pointer) + level + ref.
VNODE_BYTES: int = 2 * 24 + 16

#: A matrix DD node: 4 edges + bookkeeping.
MNODE_BYTES: int = 4 * 24 + 16

#: One canonical complex-table entry (two doubles + hash bucket overhead).
CTABLE_ENTRY_BYTES: int = 32

#: One complex128 amplitude in a flat array.
AMPLITUDE_BYTES: int = 16


@dataclass(frozen=True)
class FlatDDConfig:
    """Tunable knobs of the FlatDD pipeline, bundled for the orchestrator.

    Defaults reproduce the paper's evaluation settings.
    """

    beta: float = DEFAULT_BETA
    epsilon: float = DEFAULT_EPSILON
    threads: int = DEFAULT_THREADS
    simd_width: int = SIMD_WIDTH
    #: "auto" picks caching per gate via the cost model (Section 3.2.3);
    #: "always"/"never" force one DMAV variant (Figure 14 ablation).
    cache_policy: str = "auto"
    #: "cost" = Algorithm 3; "koperations" = the k-operations baseline [100];
    #: "none" = no fusion (Table 2 configurations).
    fusion: str = "none"
    #: Group size for the k-operations baseline.
    k_operations: int = 4
    #: Dense bottom-out level for the Python kernels.
    dense_block_level: int = DENSE_BLOCK_LEVEL
    #: If False, thread tasks run inline (deterministic, used by tests);
    #: if True they run on a ThreadPoolExecutor.
    use_thread_pool: bool = False
    #: Compile each gate DD's DMAV work (cost verdict, task partitions,
    #: buffer/writer layout) once via :class:`repro.core.plan.PlanCache`
    #: and run the array phase out of a persistent
    #: :class:`repro.parallel.arena.BufferArena` instead of re-deriving
    #: and re-allocating per gate.  Bit-identical to the unplanned hot
    #: loop (execution-only knob); False is the ``--no-plan-cache``
    #: performance ablation.
    plan_cache: bool = True
    #: Deterministic conversion override for testing/verification: ``None``
    #: keeps the EWMA trigger; an int forces DD-to-array conversion right
    #: after that gate index (0 = convert after the first gate).  An index
    #: at or past the end of the circuit means "never convert early" (the
    #: run finishes in the DD phase like DDSIM).  The fuzz harness uses
    #: this to check that early/late conversion points are semantically
    #: equivalent.
    force_convert_at: int | None = None
    #: Build gate DDs over only their active-qubit window and apply them
    #: with the identity-skipping mv rules (pass-through levels cross
    #: without node creation or compute-table entries).  Bit-identical to
    #: the full-height path by construction -- the windowed DD shares its
    #: window subtree with the wrapped full-height DD and the skip rules
    #: perform the same arithmetic (``1.0 * x == x``) -- and enforced by
    #: the ``identity_skip_equivalence`` fuzz oracle, so this is an
    #: execution-only knob; False is the ``--no-identity-skip`` ablation.
    identity_skip: bool = True
    #: Variable (qubit) order for the DD phase: "natural" keeps circuit
    #: order; "interaction" places strongly interacting qubits adjacently
    #: (greedy linear arrangement over the qubit-interaction graph);
    #: "sift" refines that placement by single-qubit repositioning.  The
    #: permutation is local to the DD phase -- conversion un-permutes, so
    #: the array phase and all consumers see canonical amplitude order --
    #: but it changes the conversion point and weight rounding, so it is
    #: part of the config digest.
    qubit_order: str = "natural"
    #: Memory budget for the whole run (None = unbounded).  Enforced by
    #: :class:`repro.resilience.guard.MemoryGuard`: a DD-phase breach forces
    #: early DD-to-array conversion (graceful degradation along the paper's
    #: own escape hatch); an array-phase breach checkpoints (when a
    #: checkpoint path is configured) and raises
    #: :class:`~repro.common.errors.ResourceExhaustedError`.
    memory_budget_bytes: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.beta < 1.0:
            raise ValueError(f"beta must be in [0, 1), got {self.beta}")
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if self.cache_policy not in ("auto", "always", "never"):
            raise ValueError(f"unknown cache_policy {self.cache_policy!r}")
        if self.fusion not in ("cost", "koperations", "none"):
            raise ValueError(f"unknown fusion mode {self.fusion!r}")
        if self.k_operations < 2:
            raise ValueError("k_operations must be at least 2")
        if self.qubit_order not in ("natural", "interaction", "sift"):
            raise ValueError(f"unknown qubit_order {self.qubit_order!r}")
        if self.force_convert_at is not None and self.force_convert_at < 0:
            raise ValueError(
                f"force_convert_at must be >= 0 or None, "
                f"got {self.force_convert_at}"
            )
        if (
            self.memory_budget_bytes is not None
            and self.memory_budget_bytes < 1
        ):
            raise ValueError(
                f"memory_budget_bytes must be >= 1 or None, "
                f"got {self.memory_budget_bytes}"
            )


#: FlatDDConfig fields that only affect *how* the simulation executes,
#: never the final state -- excluded from the cache-key config digest.
#: ``memory_budget_bytes`` stays *in* the digest: a guardrail-forced early
#: conversion changes the conversion point, which is bit-level visible.
#: ``plan_cache`` is execution-only by construction: the compiled plans
#: replay the unplanned descents' arithmetic bit-for-bit.
#: ``identity_skip`` is execution-only the same way: windowed gate DDs
#: share their window subtree with the wrapped full-height DDs and the
#: skip rules reproduce the pass-through arithmetic exactly (enforced by
#: the ``identity_skip_equivalence`` fuzz oracle).  ``qubit_order`` stays
#: in the digest: permuting the DD phase moves the conversion point.
_EXECUTION_ONLY_FIELDS = ("use_thread_pool", "plan_cache", "identity_skip")


def config_digest(config: "FlatDDConfig | None") -> str:
    """Short stable digest of the semantically relevant config fields.

    Used both as the result-cache key component in :mod:`repro.serve` and
    as the config fingerprint stamped into resilience snapshots (resuming
    under a semantically different config would silently change results,
    so snapshot restore rejects digest mismatches).
    """
    if config is None:
        return "default"
    fields = dataclasses.asdict(config)
    for name in _EXECUTION_ONLY_FIELDS:
        fields.pop(name, None)
    blob = ";".join(f"{k}={fields[k]!r}" for k in sorted(fields))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the batch simulation service (:mod:`repro.serve`).

    Groups the queue's admission limits, the worker pool's retry policy,
    and the result cache's bounds so a whole service deployment is one
    value (and one line in a manifest runner or test).
    """

    #: Default backend for jobs that do not name one.
    backend: str = "flatdd"
    #: Simulator threads *per job* (FlatDD/statevector backends).
    threads: int = DEFAULT_THREADS
    #: Concurrent worker slots in the pool (batch groups in flight).
    workers: int = 1
    #: Run worker slots on a real ThreadPoolExecutor (False = inline,
    #: deterministic -- same semantics as FlatDDConfig.use_thread_pool).
    use_thread_pool: bool = False
    #: Queue capacity; submissions beyond it are rejected (backpressure).
    queue_capacity: int = 256
    #: Admission control: reject circuits bigger than this outright.
    max_qubits: int = 26
    max_gates: int = 200_000
    #: Per-job wall-clock budget when the job does not set its own
    #: (None = unlimited).
    default_deadline_seconds: float | None = None
    #: Default retry budget for transient faults (per job).
    max_retries: int = 2
    #: Exponential backoff between retries: base * 2**attempt, capped.
    retry_base_delay: float = 0.01
    retry_max_delay: float = 1.0
    #: Result-cache bounds; entries are whole final states.
    cache_max_entries: int = 512
    cache_max_bytes: int = 256 * 1024 * 1024
    #: Socket send/recv deadline for cluster connections (seconds).  A
    #: peer that neither produces bytes nor accepts them within this
    #: window raises ``ProtocolError("timeout", ...)`` instead of
    #: blocking forever.  None restores the old fully blocking sockets.
    io_deadline_seconds: float | None = 120.0
    #: Respawn backoff for dead worker slots: the n-th consecutive death
    #: of a slot delays its replacement by ``base * 2**n`` seconds
    #: (jittered, capped at ``max``) instead of respawning in a hot loop.
    respawn_backoff_base: float = 0.25
    respawn_backoff_max: float = 10.0
    #: Per-slot circuit breaker: a slot whose worker dies this many times
    #: within ``breaker_window_seconds`` is quarantined -- no further
    #: respawns, and its capacity is subtracted from admission control.
    breaker_failures: int = 3
    breaker_window_seconds: float = 60.0
    #: Brownout threshold: when the fraction of healthy (non-quarantined)
    #: worker slots falls below this, new submissions are shed with a
    #: reject-with-reason instead of queuing unboundedly.  0 disables.
    brownout_min_alive_fraction: float = 0.5
    #: Journal durability: fsync the WAL after every append (survives
    #: power loss, not just process death).  Off by default -- flush-only
    #: matches the historic behavior and the crash-only test matrix.
    journal_fsync: bool = False

    def __post_init__(self) -> None:
        if self.backend not in ("flatdd", "ddsim", "quantumpp"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.max_qubits < 1 or self.max_gates < 1:
            raise ValueError("admission limits must be >= 1")
        if (
            self.default_deadline_seconds is not None
            and self.default_deadline_seconds <= 0
        ):
            raise ValueError("default_deadline_seconds must be positive")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_base_delay < 0 or self.retry_max_delay < 0:
            raise ValueError("retry delays must be non-negative")
        if self.cache_max_entries < 0 or self.cache_max_bytes < 0:
            raise ValueError("cache bounds must be non-negative")
        if (
            self.io_deadline_seconds is not None
            and self.io_deadline_seconds <= 0
        ):
            raise ValueError("io_deadline_seconds must be positive or None")
        if self.respawn_backoff_base < 0 or self.respawn_backoff_max < 0:
            raise ValueError("respawn backoff delays must be non-negative")
        if self.breaker_failures < 1:
            raise ValueError(
                f"breaker_failures must be >= 1, got {self.breaker_failures}"
            )
        if self.breaker_window_seconds <= 0:
            raise ValueError("breaker_window_seconds must be positive")
        if not 0.0 <= self.brownout_min_alive_fraction <= 1.0:
            raise ValueError(
                "brownout_min_alive_fraction must be in [0, 1], got "
                f"{self.brownout_min_alive_fraction}"
            )
