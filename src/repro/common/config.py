"""Numeric and modeling constants shared across the library.

These mirror the constants the paper fixes for its evaluation:

* ``DEFAULT_BETA`` / ``DEFAULT_EPSILON`` -- the EWMA conversion trigger
  (Section 3.1.1; the paper uses beta = 0.9, epsilon = 2 for every run).
* ``SIMD_WIDTH`` -- the ``d`` of Equation 6.  The paper uses AVX2 on
  ``double complex`` (d = 2); we keep the same default for the cost model
  even though the arithmetic here is batched through numpy.
* ``TOLERANCE`` -- the complex-table tolerance used to canonicalize edge
  weights, as in DDSIM's complex-number package [98].
"""

from __future__ import annotations

from dataclasses import dataclass

#: Tolerance for treating two complex numbers as identical in the complex
#: table, and for treating an edge weight as exactly zero.
TOLERANCE: float = 1e-10

#: Decimal places used to bucket complex values in the complex table.  Chosen
#: so that ``round(x, CTABLE_DECIMALS)`` collapses values within TOLERANCE.
CTABLE_DECIMALS: int = 10

#: EWMA smoothing factor (beta in Equation 4).
DEFAULT_BETA: float = 0.9

#: Conversion threshold (epsilon in Section 3.1.1).
DEFAULT_EPSILON: float = 2.0

#: SIMD lane count d in the cost model (Equation 6). AVX2 fits two
#: double-precision complex numbers per register.
SIMD_WIDTH: int = 2

#: Default number of worker threads (the paper evaluates FlatDD at t = 16).
DEFAULT_THREADS: int = 4

#: Level at or below which the DMAV/conversion kernels bottom out on dense
#: cached blocks instead of recursing (pure-Python substitution for the
#: per-scalar MAC loop; see DESIGN.md substitution 2).  A node at level l
#: spans 2**(l+1) amplitudes, so level 5 means 64-element blocks.
DENSE_BLOCK_LEVEL: int = 5

# ---------------------------------------------------------------------------
# Memory-model constants (bytes), used by repro.metrics.memory to reproduce
# the paper's RSS comparison analytically (DESIGN.md substitution 5). Sizes
# are taken from DDSIM's C++ structs rather than CPython object overheads so
# the *ratios* between simulators match what the paper measures.
# ---------------------------------------------------------------------------

#: A vector DD node: 2 edges (pointer + complex-pair pointer) + level + ref.
VNODE_BYTES: int = 2 * 24 + 16

#: A matrix DD node: 4 edges + bookkeeping.
MNODE_BYTES: int = 4 * 24 + 16

#: One canonical complex-table entry (two doubles + hash bucket overhead).
CTABLE_ENTRY_BYTES: int = 32

#: One complex128 amplitude in a flat array.
AMPLITUDE_BYTES: int = 16


@dataclass(frozen=True)
class FlatDDConfig:
    """Tunable knobs of the FlatDD pipeline, bundled for the orchestrator.

    Defaults reproduce the paper's evaluation settings.
    """

    beta: float = DEFAULT_BETA
    epsilon: float = DEFAULT_EPSILON
    threads: int = DEFAULT_THREADS
    simd_width: int = SIMD_WIDTH
    #: "auto" picks caching per gate via the cost model (Section 3.2.3);
    #: "always"/"never" force one DMAV variant (Figure 14 ablation).
    cache_policy: str = "auto"
    #: "cost" = Algorithm 3; "koperations" = the k-operations baseline [100];
    #: "none" = no fusion (Table 2 configurations).
    fusion: str = "none"
    #: Group size for the k-operations baseline.
    k_operations: int = 4
    #: Dense bottom-out level for the Python kernels.
    dense_block_level: int = DENSE_BLOCK_LEVEL
    #: If False, thread tasks run inline (deterministic, used by tests);
    #: if True they run on a ThreadPoolExecutor.
    use_thread_pool: bool = False
    #: Deterministic conversion override for testing/verification: ``None``
    #: keeps the EWMA trigger; an int forces DD-to-array conversion right
    #: after that gate index (0 = convert after the first gate).  An index
    #: at or past the end of the circuit means "never convert early" (the
    #: run finishes in the DD phase like DDSIM).  The fuzz harness uses
    #: this to check that early/late conversion points are semantically
    #: equivalent.
    force_convert_at: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.beta < 1.0:
            raise ValueError(f"beta must be in [0, 1), got {self.beta}")
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if self.cache_policy not in ("auto", "always", "never"):
            raise ValueError(f"unknown cache_policy {self.cache_policy!r}")
        if self.fusion not in ("cost", "koperations", "none"):
            raise ValueError(f"unknown fusion mode {self.fusion!r}")
        if self.k_operations < 2:
            raise ValueError("k_operations must be at least 2")
        if self.force_convert_at is not None and self.force_convert_at < 0:
            raise ValueError(
                f"force_convert_at must be >= 0 or None, "
                f"got {self.force_convert_at}"
            )
