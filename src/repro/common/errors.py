"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the simulator stack with a single handler
while still being able to discriminate on the concrete subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Raised for malformed circuits or gates (bad qubit indices, arity...)."""


class QasmError(ReproError):
    """Raised when parsing an OpenQASM 2.0 program fails."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class DDError(ReproError):
    """Raised on invalid decision-diagram operations (level mismatch...)."""


class SimulationError(ReproError):
    """Raised when a simulation backend is misconfigured or fails."""


class ParallelError(ReproError):
    """Raised for invalid parallel configurations (e.g. non power-of-two t)."""


class ServeError(ReproError):
    """Raised by the batch simulation service (:mod:`repro.serve`)."""


class AdmissionError(ServeError):
    """Raised when the job queue rejects a submission.

    Carries the machine-readable ``reason`` (``"queue_full"``,
    ``"too_many_qubits"``, ...) so callers and tests can discriminate
    rejection causes without parsing the message.
    """

    def __init__(self, reason: str, message: str) -> None:
        self.reason = reason
        super().__init__(message)
