"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the simulator stack with a single handler
while still being able to discriminate on the concrete subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Raised for malformed circuits or gates (bad qubit indices, arity...)."""


class QasmError(ReproError):
    """Raised when parsing an OpenQASM 2.0 program fails."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class DDError(ReproError):
    """Raised on invalid decision-diagram operations (level mismatch...)."""


class SimulationError(ReproError):
    """Raised when a simulation backend is misconfigured or fails."""


class ParallelError(ReproError):
    """Raised for invalid parallel configurations (e.g. non power-of-two t)."""


class ResourceExhaustedError(ReproError):
    """Raised when a simulation breaches its memory budget (array phase).

    Carries the structured breach context -- ``phase``, ``observed_bytes``,
    ``budget_bytes``, ``gate_index``, and ``checkpoint_path`` (the snapshot
    written just before raising, or None) -- so batch drivers can decide to
    retry on a bigger machine and resume from the checkpoint instead of
    parsing a message.  The CLI maps this to its own exit code (3) to keep
    "retry elsewhere" distinguishable from "the job itself is bad".
    """

    def __init__(
        self,
        phase: str,
        observed_bytes: int,
        budget_bytes: int,
        gate_index: int | None = None,
        checkpoint_path: str | None = None,
    ) -> None:
        self.phase = phase
        self.observed_bytes = observed_bytes
        self.budget_bytes = budget_bytes
        self.gate_index = gate_index
        self.checkpoint_path = checkpoint_path
        where = f" at gate {gate_index}" if gate_index is not None else ""
        ckpt = (
            f"; checkpoint written to {checkpoint_path}"
            if checkpoint_path
            else "; no checkpoint written"
        )
        super().__init__(
            f"memory budget exhausted in {phase} phase{where}: "
            f"{observed_bytes} bytes observed > {budget_bytes} bytes "
            f"budgeted{ckpt}"
        )


class CheckpointError(ReproError):
    """Raised for unusable snapshots (corruption, version/circuit mismatch).

    Distinct from :class:`ResourceExhaustedError` so batch drivers can tell
    "retry elsewhere, the snapshot is fine" from "the snapshot itself is
    bad and resuming is hopeless" (CLI exit code 4).
    """

    def __init__(self, message: str, path: str | None = None) -> None:
        self.path = path
        if path is not None:
            message = f"{path}: {message}"
        super().__init__(message)


class ServeError(ReproError):
    """Raised by the batch simulation service (:mod:`repro.serve`)."""


class ProtocolError(ServeError):
    """Raised for invalid cluster wire frames (:mod:`repro.cluster`).

    Carries the machine-readable ``kind`` (``"truncated"``,
    ``"bad_magic"``, ``"oversized_header"``, ``"oversized_payload"``,
    ``"malformed_header"``, ``"array_mismatch"``, ``"timeout"``) so the
    broker and the tests can discriminate framing failures without
    parsing messages.  A malformed or truncated frame must always raise
    -- never hang or silently resynchronize -- because a framing error
    means the stream position is unrecoverable and the connection must
    be torn down.  ``"timeout"`` is the one soft kind: it reports a
    peer that produced no bytes within the connection's I/O deadline,
    which an idle receiver may treat as "probe and retry" rather than
    tearing down (see :mod:`repro.cluster.transport`).
    """

    def __init__(self, kind: str, message: str) -> None:
        self.kind = kind
        super().__init__(message)


class AdmissionError(ServeError):
    """Raised when the job queue rejects a submission.

    Carries the machine-readable ``reason`` (``"queue_full"``,
    ``"too_many_qubits"``, ...) so callers and tests can discriminate
    rejection causes without parsing the message.
    """

    def __init__(self, reason: str, message: str) -> None:
        self.reason = reason
        super().__init__(message)
