"""Serialization helpers shared by the serve and cluster layers.

Everything that crosses a process boundary -- job specs, results, journal
records, metadata -- must survive a JSON round trip.  Simulation metadata
is *mostly* JSON-clean by construction (``metadata["obs"]`` is built from
plain dicts), but numpy scalars leak in easily (``np.int64`` from an
array index, ``np.float64`` from a timing mean), and ``json.dumps``
rejects them.  :func:`json_safe` normalizes a value tree into plain
Python types once, at the wire boundary, instead of relying on every
producer to remember.

:func:`array_to_bytes` / :func:`array_from_bytes` are the canonical
encoding of a numpy array for transport: raw C-contiguous bytes plus a
``{"dtype", "shape"}`` descriptor.  The cluster protocol ships the bytes
as a binary frame payload; standalone serializers (``to_wire``) base64
them instead.
"""

from __future__ import annotations

import base64
from typing import Any

import numpy as np

from repro.common.errors import ProtocolError

__all__ = [
    "array_from_bytes",
    "array_meta",
    "array_to_bytes",
    "b64_decode_array",
    "b64_encode_array",
    "json_safe",
]


def json_safe(value: Any) -> Any:
    """Best-effort conversion of ``value`` into JSON-serializable types.

    * numpy bools / integers / floats become their Python equivalents;
    * numpy arrays become (nested) lists, elementwise converted;
    * complex numbers become ``[real, imag]`` pairs;
    * tuples/sets become lists, dict keys become strings;
    * anything else unserializable falls back to ``repr()`` -- lossy but
      loud in the output rather than a crash on the wire.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (complex, np.complexfloating)):
        return [float(value.real), float(value.imag)]
    if isinstance(value, np.ndarray):
        return json_safe(value.tolist())
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_safe(v) for v in value]
    if isinstance(value, bytes):
        return base64.b64encode(value).decode("ascii")
    return repr(value)


def array_meta(array: np.ndarray) -> dict:
    """The ``{"dtype", "shape"}`` descriptor paired with the raw bytes."""
    return {"dtype": str(array.dtype), "shape": list(array.shape)}


def array_to_bytes(array: np.ndarray) -> tuple[dict, bytes]:
    """Canonical wire form: descriptor dict + C-contiguous raw bytes."""
    arr = np.ascontiguousarray(array)
    return array_meta(arr), arr.tobytes()


def array_from_bytes(meta: dict, payload: bytes) -> np.ndarray:
    """Rebuild an array from :func:`array_to_bytes` output.

    The byte count is validated against the descriptor so a mismatched
    payload (framing bug, torn write) raises a structured
    :class:`~repro.common.errors.ProtocolError` instead of producing a
    silently reshaped wrong answer.
    """
    try:
        dtype = np.dtype(meta["dtype"])
        shape = tuple(int(d) for d in meta["shape"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(
            "array_mismatch", f"bad array descriptor {meta!r}: {exc}"
        ) from exc
    expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
    if len(payload) != expected:
        raise ProtocolError(
            "array_mismatch",
            f"array payload is {len(payload)} bytes, descriptor "
            f"{meta!r} needs {expected}",
        )
    # .copy(): own the memory (frombuffer views are read-only and pin
    # the whole received payload alive).
    return np.frombuffer(payload, dtype=dtype).reshape(shape).copy()


def b64_encode_array(array: np.ndarray) -> dict:
    """Self-contained JSON form of an array (descriptor + base64 data)."""
    meta, raw = array_to_bytes(array)
    meta["data_b64"] = base64.b64encode(raw).decode("ascii")
    return meta


def b64_decode_array(meta: dict) -> np.ndarray:
    """Inverse of :func:`b64_encode_array`."""
    return array_from_bytes(meta, base64.b64decode(meta["data_b64"]))
