"""FlatDD core: EWMA trigger, conversion, DMAV, cost model, fusion."""

from repro.core.conversion import (
    ConversionPlan,
    ConversionReport,
    convert_ddsim_scalar,
    convert_parallel,
    convert_sequential,
    plan_conversion,
)
from repro.core.cost_model import (
    CacheAssignment,
    CostModel,
    GateCost,
    assign_cache_tasks,
    mac_count,
)
from repro.core.dmav import (
    DMAVStats,
    assign_tasks,
    dmav_cached,
    dmav_nocache,
    run_border_task,
    run_border_task_batch,
)
from repro.core.ewma import EWMAMonitor, EWMASample
from repro.core.fusion import (
    FusionResult,
    fuse_cost_aware,
    fuse_k_operations,
    identity_levels,
)
from repro.core.simulator import FlatDDSimulator
from repro.core.sweep import SweepResult, run_sweep

__all__ = [
    "CacheAssignment",
    "ConversionPlan",
    "ConversionReport",
    "CostModel",
    "DMAVStats",
    "EWMAMonitor",
    "EWMASample",
    "FlatDDSimulator",
    "FusionResult",
    "GateCost",
    "SweepResult",
    "assign_cache_tasks",
    "assign_tasks",
    "convert_ddsim_scalar",
    "convert_parallel",
    "convert_sequential",
    "dmav_cached",
    "dmav_nocache",
    "fuse_cost_aware",
    "fuse_k_operations",
    "identity_levels",
    "mac_count",
    "plan_conversion",
    "run_border_task",
    "run_border_task_batch",
    "run_sweep",
]
