"""Parallel DD-to-array conversion (Section 3.1.2, Figure 4).

When the EWMA monitor fires, FlatDD converts its DD state vector to a flat
array.  DDSIM's own exporter is sequential and can dominate total runtime
(Figure 13b shows up to 83%); this module implements the paper's parallel
algorithm with its two optimizations:

* **Load balancing** (Figure 4a): threads split in half at every DD node
  with two non-zero children; at a node with a zero child *all* threads
  follow the non-zero edge, so none idles on an empty subtree.
* **Scalar multiplication** (Figure 4b): at a node whose two children reach
  the same node, only the first half is converted by traversal; the second
  half is produced afterwards by one SIMD scalar multiplication of the
  first (the halves are scalar multiples of each other).

Both optimizations are independently toggleable so Figure 13's ablation can
measure them.  The sequential baseline is
:func:`repro.dd.vector.vector_to_array`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.common.config import DENSE_BLOCK_LEVEL
from repro.dd.analysis import dense_vector_block, vector_kron_collapse
from repro.dd.node import TERMINAL, DDNode, Edge
from repro.dd.package import DDPackage
from repro.dd.vector import vector_to_array
from repro.obs.tracer import NULL_TRACER
from repro.parallel.pool import TaskRunner
from repro.parallel.simd import simd_scale_into

__all__ = [
    "ConversionPlan",
    "ConversionReport",
    "convert_ddsim_scalar",
    "convert_parallel",
    "convert_sequential",
    "plan_conversion",
]


@dataclass(frozen=True)
class FillTask:
    """One thread-local traversal job: expand ``coeff * subtree(node)``."""

    node: DDNode
    offset: int
    coeff: complex


@dataclass(frozen=True)
class ScalarFill:
    """Deferred SIMD job: ``out[dst:dst+size] = scalar * out[src:src+size]``.

    ``level`` orders execution: deeper (smaller) fills must complete before
    an enclosing fill copies the range that contains them.
    """

    src: int
    dst: int
    size: int
    scalar: complex
    level: int


@dataclass
class ConversionPlan:
    """Thread split of the conversion (Figure 4's junction descent)."""

    threads: int
    tasks: list[list[FillTask]]
    scalar_fills: list[ScalarFill]
    #: Threads left idle at zero-edge junctions (only without load balancing).
    idle_threads: int = 0


@dataclass
class ConversionReport:
    """What Figure 13 measures for one conversion."""

    seconds: float
    threads: int
    num_tasks: int
    num_scalar_fills: int
    idle_threads: int
    load_balance: bool
    scalar_mult: bool


def plan_conversion(
    pkg: DDPackage,
    state: Edge,
    threads: int,
    load_balance: bool = True,
    scalar_mult: bool = True,
) -> ConversionPlan:
    """Descend from the root, dividing threads at junctions (Section 3.1.2).

    Returns per-thread traversal tasks plus the deferred scalar fills of
    the scalar-multiplication optimization.
    """
    tasks: list[list[FillTask]] = [[] for _ in range(threads)]
    scalar_fills: list[ScalarFill] = []
    idle = [0]

    def descend(e: Edge, coeff: complex, offset: int, lo_thread: int, nthreads: int) -> None:
        node = e.n
        coeff = coeff * e.w
        if node is TERMINAL or nthreads <= 1:
            tasks[lo_thread].append(FillTask(node, offset, coeff))
            return
        half = 1 << node.level
        e0, e1 = node.edges
        if scalar_mult and not e0.is_zero and not e1.is_zero and e0.n is e1.n:
            # Children reach the same node: halves are scalar multiples.
            # All threads convert the left half; one SIMD op fills the right.
            scalar_fills.append(
                ScalarFill(
                    src=offset,
                    dst=offset + half,
                    size=half,
                    scalar=e1.w / e0.w,
                    level=node.level,
                )
            )
            descend(e0, coeff, offset, lo_thread, nthreads)
            return
        if e0.is_zero or e1.is_zero:
            live = e1 if e0.is_zero else e0
            live_offset = offset + (half if e0.is_zero else 0)
            if load_balance:
                # All threads proceed along the non-zero edge (Figure 4a).
                descend(live, coeff, live_offset, lo_thread, nthreads)
            else:
                # Naive split: half the threads walk into the zero subtree
                # and find nothing to do.
                idle[0] += nthreads // 2
                keep = nthreads - nthreads // 2
                descend(live, coeff, live_offset, lo_thread, keep)
            return
        split = nthreads // 2
        descend(e0, coeff, offset, lo_thread, split)
        descend(e1, coeff, offset + half, lo_thread + split, nthreads - split)

    if not state.is_zero:
        descend(state, 1.0 + 0j, 0, 0, threads)
    return ConversionPlan(
        threads=threads,
        tasks=tasks,
        scalar_fills=scalar_fills,
        idle_threads=idle[0],
    )


def _fill_sweep(
    pkg: DDPackage, out: np.ndarray, node: DDNode, offset: int, coeff: complex
) -> None:
    """Vectorized level-by-level expansion of one subtree.

    The frontier of live root-to-here paths is kept as three parallel numpy
    arrays (node arena index, array offset, accumulated amplitude), and
    descending one level is a handful of gathers against the package's flat
    node arena -- no per-node or per-path Python at all.  This is the
    vectorized stand-in for the paper's per-thread DFS with SIMD
    (DESIGN.md substitution 2), and it is where the "flat array" of the
    title pays off on the DD side too.
    """
    w0_tab, w1_tab, c0_tab, c1_tab = pkg.vector_tables()
    idx = np.array([node.aidx], dtype=np.int64)
    offsets = np.array([offset], dtype=np.int64)
    amps = np.array([coeff], dtype=np.complex128)
    for level in range(node.level, -1, -1):
        half = 1 << level
        new_amps = np.concatenate(
            (amps * w0_tab[idx], amps * w1_tab[idx])
        )
        offsets = np.concatenate((offsets, offsets + half))
        # Zero-edge / terminal children carry arena index -1; their paths
        # either die (weight 0, masked below) or have just produced their
        # final amplitude (level 0), so the -1 is never dereferenced.
        idx = np.concatenate((c0_tab[idx], c1_tab[idx]))
        live = new_amps != 0
        amps = new_amps[live]
        offsets = offsets[live]
        idx = idx[live]
        if amps.size == 0:
            return
    out[offsets] = amps


def _fill(
    pkg: DDPackage,
    out: np.ndarray,
    task: FillTask,
    dense_level: int,
) -> None:
    """Expansion of one task's subtree into the output array."""
    node, offset, coeff = task.node, task.offset, task.coeff
    if coeff == 0:
        return
    if node is TERMINAL:
        out[offset] = coeff
        return
    collapsed = vector_kron_collapse(pkg, node, dense_level)
    if collapsed is not None:
        # Regular subtree (d (x) base): expand with one outer product.
        d, base = collapsed
        base_block = dense_vector_block(pkg, base)
        size = d.size * base_block.size
        np.multiply(
            (coeff * d)[:, None],
            base_block[None, :],
            out=out[offset:offset + size].reshape(d.size, base_block.size),
        )
        return
    # Irregular subtree: vectorized frontier sweep.
    _fill_sweep(pkg, out, node, offset, coeff)


def convert_parallel(
    pkg: DDPackage,
    state: Edge,
    threads: int = 1,
    runner: TaskRunner | None = None,
    load_balance: bool = True,
    scalar_mult: bool = True,
    dense_level: int = DENSE_BLOCK_LEVEL,
    tracer=None,
    unpermute: tuple[int, ...] | None = None,
) -> tuple[np.ndarray, ConversionReport]:
    """Convert a state-vector DD to a flat array with t threads.

    Returns the array and a :class:`ConversionReport` for Figure 13.
    ``tracer`` (a :class:`repro.obs.Tracer`) records the planning step,
    a per-thread fill span (category ``"convert"``), and the deferred
    scalar-fill pass.

    ``unpermute`` is the transpose-axes tuple from
    :func:`repro.core.reorder.unpermute_axes`: when the DD phase ran
    under a reordered qubit permutation, the converted amplitudes are
    mapped back to canonical order here (one reshape/transpose/ravel),
    so every downstream consumer sees canonical amplitude order.
    """
    tr = tracer if tracer is not None else NULL_TRACER
    n = pkg.num_qubits
    start = time.perf_counter()
    out = np.zeros(1 << n, dtype=np.complex128)
    plan = plan_conversion(pkg, state, threads, load_balance, scalar_mult)
    planned = time.perf_counter()
    if tr.enabled:
        tr.record(
            "convert.plan", "convert", start, planned,
            tasks=sum(map(len, plan.tasks)),
            scalar_fills=len(plan.scalar_fills),
            idle_threads=plan.idle_threads,
        )

    def work(u: int) -> None:
        t0 = time.perf_counter()
        for task in plan.tasks[u]:
            _fill(pkg, out, task, dense_level)
        if tr.enabled and plan.tasks[u]:
            tr.record(
                f"convert.fill[{u}]", "convert", t0, time.perf_counter(),
                thread_id=u, tasks=len(plan.tasks[u]),
            )

    if runner is not None and runner.use_pool:
        runner.run([lambda u=u: work(u) for u in range(threads)])
    else:
        for u in range(threads):
            work(u)

    # Deferred SIMD scalar fills, deepest first so sources are complete.
    s0 = time.perf_counter()
    for fill in sorted(plan.scalar_fills, key=lambda f: f.level):
        simd_scale_into(
            out[fill.dst:fill.dst + fill.size],
            out[fill.src:fill.src + fill.size],
            fill.scalar,
        )
    if tr.enabled and plan.scalar_fills:
        tr.record(
            "convert.scalar_fills", "convert", s0, time.perf_counter(),
            fills=len(plan.scalar_fills),
        )
    if unpermute is not None and unpermute != tuple(range(n)):
        u0 = time.perf_counter()
        out = np.ascontiguousarray(
            out.reshape([2] * n).transpose(unpermute)
        ).reshape(1 << n)
        if tr.enabled:
            tr.record(
                "convert.unpermute", "convert", u0, time.perf_counter(),
            )
    report = ConversionReport(
        seconds=time.perf_counter() - start,
        threads=threads,
        num_tasks=sum(map(len, plan.tasks)),
        num_scalar_fills=len(plan.scalar_fills),
        idle_threads=plan.idle_threads,
        load_balance=load_balance,
        scalar_mult=scalar_mult,
    )
    return out, report


def convert_sequential(pkg: DDPackage, state: Edge) -> tuple[np.ndarray, float]:
    """Single-threaded vectorized exporter (memoized subtrees), timed."""
    start = time.perf_counter()
    arr = vector_to_array(pkg, state)
    return arr, time.perf_counter() - start


def convert_ddsim_scalar(
    pkg: DDPackage, state: Edge
) -> tuple[np.ndarray, float]:
    """DDSIM's exporter model: scalar depth-first path walk, one amplitude
    at a time (the Figure 13 baseline).

    This mirrors ``getVector`` in DDSIM [99]: a sequential recursion that
    multiplies edge weights along every root-to-terminal path with no
    vectorization and no subtree reuse -- exactly the cost profile the
    paper reports consuming up to 83% of total runtime.
    """
    n = pkg.num_qubits
    out = np.zeros(1 << n, dtype=np.complex128)
    start = time.perf_counter()

    def walk(node: DDNode, offset: int, amp: complex) -> None:
        if node is TERMINAL:
            out[offset] = amp
            return
        half = 1 << node.level
        for i, child in enumerate(node.edges):
            if not child.is_zero:
                walk(child.n, offset + i * half, amp * child.w)

    if not state.is_zero:
        walk(state.n, 0, state.w)
    return out, time.perf_counter() - start
