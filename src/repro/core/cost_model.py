"""DMAV computational cost model (Section 3.2.3, Figure 8, Equations 5-6).

The unit of cost is the multiply-accumulate (MAC).  ``mac_count`` implements
Figure 8's DFS with a per-node look-up table: the terminal costs one MAC and
every node costs the sum of its non-zero children (identical nodes cost the
same, so the table collapses shared structure).

``CostModel.evaluate`` returns both Equation 5 (no caching, C1) and
Equation 6 (caching, C2 = K2/t + 2**n/(d*t) * (H/t + b)) for a gate matrix,
where H (cache hits), K2 (MACs not eliminated by caching) and b (partial
output buffers) come from simulating Algorithm 2's AssignCache partitioning
-- exactly the quantities the running system would realize.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import SIMD_WIDTH
from repro.dd.node import TERMINAL, DDNode, Edge
from repro.dd.package import DDPackage
from repro.parallel.partition import border_level
from repro.parallel.pool import validate_thread_count

__all__ = [
    "mac_count",
    "CacheAssignment",
    "assign_buffers",
    "assign_cache_tasks",
    "CostModel",
    "GateCost",
]


def mac_count(pkg: DDPackage, e: Edge) -> int:
    """Total MAC operations of a DMAV with gate matrix ``e`` (Figure 8)."""
    if e.is_zero:
        return 0
    return _mac_count_node(pkg, e.n)


def _mac_count_node(pkg: DDPackage, node: DDNode) -> int:
    if node is TERMINAL:
        return 1
    cached = pkg.mac_counts.get(id(node))
    if cached is not None:
        return cached
    total = sum(
        _mac_count_node(pkg, child.n)
        for child in node.edges
        if not child.is_zero
    )
    pkg.mac_counts[id(node)] = total
    return total


@dataclass
class CacheAssignment:
    """AssignCache's border-level task partition for one gate matrix.

    ``tasks[u]`` lists ``(node, partial_output_offset, weight_product)`` in
    assignment order for thread ``u``; ``buffer_of[u]`` is the shared
    partial-output buffer index (Algorithm 2 lines 22-25).
    """

    num_qubits: int
    threads: int
    tasks: list[list[tuple[DDNode, int, complex]]]
    buffer_of: list[int]
    num_buffers: int

    @property
    def cache_hits(self) -> int:
        """H of Equation 6: repeated border nodes within each thread."""
        hits = 0
        for thread_tasks in self.tasks:
            seen: set[int] = set()
            for node, _, _ in thread_tasks:
                if id(node) in seen:
                    hits += 1
                else:
                    seen.add(id(node))
        return hits

    def k2_macs(self, pkg: DDPackage) -> int:
        """K2 of Equation 6: MACs of each thread's *unique* border nodes."""
        total = 0
        for thread_tasks in self.tasks:
            seen: set[int] = set()
            for node, _, _ in thread_tasks:
                if id(node) not in seen:
                    seen.add(id(node))
                    total += _mac_count_node(pkg, node)
        return total


def assign_cache_tasks(pkg: DDPackage, m: Edge, threads: int) -> CacheAssignment:
    """Simulate Algorithm 2's AssignCache partition (column-major descent).

    The thread index follows the *column* half chosen at each level, the
    partial-output offset follows the *row* half -- so each thread owns a
    fixed slice of the input vector and its cache can reuse results across
    its own tasks (Section 3.2.2).
    """
    n = pkg.num_qubits
    validate_thread_count(threads, n)
    border = border_level(n, threads)
    tasks: list[list[tuple[DDNode, int, complex]]] = [[] for _ in range(threads)]

    def descend(e: Edge, f: complex, u: int, i_p: int, level: int) -> None:
        if e.is_zero:
            return
        if level == border:
            tasks[u].append((e.n, i_p, f * e.w))
            return
        stride = threads >> (n - level)
        for j in (0, 1):
            for i in (0, 1):
                descend(
                    e.n.edges[2 * i + j],
                    f * e.w,
                    u + j * stride,
                    i_p + (1 << level) * i,
                    level - 1,
                )

    if not m.is_zero:
        descend(m, 1.0 + 0j, 0, 0, n - 1)

    buffer_of, num_buffers = assign_buffers(tasks)
    return CacheAssignment(
        num_qubits=n,
        threads=threads,
        tasks=tasks,
        buffer_of=buffer_of,
        num_buffers=num_buffers,
    )


def assign_buffers(
    tasks: list[list[tuple[DDNode, int, complex]]],
) -> tuple[list[int], int]:
    """Algorithm 2 lines 22-25: first-fit threads into shared buffers.

    Two threads share a partial output buffer iff their occupied output
    slices don't overlap.  All slices have length h = 2**n / t, so
    comparing start offsets is an exact overlap test.  Shared between
    :func:`assign_cache_tasks` and the plan compiler
    (:mod:`repro.core.plan`) so both produce the identical partition.
    """
    buffer_slots: list[set[int]] = []
    buffer_of: list[int] = []
    for thread_tasks in tasks:
        offsets = {i_p for _, i_p, _ in thread_tasks}
        placed = -1
        for bi, occupied in enumerate(buffer_slots):
            if not (occupied & offsets):
                placed = bi
                occupied.update(offsets)
                break
        if placed < 0:
            buffer_slots.append(set(offsets))
            placed = len(buffer_slots) - 1
        buffer_of.append(placed)
    return buffer_of, len(buffer_slots)


@dataclass(frozen=True)
class GateCost:
    """Cost-model verdict for one gate matrix at a given thread count."""

    macs_total: int
    cost_nocache: float
    cost_cache: float
    cache_hits: int
    buffers: int

    @property
    def use_cache(self) -> bool:
        """Pick DMAV-with-caching when it models cheaper (C1 > C2)."""
        return self.cost_nocache > self.cost_cache

    @property
    def cost(self) -> float:
        """min(C1, C2): the cost the scheduler charges this gate."""
        return min(self.cost_nocache, self.cost_cache)


class CostModel:
    """Equations 5-6 evaluator, parameterized by t threads and SIMD width d."""

    def __init__(self, threads: int, simd_width: int = SIMD_WIDTH) -> None:
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        if simd_width < 1:
            raise ValueError(f"simd_width must be >= 1, got {simd_width}")
        self.threads = threads
        self.simd_width = simd_width
        # Cost depends only on the DD's zero structure, never on weights,
        # so verdicts are cached per root node: the fusion pass and the
        # DMAV loop both evaluate the same (hash-consed) gate DDs.
        self._cache: dict[int, GateCost] = {}

    def evaluate(self, pkg: DDPackage, m: Edge) -> GateCost:
        cached = self._cache.get(id(m.n))
        if cached is not None:
            return cached
        cost = self._from_assignment(
            pkg, m, assign_cache_tasks(pkg, m, self.threads)
        )
        self._cache[id(m.n)] = cost
        return cost

    def evaluate_assignment(
        self, pkg: DDPackage, m: Edge, assignment: CacheAssignment
    ) -> GateCost:
        """Like :meth:`evaluate`, from an already-built AssignCache partition.

        The plan compiler (:mod:`repro.core.plan`) derives the partition
        during its own descent; passing it here skips the second DD walk
        while producing the identical verdict (same H/K2/b inputs, same
        formulas, same per-root memoization).
        """
        cached = self._cache.get(id(m.n))
        if cached is not None:
            return cached
        cost = self._from_assignment(pkg, m, assignment)
        self._cache[id(m.n)] = cost
        return cost

    def _from_assignment(
        self, pkg: DDPackage, m: Edge, assignment: CacheAssignment
    ) -> GateCost:
        t, d = self.threads, self.simd_width
        k1 = mac_count(pkg, m)
        h_hits = assignment.cache_hits
        k2 = assignment.k2_macs(pkg)
        b = assignment.num_buffers
        n = pkg.num_qubits
        c1 = k1 / t
        c2 = k2 / t + ((1 << n) / (d * t)) * (h_hits / t + b)
        return GateCost(
            macs_total=k1,
            cost_nocache=c1,
            cost_cache=c2,
            cache_hits=h_hits,
            buffers=b,
        )
