"""DMAV: DD-matrix x array-vector multiplication (Sections 3.2.1-3.2.2).

This is FlatDD's core contribution: the gate matrix stays a DD (constant
average indexing work, full structure sharing) while the state vector is a
flat array (no irregularity blow-up).

* :func:`assign_tasks` / :func:`dmav_nocache` -- Algorithm 1.  ``Assign``
  splits the t threads in half at each DD level down to the border level
  ``n - log2 t - 1`` (row-major: each thread owns a row block of the output
  and reads all of V), then ``Run`` evaluates each border sub-matrix.
* :func:`dmav_cached` -- Algorithm 2.  Column-major assignment: each thread
  owns a column block (a fixed slice of V), writes into shared partial
  output buffers, and caches per-thread results so repeated border nodes
  collapse to one SIMD scalar multiplication (Figure 6).  Buffers are
  summed into W at the end.

The ``Run`` recursion bottoms out on vectorized kernels (identity subtrees
and cached dense blocks) instead of scalar MACs -- see DESIGN.md
substitution 2; MAC counts for the cost model are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.config import DENSE_BLOCK_LEVEL
from repro.dd.analysis import dense_matrix_block, is_identity, kron_collapse
from repro.dd.node import TERMINAL, DDNode, Edge
from repro.dd.package import DDPackage
from repro.core.cost_model import CacheAssignment, assign_cache_tasks
from repro.parallel.partition import border_level
from repro.parallel.pool import TaskRunner, validate_thread_count
from repro.parallel.simd import simd_add, simd_mul_into

__all__ = [
    "DMAVStats",
    "assign_tasks",
    "dmav_nocache",
    "dmav_cached",
    "run_border_task",
    "run_border_task_batch",
]


@dataclass
class DMAVStats:
    """Execution statistics of one DMAV call."""

    threads: int
    tasks: int
    cache_hits: int = 0
    buffers: int = 0
    used_cache: bool = False


def assign_tasks(
    pkg: DDPackage, m: Edge, threads: int
) -> list[list[tuple[DDNode, int, complex]]]:
    """Algorithm 1's Assign: row-major border-level task lists per thread.

    Each task is ``(border_node, v_start_index, coefficient)`` where the
    coefficient is the weight product along the DD path *including* the
    border edge's own weight.
    """
    n = pkg.num_qubits
    validate_thread_count(threads, n)
    border = border_level(n, threads)
    tasks: list[list[tuple[DDNode, int, complex]]] = [[] for _ in range(threads)]

    def descend(e: Edge, f: complex, u: int, i_v: int, level: int) -> None:
        if e.is_zero:
            return
        if level == border:
            tasks[u].append((e.n, i_v, f * e.w))
            return
        stride = threads >> (n - level)
        for i in (0, 1):
            for j in (0, 1):
                descend(
                    e.n.edges[2 * i + j],
                    f * e.w,
                    u + i * stride,
                    i_v + (1 << level) * j,
                    level - 1,
                )

    if not m.is_zero:
        descend(m, 1.0 + 0j, 0, 0, n - 1)
    return tasks


def _apply_batched(
    pkg: DDPackage,
    node: DDNode,
    vmat: np.ndarray,
    dense_level: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Apply the normalized subtree under ``node`` to a batch of vectors.

    ``vmat`` has shape ``(batch, 2**(level+1))`` (C-contiguous); the result
    has the same shape.  Recursion groups the four 2x2-block children by
    child *node*, stacking their input halves into one call -- so the call
    count is proportional to the gate DD's edge count, not to the number of
    root-to-terminal paths (the pure-Python analogue of the paper's
    constant-average-indexing claim for DMAV, Section 3.2.1).

    ``out`` is a best-effort, contiguous result destination of ``vmat``'s
    shape that must not overlap ``vmat``.  Branches whose final operation
    can target it directly do so (skipping one result-sized allocation);
    others -- notably identity subtrees, which return ``vmat`` itself --
    ignore it.  Callers must therefore always use the *returned* array.
    The values written are the same bits either way.
    """
    if node is TERMINAL or is_identity(pkg, node):
        return vmat
    size = vmat.shape[1]
    if node.level <= dense_level:
        block = dense_matrix_block(pkg, node)
        if out is None:
            return vmat @ block.T
        np.matmul(vmat, block.T, out=out)
        return out
    collapsed = kron_collapse(pkg, node, dense_level)
    if collapsed is not None:
        # Subtree acts as diag(d) (x) M_base: one reshape + matmul.
        d, base = collapsed
        if base is TERMINAL:
            if out is None:
                return vmat * d
            np.multiply(vmat, d, out=out)
            return out
        block = dense_matrix_block(pkg, base)
        bs = block.shape[0]
        shape3 = (vmat.shape[0], d.size, bs)
        if out is None:
            folded = vmat.reshape(shape3) @ block.T
        else:
            folded = out.reshape(shape3)
            np.matmul(vmat.reshape(shape3), block.T, out=folded)
        folded *= d[None, :, None]
        return folded.reshape(vmat.shape)
    half = size // 2
    e00, e01, e10, e11 = node.edges
    if (
        e01.is_zero
        and e10.is_zero
        and not e00.is_zero
        and not e11.is_zero
        and e00.n is e11.n
    ):
        # Pass-through level (diag block, shared child): fold the halves
        # into the batch axis as a *view* and recurse once -- zero copies
        # until a non-trivial level is reached.
        m = vmat.shape[0]
        if e00.w == 1 and e11.w == 1:
            folded = _apply_batched(
                pkg,
                e00.n,
                vmat.reshape(2 * m, half),
                dense_level,
                None if out is None else out.reshape(2 * m, half),
            )
            return folded.reshape(m, size)
        folded = _apply_batched(
            pkg, e00.n, vmat.reshape(2 * m, half), dense_level
        )
        scale = np.array([e00.w, e11.w], dtype=np.complex128)
        if out is None:
            return (
                folded.reshape(m, 2, half) * scale[None, :, None]
            ).reshape(m, size)
        np.multiply(
            folded.reshape(m, 2, half),
            scale[None, :, None],
            out=out.reshape(m, 2, half),
        )
        return out
    halves = (vmat[:, :half], vmat[:, half:])
    # Group the (up to four) child applications by child node: a child that
    # appears under several (i, j) positions runs once on a stacked batch.
    groups: dict[int, tuple[DDNode, list[tuple[int, int, complex]]]] = {}
    for k, child in enumerate(node.edges):
        if child.is_zero:
            continue
        i, j = divmod(k, 2)
        entry = groups.get(id(child.n))
        if entry is None:
            groups[id(child.n)] = (child.n, [(i, j, child.w)])
        else:
            entry[1].append((i, j, child.w))
    # Assign on first write per output half instead of accumulating onto a
    # zero-filled buffer: ``w * b`` and ``0 + w * b`` only differ in signed
    # zeros, and skipping the O(size) fill plus one temporary per first use
    # is most of this level's overhead.
    if out is None:
        out = np.empty_like(vmat)
    written = [False, False]
    m = vmat.shape[0]
    for child_node, uses in groups.values():
        if child_node is TERMINAL or is_identity(pkg, child_node):
            # The child applies as the identity: read the input halves
            # directly instead of stacking a copy just to get it back.
            result = halves
            slot = {0: 0, 1: 1}
        else:
            js = sorted({j for _, j, _ in uses})
            if len(js) == 1:
                stacked = halves[js[0]]
            else:
                stacked = np.concatenate([halves[j] for j in js], axis=0)
            res = _apply_batched(pkg, child_node, stacked, dense_level)
            slot = {j: pos for pos, j in enumerate(js)}
            result = [
                res[pos * m:(pos + 1) * m] for pos in range(len(js))
            ]
        for i, j, weight in uses:
            block = result[slot[j]]
            dst = out[:, i * half:(i + 1) * half]
            if written[i]:
                dst += weight * block
            else:
                np.multiply(weight, block, out=dst)
                written[i] = True
    for i in (0, 1):
        if not written[i]:
            out[:, i * half:(i + 1) * half] = 0.0
    return out


def _lockstep_rowwise(
    pkg: DDPackage,
    nodes: list[DDNode],
    vten: np.ndarray,
    dense_level: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Exact per-row fallback: the single-shot kernel on each batch row."""
    if out is None:
        out = np.empty(vten.shape, dtype=np.complex128)
    for b, node in enumerate(nodes):
        out[b] = _apply_batched(pkg, node, vten[b], dense_level)
    return out


def _partition_sig(node: DDNode) -> tuple[int, ...]:
    """Child-grouping signature of one node's four 2x2-block edges.

    Position ``k`` maps to ``-1`` (zero edge) or the first-occurrence
    index of its child node within this node's edges.  Two nodes with
    equal signatures group their children identically, which is what the
    lockstep generic branch needs to run one stacked recursion per group.
    """
    seen: dict[int, int] = {}
    sig = []
    for child in node.edges:
        if child.is_zero:
            sig.append(-1)
        else:
            sig.append(seen.setdefault(id(child.n), len(seen)))
    return tuple(sig)


def _apply_lockstep(
    pkg: DDPackage,
    nodes: list[DDNode],
    vten: np.ndarray,
    dense_level: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Apply per-row gate sub-DDs to a batch of vector blocks in lockstep.

    ``vten`` has shape ``(rows, m, 2**(level+1))``: row ``b``'s
    ``(m, size)`` slice is exactly the ``vmat`` the single-shot kernel
    (:func:`_apply_batched`) sees for that row at this recursion point,
    and ``nodes[b]`` is that row's sub-DD (rows of a parameter sweep share
    structure but differ in edge weights, so the node *objects* usually
    differ).  Every branch mirrors ``_apply_batched`` with the batch as a
    leading broadcast axis: each gemm becomes a broadcast matmul whose
    trailing two dimensions equal the single-shot gemm shape (numpy
    evaluates broadcast matmuls slice-by-slice with the same kernel, so
    each row's result is bit-identical to its single-shot run), and every
    scale/accumulate stays elementwise.  Whenever the rows' DDs disagree
    structurally -- different branch taken, different child partition --
    the whole level drops to :func:`_lockstep_rowwise`, which is exact by
    construction, just not batched.  ``out`` follows ``_apply_batched``'s
    best-effort contract (must be C-contiguous here; callers pass None or
    a buffer this module allocated).
    """
    n0 = nodes[0]
    flags = [nd is TERMINAL or is_identity(pkg, nd) for nd in nodes]
    if all(flags):
        return vten
    if any(flags):
        return _lockstep_rowwise(pkg, nodes, vten, dense_level, out)
    level = n0.level
    if any(nd.level != level for nd in nodes):
        return _lockstep_rowwise(pkg, nodes, vten, dense_level, out)
    rows, m, size = vten.shape
    shared = all(nd is n0 for nd in nodes)
    if level <= dense_level:
        if shared:
            block_t = dense_matrix_block(pkg, n0).T
        else:
            block_t = np.stack(
                [dense_matrix_block(pkg, nd) for nd in nodes]
            ).transpose(0, 2, 1)
        if out is None:
            return vten @ block_t
        np.matmul(vten, block_t, out=out)
        return out
    collapsed = [kron_collapse(pkg, nd, dense_level) for nd in nodes]
    if collapsed[0] is not None:
        if any(c is None for c in collapsed):
            return _lockstep_rowwise(pkg, nodes, vten, dense_level, out)
        bases = [c[1] for c in collapsed]
        term = [base is TERMINAL for base in bases]
        if all(term):
            d = (
                collapsed[0][0]
                if shared
                else np.stack([c[0] for c in collapsed])[:, None, :]
            )
            if out is None:
                return vten * d
            np.multiply(vten, d, out=out)
            return out
        if any(term) or any(b.level != bases[0].level for b in bases):
            return _lockstep_rowwise(pkg, nodes, vten, dense_level, out)
        if shared:
            block_t = dense_matrix_block(pkg, bases[0]).T
            d = collapsed[0][0][None, None, :, None]
        else:
            block_t = np.stack(
                [dense_matrix_block(pkg, b) for b in bases]
            ).transpose(0, 2, 1)[:, None]
            d = np.stack([c[0] for c in collapsed])[:, None, :, None]
        bs = 2 << bases[0].level
        shape4 = (rows, m, size // bs, bs)
        if out is None:
            folded = vten.reshape(shape4) @ block_t
        else:
            folded = out.reshape(shape4)
            np.matmul(vten.reshape(shape4), block_t, out=folded)
        folded *= d
        return folded.reshape(rows, m, size)
    half = size // 2

    def passthrough(nd: DDNode) -> bool:
        e00, e01, e10, e11 = nd.edges
        return (
            e01.is_zero
            and e10.is_zero
            and not e00.is_zero
            and not e11.is_zero
            and e00.n is e11.n
        )

    pts = [passthrough(nd) for nd in nodes]
    if pts[0] or any(pts):
        if not all(pts):
            return _lockstep_rowwise(pkg, nodes, vten, dense_level, out)
        children = [nd.edges[0].n for nd in nodes]
        units = [nd.edges[0].w == 1 and nd.edges[3].w == 1 for nd in nodes]
        if all(units):
            folded = _apply_lockstep(
                pkg,
                children,
                vten.reshape(rows, 2 * m, half),
                dense_level,
                None if out is None else out.reshape(rows, 2 * m, half),
            )
            return folded.reshape(rows, m, size)
        if any(units):
            # Single-shot takes the scaled branch only for non-unit
            # weights; mixed rows would diverge in signed zeros -- stay
            # strict and replay per row.
            return _lockstep_rowwise(pkg, nodes, vten, dense_level, out)
        folded = _apply_lockstep(
            pkg, children, vten.reshape(rows, 2 * m, half), dense_level
        )
        scale = np.array(
            [[nd.edges[0].w, nd.edges[3].w] for nd in nodes],
            dtype=np.complex128,
        )[:, None, :, None]
        f4 = folded.reshape(rows, m, 2, half)
        if out is None:
            return (f4 * scale).reshape(rows, m, size)
        np.multiply(f4, scale, out=out.reshape(rows, m, 2, half))
        return out
    sig = _partition_sig(n0)
    if any(_partition_sig(nd) != sig for nd in nodes[1:]):
        return _lockstep_rowwise(pkg, nodes, vten, dense_level, out)
    # Group positions exactly like the single-shot kernel: by child node,
    # insertion order.  Equal signatures make the grouping identical for
    # every row, so one stacked lockstep recursion serves each group.
    positions: list[list[int]] = []
    for k, gid in enumerate(sig):
        if gid < 0:
            continue
        if gid == len(positions):
            positions.append([k])
        else:
            positions[gid].append(k)
    group_nodes = [
        [nd.edges[ks[0]].n for nd in nodes] for ks in positions
    ]
    group_idn = []
    for gnodes in group_nodes:
        gf = [gn is TERMINAL or is_identity(pkg, gn) for gn in gnodes]
        if any(gf) and not all(gf):
            return _lockstep_rowwise(pkg, nodes, vten, dense_level, out)
        group_idn.append(all(gf))
    halves = (vten[:, :, :half], vten[:, :, half:])
    if out is None:
        out = np.empty((rows, m, size), dtype=np.complex128)
    written = [False, False]
    for ks, gnodes, idn in zip(positions, group_nodes, group_idn):
        uses = [divmod(k, 2) for k in ks]
        if idn:
            result = halves
            slot = {0: 0, 1: 1}
        else:
            js = sorted({j for _i, j in uses})
            if len(js) == 1:
                stacked = halves[js[0]]
            else:
                stacked = np.concatenate([halves[j] for j in js], axis=1)
            res = _apply_lockstep(pkg, gnodes, stacked, dense_level)
            slot = {j: pos for pos, j in enumerate(js)}
            result = [
                res[:, pos * m:(pos + 1) * m, :] for pos in range(len(js))
            ]
        for i, j in uses:
            wts = np.array(
                [nd.edges[2 * i + j].w for nd in nodes], dtype=np.complex128
            )[:, None, None]
            block = result[slot[j]]
            dst = out[:, :, i * half:(i + 1) * half]
            if written[i]:
                dst += wts * block
            else:
                np.multiply(wts, block, out=dst)
                written[i] = True
    for i in (0, 1):
        if not written[i]:
            out[:, :, i * half:(i + 1) * half] = 0.0
    return out


def run_border_task_batch(
    pkg: DDPackage,
    nodes: list[DDNode],
    coeffs,
    vin: np.ndarray,
    wout: np.ndarray,
    dense_level: int = DENSE_BLOCK_LEVEL,
    accumulate: bool = True,
) -> None:
    """Batched Run: per-row border sub-matrices over pre-sliced batch views.

    ``vin``/``wout`` are the task's input and output column ranges as
    ``(rows, size)`` views (``(rows, 1)`` for terminal tasks); the caller
    (:mod:`repro.core.sweep`) slices them out of tile-major batch buffers
    so that chunk-aligned tasks arrive C-contiguous and need no gather
    copy.  Row ``b`` reproduces ``run_border_task(pkg, nodes[b],
    coeffs[b], ...)`` on its own state -- bit-identical up to signed
    zeros (``np.array_equal``), the repo-wide replay guarantee.  The
    caller guarantees structural congruence of the per-row plans: all
    rows' nodes at one task index are terminal together or not, and
    offsets match.  Terminal tasks touch single elements and must stay
    scalar Python complex arithmetic (vectorized complex ops round
    differently); everything else goes through the lockstep kernel.
    """
    if nodes[0] is TERMINAL:
        if accumulate:
            for b, c in enumerate(coeffs):
                wout[b, 0] += c * vin[b, 0]
        else:
            for b, c in enumerate(coeffs):
                wout[b, 0] = c * vin[b, 0]
        return
    rows, size = vin.shape
    if not vin.flags.c_contiguous:
        vin = np.ascontiguousarray(vin)
    v3 = vin.reshape(rows, 1, size)
    carr = np.asarray(coeffs, dtype=np.complex128)[:, None]
    if accumulate:
        res = _apply_lockstep(pkg, nodes, v3, dense_level)[:, 0, :]
        wout += carr * res
        return
    # Assigning tasks forward their output slice as the kernel's result
    # destination exactly like the single-shot path: the kernel either
    # writes it in place (same bits as returning a fresh array, per its
    # contract) or ignores it, in which case the scale/copy below lands
    # the values.  Aliased multiplies are element-aligned, hence defined.
    fwd = wout.reshape(rows, 1, size) if wout.flags.c_contiguous else None
    res = _apply_lockstep(pkg, nodes, v3, dense_level, fwd)[:, 0, :]
    if all(c == 1.0 + 0j for c in coeffs):
        if not np.may_share_memory(res, wout):
            np.copyto(wout, res)
        return
    np.multiply(carr, res, out=wout)


def run_border_task(
    pkg: DDPackage,
    node: DDNode,
    coeff: complex,
    v: np.ndarray,
    w: np.ndarray,
    i_v: int,
    i_w: int,
    dense_level: int = DENSE_BLOCK_LEVEL,
    accumulate: bool = True,
) -> None:
    """Algorithm 1's Run on one border sub-matrix: w-block += coeff * M v.

    The scalar-MAC recursion of the paper's C++ is replaced by the batched
    vectorized kernel (DESIGN.md substitution 2).  With
    ``accumulate=False`` the block is *assigned* instead of accumulated,
    which lets planned runs write into recycled (dirty, never-zeroed)
    buffers; the values only differ from ``0 + x`` in signed zeros.
    """
    if node is TERMINAL:
        if accumulate:
            w[i_w] += coeff * v[i_v]
        else:
            w[i_w] = coeff * v[i_v]
        return
    size = 2 << node.level
    vin = np.ascontiguousarray(v[i_v:i_v + size]).reshape(1, size)
    if accumulate:
        res = _apply_batched(pkg, node, vin, dense_level)[0]
        w[i_w:i_w + size] += coeff * res
    else:
        # Assigning tasks hand the kernel their output slice as the result
        # destination, then scale in place -- no intermediate buffer at
        # all.  ``res`` either IS that slice's memory (same positions, so
        # the aliased multiply is well-defined) or an input view the
        # kernel passed through untouched.  Operand order matters
        # bit-for-bit: numpy's FMA-based complex multiply rounds
        # differently per order, and the accumulate path computes
        # ``coeff * res``.
        wslice = w[i_w:i_w + size]
        res = _apply_batched(
            pkg, node, vin, dense_level, wslice.reshape(1, size)
        )[0]
        if coeff == 1.0 + 0j:
            # Unit coefficient: ``1 * res`` differs from ``res`` only in
            # signed zeros, and assignment (unlike accumulation, which
            # still owes an add) needs no pass at all when the kernel
            # already wrote the slice.
            if not np.may_share_memory(res, wslice):
                np.copyto(wslice, res)
            return
        np.multiply(coeff, res, out=wslice)


def dmav_nocache(
    pkg: DDPackage,
    m: Edge,
    v: np.ndarray,
    threads: int = 1,
    runner: TaskRunner | None = None,
    dense_level: int = DENSE_BLOCK_LEVEL,
    out: np.ndarray | None = None,
    *,
    tasks: list[list[tuple[DDNode, int, complex]]] | None = None,
    out_dirty: bool = True,
) -> tuple[np.ndarray, DMAVStats]:
    """DMAV without caching (Algorithm 1): returns (w, stats).

    ``tasks`` may be passed from a compiled :class:`~repro.core.plan.GatePlan`
    (``row_tasks``) to skip the per-call Assign descent.  In that *planned*
    mode ``out`` is not pre-zeroed: each thread's first task assigns its
    output slice and the rest accumulate, so a dirty recycled buffer only
    needs filling (governed by ``out_dirty``) for threads with no tasks.
    """
    n = pkg.num_qubits
    if v.shape != (1 << n,):
        raise ValueError(f"state length {v.shape} != 2**{n}")
    if out is v:
        raise ValueError("DMAV cannot write its output over the input state")
    planned = tasks is not None
    w = out if out is not None else np.zeros_like(v)
    if out is not None and not planned:
        w.fill(0)
    if tasks is None:
        tasks = assign_tasks(pkg, m, threads)
    h = (1 << n) // threads

    def work(u: int) -> None:
        if planned:
            if not tasks[u]:
                if out_dirty:
                    w[u * h:(u + 1) * h].fill(0)
                return
            first = True
            for node, i_v, coeff in tasks[u]:
                if first and node is TERMINAL:
                    # A terminal border task writes a single element, not
                    # the whole slice -- fall back to zero-fill + add.
                    w[u * h:(u + 1) * h].fill(0)
                    first = False
                run_border_task(
                    pkg, node, coeff, v, w, i_v, u * h, dense_level,
                    accumulate=not first,
                )
                first = False
            return
        for node, i_v, coeff in tasks[u]:
            run_border_task(pkg, node, coeff, v, w, i_v, u * h, dense_level)

    if runner is not None and runner.use_pool:
        runner.run([lambda u=u: work(u) for u in range(threads)])
    else:
        for u in range(threads):
            work(u)
    stats = DMAVStats(threads=threads, tasks=sum(map(len, tasks)))
    return w, stats


def dmav_cached(
    pkg: DDPackage,
    m: Edge,
    v: np.ndarray,
    threads: int = 1,
    runner: TaskRunner | None = None,
    dense_level: int = DENSE_BLOCK_LEVEL,
    out: np.ndarray | None = None,
    assignment: CacheAssignment | None = None,
    *,
    buffers: list[np.ndarray] | None = None,
    writers: list[list[int]] | None = None,
    out_dirty: bool = True,
    direct: list[list[bool]] | None = None,
    direct_out: list[bool] | None = None,
) -> tuple[np.ndarray, DMAVStats]:
    """DMAV with caching (Algorithm 2): returns (w, stats).

    ``assignment`` may be passed in when the caller already ran the cost
    model for this gate (it computes the same partition).

    ``buffers``/``writers`` (from a :class:`~repro.parallel.arena.BufferArena`
    and a compiled :class:`~repro.core.plan.GatePlan`) switch on *planned*
    mode: partial buffers arrive dirty and are never pre-zeroed -- each
    buffer slice is written (assigned) by exactly one task, and the
    summation reads only each output slice's writer list instead of
    scanning every buffer.  ``out`` is likewise not pre-zeroed; writerless
    slices are filled only when ``out_dirty``.

    ``direct``/``direct_out`` (also plan-compiled) flag tasks that are the
    sole producer of their output slice and never feed a later cache hit:
    they write W in place and the summation skips their slice.
    """
    n = pkg.num_qubits
    if v.shape != (1 << n,):
        raise ValueError(f"state length {v.shape} != 2**{n}")
    if out is v:
        raise ValueError("DMAV cannot write its output over the input state")
    if assignment is None:
        assignment = assign_cache_tasks(pkg, m, threads)
    planned = buffers is not None
    if planned and writers is None:
        raise ValueError("planned dmav_cached requires writer lists")
    if planned and len(buffers) < assignment.num_buffers:
        raise ValueError(
            f"{len(buffers)} buffers passed, assignment needs "
            f"{assignment.num_buffers}"
        )
    h = (1 << n) // threads
    if buffers is None:
        buffers = [
            np.zeros(1 << n, dtype=np.complex128)
            for _ in range(assignment.num_buffers)
        ]
    hits = [0] * threads
    w = out if out is not None else np.zeros_like(v)
    if out is not None and not planned:
        w.fill(0)

    def work(u: int) -> None:
        # Per-thread result cache: border node -> (coefficient, offset).
        cache: dict[int, tuple[complex, int]] = {}
        buf = buffers[assignment.buffer_of[u]] if assignment.tasks[u] else None
        flags = direct[u] if direct is not None else None
        for i, (node, i_p, coeff) in enumerate(assignment.tasks[u]):
            to_w = flags is not None and flags[i]
            hit = cache.get(id(node))
            if hit is not None:
                prev_coeff, prev_off = hit
                dst = w if to_w else buf
                simd_mul_into(
                    dst[i_p:i_p + h],
                    buf[prev_off:prev_off + h],
                    coeff / prev_coeff,
                )
                hits[u] += 1
            elif to_w:
                # Sole producer of output slice i_p // h, never a hit
                # source: write W in place; sum_block skips this slice.
                run_border_task(
                    pkg, node, coeff, v, w, u * h, i_p, dense_level,
                    accumulate=False,
                )
            else:
                if planned and node is TERMINAL:
                    # Terminal border tasks write one element, not the
                    # whole slice -- zero it so stale data can't leak.
                    buf[i_p:i_p + h].fill(0)
                run_border_task(
                    pkg, node, coeff, v, buf, u * h, i_p, dense_level,
                    accumulate=not planned or node is TERMINAL,
                )
                cache[id(node)] = (coeff, i_p)

    if runner is not None and runner.use_pool:
        runner.run([lambda u=u: work(u) for u in range(threads)])
    else:
        for u in range(threads):
            work(u)

    def sum_block(u: int) -> None:
        lo, hi = u * h, (u + 1) * h
        if not planned:
            for buf in buffers:
                simd_add(w[lo:hi], buf[lo:hi])
            return
        ws = writers[u]
        if not ws:
            if direct_out is not None and direct_out[u]:
                return  # a direct task already wrote this slice in full
            if out_dirty:
                w[lo:hi].fill(0)
            return
        np.copyto(w[lo:hi], buffers[ws[0]][lo:hi])
        for b in ws[1:]:
            simd_add(w[lo:hi], buffers[b][lo:hi])

    if runner is not None and runner.use_pool:
        runner.run([lambda u=u: sum_block(u) for u in range(threads)])
    else:
        for u in range(threads):
            sum_block(u)
    stats = DMAVStats(
        threads=threads,
        tasks=sum(map(len, assignment.tasks)),
        cache_hits=sum(hits),
        buffers=assignment.num_buffers,
        used_cache=True,
    )
    return w, stats
