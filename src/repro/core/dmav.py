"""DMAV: DD-matrix x array-vector multiplication (Sections 3.2.1-3.2.2).

This is FlatDD's core contribution: the gate matrix stays a DD (constant
average indexing work, full structure sharing) while the state vector is a
flat array (no irregularity blow-up).

* :func:`assign_tasks` / :func:`dmav_nocache` -- Algorithm 1.  ``Assign``
  splits the t threads in half at each DD level down to the border level
  ``n - log2 t - 1`` (row-major: each thread owns a row block of the output
  and reads all of V), then ``Run`` evaluates each border sub-matrix.
* :func:`dmav_cached` -- Algorithm 2.  Column-major assignment: each thread
  owns a column block (a fixed slice of V), writes into shared partial
  output buffers, and caches per-thread results so repeated border nodes
  collapse to one SIMD scalar multiplication (Figure 6).  Buffers are
  summed into W at the end.

The ``Run`` recursion bottoms out on vectorized kernels (identity subtrees
and cached dense blocks) instead of scalar MACs -- see DESIGN.md
substitution 2; MAC counts for the cost model are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.config import DENSE_BLOCK_LEVEL
from repro.dd.analysis import dense_matrix_block, is_identity, kron_collapse
from repro.dd.node import TERMINAL, DDNode, Edge
from repro.dd.package import DDPackage
from repro.core.cost_model import CacheAssignment, assign_cache_tasks
from repro.parallel.partition import border_level
from repro.parallel.pool import TaskRunner, validate_thread_count
from repro.parallel.simd import simd_add, simd_mul

__all__ = ["DMAVStats", "assign_tasks", "dmav_nocache", "dmav_cached", "run_border_task"]


@dataclass
class DMAVStats:
    """Execution statistics of one DMAV call."""

    threads: int
    tasks: int
    cache_hits: int = 0
    buffers: int = 0
    used_cache: bool = False


def assign_tasks(
    pkg: DDPackage, m: Edge, threads: int
) -> list[list[tuple[DDNode, int, complex]]]:
    """Algorithm 1's Assign: row-major border-level task lists per thread.

    Each task is ``(border_node, v_start_index, coefficient)`` where the
    coefficient is the weight product along the DD path *including* the
    border edge's own weight.
    """
    n = pkg.num_qubits
    validate_thread_count(threads, n)
    border = border_level(n, threads)
    tasks: list[list[tuple[DDNode, int, complex]]] = [[] for _ in range(threads)]

    def descend(e: Edge, f: complex, u: int, i_v: int, level: int) -> None:
        if e.is_zero:
            return
        if level == border:
            tasks[u].append((e.n, i_v, f * e.w))
            return
        stride = threads >> (n - level)
        for i in (0, 1):
            for j in (0, 1):
                descend(
                    e.n.edges[2 * i + j],
                    f * e.w,
                    u + i * stride,
                    i_v + (1 << level) * j,
                    level - 1,
                )

    if not m.is_zero:
        descend(m, 1.0 + 0j, 0, 0, n - 1)
    return tasks


def _apply_batched(
    pkg: DDPackage,
    node: DDNode,
    vmat: np.ndarray,
    dense_level: int,
) -> np.ndarray:
    """Apply the normalized subtree under ``node`` to a batch of vectors.

    ``vmat`` has shape ``(batch, 2**(level+1))`` (C-contiguous); the result
    has the same shape.  Recursion groups the four 2x2-block children by
    child *node*, stacking their input halves into one call -- so the call
    count is proportional to the gate DD's edge count, not to the number of
    root-to-terminal paths (the pure-Python analogue of the paper's
    constant-average-indexing claim for DMAV, Section 3.2.1).
    """
    if node is TERMINAL or is_identity(pkg, node):
        return vmat
    size = vmat.shape[1]
    if node.level <= dense_level:
        return vmat @ dense_matrix_block(pkg, node).T
    collapsed = kron_collapse(pkg, node, dense_level)
    if collapsed is not None:
        # Subtree acts as diag(d) (x) M_base: one reshape + matmul.
        d, base = collapsed
        if base is TERMINAL:
            return vmat * d
        block = dense_matrix_block(pkg, base)
        bs = block.shape[0]
        folded = vmat.reshape(vmat.shape[0], d.size, bs) @ block.T
        folded *= d[None, :, None]
        return folded.reshape(vmat.shape)
    half = size // 2
    e00, e01, e10, e11 = node.edges
    if (
        e01.is_zero
        and e10.is_zero
        and not e00.is_zero
        and not e11.is_zero
        and e00.n is e11.n
    ):
        # Pass-through level (diag block, shared child): fold the halves
        # into the batch axis as a *view* and recurse once -- zero copies
        # until a non-trivial level is reached.
        m = vmat.shape[0]
        folded = _apply_batched(
            pkg, e00.n, vmat.reshape(2 * m, half), dense_level
        )
        if e00.w == 1 and e11.w == 1:
            return folded.reshape(m, size)
        scale = np.array([e00.w, e11.w], dtype=np.complex128)
        return (folded.reshape(m, 2, half) * scale[None, :, None]).reshape(
            m, size
        )
    halves = (vmat[:, :half], vmat[:, half:])
    # Group the (up to four) child applications by child node: a child that
    # appears under several (i, j) positions runs once on a stacked batch.
    groups: dict[int, tuple[DDNode, list[tuple[int, int, complex]]]] = {}
    for k, child in enumerate(node.edges):
        if child.is_zero:
            continue
        i, j = divmod(k, 2)
        entry = groups.get(id(child.n))
        if entry is None:
            groups[id(child.n)] = (child.n, [(i, j, child.w)])
        else:
            entry[1].append((i, j, child.w))
    out = np.zeros_like(vmat)
    for child_node, uses in groups.values():
        js = sorted({j for _, j, _ in uses})
        stacked = np.concatenate([halves[j] for j in js], axis=0)
        result = _apply_batched(pkg, child_node, stacked, dense_level)
        m = vmat.shape[0]
        slot = {j: pos for pos, j in enumerate(js)}
        for i, j, weight in uses:
            block = result[slot[j] * m:(slot[j] + 1) * m]
            out[:, i * half:(i + 1) * half] += weight * block
    return out


def run_border_task(
    pkg: DDPackage,
    node: DDNode,
    coeff: complex,
    v: np.ndarray,
    w: np.ndarray,
    i_v: int,
    i_w: int,
    dense_level: int = DENSE_BLOCK_LEVEL,
) -> None:
    """Algorithm 1's Run on one border sub-matrix: w-block += coeff * M v.

    The scalar-MAC recursion of the paper's C++ is replaced by the batched
    vectorized kernel (DESIGN.md substitution 2).
    """
    if node is TERMINAL:
        w[i_w] += coeff * v[i_v]
        return
    size = 2 << node.level
    vin = np.ascontiguousarray(v[i_v:i_v + size]).reshape(1, size)
    w[i_w:i_w + size] += coeff * _apply_batched(pkg, node, vin, dense_level)[0]


def dmav_nocache(
    pkg: DDPackage,
    m: Edge,
    v: np.ndarray,
    threads: int = 1,
    runner: TaskRunner | None = None,
    dense_level: int = DENSE_BLOCK_LEVEL,
    out: np.ndarray | None = None,
) -> tuple[np.ndarray, DMAVStats]:
    """DMAV without caching (Algorithm 1): returns (w, stats)."""
    n = pkg.num_qubits
    if v.shape != (1 << n,):
        raise ValueError(f"state length {v.shape} != 2**{n}")
    if out is v:
        raise ValueError("DMAV cannot write its output over the input state")
    w = out if out is not None else np.zeros_like(v)
    if out is not None:
        w.fill(0)
    tasks = assign_tasks(pkg, m, threads)
    h = (1 << n) // threads

    def work(u: int) -> None:
        for node, i_v, coeff in tasks[u]:
            run_border_task(pkg, node, coeff, v, w, i_v, u * h, dense_level)

    if runner is not None and runner.use_pool:
        runner.run([lambda u=u: work(u) for u in range(threads)])
    else:
        for u in range(threads):
            work(u)
    stats = DMAVStats(threads=threads, tasks=sum(map(len, tasks)))
    return w, stats


def dmav_cached(
    pkg: DDPackage,
    m: Edge,
    v: np.ndarray,
    threads: int = 1,
    runner: TaskRunner | None = None,
    dense_level: int = DENSE_BLOCK_LEVEL,
    out: np.ndarray | None = None,
    assignment: CacheAssignment | None = None,
) -> tuple[np.ndarray, DMAVStats]:
    """DMAV with caching (Algorithm 2): returns (w, stats).

    ``assignment`` may be passed in when the caller already ran the cost
    model for this gate (it computes the same partition).
    """
    n = pkg.num_qubits
    if v.shape != (1 << n,):
        raise ValueError(f"state length {v.shape} != 2**{n}")
    if out is v:
        raise ValueError("DMAV cannot write its output over the input state")
    if assignment is None:
        assignment = assign_cache_tasks(pkg, m, threads)
    h = (1 << n) // threads
    buffers = [
        np.zeros(1 << n, dtype=np.complex128)
        for _ in range(assignment.num_buffers)
    ]
    hits = [0] * threads

    def work(u: int) -> None:
        # Per-thread result cache: border node -> (coefficient, offset).
        cache: dict[int, tuple[complex, int]] = {}
        buf = buffers[assignment.buffer_of[u]] if assignment.tasks[u] else None
        for node, i_p, coeff in assignment.tasks[u]:
            hit = cache.get(id(node))
            if hit is not None:
                prev_coeff, prev_off = hit
                buf[i_p:i_p + h] = simd_mul(
                    buf[prev_off:prev_off + h], coeff / prev_coeff
                )
                hits[u] += 1
            else:
                run_border_task(
                    pkg, node, coeff, v, buf, u * h, i_p, dense_level
                )
                cache[id(node)] = (coeff, i_p)

    if runner is not None and runner.use_pool:
        runner.run([lambda u=u: work(u) for u in range(threads)])
    else:
        for u in range(threads):
            work(u)

    w = out if out is not None else np.zeros_like(v)
    if out is not None:
        w.fill(0)

    def sum_block(u: int) -> None:
        lo, hi = u * h, (u + 1) * h
        for buf in buffers:
            simd_add(w[lo:hi], buf[lo:hi])

    if runner is not None and runner.use_pool:
        runner.run([lambda u=u: sum_block(u) for u in range(threads)])
    else:
        for u in range(threads):
            sum_block(u)
    stats = DMAVStats(
        threads=threads,
        tasks=sum(map(len, assignment.tasks)),
        cache_hits=sum(hits),
        buffers=assignment.num_buffers,
        used_cache=True,
    )
    return w, stats
