"""EWMA-based conversion timing (Section 3.1.1, Equation 4).

While simulating in the DD phase, FlatDD assigns gate ``i`` an EWMA value

    v_i = beta * v_{i-1} + (1 - beta) * s_i

over the state DD's node count ``s_i``, and converts to DMAV at the first
gate where ``epsilon * v_i < s_i`` -- i.e. when the DD size jumps well above
its recent history, signalling that the state has turned irregular.

Implementation note (documented deviation): taken literally with
``v_0 = 0``, Equation 4 gives ``v_1 = (1-beta) * s_1``, so with the paper's
beta=0.9, epsilon=2 *every* circuit would convert at its first gate --
contradicting the paper's own observation that FlatDD never leaves the DD
phase on Adder/GHZ.  We apply the standard startup bias correction from the
EWMA literature the paper cites [59] (divide by ``1 - beta**i``), which
makes the corrected average start at ``s_1`` and reproduces the reported
behaviour: steady or linearly growing DD sizes never trigger, exponential
growth triggers within a few gates.  A ``min_size`` floor additionally
skips conversion while the DD is too small for DMAV to matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import DEFAULT_BETA, DEFAULT_EPSILON

__all__ = ["EWMAMonitor", "EWMASample"]


@dataclass(frozen=True)
class EWMASample:
    """One gate's monitor state (for Figure 3-style traces)."""

    gate_index: int
    dd_size: int
    ewma: float
    triggered: bool


@dataclass
class EWMAMonitor:
    """Streaming conversion-trigger detector over DD sizes."""

    beta: float = DEFAULT_BETA
    epsilon: float = DEFAULT_EPSILON
    #: Do not trigger while the DD has fewer nodes than this (conversion to
    #: a flat array is pointless for tiny DDs).
    min_size: int = 32
    bias_correction: bool = True
    _v: float = field(default=0.0, init=False, repr=False)
    _i: int = field(default=0, init=False, repr=False)
    samples: list[EWMASample] = field(default_factory=list, init=False)

    def update(self, dd_size: int) -> bool:
        """Feed gate i's DD size; return True if conversion should happen."""
        self._i += 1
        self._v = self.beta * self._v + (1.0 - self.beta) * dd_size
        v_hat = self._v
        if self.bias_correction:
            v_hat = self._v / (1.0 - self.beta ** self._i)
        triggered = (
            dd_size >= self.min_size and self.epsilon * v_hat < dd_size
        )
        self.samples.append(
            EWMASample(self._i - 1, dd_size, v_hat, triggered)
        )
        return triggered

    @property
    def value(self) -> float:
        """Current (bias-corrected) moving average."""
        if self._i == 0:
            return 0.0
        if self.bias_correction:
            return self._v / (1.0 - self.beta ** self._i)
        return self._v

    def reset(self) -> None:
        self._v = 0.0
        self._i = 0
        self.samples.clear()

    def state_dict(self) -> dict:
        """Exact internal state for checkpointing (``_v`` as ``float.hex``).

        Trigger decisions after a resume must match the uninterrupted run
        bit for bit, so the accumulator round-trips exactly.  The sample
        trace is *not* included: it is diagnostic output, and a resumed run
        legitimately re-traces only its own gates.
        """
        return {"v": self._v.hex(), "i": self._i}

    def restore_state(self, payload: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (clears the sample trace)."""
        self._v = float.fromhex(payload["v"])
        self._i = int(payload["i"])
        self.samples.clear()
