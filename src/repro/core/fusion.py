"""Gate fusion: DMAV-aware (Algorithm 3) and the k-operations baseline [100].

After FlatDD converts to its flat-array phase, every remaining gate costs at
least one full pass over the state.  Fusing consecutive gate DDs with DDMM
can cut the number of passes -- but only when the fused DD's DMAV cost is
actually lower (Figures 9 and 10 show both outcomes).  Algorithm 3 fuses
greedily under the Section 3.2.3 cost model.

The baseline, k-operations [100], fuses adjacent gates whenever the running
group still acts on at most ``k`` qubits -- effective, but blind to the
fused DD's actual DMAV cost.

Implementation note (documented deviation): Algorithm 3 as printed never
emits the final pending matrix ``M_p``; we append it on exit, otherwise the
last gate (or last fused group) of every circuit would be dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dd.node import Edge
from repro.dd.operations import mm_multiply
from repro.dd.package import DDPackage
from repro.core.cost_model import CostModel

__all__ = ["FusionResult", "fuse_cost_aware", "fuse_k_operations", "identity_levels"]


@dataclass
class FusionResult:
    """Outcome of a fusion pass over a gate-DD sequence."""

    gates: list[Edge]
    #: Modeled DMAV cost (Section 3.2.3 units) of the emitted sequence.
    total_cost: float
    #: How many input gates each emitted gate absorbs (parallel to gates).
    group_sizes: list[int]
    ddmm_calls: int = 0

    @property
    def fused_away(self) -> int:
        return sum(self.group_sizes) - len(self.gates)


def fuse_cost_aware(
    pkg: DDPackage,
    gate_edges: list[Edge],
    model: CostModel,
) -> FusionResult:
    """DMAV-aware gate fusion (Algorithm 3).

    Iterates the remaining gates; fuses the current gate into the pending
    matrix when the fused DMAV cost beats running the two sequentially
    (``C_i + C_p >= C_ip``), otherwise emits the pending matrix.
    """
    out: list[Edge] = []
    sizes: list[int] = []
    ddmm_calls = 0
    m_p = pkg.identity_edge(pkg.num_qubits - 1)
    c_p = 0.0
    pending = 0
    total_cost = 0.0
    for m_i in gate_edges:
        c_i = model.evaluate(pkg, m_i).cost
        m_ip = mm_multiply(pkg, m_i, m_p)
        ddmm_calls += 1
        c_ip = model.evaluate(pkg, m_ip).cost
        if c_i + c_p < c_ip:
            # Sequential is cheaper: emit pending, start a new group.
            if pending:
                out.append(m_p)
                sizes.append(pending)
                total_cost += c_p
            m_p, c_p, pending = m_i, c_i, 1
        else:
            m_p, c_p, pending = m_ip, c_ip, pending + 1
    if pending:
        out.append(m_p)
        sizes.append(pending)
        total_cost += c_p
    return FusionResult(
        gates=out, total_cost=total_cost, group_sizes=sizes, ddmm_calls=ddmm_calls
    )


def identity_levels(pkg: DDPackage, e: Edge) -> set[int]:
    """Levels on which a matrix DD acts non-trivially (non-identity).

    A level counts as *active* when some node on it deviates from the
    identity pattern.  Used by the k-operations grouping rule.
    """
    from repro.dd.analysis import is_identity
    from repro.dd.node import TERMINAL

    active: set[int] = set()
    seen: set[int] = set()
    stack = [] if e.is_zero else [e.n]
    while stack:
        node = stack.pop()
        if node is TERMINAL or id(node) in seen:
            continue
        seen.add(id(node))
        e00, e01, e10, e11 = node.edges
        diagonal_identity = (
            e01.is_zero and e10.is_zero and e00.w == 1 and e11.w == 1
            and e00.n is e11.n
        )
        if not diagonal_identity:
            active.add(node.level)
        for child in node.edges:
            if not child.is_zero:
                stack.append(child.n)
    return active


def fuse_k_operations(
    pkg: DDPackage,
    gate_edges: list[Edge],
    k: int,
    model: CostModel | None = None,
) -> FusionResult:
    """k-operations fusion [100]: group while the fused gate spans <= k qubits.

    Adjacent gates are multiplied (DDMM) as long as the union of active
    qubit levels stays within ``k``; otherwise the group is emitted and a
    new one starts.  ``model`` (optional) prices the emitted sequence for
    Table 2's cost column.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    out: list[Edge] = []
    sizes: list[int] = []
    ddmm_calls = 0
    group: Edge | None = None
    group_levels: set[int] = set()
    group_size = 0
    for m_i in gate_edges:
        levels = identity_levels(pkg, m_i)
        if group is None:
            group, group_levels, group_size = m_i, set(levels), 1
            continue
        merged = group_levels | levels
        if len(merged) <= k:
            group = mm_multiply(pkg, m_i, group)
            ddmm_calls += 1
            group_levels = merged
            group_size += 1
        else:
            out.append(group)
            sizes.append(group_size)
            group, group_levels, group_size = m_i, set(levels), 1
    if group is not None:
        out.append(group)
        sizes.append(group_size)
    total_cost = 0.0
    if model is not None:
        total_cost = sum(model.evaluate(pkg, g).cost for g in out)
    return FusionResult(
        gates=out, total_cost=total_cost, group_sizes=sizes, ddmm_calls=ddmm_calls
    )
