"""DMAV execution-plan compiler: compile a gate's array-phase work once.

Section 3.2's promise is that DMAV keeps per-gate work proportional to
the *gate DD's structure*.  The hot loop used to re-derive that structure
on every application: ``CostModel.evaluate`` walked the gate DD,
``assign_cache_tasks`` re-partitioned it, and ``assign_tasks`` would walk
it again for the uncached variant.  A :class:`GatePlan` captures all of
it -- the cost-model verdict, Algorithm 1's row-major task lists,
Algorithm 2's column-major :class:`~repro.core.cost_model.CacheAssignment`
plus the derived per-slice writer lists -- compiled once per unique
``(gate-DD root, root weight)`` for a fixed ``(threads,
dense_block_level)`` (one :class:`PlanCache` instance serves exactly one
such configuration, the one the simulator runs).

Two properties make the compiler more than a per-root dict:

* **Structural memoization.**  Hash-consing guarantees structurally
  identical sub-DDs are the *same object*, so the compiler memoizes
  border-task paths per sub-DD node and shares them across gates.  Even
  circuits with zero repeated gate roots (QFT applies every cp/h at a
  distinct position) share most of their upper-level structure:
  pass-through levels, identity chains, and repeated border blocks all
  collapse.  ``hits``/``misses`` are therefore *task-weighted*: a memo
  hit counts every cached border task it serves, a miss counts the one
  freshly compiled border task -- the fraction of planned tasks served
  from cache is exactly the work amortized.
* **Bit-exact replay.**  Paths store the edge-weight *chain* instead of a
  pre-multiplied product, and coefficients are folded top-down at plan
  build exactly like the legacy descents multiplied them
  (``((1 * w_root) * w_1) * ... * w_border``).  A planned run therefore
  reproduces the unplanned per-gate partitioning bit-for-bit (signed
  zeros aside), which is what lets ``--no-plan-cache`` be a pure
  performance ablation.

**Invalidation.**  Plans key nodes by ``id()`` and pin them via direct
references, so a package garbage collection -- which sweeps unique-table
entries and can recycle ids -- would silently corrupt the cache.
:class:`~repro.dd.package.DDPackage` bumps ``gc_epoch`` on every
``collect_garbage`` (and hence every ``checkpoint_barrier``); the cache
compares epochs on each lookup and drops everything when they diverge.
Both a checkpoint writer's continuation and a resumed process then evolve
from an identically cold plan state, preserving the bit-identical-resume
guarantee of docs/RESILIENCE.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost_model import (
    CacheAssignment,
    CostModel,
    GateCost,
    assign_buffers,
)
from repro.dd.node import TERMINAL, DDNode, Edge
from repro.dd.package import DDPackage
from repro.parallel.partition import border_level
from repro.parallel.pool import validate_thread_count

__all__ = ["GatePlan", "PlanCache"]


@dataclass
class GatePlan:
    """Everything the array phase needs to apply one gate DD.

    The task tuples hold direct :class:`~repro.dd.node.DDNode` references,
    pinning the border nodes (and through them the analysis caches keyed
    by their ids) for the plan's lifetime.
    """

    #: Cost-model verdict (Equations 5-6) for this root.
    cost: GateCost
    #: Algorithm 1's row-major task lists: ``row_tasks[u]`` is thread
    #: ``u``'s ``(border_node, v_offset, coefficient)`` list.
    row_tasks: list[list[tuple[DDNode, int, complex]]]
    #: Algorithm 2's column-major partition (tasks + buffer sharing).
    assignment: CacheAssignment
    #: ``writers[k]`` lists (ascending) the partial-buffer indices that
    #: produce output slice ``k`` -- the summation step reads only these
    #: instead of scanning every buffer over every slice, and it is what
    #: lets the arena hand ``dmav_cached`` dirty, never-zeroed buffers.
    writers: list[list[int]]
    #: ``direct[u][i]``: thread ``u``'s ``i``-th column task is its output
    #: slice's *sole* writer and never serves a later cache hit, so it may
    #: write the final value straight into W, skipping the partial buffer
    #: and the summation copy for that slice entirely.
    direct: list[list[bool]]
    #: ``direct_out[k]``: output slice ``k`` is completed by a direct task
    #: (its ``writers[k]`` is empty but it must not be zero-filled).
    direct_out: list[bool]
    #: Border tasks in this plan (row and column views share the paths).
    num_tasks: int


class PlanCache:
    """Compile-once cache of :class:`GatePlan` per unique gate-DD root.

    One instance serves one ``(package, threads, dense_block_level)``
    configuration -- the simulator builds it next to the ``CostModel`` it
    shares.  ``dense_block_level`` does not shape the task lists (it is a
    kernel bottom-out detail), but it is part of the configuration
    identity, so it is carried for the counters/introspection.
    """

    def __init__(
        self,
        pkg: DDPackage,
        threads: int,
        model: CostModel,
        dense_level: int,
    ) -> None:
        validate_thread_count(threads, pkg.num_qubits)
        self.pkg = pkg
        self.threads = threads
        self.model = model
        self.dense_level = dense_level
        self.border = border_level(pkg.num_qubits, threads)
        #: Root plans, keyed by ``(id(root node), root weight)`` -- the
        #: same node can in principle arrive under different root weights.
        self._plans: dict[tuple[int, complex], GatePlan] = {}
        #: Per-node relative path lists (the structural memo).
        self._memo: dict[int, list] = {}
        self._epoch = pkg.gc_epoch
        #: Task-weighted memo service: cached border tasks served.
        self.hits = 0
        #: Task-weighted memo service: border tasks compiled fresh.
        self.misses = 0
        #: Whole-plan lookups answered without any compilation.
        self.gate_hits = 0
        #: Root plans compiled.
        self.compiles = 0
        #: Full-cache drops forced by package GC epoch changes.
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._plans)

    @property
    def hit_rate(self) -> float:
        """Fraction of planned tasks served from the structural memo."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, m: Edge) -> GatePlan:
        """The plan for gate matrix ``m``, compiling it on first sight."""
        if self.pkg.gc_epoch != self._epoch:
            # GC may have swept (and Python may have recycled ids of)
            # nodes this cache keys by; everything derived is suspect.
            self._plans.clear()
            self._memo.clear()
            self._epoch = self.pkg.gc_epoch
            self.invalidations += 1
        key = (id(m.n), m.w)
        plan = self._plans.get(key)
        if plan is not None:
            self.hits += plan.num_tasks
            self.gate_hits += 1
            return plan
        plan = self._compile(m)
        self._plans[key] = plan
        self.compiles += 1
        return plan

    # -- compilation ---------------------------------------------------

    def _paths(self, node: DDNode, level: int) -> list:
        """Relative border paths of the sub-DD under ``node``.

        Each path is ``(border_node, r, c, weight_chain, rk, ck)``: row
        and column block offsets in h-slice units relative to this
        subtree, the tuple of edge weights from ``node`` down to (and
        including) the border edge, and the row-major/column-major DFS
        sort keys (the (i, j) choices interleaved base-4 top-down, so
        ascending order replays the legacy descent orders exactly).
        """
        paths = self._memo.get(id(node))
        if paths is not None:
            self.hits += len(paths)
            return paths
        if level == self.border:
            self.misses += 1
            paths = [(node, 0, 0, (), 0, 0)]
        else:
            paths = []
            span = 1 << (level - 1 - self.border)
            span2 = span * span
            for k, child in enumerate(node.edges):
                if child.is_zero:
                    continue
                i, j = divmod(k, 2)
                for bn, r, c, chain, rk, ck in self._paths(
                    child.n, level - 1
                ):
                    paths.append((
                        bn,
                        i * span + r,
                        j * span + c,
                        (child.w,) + chain,
                        (2 * i + j) * span2 + rk,
                        (2 * j + i) * span2 + ck,
                    ))
        self._memo[id(node)] = paths
        return paths

    def _compile(self, m: Edge) -> GatePlan:
        n = self.pkg.num_qubits
        t = self.threads
        h = (1 << n) // t
        rel = [] if m.is_zero else self._paths(m.n, n - 1)
        # Fold coefficients top-down in the legacy descents' exact
        # multiplication order: ((1 * m.w) * w_1) * ... * w_border.
        paths = []
        for bn, r, c, chain, rk, ck in rel:
            f = (1.0 + 0j) * m.w
            for w in chain:
                f = f * w
            paths.append((bn, r, c, f, rk, ck))
        row_tasks: list[list[tuple[DDNode, int, complex]]] = [
            [] for _ in range(t)
        ]
        for bn, r, c, f, _rk, _ck in sorted(paths, key=lambda p: p[4]):
            row_tasks[r].append((bn, c * h, f))
        cache_tasks: list[list[tuple[DDNode, int, complex]]] = [
            [] for _ in range(t)
        ]
        for bn, r, c, f, _rk, _ck in sorted(paths, key=lambda p: p[5]):
            cache_tasks[c].append((bn, r * h, f))
        buffer_of, num_buffers = assign_buffers(cache_tasks)
        assignment = CacheAssignment(
            num_qubits=n,
            threads=t,
            tasks=cache_tasks,
            buffer_of=buffer_of,
            num_buffers=num_buffers,
        )
        # Classify column tasks for direct output writes.  A task may
        # bypass its partial buffer and write W's slice in place when (a)
        # it is the only task producing that output slice (nothing to sum
        # with), and (b) no later task in its thread hits on its node (the
        # per-thread cache reads hit sources back out of the buffer).
        # Terminal tasks write single elements, not slices, and stay on
        # the buffered path.
        slice_tasks = [0] * t
        for tlist in cache_tasks:
            for _bn, i_p, _f in tlist:
                slice_tasks[i_p // h] += 1
        direct: list[list[bool]] = []
        for tlist in cache_tasks:
            last_use: dict[int, int] = {}
            for i, (bn, _ip, _f) in enumerate(tlist):
                last_use[id(bn)] = i
            seen: set[int] = set()
            flags = []
            for i, (bn, i_p, _f) in enumerate(tlist):
                is_source = id(bn) not in seen and last_use[id(bn)] > i
                seen.add(id(bn))
                flags.append(
                    bn is not TERMINAL
                    and not is_source
                    and slice_tasks[i_p // h] == 1
                )
            direct.append(flags)
        writer_sets: list[set[int]] = [set() for _ in range(t)]
        direct_out = [False] * t
        for u in range(t):
            b = buffer_of[u]
            for (_bn, i_p, _f), is_direct in zip(cache_tasks[u], direct[u]):
                if is_direct:
                    direct_out[i_p // h] = True
                else:
                    writer_sets[i_p // h].add(b)
        return GatePlan(
            cost=self.model.evaluate_assignment(self.pkg, m, assignment),
            row_tasks=row_tasks,
            assignment=assignment,
            writers=[sorted(ws) for ws in writer_sets],
            direct=direct,
            direct_out=direct_out,
            num_tasks=len(paths),
        )
