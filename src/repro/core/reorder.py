"""Static variable-order planning for the DD phase (the Reorder Trick).

DD size is notoriously order-sensitive: a good variable order keeps
interacting qubits adjacent, so two-qubit gate DDs stay narrow and the
state DD shares more structure (arXiv:2211.07110 applies exactly this to
quantum circuit DDs).  This module picks a **static** logical-to-physical
qubit permutation per circuit, before simulation starts:

* ``"natural"`` -- the identity order (historic behavior).
* ``"interaction"`` -- a greedy linear arrangement over the circuit's
  qubit-interaction graph: qubits that share many multi-qubit gates are
  placed next to each other, minimizing the summed gate *span*
  ``sum w(a, b) * |pi(a) - pi(b)|`` (a span-1 two-qubit gate DD has the
  smallest possible active window).
* ``"sift"`` -- the interaction order refined by sifting-style local
  search: each qubit in turn is tried at every position and kept at the
  best one, until a full round makes no improvement.  This is a static
  refinement of the same span metric, not runtime DD sifting (documented
  deviation; the metric is a cheap structural proxy for DD width).

The permutation applies **only to the DD phase**: the simulator runs a
relabeled copy of the circuit, and the DD-to-array conversion un-permutes
amplitudes back to canonical order, so the array phase, sweep batching,
serving, and checkpoints all see canonical results.  The selector depends
only on gate *structure* (which qubits interact, how often), never on
parameter values or gate names, so a template circuit and every bound
instance of it produce the same plan -- which is what keeps sweep prefix
grouping and checkpoint resume deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate

__all__ = [
    "ReorderPlan",
    "interaction_weights",
    "span_cost",
    "plan_qubit_order",
    "permute_circuit",
    "unpermute_axes",
]

#: Cap on full sifting rounds; each round tries every qubit at every
#: position (O(n^3) span evaluations per round with incremental deltas),
#: so a couple of rounds is plenty for the circuit sizes we simulate.
MAX_SIFT_ROUNDS = 4


@dataclass(frozen=True)
class ReorderPlan:
    """A chosen logical-to-physical qubit permutation and its cost.

    ``order[q]`` is the physical position (DD level / index bit) that
    logical qubit ``q`` occupies during the DD phase.
    """

    order: tuple[int, ...]
    mode: str
    #: Span cost of the natural (identity) order.
    cost_natural: float
    #: Span cost of the selected order.
    cost_selected: float
    #: Accepted single-qubit moves during sifting refinement (0 unless
    #: mode == "sift").
    sift_moves: int = 0

    @property
    def is_natural(self) -> bool:
        return all(p == q for q, p in enumerate(self.order))


def interaction_weights(circuit: Circuit) -> dict[tuple[int, int], int]:
    """Multi-qubit interaction counts over unordered qubit pairs.

    Every multi-qubit gate adds 1 to each pair of qubits it touches
    (controls included -- a control-target pair constrains the order just
    as much as two targets).  Single-qubit gates impose no pairwise
    constraint and are ignored.
    """
    weights: dict[tuple[int, int], int] = {}
    for gate in circuit.gates:
        qs = sorted(set(gate.qubits))
        for i in range(len(qs)):
            for j in range(i + 1, len(qs)):
                pair = (qs[i], qs[j])
                weights[pair] = weights.get(pair, 0) + 1
    return weights


def span_cost(
    weights: dict[tuple[int, int], int], order: tuple[int, ...]
) -> float:
    """``sum w(a, b) * |order[a] - order[b]|`` -- the linear-arrangement
    objective the selector minimizes (span 1 = adjacent qubits)."""
    return float(
        sum(w * abs(order[a] - order[b]) for (a, b), w in weights.items())
    )


def _greedy_linear_arrangement(
    n: int, weights: dict[tuple[int, int], int]
) -> list[int]:
    """Place qubits left to right, strongest-connected-to-placed first.

    Seeds with the maximum-weighted-degree qubit and repeatedly appends
    the unplaced qubit with the largest total weight to the placed set.
    All ties break toward the lowest qubit index, so the arrangement is
    deterministic and parameter-independent.
    """
    degree = [0] * n
    adj: dict[int, dict[int, int]] = {q: {} for q in range(n)}
    for (a, b), w in weights.items():
        degree[a] += w
        degree[b] += w
        adj[a][b] = adj[a].get(b, 0) + w
        adj[b][a] = adj[b].get(a, 0) + w
    placed: list[int] = []
    in_placed = [False] * n
    # max degree, lowest index tie-break
    seed = max(range(n), key=lambda q: (degree[q], -q))
    placed.append(seed)
    in_placed[seed] = True
    conn = [0] * n
    while len(placed) < n:
        last = placed[-1]
        for q, w in adj[last].items():
            if not in_placed[q]:
                conn[q] += w
        best = -1
        best_key = None
        for q in range(n):
            if in_placed[q]:
                continue
            key = (conn[q], degree[q], -q)
            if best_key is None or key > best_key:
                best, best_key = q, key
        placed.append(best)
        in_placed[best] = True
    return placed


def _sift(
    positions: list[int],
    weights: dict[tuple[int, int], int],
) -> tuple[list[int], int]:
    """Single-qubit repositioning local search over the span metric.

    ``positions[q]`` is qubit ``q``'s position.  Each pass tries moving
    each qubit (lowest index first) to every position, keeping the best
    strict improvement; passes repeat until one makes no move (capped at
    :data:`MAX_SIFT_ROUNDS`).
    """
    n = len(positions)
    order = positions[:]
    moves = 0
    for _ in range(MAX_SIFT_ROUNDS):
        improved = False
        for q in range(n):
            base = span_cost(weights, tuple(order))
            best_pos = order[q]
            best_cost = base
            for target in range(n):
                if target == order[q]:
                    continue
                trial = _move(order, q, target)
                c = span_cost(weights, tuple(trial))
                if c < best_cost - 1e-12:
                    best_cost = c
                    best_pos = target
            if best_pos != order[q]:
                order = _move(order, q, best_pos)
                moves += 1
                improved = True
        if not improved:
            break
    return order, moves


def _move(positions: list[int], q: int, target: int) -> list[int]:
    """Move qubit ``q`` to position ``target``, shifting others over."""
    cur = positions[q]
    out = positions[:]
    for other in range(len(positions)):
        p = positions[other]
        if other == q:
            out[other] = target
        elif cur < target and cur < p <= target:
            out[other] = p - 1
        elif target < cur and target <= p < cur:
            out[other] = p + 1
    return out


def plan_qubit_order(circuit: Circuit, mode: str) -> ReorderPlan:
    """Select the DD-phase qubit order for ``circuit`` under ``mode``."""
    n = circuit.num_qubits
    natural = tuple(range(n))
    weights = interaction_weights(circuit)
    cost_nat = span_cost(weights, natural)
    if mode == "natural" or not weights or n == 1:
        return ReorderPlan(
            order=natural, mode=mode,
            cost_natural=cost_nat, cost_selected=cost_nat,
        )
    if mode not in ("interaction", "sift"):
        raise ValueError(f"unknown qubit order mode {mode!r}")
    arrangement = _greedy_linear_arrangement(n, weights)
    positions = [0] * n
    for pos, q in enumerate(arrangement):
        positions[q] = pos
    moves = 0
    if mode == "sift":
        positions, moves = _sift(positions, weights)
    cost_sel = span_cost(weights, tuple(positions))
    if cost_sel >= cost_nat:
        # Never accept an order worse than (or equal to) natural: the
        # permutation itself costs an O(2**n) transpose at conversion.
        return ReorderPlan(
            order=natural, mode=mode,
            cost_natural=cost_nat, cost_selected=cost_nat,
            sift_moves=moves,
        )
    return ReorderPlan(
        order=tuple(positions), mode=mode,
        cost_natural=cost_nat, cost_selected=cost_sel,
        sift_moves=moves,
    )


def permute_circuit(circuit: Circuit, order: tuple[int, ...]) -> Circuit:
    """Relabel every gate qubit ``q`` to ``order[q]`` (same gate sequence).

    The result simulates the same computation on permuted index bits;
    :func:`unpermute_axes` maps its amplitudes back to canonical order.
    """
    gates = [
        Gate(
            name=g.name,
            targets=tuple(order[q] for q in g.targets),
            controls=tuple(order[q] for q in g.controls),
            params=g.params,
        )
        for g in circuit.gates
    ]
    return Circuit(circuit.num_qubits, gates, name=circuit.name)


def unpermute_axes(order: tuple[int, ...]) -> tuple[int, ...]:
    """Transpose axes mapping a permuted statevector back to canonical.

    For ``t = permuted.reshape([2] * n)``, axis ``a`` holds physical
    qubit ``n - 1 - a`` (qubit ``n - 1`` is the most significant index
    bit).  Canonical axis ``a`` must read the axis holding physical qubit
    ``order[n - 1 - a]``: ``axes[a] = n - 1 - order[n - 1 - a]``.  Apply
    as ``t.transpose(axes).ravel()``.
    """
    n = len(order)
    return tuple(n - 1 - order[n - 1 - a] for a in range(n))
