"""The FlatDD simulator (Figure 3's pipeline).

Phases:

1. **DD phase** -- simulate exactly like DDSIM (DD state, DD gates, compute
   tables) while feeding the state DD's node count to the EWMA monitor
   (Section 3.1.1).
2. **Conversion** -- on trigger, convert the DD state to a flat array with
   the parallel algorithm of Section 3.1.2.
3. **DMAV phase** -- optionally fuse the remaining gates (Section 3.3),
   then apply each gate matrix DD to the array state with Algorithm 1/2,
   choosing caching per gate via the Section 3.2.3 cost model.

Circuits that stay regular never trigger and finish entirely in the DD
phase (which is why FlatDD matches DDSIM on Adder/GHZ in Table 1).
"""

from __future__ import annotations

import logging
import time

import numpy as np

from repro.backends.base import GateRecord, SimulationResult, Simulator
from repro.backends.gatecache import GateDDCache
from repro.circuits.circuit import Circuit
from repro.common.config import AMPLITUDE_BYTES, FlatDDConfig, config_digest
from repro.core.conversion import convert_parallel
from repro.core.cost_model import CostModel, assign_cache_tasks
from repro.core.dmav import dmav_cached, dmav_nocache
from repro.core.ewma import EWMAMonitor
from repro.core.plan import PlanCache
from repro.core.fusion import FusionResult, fuse_cost_aware, fuse_k_operations
from repro.core.reorder import (
    permute_circuit,
    plan_qubit_order,
    unpermute_axes,
)
from repro.dd.io import deserialize_vector_dd
from repro.dd.operations import mv_multiply
from repro.dd.package import DDPackage
from repro.dd.vector import node_count, vector_to_array, zero_state
from repro.metrics.memory import MemoryMeter, dd_bytes
from repro.obs.collect import build_obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.parallel.arena import BufferArena
from repro.parallel.pool import TaskRunner, validate_thread_count
from repro.resilience.guard import MemoryGuard
from repro.common.errors import CheckpointError
from repro.resilience.snapshot import (
    Snapshot,
    decode_array_state,
    read_snapshot,
    snapshot_array_phase,
    snapshot_dd_phase,
    validate_snapshot,
    write_snapshot,
)

__all__ = ["FlatDDSimulator"]

_log = logging.getLogger("repro.core.simulator")


class FlatDDSimulator(Simulator):
    """Hybrid DD / flat-array simulator with parallel DMAV."""

    GC_THRESHOLD = 200_000

    def __init__(self, config: FlatDDConfig | None = None, **overrides) -> None:
        if config is None:
            config = FlatDDConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config or keyword overrides")
        self.config = config
        self.name = f"flatdd[t={config.threads}]"

    # ------------------------------------------------------------------

    def run(
        self,
        circuit: Circuit,
        max_seconds: float | None = None,
        keep_internals: bool = False,
        tracer=None,
        checkpoint_every: int | None = None,
        checkpoint_path: str | None = None,
        resume_from: "str | Snapshot | None" = None,
    ) -> SimulationResult:
        """Simulate ``circuit``; see class docstring for the phases.

        ``keep_internals=True`` stores the DD package and the DMAV-phase
        gate edges in the result metadata so benches can re-evaluate the
        cost model at other thread counts without re-simulating.

        ``tracer`` (a :class:`repro.obs.Tracer`) records phase spans
        ("dd_phase", "conversion", "fusion", "dmav_phase"), per-gate
        spans with DD-size/EWMA (DD phase) and MACs/cache-decision
        (DMAV phase) annotations, and dd_size/ewma counter samples.
        Counters are collected into ``metadata["obs"]`` regardless.

        ``checkpoint_every=N`` writes a resumable snapshot to
        ``checkpoint_path`` every N applied gates (rolling: each write
        atomically replaces the previous one).  The cadence counts circuit
        gates in the DD phase and emitted (post-fusion) gates in the DMAV
        phase; no snapshot is written at the gate where the conversion
        trigger fires, nor after the final gate.  ``resume_from`` (a path
        or a :class:`~repro.resilience.snapshot.Snapshot`) continues such
        a run *bit-identically* in a fresh process; the snapshot is pinned
        to the circuit fingerprint and semantic config digest
        (:class:`~repro.common.errors.CheckpointError` on mismatch).

        With ``config.memory_budget_bytes`` set, a
        :class:`~repro.resilience.guard.MemoryGuard` watches every memory
        sample: a DD-phase breach forces early conversion, an array-phase
        breach checkpoints (when ``checkpoint_path`` is set) and raises
        :class:`~repro.common.errors.ResourceExhaustedError`.
        """
        cfg = self.config
        n = circuit.num_qubits
        validate_thread_count(cfg.threads, n)
        # DD-phase variable order (the Reorder Trick).  The plan depends
        # only on gate structure, so it is recomputed identically on
        # resume (the config digest pins cfg.qubit_order).  The permuted
        # circuit drives *only* the DD phase; conversion un-permutes, and
        # the DMAV tail below always uses the canonical circuit.
        reorder = plan_qubit_order(circuit, cfg.qubit_order)
        dd_circuit = (
            circuit
            if reorder.is_natural
            else permute_circuit(circuit, reorder.order)
        )
        unperm = None if reorder.is_natural else unpermute_axes(reorder.order)
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if checkpoint_path is None:
                raise ValueError("checkpoint_every requires checkpoint_path")
        cfg_digest = config_digest(cfg)
        resume: Snapshot | None = None
        if resume_from is not None:
            if isinstance(resume_from, Snapshot):
                resume = resume_from
                resume_path = None
            else:
                resume_path = str(resume_from)
                resume = read_snapshot(resume_path)
            validate_snapshot(resume, circuit, cfg_digest, path=resume_path)
            if resume.phase == "sweep":
                # Sweep snapshots are diagnostic batch dumps; a sweep row
                # is not a single-shot run and cannot be resumed as one.
                raise CheckpointError(
                    "cannot resume a single-shot run from a sweep-phase "
                    "snapshot (sweep snapshots preserve batch contents "
                    "for diagnosis only)",
                    path=resume_path,
                )
        guard = MemoryGuard(cfg.memory_budget_bytes)
        checkpoints_written = 0
        tr = tracer if tracer is not None else NULL_TRACER
        tracing = tr.enabled
        registry = MetricsRegistry()
        pkg = DDPackage(n)
        gates = GateDDCache(pkg)
        monitor = EWMAMonitor(beta=cfg.beta, epsilon=cfg.epsilon)
        meter = MemoryMeter()
        trace: list[GateRecord] = []
        metadata: dict = {
            "threads": cfg.threads,
            "beta": cfg.beta,
            "epsilon": cfg.epsilon,
            "fusion": cfg.fusion,
            "cache_policy": cfg.cache_policy,
            "converted": False,
            "conversion_gate_index": None,
            "forced_conversion": cfg.force_convert_at is not None,
            "resumed": resume is not None,
            "resume_phase": resume.phase if resume is not None else None,
            "identity_skip": cfg.identity_skip,
            "qubit_order": cfg.qubit_order,
            "reorder": {
                "mode": reorder.mode,
                "applied": not reorder.is_natural,
                "order": list(reorder.order),
                "cost_natural": reorder.cost_natural,
                "cost_selected": reorder.cost_selected,
                "sift_moves": reorder.sift_moves,
            },
        }
        start = time.perf_counter()

        def write_array_checkpoint(arr, conv_at, cursor):
            """Array-phase snapshot writer shared by cadence and guard."""
            if checkpoint_path is None:
                return None
            write_snapshot(
                checkpoint_path,
                snapshot_array_phase(
                    pkg, arr, conv_at, cursor, circuit, cfg_digest
                ),
            )
            return checkpoint_path

        # ---------------- Phase 1: DD simulation with EWMA monitoring ----
        convert_at: int | None = None
        timed_out = False
        dd_start = 0
        skip_dd = False
        if resume is not None:
            # Canonicalization is history-dependent: restoring the full
            # complex table makes every post-resume weight lookup resolve
            # exactly as it would have in the uninterrupted run.
            pkg.ctable.restore(resume.data["ctable"])
            if resume.phase == "dd":
                state_dd = deserialize_vector_dd(pkg, resume.data["dd"])
                monitor.restore_state(resume.data["monitor"])
                dd_start = resume.gate_cursor
            else:
                skip_dd = True
                convert_at = int(resume.data["convert_at"])
                state_dd = None
        else:
            state_dd = zero_state(pkg)
        dd_gates = dd_circuit.gates[dd_start:] if not skip_dd else []
        for i, gate in enumerate(dd_gates, start=dd_start):
            g0 = time.perf_counter()
            state_dd = mv_multiply(
                pkg, gates.get(gate, windowed=cfg.identity_skip), state_dd
            )
            size = node_count(state_dd)
            triggered = monitor.update(size)
            if cfg.force_convert_at is not None:
                triggered = i == cfg.force_convert_at
            g1 = time.perf_counter()
            trace.append(
                GateRecord(
                    index=i,
                    name=gate.name,
                    seconds=g1 - g0,
                    phase="dd",
                    dd_size=size,
                )
            )
            if tracing:
                tr.record(
                    gate.name, "dd", g0, g1,
                    gate_index=i, dd_size=size, ewma=monitor.value,
                )
                tr.sample("dd_size", size, ts=g1)
                tr.sample("ewma", monitor.value, ts=g1)
            meter.sample(dd_bytes(pkg))
            if not triggered and guard.check_dd(meter.last_bytes, i):
                # Budget breach while still in the DD phase: degrade
                # gracefully by converting to the flat array early.
                triggered = True
                metadata["guard_forced_conversion"] = True
                if tracing:
                    tr.instant(
                        "guard_breach", "dd", ts=g1,
                        gate_index=i, observed_bytes=meter.last_bytes,
                        budget_bytes=guard.budget_bytes,
                    )
                _log.warning(
                    "memory budget breached at gate %d (%d > %d bytes); "
                    "forcing DD-to-array conversion",
                    i, meter.last_bytes, guard.budget_bytes,
                )
            if triggered:
                convert_at = i
                if tracing:
                    tr.instant(
                        "ewma_trigger", "dd", ts=g1,
                        gate_index=i, dd_size=size, ewma=monitor.value,
                    )
                _log.info(
                    "EWMA triggered at gate %d (dd_size=%d, ewma=%.1f)",
                    i, size, monitor.value,
                )
                break
            if (
                checkpoint_every is not None
                and (i + 1) % checkpoint_every == 0
                and i + 1 < len(circuit.gates)
            ):
                # Barrier *before* the dump: the snapshot must capture the
                # exact state (unique tables = live state DD, caches cold)
                # that both the continuation and any resume evolve from.
                gates.clear()
                pkg.checkpoint_barrier([state_dd])
                write_snapshot(
                    checkpoint_path,
                    snapshot_dd_phase(
                        pkg, state_dd, monitor, i + 1, circuit, cfg_digest
                    ),
                )
                checkpoints_written += 1
                if tracing:
                    tr.instant("checkpoint", "dd", gate_index=i)
            if pkg.unique_node_count > self.GC_THRESHOLD:
                removed = pkg.collect_garbage([state_dd, *gates.roots()])
                if tracing:
                    tr.instant("gc", "dd", gate_index=i, reclaimed=removed)
                _log.debug("GC at gate %d reclaimed %d nodes", i, removed)
            if max_seconds is not None and time.perf_counter() - start > max_seconds:
                timed_out = True
                break
        if tracing and not skip_dd:
            tr.record(
                "dd_phase", "phase", start, time.perf_counter(),
                gates=len(trace), converted=convert_at is not None,
            )
        if state_dd is not None:
            registry.gauge("dd.size").set(node_count(state_dd))
        registry.gauge("ewma").set(monitor.value)
        registry.counter("dd_phase.gates").inc(len(trace))

        with TaskRunner(
            cfg.threads, cfg.use_thread_pool, tracer=tr if tracing else None
        ) as runner:
            c0 = time.perf_counter()
            if convert_at is None:
                # Entire circuit stayed regular: finish like DDSIM.
                array, report = convert_parallel(
                    pkg, state_dd, cfg.threads, runner,
                    dense_level=cfg.dense_block_level, tracer=tr,
                    unpermute=unperm,
                )
                metadata["conversion_report"] = report
                meter.sample(dd_bytes(pkg) + array.nbytes)
                state = array
                if tracing:
                    tr.record(
                        "conversion", "phase", c0, time.perf_counter(),
                        triggered=False, tasks=report.num_tasks,
                    )
                registry.gauge("conversion.seconds").set(report.seconds)
            else:
                # ---------------- Phase 2: parallel DD-to-array ----------
                if skip_dd:
                    # Array-phase resume: the snapshot carries the exact
                    # post-conversion (and post-applied-DMAV-gates) array.
                    state = decode_array_state(resume)
                    metadata["converted"] = True
                    metadata["conversion_gate_index"] = convert_at
                    metadata["conversion_resumed"] = True
                    meter.sample(dd_bytes(pkg) + state.nbytes)
                else:
                    state, report = convert_parallel(
                        pkg, state_dd, cfg.threads, runner,
                        dense_level=cfg.dense_block_level, tracer=tr,
                        unpermute=unperm,
                    )
                    metadata["converted"] = True
                    metadata["conversion_gate_index"] = convert_at
                    metadata["conversion_report"] = report
                    gates.drop_windowed()
                    if checkpoint_every is not None or resume is not None:
                        # Conversion barrier: an array-phase resume rebuilds
                        # the DMAV gate list in a fresh package, so a run
                        # that may write (or already read) a snapshot must
                        # build it from the same cold-cache state or the
                        # fused edges drift by ulps.  Applied symmetrically
                        # on the resume side by the fresh package itself.
                        gates.clear()
                        pkg.checkpoint_barrier([])
                    elif guard.enabled:
                        # Post-conversion the state DD is dead weight; under
                        # a memory budget, reclaim it so the degradation
                        # actually shrinks the working set (value-neutral:
                        # GC only frees dead nodes and clears caches).
                        pkg.collect_garbage(gates.roots())
                    meter.sample(dd_bytes(pkg) + state.nbytes)
                    if tracing:
                        tr.record(
                            "conversion", "phase", c0, time.perf_counter(),
                            triggered=True, gate_index=convert_at,
                            tasks=report.num_tasks,
                            scalar_fills=report.num_scalar_fills,
                        )
                    registry.gauge("conversion.seconds").set(report.seconds)
                guard.check_array(
                    meter.last_bytes,
                    convert_at,
                    checkpoint=lambda: write_array_checkpoint(
                        state, convert_at, 0 if not skip_dd else resume.gate_cursor
                    ),
                )

                # ---------------- Phase 3: (fusion +) DMAV ---------------
                remaining = circuit.gates[convert_at + 1:]
                model = CostModel(cfg.threads, cfg.simd_width)
                f0 = time.perf_counter()
                edges = [gates.get(g) for g in remaining]
                labels = [g.name for g in remaining]
                if cfg.fusion == "cost" and edges:
                    fused = fuse_cost_aware(pkg, edges, model)
                    edges = fused.gates
                    labels = _fused_labels(labels, fused)
                    metadata["fusion_result"] = _fusion_summary(fused)
                elif cfg.fusion == "koperations" and edges:
                    fused = fuse_k_operations(pkg, edges, cfg.k_operations, model)
                    edges = fused.gates
                    labels = _fused_labels(labels, fused)
                    metadata["fusion_result"] = _fusion_summary(fused)
                f1 = time.perf_counter()
                metadata["fusion_seconds"] = f1 - f0
                if tracing and cfg.fusion != "none" and edges:
                    tr.record(
                        "fusion", "phase", f0, f1,
                        mode=cfg.fusion, emitted=len(edges),
                    )

                d0 = time.perf_counter()
                use_plans = cfg.plan_cache
                plans = (
                    PlanCache(pkg, cfg.threads, model, cfg.dense_block_level)
                    if use_plans
                    else None
                )
                arena = BufferArena(state.size) if use_plans else None
                out = None if use_plans else np.zeros_like(state)
                dmav_macs = 0
                dmav_cache_hits = 0
                gate_costs: list[tuple[int, float, float, bool]] = []
                # Array-phase resume: the emitted gate list is rebuilt
                # deterministically above; skip the already-applied prefix.
                edge_start = resume.gate_cursor if skip_dd else 0
                for j, edge in enumerate(edges[edge_start:], start=edge_start):
                    g0 = time.perf_counter()
                    if use_plans:
                        plan = plans.get(edge)
                        cost = plan.cost
                    else:
                        plan = None
                        cost = model.evaluate(pkg, edge)
                    if cfg.cache_policy == "always":
                        use_cache = True
                    elif cfg.cache_policy == "never":
                        use_cache = False
                    else:
                        use_cache = cost.use_cache
                    if use_plans:
                        w_buf, w_dirty = arena.output()
                        if use_cache:
                            bufs = arena.partials(plan.assignment.num_buffers)
                            w_buf, stats = dmav_cached(
                                pkg, edge, state, cfg.threads, runner,
                                cfg.dense_block_level, out=w_buf,
                                assignment=plan.assignment, buffers=bufs,
                                writers=plan.writers, out_dirty=w_dirty,
                                direct=plan.direct,
                                direct_out=plan.direct_out,
                            )
                        else:
                            w_buf, stats = dmav_nocache(
                                pkg, edge, state, cfg.threads, runner,
                                cfg.dense_block_level, out=w_buf,
                                tasks=plan.row_tasks, out_dirty=w_dirty,
                            )
                        arena.retire(state)
                        state = w_buf
                        buffer_bytes = arena.partial_bytes
                    elif use_cache:
                        assignment = assign_cache_tasks(pkg, edge, cfg.threads)
                        out, stats = dmav_cached(
                            pkg, edge, state, cfg.threads, runner,
                            cfg.dense_block_level, out=out,
                            assignment=assignment,
                        )
                        buffer_bytes = (
                            stats.buffers * state.size * AMPLITUDE_BYTES
                        )
                        state, out = out, state
                    else:
                        out, stats = dmav_nocache(
                            pkg, edge, state, cfg.threads, runner,
                            cfg.dense_block_level, out=out,
                        )
                        buffer_bytes = 0
                        state, out = out, state
                    dmav_macs += cost.macs_total
                    dmav_cache_hits += stats.cache_hits
                    gate_costs.append(
                        (cost.macs_total, cost.cost_nocache, cost.cost_cache,
                         use_cache)
                    )
                    g1 = time.perf_counter()
                    trace.append(
                        GateRecord(
                            index=convert_at + 1 + j,
                            name=labels[j],
                            seconds=g1 - g0,
                            phase="dmav",
                            macs=cost.macs_total,
                            cached=use_cache,
                        )
                    )
                    if tracing:
                        tr.record(
                            labels[j], "dmav", g0, g1,
                            gate_index=convert_at + 1 + j,
                            macs=cost.macs_total, cached=use_cache,
                            cost_cache=cost.cost_cache,
                            cost_nocache=cost.cost_nocache,
                            cache_hits=stats.cache_hits,
                        )
                    meter.sample(
                        dd_bytes(pkg)
                        + 2 * state.nbytes
                        + buffer_bytes
                    )
                    guard.check_array(
                        meter.last_bytes,
                        convert_at + 1 + j,
                        checkpoint=lambda s=state, c=j + 1: (
                            write_array_checkpoint(s, convert_at, c)
                        ),
                    )
                    if (
                        checkpoint_every is not None
                        and (j + 1) % checkpoint_every == 0
                        and j + 1 < len(edges)
                    ):
                        write_array_checkpoint(state, convert_at, j + 1)
                        checkpoints_written += 1
                        if tracing:
                            tr.instant(
                                "checkpoint", "dmav",
                                gate_index=convert_at + 1 + j,
                            )
                    if (
                        max_seconds is not None
                        and time.perf_counter() - start > max_seconds
                    ):
                        timed_out = True
                        break
                if tracing:
                    tr.record(
                        "dmav_phase", "phase", d0, time.perf_counter(),
                        gates=len(edges), macs=dmav_macs,
                    )
                n_cached = sum(1 for gc in gate_costs if gc[3])
                registry.counter("dmav.gates_cached").inc(n_cached)
                registry.counter("dmav.gates_uncached").inc(
                    len(gate_costs) - n_cached
                )
                registry.counter("dmav.gates").inc(len(gate_costs))
                registry.counter("dmav.macs").inc(dmav_macs)
                registry.counter("dmav.cache_hits").inc(dmav_cache_hits)
                metadata["plan_cache"] = use_plans
                if use_plans:
                    registry.counter("dmav.plan.hits").inc(plans.hits)
                    registry.counter("dmav.plan.misses").inc(plans.misses)
                    registry.counter("dmav.plan.gate_hits").inc(
                        plans.gate_hits
                    )
                    registry.counter("dmav.plan.compiles").inc(plans.compiles)
                    registry.counter("dmav.plan.invalidations").inc(
                        plans.invalidations
                    )
                    registry.counter("dmav.arena.partial_allocs").inc(
                        arena.partial_allocs
                    )
                    registry.counter("dmav.arena.partial_reuses").inc(
                        arena.partial_reuses
                    )
                    registry.counter("dmav.arena.output_allocs").inc(
                        arena.output_allocs
                    )
                    registry.gauge("dmav.arena.bytes").set(arena.bytes_held)
                    registry.gauge("dmav.plan.hit_rate").set(plans.hit_rate)
                metadata["dmav_macs_total"] = dmav_macs
                metadata["dmav_gate_costs"] = gate_costs
                if keep_internals:
                    metadata["dmav_edges"] = edges
                    metadata["package"] = pkg

        runtime = time.perf_counter() - start
        metadata["timed_out"] = timed_out
        metadata["ewma_samples"] = monitor.samples
        metadata["dd_phase_gates"] = (
            convert_at + 1 if convert_at is not None else len(trace)
        )
        metadata["gate_dd_cache_hits"] = gates.hits
        metadata["gate_dd_cache_misses"] = gates.misses
        metadata["dd_stats"] = pkg.stats.as_dict()
        registry.counter("dd.identity.mv_skips").inc(
            pkg.stats.identity_mv_skips
        )
        registry.counter("dd.identity.mm_skips").inc(
            pkg.stats.identity_mm_skips
        )
        registry.counter("dd.identity.passthrough_skips").inc(
            pkg.stats.identity_passthrough_skips
        )
        registry.counter("dd.identity.lift_steps").inc(
            pkg.stats.identity_lift_steps
        )
        registry.gauge("dd.reorder.applied").set(
            0 if reorder.is_natural else 1
        )
        registry.gauge("dd.reorder.cost_natural").set(reorder.cost_natural)
        registry.gauge("dd.reorder.cost_selected").set(reorder.cost_selected)
        registry.counter("dd.reorder.sift_moves").inc(reorder.sift_moves)
        metadata["checkpoints_written"] = checkpoints_written
        if guard.enabled:
            metadata["guard"] = guard.report.to_dict()
        registry.gauge("sim.mem.peak_bytes").set(meter.peak_bytes)
        metadata["obs"] = build_obs(
            tracer=tr if tracing else None,
            registry=registry,
            package=pkg,
            gate_cache=gates,
            runner=runner,
            wall_seconds=runtime,
        )
        if keep_internals and "package" not in metadata:
            metadata["package"] = pkg
        return SimulationResult(
            backend=self.name,
            circuit_name=circuit.name,
            num_qubits=n,
            num_gates=len(circuit.gates),
            state=state,
            runtime_seconds=runtime,
            peak_memory_bytes=meter.peak_bytes,
            gate_trace=trace,
            metadata=metadata,
        )

    # ------------------------------------------------------------------

    def simulate_sweep(
        self,
        circuit: Circuit,
        param_sets,
        tracer=None,
        checkpoint_path: str | None = None,
    ):
        """Run ``circuit`` bound with every parameter row of ``param_sets``.

        Returns a :class:`~repro.core.sweep.SweepResult` whose
        ``states[i]`` is bit-identical (``np.array_equal``) to
        ``self.run(circuit.bind(param_sets[i])).state``.  The sweep
        deduplicates identical rows, shares one DD phase / conversion /
        plan compilation across rows with a common gate prefix, and
        replays the remaining gates as batched matrix x matrix kernels;
        see :func:`repro.core.sweep.run_sweep` for the full contract.

        ``checkpoint_path`` receives a diagnostic sweep-phase snapshot on
        a memory-guard breach; such snapshots cannot seed
        ``run(resume_from=...)``.
        """
        from repro.core.sweep import run_sweep

        return run_sweep(
            self, circuit, param_sets, tracer=tracer,
            checkpoint_path=checkpoint_path,
        )


def _fused_labels(labels: list[str], fused: FusionResult) -> list[str]:
    """Human-readable names for fused groups ('fused[h+cx+...x12]')."""
    out = []
    pos = 0
    for size in fused.group_sizes:
        group = labels[pos:pos + size]
        pos += size
        if size == 1:
            out.append(group[0])
        else:
            out.append(f"fused[x{size}]")
    return out


def _fusion_summary(fused: FusionResult) -> dict:
    return {
        "emitted_gates": len(fused.gates),
        "absorbed_gates": fused.fused_away,
        "total_cost": fused.total_cost,
        "ddmm_calls": fused.ddmm_calls,
        "group_sizes": fused.group_sizes,
    }
