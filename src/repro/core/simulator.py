"""The FlatDD simulator (Figure 3's pipeline).

Phases:

1. **DD phase** -- simulate exactly like DDSIM (DD state, DD gates, compute
   tables) while feeding the state DD's node count to the EWMA monitor
   (Section 3.1.1).
2. **Conversion** -- on trigger, convert the DD state to a flat array with
   the parallel algorithm of Section 3.1.2.
3. **DMAV phase** -- optionally fuse the remaining gates (Section 3.3),
   then apply each gate matrix DD to the array state with Algorithm 1/2,
   choosing caching per gate via the Section 3.2.3 cost model.

Circuits that stay regular never trigger and finish entirely in the DD
phase (which is why FlatDD matches DDSIM on Adder/GHZ in Table 1).
"""

from __future__ import annotations

import time

import numpy as np

from repro.backends.base import GateRecord, SimulationResult, Simulator
from repro.backends.gatecache import GateDDCache
from repro.circuits.circuit import Circuit
from repro.common.config import AMPLITUDE_BYTES, FlatDDConfig
from repro.core.conversion import convert_parallel
from repro.core.cost_model import CostModel, assign_cache_tasks
from repro.core.dmav import dmav_cached, dmav_nocache
from repro.core.ewma import EWMAMonitor
from repro.core.fusion import FusionResult, fuse_cost_aware, fuse_k_operations
from repro.dd.operations import mv_multiply
from repro.dd.package import DDPackage
from repro.dd.vector import node_count, vector_to_array, zero_state
from repro.metrics.memory import MemoryMeter, dd_bytes
from repro.parallel.pool import TaskRunner, validate_thread_count

__all__ = ["FlatDDSimulator"]


class FlatDDSimulator(Simulator):
    """Hybrid DD / flat-array simulator with parallel DMAV."""

    GC_THRESHOLD = 200_000

    def __init__(self, config: FlatDDConfig | None = None, **overrides) -> None:
        if config is None:
            config = FlatDDConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config or keyword overrides")
        self.config = config
        self.name = f"flatdd[t={config.threads}]"

    # ------------------------------------------------------------------

    def run(
        self,
        circuit: Circuit,
        max_seconds: float | None = None,
        keep_internals: bool = False,
    ) -> SimulationResult:
        """Simulate ``circuit``; see class docstring for the phases.

        ``keep_internals=True`` stores the DD package and the DMAV-phase
        gate edges in the result metadata so benches can re-evaluate the
        cost model at other thread counts without re-simulating.
        """
        cfg = self.config
        n = circuit.num_qubits
        validate_thread_count(cfg.threads, n)
        pkg = DDPackage(n)
        gates = GateDDCache(pkg)
        monitor = EWMAMonitor(beta=cfg.beta, epsilon=cfg.epsilon)
        meter = MemoryMeter()
        trace: list[GateRecord] = []
        metadata: dict = {
            "threads": cfg.threads,
            "beta": cfg.beta,
            "epsilon": cfg.epsilon,
            "fusion": cfg.fusion,
            "cache_policy": cfg.cache_policy,
            "converted": False,
            "conversion_gate_index": None,
        }
        start = time.perf_counter()

        # ---------------- Phase 1: DD simulation with EWMA monitoring ----
        state_dd = zero_state(pkg)
        convert_at: int | None = None
        timed_out = False
        for i, gate in enumerate(circuit.gates):
            g0 = time.perf_counter()
            state_dd = mv_multiply(pkg, gates.get(gate), state_dd)
            size = node_count(state_dd)
            triggered = monitor.update(size)
            trace.append(
                GateRecord(
                    index=i,
                    name=gate.name,
                    seconds=time.perf_counter() - g0,
                    phase="dd",
                    dd_size=size,
                )
            )
            meter.sample(dd_bytes(pkg))
            if triggered:
                convert_at = i
                break
            if pkg.unique_node_count > self.GC_THRESHOLD:
                pkg.collect_garbage([state_dd, *gates.roots()])
            if max_seconds is not None and time.perf_counter() - start > max_seconds:
                timed_out = True
                break

        with TaskRunner(cfg.threads, cfg.use_thread_pool) as runner:
            if convert_at is None:
                # Entire circuit stayed regular: finish like DDSIM.
                array, report = convert_parallel(
                    pkg, state_dd, cfg.threads, runner,
                    dense_level=cfg.dense_block_level,
                )
                metadata["conversion_report"] = report
                meter.sample(dd_bytes(pkg) + array.nbytes)
                state = array
            else:
                # ---------------- Phase 2: parallel DD-to-array ----------
                state, report = convert_parallel(
                    pkg, state_dd, cfg.threads, runner,
                    dense_level=cfg.dense_block_level,
                )
                metadata["converted"] = True
                metadata["conversion_gate_index"] = convert_at
                metadata["conversion_report"] = report
                meter.sample(dd_bytes(pkg) + state.nbytes)

                # ---------------- Phase 3: (fusion +) DMAV ---------------
                remaining = circuit.gates[convert_at + 1:]
                model = CostModel(cfg.threads, cfg.simd_width)
                f0 = time.perf_counter()
                edges = [gates.get(g) for g in remaining]
                labels = [g.name for g in remaining]
                if cfg.fusion == "cost" and edges:
                    fused = fuse_cost_aware(pkg, edges, model)
                    edges = fused.gates
                    labels = _fused_labels(labels, fused)
                    metadata["fusion_result"] = _fusion_summary(fused)
                elif cfg.fusion == "koperations" and edges:
                    fused = fuse_k_operations(pkg, edges, cfg.k_operations, model)
                    edges = fused.gates
                    labels = _fused_labels(labels, fused)
                    metadata["fusion_result"] = _fusion_summary(fused)
                metadata["fusion_seconds"] = time.perf_counter() - f0

                out = np.zeros_like(state)
                dmav_macs = 0
                gate_costs: list[tuple[int, float, float, bool]] = []
                for j, edge in enumerate(edges):
                    g0 = time.perf_counter()
                    cost = model.evaluate(pkg, edge)
                    if cfg.cache_policy == "always":
                        use_cache = True
                    elif cfg.cache_policy == "never":
                        use_cache = False
                    else:
                        use_cache = cost.use_cache
                    if use_cache:
                        assignment = assign_cache_tasks(pkg, edge, cfg.threads)
                        out, stats = dmav_cached(
                            pkg, edge, state, cfg.threads, runner,
                            cfg.dense_block_level, out=out,
                            assignment=assignment,
                        )
                        buffer_bytes = (
                            stats.buffers * state.size * AMPLITUDE_BYTES
                        )
                    else:
                        out, stats = dmav_nocache(
                            pkg, edge, state, cfg.threads, runner,
                            cfg.dense_block_level, out=out,
                        )
                        buffer_bytes = 0
                    state, out = out, state
                    dmav_macs += cost.macs_total
                    gate_costs.append(
                        (cost.macs_total, cost.cost_nocache, cost.cost_cache,
                         use_cache)
                    )
                    trace.append(
                        GateRecord(
                            index=convert_at + 1 + j,
                            name=labels[j],
                            seconds=time.perf_counter() - g0,
                            phase="dmav",
                            macs=cost.macs_total,
                            cached=use_cache,
                        )
                    )
                    meter.sample(
                        dd_bytes(pkg)
                        + 2 * state.nbytes
                        + buffer_bytes
                    )
                    if (
                        max_seconds is not None
                        and time.perf_counter() - start > max_seconds
                    ):
                        timed_out = True
                        break
                metadata["dmav_macs_total"] = dmav_macs
                metadata["dmav_gate_costs"] = gate_costs
                if keep_internals:
                    metadata["dmav_edges"] = edges
                    metadata["package"] = pkg

        runtime = time.perf_counter() - start
        metadata["timed_out"] = timed_out
        metadata["ewma_samples"] = monitor.samples
        metadata["dd_phase_gates"] = (
            convert_at + 1 if convert_at is not None else len(trace)
        )
        if keep_internals and "package" not in metadata:
            metadata["package"] = pkg
        return SimulationResult(
            backend=self.name,
            circuit_name=circuit.name,
            num_qubits=n,
            num_gates=len(circuit.gates),
            state=state,
            runtime_seconds=runtime,
            peak_memory_bytes=meter.peak_bytes,
            gate_trace=trace,
            metadata=metadata,
        )


def _fused_labels(labels: list[str], fused: FusionResult) -> list[str]:
    """Human-readable names for fused groups ('fused[h+cx+...x12]')."""
    out = []
    pos = 0
    for size in fused.group_sizes:
        group = labels[pos:pos + size]
        pos += size
        if size == 1:
            out.append(group[0])
        else:
            out.append(f"fused[x{size}]")
    return out


def _fusion_summary(fused: FusionResult) -> dict:
    return {
        "emitted_gates": len(fused.gates),
        "absorbed_gates": fused.fused_away,
        "total_cost": fused.total_cost,
        "ddmm_calls": fused.ddmm_calls,
        "group_sizes": fused.group_sizes,
    }
