"""Batched parameter-sweep execution over the compiled DMAV plans.

The paper's core observation (Fig. 2) is that flat-array matrix x matrix
work vastly outperforms repeated matrix x vector work.  Variational
workloads (VQE/QAOA) evaluate one circuit *template* at many parameter
points; re-running the full DD -> plan -> array pipeline per point repeats
work that does not depend on the angles at all.  ``run_sweep`` amortizes
it three ways:

1. **Dedup + prefix grouping.**  Rows are bound
   (:meth:`~repro.circuits.circuit.Circuit.bind`), deduplicated by
   fingerprint, then greedily grouped: a row joins a group when its bound
   gates ``[0 .. convert_at]`` equal the group leader's *exactly*
   (``float.hex`` parameters).  The EWMA trigger, GC cadence, and memory
   guard only see that prefix, so an identical prefix provably reaches the
   identical conversion point -- the group shares ONE DD phase, ONE
   conversion, and ONE :class:`~repro.dd.package.DDPackage`.
2. **Plan compile-once.**  One :class:`~repro.core.plan.PlanCache` per
   group compiles each gate root once; rows of a sweep share whole plans
   for parameterless gates and share the structural border-path memo for
   per-row rotation roots.
3. **Batched replay.**  The remaining gates replay over a *tile-major*
   ``(threads, rows, 2**n / threads)`` batch -- DMAV task slices are
   chunk-aligned, so each becomes one C-contiguous ``(rows, chunk)``
   block -- through the lockstep kernels of :mod:`repro.core.dmav`
   (broadcast matmuls whose per-row slices are bit-identical to the
   single-shot gemms), row-blocked (``ROW_BLOCK_BYTES``) so task slices
   stay cache-resident.  The array phase becomes batched matrix x
   matrix work.

**Bit-identity contract.**  Every batch row equals (``np.array_equal``,
the repo-wide replay standard: signed zeros aside) the state of
``FlatDDSimulator.run`` on the equivalently bound circuit with the same
config -- enforced by the ``sweep_consistency`` fuzz oracle and
``tests/test_sweep.py``.  Per-row gate DDs are built in one package
that replays the group's shared DD prefix once and rewinds to a
:meth:`~repro.dd.package.DDPackage.build_mark` between rows, so each
row's builds see exactly the canonicalization history its own run would
have constructed; any structural incongruence between per-row plans
drops that gate (or recursion level) to an exact per-row replay.

Fusion modes are root-specific and not batched yet: ``fusion != "none"``
falls back to deduplicated per-row ``run()`` calls (noted in metadata).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.backends.gatecache import GateDDCache
from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.common.config import FlatDDConfig, config_digest
from repro.common.errors import SimulationError
from repro.core.conversion import convert_parallel
from repro.core.cost_model import CostModel
from repro.core.dmav import dmav_cached, dmav_nocache, run_border_task_batch
from repro.core.ewma import EWMAMonitor
from repro.core.plan import GatePlan, PlanCache
from repro.core.reorder import (
    permute_circuit,
    plan_qubit_order,
    unpermute_axes,
)
from repro.dd.node import TERMINAL
from repro.dd.operations import mv_multiply
from repro.dd.package import DDPackage
from repro.dd.vector import node_count, zero_state
from repro.metrics.memory import MemoryMeter, dd_bytes
from repro.obs.metrics import MetricsRegistry
from repro.parallel.arena import BufferArena
from repro.parallel.pool import TaskRunner, validate_thread_count
from repro.parallel.simd import simd_add, simd_mul_into
from repro.resilience.guard import MemoryGuard
from repro.resilience.snapshot import snapshot_sweep_phase, write_snapshot

__all__ = ["SweepResult", "run_sweep"]


@dataclass
class SweepResult:
    """Stacked result of one parameter sweep."""

    backend: str
    circuit_name: str
    num_qubits: int
    #: Parameter rows requested (duplicates included, original order).
    num_rows: int
    #: ``(num_rows, 2**n)`` complex128; row ``i`` is the final state of
    #: the template bound with ``param_sets[i]``.
    states: np.ndarray
    runtime_seconds: float
    peak_memory_bytes: int
    metadata: dict = field(default_factory=dict)


def _gate_key(g: Gate) -> tuple:
    """Exact (float.hex) identity of one bound gate for prefix grouping."""
    return (
        g.base_name,
        g.targets,
        g.controls,
        tuple(float(p).hex() for p in g.params),
    )


def _resolve_use_cache(cfg: FlatDDConfig, plan: GatePlan) -> bool:
    if cfg.cache_policy == "always":
        return True
    if cfg.cache_policy == "never":
        return False
    return plan.cost.use_cache


def _hit_pattern(tasks) -> tuple:
    """Per-thread first-miss-occurrence pattern of ``id(node)`` reuse.

    Mirrors ``dmav_cached``'s per-thread result cache: entry ``k`` is the
    index of the task that would serve task ``k``'s cache hit (or None
    for a miss).  Congruent batching requires every row to hit and miss
    at the same task indices.
    """
    pats = []
    for tlist in tasks:
        seen: dict[int, int] = {}
        pat = []
        for k, (node, _ip, _c) in enumerate(tlist):
            prev = seen.get(id(node))
            pat.append(prev)
            if prev is None:
                seen[id(node)] = k
        pats.append(tuple(pat))
    return tuple(pats)


def _tasks_congruent(tasks0, tasks) -> bool:
    """Same shape: per-thread counts, offsets, and terminality classes."""
    for t0, t in zip(tasks0, tasks):
        if len(t0) != len(t):
            return False
        for (n0, i0, _c0), (n1, i1, _c1) in zip(t0, t):
            if i0 != i1 or ((n0 is TERMINAL) != (n1 is TERMINAL)):
                return False
    return True


def _plans_congruent(plans: list[GatePlan], use_cache: bool) -> bool:
    """Whether one batched replay can serve every row's plan.

    Rows of a sweep share gate *structure* but not weights, so their
    plans normally agree in everything but coefficients; anything else
    (pathological cancellation producing a zero edge in one row only,
    say) is handled by falling back to per-row execution.
    """
    p0 = plans[0]
    if all(p is p0 for p in plans):
        return True
    if not use_cache:
        return all(
            _tasks_congruent(p0.row_tasks, p.row_tasks) for p in plans[1:]
        )
    a0 = p0.assignment
    pat0 = _hit_pattern(a0.tasks)
    for p in plans[1:]:
        a = p.assignment
        if (
            a.num_buffers != a0.num_buffers
            or a.buffer_of != a0.buffer_of
            or p.writers != p0.writers
            or p.direct != p0.direct
            or p.direct_out != p0.direct_out
            or not _tasks_congruent(a0.tasks, a.tasks)
            or _hit_pattern(a.tasks) != pat0
        ):
            return False
    return True


#: Target bytes of one task slice per executor row block.  The batched
#: kernels make several elementwise passes (scale, accumulate, fold) over
#: each task slice; blocking the batch into row groups whose slice fits
#: the CPU cache keeps those passes cache-resident the way single-shot
#: 1-D slices are, instead of streaming the whole ``rows x 2**n`` batch
#: through DRAM once per pass.  Blocking never changes per-row
#: arithmetic -- rows are independent in every kernel branch -- so the
#: bit-identity contract is unaffected by the split.
ROW_BLOCK_BYTES = 1 << 22


def _block_step(h: int, rows: int) -> int:
    """Rows per executor block for chunk size ``h`` (at least 1)."""
    return max(1, min(rows, ROW_BLOCK_BYTES // (h * 16)))


def _tile_cols(t3, off, size):
    """View of logical columns ``[off, off+size)`` of a tile-major batch.

    ``t3`` has shape ``(tiles, rows, h)``; the caller guarantees the
    range lies within one tile (`_plan_tileable`), so chunk-sized ranges
    come back as the C-contiguous ``(rows, h)`` tile itself.
    """
    h = t3.shape[2]
    t, lo = divmod(off, h)
    if lo == 0 and size == h:
        return t3[t]
    return t3[t][:, lo:lo + size]


def _untile(t3):
    """Copy a ``(tiles, rows, h)`` batch back to logical ``(rows, 2**n)``."""
    rows = t3.shape[1]
    return np.ascontiguousarray(t3.transpose(1, 0, 2)).reshape(rows, -1)


def _retile(t3, flat2):
    """Scatter logical ``(rows, 2**n)`` states into a tile-major batch."""
    tiles, rows, h = t3.shape
    t3[:] = flat2.reshape(rows, tiles, h).transpose(1, 0, 2)


def _plan_tileable(plan: GatePlan, use_cache: bool, h: int) -> bool:
    """Whether every task slice of ``plan`` stays within one ``h`` tile.

    Row-major task reads are size-aligned power-of-two blocks and cached
    column offsets are chunk multiples, so real plans always pass; the
    check guards the tile-view executors against any exotic plan shape by
    dropping the gate to the exact per-row path instead.
    """
    if use_cache:
        for tlist in plan.assignment.tasks:
            for node, i_p, _c in tlist:
                if i_p % h:
                    return False
                if node is not TERMINAL and 2 << node.level > h:
                    return False
        return True
    for tlist in plan.row_tasks:
        for node, i_v, _c in tlist:
            if node is TERMINAL:
                continue
            size = 2 << node.level
            if size > h or (i_v % h) + size > h:
                return False
    return True


def _batched_nocache(pkg, plans, v3, w3, threads, dense_level, out_dirty):
    """Planned ``dmav_nocache`` replayed over a tile-major batch."""
    h = v3.shape[2]
    for u in range(threads):
        tasks0 = plans[0].row_tasks[u]
        if not tasks0:
            if out_dirty:
                w3[u].fill(0)
            continue
        first = True
        for k, (node0, i_v, _c) in enumerate(tasks0):
            if first and node0 is TERMINAL:
                w3[u].fill(0)
                first = False
            nodes = [p.row_tasks[u][k][0] for p in plans]
            coeffs = [p.row_tasks[u][k][2] for p in plans]
            size = 1 if node0 is TERMINAL else 2 << node0.level
            run_border_task_batch(
                pkg, nodes, coeffs,
                _tile_cols(v3, i_v, size), _tile_cols(w3, u * h, size),
                dense_level, accumulate=not first,
            )
            first = False


def _batched_cached(pkg, plans, v3, w3, threads, dense_level, bufs, out_dirty):
    """Planned ``dmav_cached`` replayed over a tile-major batch.

    Cache-hit ratios are divided per row in scalar arithmetic before
    being assembled into a column vector: scalar and vectorized complex
    division round differently, and the single-shot path divides scalars.
    """
    h = v3.shape[2]
    a0 = plans[0].assignment
    for u in range(threads):
        tasks0 = a0.tasks[u]
        buf = bufs[a0.buffer_of[u]] if tasks0 else None
        flags = plans[0].direct[u]
        seen: dict[int, int] = {}
        for k, (node0, i_p, _c) in enumerate(tasks0):
            to_w = flags[k]
            src = seen.get(id(node0))
            if src is not None:
                prev_off = tasks0[src][1]
                ratios = np.array(
                    [
                        p.assignment.tasks[u][k][2]
                        / p.assignment.tasks[u][src][2]
                        for p in plans
                    ],
                    dtype=np.complex128,
                )[:, None]
                dst = w3 if to_w else buf
                simd_mul_into(dst[i_p // h], buf[prev_off // h], ratios)
                continue
            nodes = [p.assignment.tasks[u][k][0] for p in plans]
            coeffs = [p.assignment.tasks[u][k][2] for p in plans]
            size = 1 if node0 is TERMINAL else 2 << node0.level
            vin = _tile_cols(v3, u * h, size)
            if to_w:
                run_border_task_batch(
                    pkg, nodes, coeffs, vin, _tile_cols(w3, i_p, size),
                    dense_level, accumulate=False,
                )
            else:
                if node0 is TERMINAL:
                    buf[i_p // h].fill(0)
                run_border_task_batch(
                    pkg, nodes, coeffs, vin, _tile_cols(buf, i_p, size),
                    dense_level, accumulate=node0 is TERMINAL,
                )
                seen[id(node0)] = k
    for u in range(threads):
        ws = plans[0].writers[u]
        if not ws:
            if plans[0].direct_out[u]:
                continue
            if out_dirty:
                w3[u].fill(0)
            continue
        np.copyto(w3[u], bufs[ws[0]][u])
        for b in ws[1:]:
            simd_add(w3[u], bufs[b][u])


def _replay_prefix(sim, cfg, bound_circuit, convert_at, guard_enabled,
                   dd_order):
    """Replay one group's shared DD prefix in a fresh package.

    Gate-DD weight arithmetic is history-dependent: the commutative add
    memo orders its operands by node *creation index* (``_add`` in
    :mod:`repro.dd.operations`), and a package that already holds one
    row's gate builds hands the next row different creation orders (and
    memo hits) than its own run would have seen.  The only bit-exact
    environment for a row's edge builds is the one ``run()`` itself
    constructs: the package state at the conversion point.  Rows of a
    group share that prefix *exactly* (grouping compares bound gates
    ``[0 .. convert_at]`` by ``float.hex``), so the replay runs once per
    group and each row's builds start from a
    :meth:`~repro.dd.package.DDPackage.build_mark` taken here, rewinding
    after each row instead of replaying the prefix per row.

    Conversion mutates none of the state gate builds read (tables,
    memos), so stopping at the conversion point reproduces ``run()``'s
    edge-build state exactly; the guard-enabled GC that ``run()``
    performs post-conversion is replicated because it prunes the unique
    tables gate builds share against.

    The replayed prefix applies the same DD-phase transforms ``run()``
    uses -- the ``dd_order`` permutation and identity-skipped (windowed)
    gate builds -- while the per-row tail builds done by the caller stay
    canonical and full-height, exactly as ``run()``'s DMAV phase builds
    them.
    """
    pkg = DDPackage(bound_circuit.num_qubits)
    gates = GateDDCache(pkg)
    state_dd = zero_state(pkg)
    dd_circ = (
        permute_circuit(bound_circuit, dd_order)
        if dd_order is not None
        else bound_circuit
    )
    for i in range(convert_at + 1):
        state_dd = mv_multiply(
            pkg,
            gates.get(dd_circ.gates[i], windowed=cfg.identity_skip),
            state_dd,
        )
        if i < convert_at and pkg.unique_node_count > sim.GC_THRESHOLD:
            pkg.collect_garbage([state_dd, *gates.roots()])
    gates.drop_windowed()
    if guard_enabled:
        pkg.collect_garbage(gates.roots())
    return pkg, gates


def _dd_phase(sim, cfg, circuit, guard, meter, dd_order):
    """Replicate ``FlatDDSimulator.run``'s DD phase on a fresh package.

    Trigger decisions (EWMA, ``force_convert_at``, guard breach, GC
    cadence) see exactly what a single-shot run sees -- the per-package
    DD working set, never the batch -- so the conversion point matches
    every member row's own run bit-for-bit.  ``dd_order`` and
    ``cfg.identity_skip`` replicate the run's DD-phase qubit permutation
    and windowed gate builds.
    """
    pkg = DDPackage(circuit.num_qubits)
    gates = GateDDCache(pkg)
    monitor = EWMAMonitor(beta=cfg.beta, epsilon=cfg.epsilon)
    state_dd = zero_state(pkg)
    convert_at = None
    guard_forced = False
    dd_circ = (
        permute_circuit(circuit, dd_order)
        if dd_order is not None
        else circuit
    )
    for i, gate in enumerate(dd_circ.gates):
        state_dd = mv_multiply(
            pkg, gates.get(gate, windowed=cfg.identity_skip), state_dd
        )
        size = node_count(state_dd)
        triggered = monitor.update(size)
        if cfg.force_convert_at is not None:
            triggered = i == cfg.force_convert_at
        meter.sample(dd_bytes(pkg))
        if not triggered and guard.check_dd(meter.last_bytes, i):
            triggered = True
            guard_forced = True
        if triggered:
            convert_at = i
            break
        if pkg.unique_node_count > sim.GC_THRESHOLD:
            pkg.collect_garbage([state_dd, *gates.roots()])
    return pkg, gates, state_dd, convert_at, guard_forced


def run_sweep(
    sim,
    circuit: Circuit,
    param_sets,
    tracer=None,
    checkpoint_path: str | None = None,
) -> SweepResult:
    """Execute ``circuit`` bound with every row of ``param_sets``.

    ``sim`` is the :class:`~repro.core.simulator.FlatDDSimulator` whose
    config governs the run (and whose ``run`` serves the fusion
    fallback).  ``param_sets`` is a sequence of parameter rows, one per
    sweep point, each of length ``circuit.num_param_slots``
    (:class:`~repro.common.errors.CircuitError` on width mismatch,
    :class:`~repro.common.errors.SimulationError` when empty).

    ``checkpoint_path`` receives a diagnostic sweep-phase snapshot when a
    memory-guard breach aborts the replay (carried on the raised
    :class:`~repro.common.errors.ResourceExhaustedError`); sweep
    snapshots cannot resume a single-shot run.
    """
    cfg = sim.config
    n = circuit.num_qubits
    validate_thread_count(cfg.threads, n)
    if param_sets is None or len(param_sets) == 0:
        raise SimulationError(
            "simulate_sweep needs at least one parameter set"
        )
    start = time.perf_counter()
    bound = [circuit.bind(row) for row in param_sets]
    num_rows = len(bound)
    fps = [b.fingerprint() for b in bound]
    first_of: dict[str, int] = {}
    uniq: list[Circuit] = []
    for i, fp in enumerate(fps):
        if fp not in first_of:
            first_of[fp] = len(uniq)
            uniq.append(bound[i])

    # One reorder plan for the whole sweep: the selector is structure-only
    # (qubits, not parameter values), so the template and every bound row
    # produce the same plan -- prefix grouping below stays valid because
    # identical canonical prefixes map to identical permuted prefixes.
    reorder = plan_qubit_order(circuit, cfg.qubit_order)
    dd_order = None if reorder.is_natural else reorder.order
    unperm = None if reorder.is_natural else unpermute_axes(reorder.order)

    registry = MetricsRegistry()
    registry.counter("dmav.sweep.rows").inc(num_rows)
    registry.counter("dmav.sweep.unique_rows").inc(len(uniq))
    meter = MemoryMeter()
    guard = MemoryGuard(cfg.memory_budget_bytes)
    cfg_digest = config_digest(cfg)
    metadata: dict = {
        "threads": cfg.threads,
        "cache_policy": cfg.cache_policy,
        "fusion": cfg.fusion,
        "rows": num_rows,
        "unique_rows": len(uniq),
        "identity_skip": cfg.identity_skip,
        "qubit_order": cfg.qubit_order,
        "reorder_applied": not reorder.is_natural,
    }

    if cfg.fusion != "none":
        # Fusion emits per-run gate groupings the lockstep replay does
        # not model; dedup still pays, batching does not apply.
        metadata["mode"] = "fallback-fusion"
        ustates = []
        peak = 0
        for c in uniq:
            r = sim.run(c, tracer=tracer)
            ustates.append(r.state)
            peak = max(peak, r.peak_memory_bytes)
        states = np.empty((num_rows, 1 << n), dtype=np.complex128)
        for i, fp in enumerate(fps):
            states[i] = ustates[first_of[fp]]
        snap = registry.snapshot()
        metadata["obs"] = {
            "counters": snap["counters"], "gauges": snap["gauges"],
        }
        return SweepResult(
            backend=sim.name,
            circuit_name=circuit.name,
            num_qubits=n,
            num_rows=num_rows,
            states=states,
            runtime_seconds=time.perf_counter() - start,
            peak_memory_bytes=peak,
            metadata=metadata,
        )

    metadata["mode"] = "batched"
    # ---- greedy prefix grouping over the unique rows -----------------
    groups: list[dict] = []
    for ui, bc in enumerate(uniq):
        placed = False
        for g in groups:
            ca = g["convert_at"]
            if ca is None:
                continue
            if g["prefix"] == [_gate_key(x) for x in bc.gates[:ca + 1]]:
                g["members"].append(ui)
                placed = True
                break
        if not placed:
            pkg, gates, state_dd, convert_at, guard_forced = _dd_phase(
                sim, cfg, bc, guard, meter, dd_order
            )
            if guard_forced:
                metadata["guard_forced_conversion"] = True
            groups.append({
                "pkg": pkg,
                "gates": gates,
                "state_dd": state_dd,
                "convert_at": convert_at,
                "prefix": (
                    [_gate_key(x) for x in bc.gates[:convert_at + 1]]
                    if convert_at is not None
                    else None
                ),
                "members": [ui],
            })
    registry.counter("dmav.sweep.groups").inc(len(groups))

    gates_batched = 0
    gates_rowloop = 0
    row_rewinds = 0
    plan_totals = {
        "hits": 0, "misses": 0, "gate_hits": 0, "compiles": 0,
        "invalidations": 0,
    }
    arena_totals = {"output_allocs": 0, "partial_allocs": 0,
                    "partial_reuses": 0}
    ustates: list[np.ndarray | None] = [None] * len(uniq)
    conversions = []

    for g in groups:
        pkg: DDPackage = g["pkg"]
        gates: GateDDCache = g["gates"]
        convert_at = g["convert_at"]
        members: list[int] = g["members"]
        rows = len(members)
        with TaskRunner(cfg.threads, cfg.use_thread_pool) as runner:
            conv, report = convert_parallel(
                pkg, g["state_dd"], cfg.threads, runner,
                dense_level=cfg.dense_block_level,
                unpermute=unperm,
            )
            conversions.append(report.seconds)
            if convert_at is None:
                # The whole (deduplicated) circuit stayed regular: the
                # conversion IS the final state, exactly like a run that
                # never triggers -- and such groups are singletons.
                meter.sample(dd_bytes(pkg) + conv.nbytes)
                ustates[members[0]] = conv
                continue
            gates.drop_windowed()
            if guard.enabled:
                pkg.collect_garbage(gates.roots())
            # Per-row gate DDs, built in ONE package that replays the
            # group's shared DD prefix once (see _replay_prefix) and
            # rewinds to a build mark between rows: each row's builds
            # start from exactly the state its own run would have
            # constructed, at O(row's own nodes) cost instead of a full
            # per-row prefix replay.  Evicted nodes stay alive (and
            # structurally valid) through the kept edges, so the
            # columnar batch below still sees every row's DD at once;
            # the leader package hosts the per-node DMAV caches (ids
            # never collide while the edges pin the nodes).
            rpkg, rgates = _replay_prefix(
                sim, cfg, uniq[members[0]], convert_at, guard.enabled,
                dd_order,
            )
            build_mark = rpkg.build_mark()
            gate_mark = rgates.mark()
            edges_rows = []
            for ui in members:
                edges_rows.append([
                    rgates.get(gt)
                    for gt in uniq[ui].gates[convert_at + 1:]
                ])
                rpkg.rewind_to_mark(build_mark)
                rgates.rewind(gate_mark)
                row_rewinds += 1
            h = conv.size // cfg.threads
            v3 = np.repeat(
                conv.reshape(cfg.threads, 1, h), rows, axis=1
            )
            meter.sample(dd_bytes(pkg) + v3.nbytes)
            guard.check_array(
                meter.last_bytes, convert_at,
                checkpoint=lambda s=v3, c=0: _write_sweep_checkpoint(
                    checkpoint_path, pkg, _untile(s), convert_at, c,
                    circuit, cfg_digest,
                ),
                phase="sweep",
            )
            model = CostModel(cfg.threads, cfg.simd_width)
            plan_cache = PlanCache(
                pkg, cfg.threads, model, cfg.dense_block_level
            )
            arena = BufferArena(conv.size, rows=rows, tiles=cfg.threads)
            n_remaining = len(uniq[members[0]].gates) - convert_at - 1
            for j in range(n_remaining):
                plans = [plan_cache.get(er[j]) for er in edges_rows]
                verdicts = [_resolve_use_cache(cfg, p) for p in plans]
                uc = verdicts[0]
                congruent = (
                    all(v == uc for v in verdicts)
                    and _plan_tileable(plans[0], uc, h)
                    and _plans_congruent(plans, uc)
                )
                w_buf, w_dirty = arena.output()
                step = _block_step(h, rows)
                if congruent and uc:
                    bufs = arena.partials(plans[0].assignment.num_buffers)
                    for b0 in range(0, rows, step):
                        b1 = min(b0 + step, rows)
                        _batched_cached(
                            pkg, plans[b0:b1], v3[:, b0:b1],
                            w_buf[:, b0:b1], cfg.threads,
                            cfg.dense_block_level,
                            [bf[:, b0:b1] for bf in bufs], w_dirty,
                        )
                    gates_batched += 1
                elif congruent:
                    for b0 in range(0, rows, step):
                        b1 = min(b0 + step, rows)
                        _batched_nocache(
                            pkg, plans[b0:b1], v3[:, b0:b1],
                            w_buf[:, b0:b1], cfg.threads,
                            cfg.dense_block_level, w_dirty,
                        )
                    gates_batched += 1
                else:
                    # Exact per-row replay on logical (rows, 2**n) views;
                    # the tile-major invariant is restored by scattering
                    # the produced states back into the arena buffer.
                    v2 = _untile(v3)
                    w2 = np.empty_like(v2)
                    for r, (plan, v) in enumerate(zip(plans, verdicts)):
                        if v:
                            row_bufs = [
                                np.empty(conv.size, dtype=np.complex128)
                                for _ in range(plan.assignment.num_buffers)
                            ]
                            dmav_cached(
                                pkg, edges_rows[r][j], v2[r], cfg.threads,
                                None, cfg.dense_block_level, out=w2[r],
                                assignment=plan.assignment,
                                buffers=row_bufs, writers=plan.writers,
                                out_dirty=True, direct=plan.direct,
                                direct_out=plan.direct_out,
                            )
                        else:
                            dmav_nocache(
                                pkg, edges_rows[r][j], v2[r], cfg.threads,
                                None, cfg.dense_block_level, out=w2[r],
                                tasks=plan.row_tasks, out_dirty=True,
                            )
                    _retile(w_buf, w2)
                    gates_rowloop += 1
                arena.retire(v3)
                v3 = w_buf
                # Per-row rotation roots each cache full diagonals/dense
                # blocks; over a big batch that accumulates to hundreds
                # of MB of dead entries.  Recomputation is deterministic,
                # so drop them every gate column (identity flags stay).
                pkg.kron_cache.clear()
                pkg.dense_cache.clear()
                meter.sample(
                    dd_bytes(pkg) + 2 * v3.nbytes + arena.partial_bytes
                )
                guard.check_array(
                    meter.last_bytes, convert_at + 1 + j,
                    checkpoint=lambda s=v3, c=j + 1: (
                        _write_sweep_checkpoint(
                            checkpoint_path, pkg, _untile(s), convert_at, c,
                            circuit, cfg_digest,
                        )
                    ),
                    phase="sweep",
                )
            final = _untile(v3)
            for pos, ui in enumerate(members):
                ustates[ui] = final[pos]
            plan_totals["hits"] += plan_cache.hits
            plan_totals["misses"] += plan_cache.misses
            plan_totals["gate_hits"] += plan_cache.gate_hits
            plan_totals["compiles"] += plan_cache.compiles
            plan_totals["invalidations"] += plan_cache.invalidations
            arena_totals["output_allocs"] += arena.output_allocs
            arena_totals["partial_allocs"] += arena.partial_allocs
            arena_totals["partial_reuses"] += arena.partial_reuses

    states = np.empty((num_rows, 1 << n), dtype=np.complex128)
    for i, fp in enumerate(fps):
        states[i] = ustates[first_of[fp]]

    registry.counter("dmav.sweep.gates_batched").inc(gates_batched)
    registry.counter("dmav.sweep.gates_rowloop").inc(gates_rowloop)
    registry.counter("dmav.sweep.row_rewinds").inc(row_rewinds)
    for key, val in plan_totals.items():
        registry.counter(f"dmav.plan.{key}").inc(val)
    for key, val in arena_totals.items():
        registry.counter(f"dmav.arena.{key}").inc(val)
    total_planned = plan_totals["hits"] + plan_totals["misses"]
    registry.gauge("dmav.plan.hit_rate").set(
        plan_totals["hits"] / total_planned if total_planned else 0.0
    )
    registry.gauge("sim.mem.peak_bytes").set(meter.peak_bytes)
    metadata["groups"] = len(groups)
    metadata["gates_batched"] = gates_batched
    metadata["gates_rowloop"] = gates_rowloop
    metadata["conversion_seconds"] = sum(conversions)
    snap = registry.snapshot()
    metadata["obs"] = {
        "counters": snap["counters"], "gauges": snap["gauges"],
    }
    return SweepResult(
        backend=sim.name,
        circuit_name=circuit.name,
        num_qubits=n,
        num_rows=num_rows,
        states=states,
        runtime_seconds=time.perf_counter() - start,
        peak_memory_bytes=meter.peak_bytes,
        metadata=metadata,
    )


def _write_sweep_checkpoint(
    checkpoint_path, pkg, states, convert_at, cursor, template, cfg_digest
):
    """Guard-breach snapshot writer (None when no path is configured)."""
    if checkpoint_path is None:
        return None
    write_snapshot(
        checkpoint_path,
        snapshot_sweep_phase(
            pkg, states, convert_at, cursor, template, cfg_digest
        ),
    )
    return checkpoint_path
