"""QMDD decision-diagram substrate (paper Section 2.2, refs [86, 98, 99]).

Public surface:

* :class:`DDPackage` -- owns unique tables, the complex table, and caches.
* :class:`Edge` / :class:`DDNode` / :data:`TERMINAL` -- the graph itself.
* Vector builders (:func:`vector_from_array`, :func:`zero_state`, ...) and
  matrix builders (:func:`single_qubit_gate`, :func:`controlled_gate`, ...).
* Algebra (:func:`vadd`, :func:`madd`, :func:`mv_multiply`,
  :func:`mm_multiply`).
"""

from repro.dd.complextable import ComplexTable
from repro.dd.matrix import (
    controlled_gate,
    matrix_entry,
    matrix_from_factors,
    matrix_node_count,
    matrix_to_dense,
    single_qubit_gate,
    two_qubit_gate,
)
from repro.dd.approximation import (
    ApproximationResult,
    keep_largest_contributions,
    prune_small_contributions,
)
from repro.dd.density import (
    entanglement_entropy,
    reduced_density_top,
    schmidt_rank_profile,
)
from repro.dd.io import DDStatistics, dd_statistics, to_dot
from repro.dd.node import ONE_EDGE, TERMINAL, ZERO_EDGE, DDNode, Edge
from repro.dd.operations import (
    inner_product,
    madd,
    mm_multiply,
    mv_multiply,
    norm,
    scale,
    vadd,
)
from repro.dd.package import DDPackage
from repro.dd.vector import (
    amplitude,
    basis_state,
    node_count,
    vector_from_array,
    vector_to_array,
    zero_state,
)

__all__ = [
    "ApproximationResult",
    "ComplexTable",
    "DDNode",
    "DDPackage",
    "DDStatistics",
    "Edge",
    "ONE_EDGE",
    "TERMINAL",
    "ZERO_EDGE",
    "amplitude",
    "basis_state",
    "controlled_gate",
    "dd_statistics",
    "entanglement_entropy",
    "inner_product",
    "keep_largest_contributions",
    "madd",
    "matrix_entry",
    "matrix_from_factors",
    "matrix_node_count",
    "matrix_to_dense",
    "mm_multiply",
    "mv_multiply",
    "node_count",
    "norm",
    "prune_small_contributions",
    "reduced_density_top",
    "scale",
    "schmidt_rank_profile",
    "single_qubit_gate",
    "to_dot",
    "two_qubit_gate",
    "vadd",
    "vector_from_array",
    "vector_to_array",
    "zero_state",
]
