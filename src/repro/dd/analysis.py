"""Structural DD analysis: identity detection and dense-block extraction.

These power the vectorized bottom-out of the Python DMAV/conversion kernels
(DESIGN.md substitution 2): instead of recursing to scalar MACs like the
paper's C++ does, recursion stops at

* *identity subtrees*, applied as one vectorized axpy, and
* *small dense blocks* (level <= ``dense_block_level``), materialized once
  per unique node and applied with a numpy matmul.

Both caches live on the package and are invalidated by its GC.
"""

from __future__ import annotations

import numpy as np

from repro.dd.node import TERMINAL, DDNode, Edge
from repro.dd.package import DDPackage

__all__ = [
    "is_identity",
    "dense_matrix_block",
    "dense_vector_block",
    "kron_collapse",
    "vector_kron_collapse",
]


def is_identity(pkg: DDPackage, node: DDNode) -> bool:
    """True iff the (normalized) subtree under ``node`` is an identity block.

    Because matrix normalization forces the leading non-zero weight to 1,
    an identity subtree is exactly: diagonal children weights 1 pointing to
    the same identity child, off-diagonal children zero.
    """
    if node is TERMINAL:
        return True
    if len(node.edges) != 4:
        return False
    cached = pkg.identity_flags.get(id(node))
    if cached is not None:
        return cached
    e00, e01, e10, e11 = node.edges
    result = (
        e01.is_zero
        and e10.is_zero
        and e00.w == 1
        and e11.w == 1
        and e00.n is e11.n
        and is_identity(pkg, e00.n)
    )
    pkg.identity_flags[id(node)] = result
    return result


def dense_matrix_block(pkg: DDPackage, node: DDNode) -> np.ndarray:
    """Dense array of the *normalized* subtree under a matrix node.

    Cached per unique node; callers scale by their accumulated edge-weight
    product.  Only call for small levels (cost is 4**(level+1)).
    """
    if node is TERMINAL:
        return np.ones((1, 1), dtype=np.complex128)
    key = id(node)
    cached = pkg.dense_cache.get(key)
    if cached is not None:
        return cached
    half = 1 << node.level
    out = np.zeros((2 * half, 2 * half), dtype=np.complex128)
    for k, child in enumerate(node.edges):
        if child.is_zero:
            continue
        i, j = divmod(k, 2)
        out[i * half:(i + 1) * half, j * half:(j + 1) * half] = (
            child.w * dense_matrix_block(pkg, child.n)
        )
    out.setflags(write=False)
    pkg.dense_cache[key] = out
    return out


def kron_collapse(
    pkg: DDPackage, node: DDNode, dense_level: int
) -> tuple[np.ndarray, DDNode] | None:
    """Detect subtrees of the form ``diag(d) (x) M_base``.

    A chain of *pass-through* levels -- zero off-diagonal children and both
    diagonal children reaching the same node -- contributes only a diagonal
    scaling per index bit.  When such a chain reaches a node at or below
    ``dense_level`` (or the terminal), the whole subtree's action collapses
    to one reshape + matmul: this is the paper's scalar-multiple sharing
    (Figure 4b / Figure 6) applied at kernel granularity, and it is what
    lets single-qubit gates on low qubits and diagonal gates (rz, cz, cp)
    run in O(1) numpy calls instead of O(2**n) recursion steps.

    Returns ``(d, base_node)`` with ``len(d) = 2**(level - base_level)``,
    or None if the chain breaks above ``dense_level``.  Cached per node.
    """
    if node is TERMINAL or node.level <= dense_level:
        return (np.ones(1, dtype=np.complex128), node)
    key = id(node)
    if key in pkg.kron_cache:
        return pkg.kron_cache[key]  # type: ignore[return-value]
    e00, e01, e10, e11 = node.edges
    result = None
    if (
        e01.is_zero
        and e10.is_zero
        and not e00.is_zero
        and not e11.is_zero
        and e00.n is e11.n
    ):
        below = kron_collapse(pkg, e00.n, dense_level)
        if below is not None:
            d_below, base = below
            d = np.concatenate((e00.w * d_below, e11.w * d_below))
            result = (d, base)
    pkg.kron_cache[key] = result
    return result


def vector_kron_collapse(
    pkg: DDPackage, node: DDNode, dense_level: int
) -> tuple[np.ndarray, DDNode] | None:
    """Vector analogue of :func:`kron_collapse`: ``v = d (x) v_base``.

    A vector node whose two children reach the same node (one side may be
    zero) contributes only per-half scaling; chains of such nodes collapse
    to a coefficient vector over a shared base subtree.  This is the DD
    regularity that the paper's conversion exploits with its
    scalar-multiplication optimization.
    """
    if node is TERMINAL or node.level <= dense_level:
        return (np.ones(1, dtype=np.complex128), node)
    key = (id(node), "v")
    if key in pkg.kron_cache:
        return pkg.kron_cache[key]  # type: ignore[return-value]
    e0, e1 = node.edges
    result = None
    child = None
    if not e0.is_zero and (e1.is_zero or e1.n is e0.n):
        child = e0.n
    elif e0.is_zero and not e1.is_zero:
        child = e1.n
    if child is not None:
        below = vector_kron_collapse(pkg, child, dense_level)
        if below is not None:
            d_below, base = below
            w0 = e0.w if not e0.is_zero else 0j
            w1 = e1.w if not e1.is_zero else 0j
            d = np.concatenate((w0 * d_below, w1 * d_below))
            result = (d, base)
    pkg.kron_cache[key] = result
    return result


def dense_vector_block(pkg: DDPackage, node: DDNode) -> np.ndarray:
    """Dense array of the normalized subtree under a vector node (cached)."""
    if node is TERMINAL:
        return np.ones(1, dtype=np.complex128)
    key = id(node)
    cached = pkg.dense_cache.get(key)
    if cached is not None:
        return cached
    half = 1 << node.level
    out = np.zeros(2 * half, dtype=np.complex128)
    for i, child in enumerate(node.edges):
        if not child.is_zero:
            out[i * half:(i + 1) * half] = child.w * dense_vector_block(
                pkg, child.n
            )
    out.setflags(write=False)
    pkg.dense_cache[key] = out
    return out
