"""Approximation of quantum states in DDs (Zulehner et al., ASP-DAC 2020).

Reference [97] of the FlatDD paper: when a state DD grows too large, edges
whose subtrees contribute little probability mass can be pruned, trading a
controlled fidelity loss for a (often dramatic) size reduction.  Thanks to
norm-normalization, the probability mass reachable through an edge at the
end of path ``P`` is exactly ``prod_{e in P} |e.w|^2`` -- so contributions
can be computed top-down without touching amplitudes.

Two strategies, following the paper's taxonomy:

* :func:`prune_small_contributions` -- remove every edge whose *total*
  reachable probability is below a budget, spreading the budget over the
  edges it removes (their "remove nodes by contribution" scheme).
* :func:`keep_largest_contributions` -- keep only the strongest outgoing
  edge wherever a node's weaker edge falls below a ratio, a cheaper
  structural heuristic.

Both return the new edge and the exact fidelity |<orig|approx>|^2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import DDError
from repro.dd.node import TERMINAL, ZERO_EDGE, DDNode, Edge
from repro.dd.operations import inner_product, scale
from repro.dd.package import DDPackage
from repro.dd.vector import node_count

__all__ = [
    "ApproximationResult",
    "prune_small_contributions",
    "keep_largest_contributions",
]


@dataclass(frozen=True)
class ApproximationResult:
    """Outcome of one approximation pass."""

    state: Edge
    fidelity: float
    nodes_before: int
    nodes_after: int

    @property
    def size_reduction(self) -> float:
        return self.nodes_before / max(self.nodes_after, 1)


def _edge_contributions(state: Edge) -> dict[tuple[int, int], float]:
    """Total reachable probability per (node id, edge slot).

    Summed over every path from the root to that edge (a node shared by
    several paths accumulates all of them).
    """
    contributions: dict[tuple[int, int], float] = {}
    # node id -> accumulated incoming probability mass.
    mass: dict[int, float] = {id(state.n): abs(state.w) ** 2}
    # Process levels top-down; full-height DDs make this a clean sweep.
    frontier: dict[int, DDNode] = {id(state.n): state.n}
    while frontier:
        next_frontier: dict[int, DDNode] = {}
        for nid, node in frontier.items():
            if node is TERMINAL:
                continue
            node_mass = mass.get(nid, 0.0)
            for slot, child in enumerate(node.edges):
                if child.is_zero:
                    continue
                edge_mass = node_mass * abs(child.w) ** 2
                key = (nid, slot)
                contributions[key] = contributions.get(key, 0.0) + edge_mass
                if child.n is not TERMINAL:
                    cid = id(child.n)
                    mass[cid] = mass.get(cid, 0.0) + edge_mass
                    next_frontier[cid] = child.n
        frontier = next_frontier
    return contributions


def _rebuild_without(
    pkg: DDPackage, state: Edge, removed: set[tuple[int, int]]
) -> Edge:
    """Reconstruct the DD with the given (node id, slot) edges zeroed."""
    memo: dict[int, Edge] = {}

    def rebuild(node: DDNode) -> Edge:
        if node is TERMINAL:
            return pkg.one_edge()
        hit = memo.get(id(node))
        if hit is not None:
            return hit
        children = []
        for slot, child in enumerate(node.edges):
            if child.is_zero or (id(node), slot) in removed:
                children.append(ZERO_EDGE)
                continue
            sub = rebuild(child.n)
            children.append(pkg.raw_edge(child.w * sub.w, sub.n))
        result = pkg.make_vnode(node.level, children[0], children[1])
        memo[id(node)] = result
        return result

    rebuilt = rebuild(state.n)
    return scale(pkg, rebuilt, state.w)


def _finalize(
    pkg: DDPackage, original: Edge, approx: Edge, nodes_before: int
) -> ApproximationResult:
    if approx.is_zero:
        raise DDError("approximation removed the entire state")
    # Renormalize and compute exact fidelity against the original.
    nrm = abs(
        inner_product(pkg, approx, approx)
    ) ** 0.5
    normalized = scale(pkg, approx, 1.0 / nrm)
    overlap = inner_product(pkg, original, normalized)
    return ApproximationResult(
        state=normalized,
        fidelity=float(abs(overlap) ** 2),
        nodes_before=nodes_before,
        nodes_after=node_count(normalized),
    )


def prune_small_contributions(
    pkg: DDPackage, state: Edge, budget: float
) -> ApproximationResult:
    """Remove edges, weakest first, until the removed mass reaches ``budget``.

    ``budget`` is the maximum total probability mass that may be discarded
    (the paper's per-run fidelity budget); the achieved fidelity is at
    least ``1 - budget`` up to interference effects and is reported
    exactly.
    """
    if not 0.0 < budget < 1.0:
        raise DDError(f"budget must be in (0, 1), got {budget}")
    if state.is_zero:
        raise DDError("cannot approximate the zero state")
    nodes_before = node_count(state)
    contributions = _edge_contributions(state)
    removed: set[tuple[int, int]] = set()
    spent = 0.0
    for key, mass in sorted(contributions.items(), key=lambda kv: kv[1]):
        if spent + mass > budget:
            break
        removed.add(key)
        spent += mass
    if not removed:
        return ApproximationResult(
            state=state,
            fidelity=1.0,
            nodes_before=nodes_before,
            nodes_after=nodes_before,
        )
    approx = _rebuild_without(pkg, state, removed)
    return _finalize(pkg, state, approx, nodes_before)


def keep_largest_contributions(
    pkg: DDPackage, state: Edge, ratio: float = 0.05
) -> ApproximationResult:
    """Drop the weaker outgoing edge of any node where it carries less than
    ``ratio`` of the node's local probability (|w|^2 < ratio)."""
    if not 0.0 < ratio < 0.5:
        raise DDError(f"ratio must be in (0, 0.5), got {ratio}")
    if state.is_zero:
        raise DDError("cannot approximate the zero state")
    nodes_before = node_count(state)
    removed: set[tuple[int, int]] = set()
    seen: set[int] = set()
    stack = [state.n]
    while stack:
        node = stack.pop()
        if node is TERMINAL or id(node) in seen:
            continue
        seen.add(id(node))
        e0, e1 = node.edges
        if not e0.is_zero and not e1.is_zero:
            w0, w1 = abs(e0.w) ** 2, abs(e1.w) ** 2
            if w0 < ratio:
                removed.add((id(node), 0))
            elif w1 < ratio:
                removed.add((id(node), 1))
        for child in node.edges:
            if not child.is_zero:
                stack.append(child.n)
    if not removed:
        return ApproximationResult(state, 1.0, nodes_before, nodes_before)
    approx = _rebuild_without(pkg, state, removed)
    return _finalize(pkg, state, approx, nodes_before)
