"""Canonical complex-number table (DDSIM's complex package [98]).

DD canonicity requires that numerically equal edge weights be *the same*
hashable value, despite floating-point round-off.  DDSIM solves this with a
hash table of complex numbers looked up within a tolerance; we reproduce the
same idea: every weight entering a DD is funneled through
:meth:`ComplexTable.lookup`, which buckets values by rounding and returns a
single representative per bucket.

The table also powers the analytic memory model: the paper's DD simulators
account real memory for stored complex values, so we expose ``entry_count``.
"""

from __future__ import annotations

from repro.common.config import CTABLE_DECIMALS, TOLERANCE

__all__ = ["ComplexTable"]


class ComplexTable:
    """Interning table for edge weights.

    ``lookup`` maps any complex number to a canonical representative such
    that values within :data:`repro.common.config.TOLERANCE` of each other
    collapse to the same object.  Exact 0 and 1 are pre-seeded since they
    are by far the most common weights.
    """

    __slots__ = ("_table", "_hits", "_misses", "_distinct")

    def __init__(self) -> None:
        self._table: dict[tuple[int, int], complex] = {}
        self._hits = 0
        self._misses = 0
        self._distinct = 0
        # Pre-seed the ubiquitous constants so they are bucket representatives.
        for c in (0j, 1 + 0j, -1 + 0j, 1j, -1j):
            self._table[self._key(c)] = c
            self._distinct += 1

    #: Scale factor implementing round-to-CTABLE_DECIMALS via integer
    #: rounding (round(x) is much cheaper than round(x, n) in CPython, and
    #: integer keys also sidestep the -0.0 bucketing issue).
    _SCALE = 10.0 ** CTABLE_DECIMALS

    @classmethod
    def _key(cls, c: complex) -> tuple[int, int]:
        return (round(c.real * cls._SCALE), round(c.imag * cls._SCALE))

    def lookup(self, c: complex) -> complex:
        """Return the canonical representative for ``c``.

        Values within TOLERANCE of zero collapse to exact ``0j`` (the paper's
        algorithms branch on "zero edge", so near-zeros must become exact).
        Values that land within TOLERANCE of an existing representative but
        in an adjacent rounding bucket are aliased to it, so canonicity does
        not break at bucket boundaries (the neighbor-probing trick of
        DDSIM's complex package [98]).
        """
        if abs(c.real) < TOLERANCE and abs(c.imag) < TOLERANCE:
            return 0j
        key = self._key(c)
        found = self._table.get(key)
        if found is not None:
            self._hits += 1
            return found
        # Probe the eight neighbouring buckets before declaring a new value.
        kr, ki = key
        for dr in (-1, 0, 1):
            for di in (-1, 0, 1):
                if dr == 0 and di == 0:
                    continue
                near = self._table.get((kr + dr, ki + di))
                if near is not None and abs(near - c) < TOLERANCE:
                    # Alias this bucket so future lookups are O(1).
                    self._table[key] = near
                    self._hits += 1
                    return near
        self._misses += 1
        self._distinct += 1
        c = complex(c)
        self._table[key] = c
        return c

    # ------------------------------------------------------------------
    # Transactional rewind (repro.core.sweep row replay)
    # ------------------------------------------------------------------

    def mark(self) -> tuple[int, int, int, int]:
        """Opaque rewind point for :meth:`rewind`.

        ``lookup`` only ever *adds* buckets (aliases included -- an alias
        is a new key bound to an existing representative; representatives
        themselves are never rebound), so the table's state at any moment
        is fully described by its insertion prefix.  The mark is just the
        current length plus the counters.
        """
        return (len(self._table), self._distinct, self._hits, self._misses)

    def rewind(self, mark: tuple[int, int, int, int]) -> None:
        """Drop every bucket added since ``mark`` (exact rollback).

        Python dicts pop in LIFO insertion order, so trimming back to the
        marked length restores the exact canonicalization history: a
        later ``lookup`` sees precisely the representatives and aliases
        it would have seen had the trimmed inserts never happened.
        """
        size, distinct, hits, misses = mark
        while len(self._table) > size:
            self._table.popitem()
        self._distinct = distinct
        self._hits = hits
        self._misses = misses

    # ------------------------------------------------------------------
    # Snapshot support (repro.resilience)
    # ------------------------------------------------------------------

    def dump(self) -> dict:
        """Exact snapshot of the table for checkpointing.

        Bit-identical resume requires reproducing not just the DD but the
        *canonicalization history*: which representative a future ``lookup``
        returns depends on every bucket (aliases included) present at that
        moment.  Values are serialized as ``float.hex`` pairs so the
        round-trip is exact.
        """
        return {
            "buckets": [
                [kr, ki, v.real.hex(), v.imag.hex()]
                for (kr, ki), v in self._table.items()
            ],
            "distinct": self._distinct,
            "hits": self._hits,
            "misses": self._misses,
        }

    def restore(self, payload: dict) -> None:
        """Replace the table contents with a :meth:`dump` snapshot."""
        self._table = {
            (int(kr), int(ki)): complex(
                float.fromhex(re), float.fromhex(im)
            )
            for kr, ki, re, im in payload["buckets"]
        }
        self._distinct = int(payload["distinct"])
        self._hits = int(payload["hits"])
        self._misses = int(payload["misses"])

    @property
    def entry_count(self) -> int:
        """Number of distinct canonical values stored (aliases excluded)."""
        return self._distinct

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    def __len__(self) -> int:
        return self._distinct
