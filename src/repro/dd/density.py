"""Reduced density matrices and entanglement entropy from DD states.

The paper's entire premise -- DDs compress *regular* states and blow up on
*irregular* ones -- is quantified by bipartite entanglement: a DD level
needs at least as many nodes as the Schmidt rank across that cut.  This
module computes reduced density matrices of the top-m qubits directly on
the DD (prefix subtrees pair up via memoized inner products; the 2**n
amplitude vector is never materialized), giving the entanglement spectrum
and entropy per cut.

``schmidt_rank_profile`` relates the two views explicitly: the Schmidt
rank across a cut can never exceed the DD's width at that level, so
highly entangled states force wide DDs -- the tests verify
``width >= rank`` on assorted states.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import DDError
from repro.dd.node import TERMINAL, DDNode, Edge
from repro.dd.operations import _inner  # shared memoized kernel
from repro.dd.package import DDPackage

__all__ = [
    "reduced_density_top",
    "entanglement_entropy",
    "schmidt_rank_profile",
]


def _prefix_subtrees(
    pkg: DDPackage, state: Edge, m: int
) -> list[tuple[complex, DDNode | None]]:
    """(weight product, subtree node) for each m-bit prefix of the index.

    Prefix bits are the TOP m qubits (levels n-1 .. n-m); entry order is
    the prefix value (0 .. 2**m - 1).
    """
    n = pkg.num_qubits
    if not 1 <= m < n:
        raise DDError(f"cut must satisfy 1 <= m < n, got m={m}, n={n}")
    if state.is_zero:
        raise DDError("zero state has no density matrix")
    out: list[tuple[complex, DDNode | None]] = []

    def descend(node: DDNode, weight: complex, depth: int) -> None:
        if depth == m:
            out.append((weight, node))
            return
        for child in node.edges:
            if child.is_zero:
                # The whole sub-block of prefixes below this edge is 0.
                for _ in range(1 << (m - depth - 1)):
                    out.append((0j, None))
            else:
                descend(child.n, weight * child.w, depth + 1)

    descend(state.n, state.w, 0)
    return out


def reduced_density_top(
    pkg: DDPackage, state: Edge, m: int
) -> np.ndarray:
    """Reduced density matrix of the top-m qubits of a normalized DD state.

    ``rho[p, q] = w_p conj(w_q) <subtree_q | subtree_p>``: thanks to
    norm-normalization, subtrees are unit vectors and the inner products
    come from the memoized DD kernel -- total cost is O(4**m * shared DD
    work), independent of 2**n.
    """
    prefixes = _prefix_subtrees(pkg, state, m)
    dim = 1 << m
    rho = np.zeros((dim, dim), dtype=np.complex128)
    for p in range(dim):
        w_p, node_p = prefixes[p]
        if node_p is None or w_p == 0:
            continue
        for q in range(p, dim):
            w_q, node_q = prefixes[q]
            if node_q is None or w_q == 0:
                continue
            # <suffix_q | suffix_p> with conjugation on q's side.
            if node_p is TERMINAL:
                overlap = 1.0 + 0j
            else:
                overlap = _inner(pkg, node_q, node_p)
            value = w_p * w_q.conjugate() * overlap
            rho[p, q] = value
            rho[q, p] = value.conjugate()
    # Guard against drift: rho of a normalized state has unit trace.
    trace = float(np.trace(rho).real)
    if trace > 0:
        rho /= trace
    return rho


def entanglement_entropy(
    pkg: DDPackage, state: Edge, cut: int, base: float = 2.0
) -> float:
    """Von Neumann entropy across the (top ``cut`` qubits | rest) split."""
    rho = reduced_density_top(pkg, state, cut)
    eigs = np.linalg.eigvalsh(rho)
    eigs = eigs[eigs > 1e-12]
    return float(-(eigs * (np.log(eigs) / math.log(base))).sum())


def schmidt_rank_profile(
    pkg: DDPackage, state: Edge, max_cut: int | None = None
) -> list[tuple[int, int, int]]:
    """Per-cut (cut, schmidt_rank, dd_width) triples.

    ``dd_width`` is the number of distinct DD nodes at the level just below
    the cut; the Schmidt rank across the cut can never exceed it (each
    node is one candidate Schmidt vector), which is precisely why
    irregular (highly entangled) states force wide DDs.
    """
    n = pkg.num_qubits
    cuts = range(1, (max_cut or (n - 1)) + 1)
    # DD width per level.
    width: dict[int, set[int]] = {}
    stack = [] if state.is_zero else [state.n]
    seen: set[int] = set()
    while stack:
        node = stack.pop()
        if node is TERMINAL or id(node) in seen:
            continue
        seen.add(id(node))
        width.setdefault(node.level, set()).add(id(node))
        for child in node.edges:
            if not child.is_zero:
                stack.append(child.n)
    profile = []
    for cut in cuts:
        rho = reduced_density_top(pkg, state, cut)
        rank = int(np.sum(np.linalg.eigvalsh(rho) > 1e-10))
        level_below = n - cut - 1
        dd_width = len(width.get(level_below, set()))
        profile.append((cut, rank, dd_width))
    return profile
