"""DD introspection and serialization: Graphviz export, statistics, edge walks.

``to_dot`` renders a decision diagram in the style the DD literature uses
(levels as ranks, edge weights as labels), which is invaluable when
debugging normalization or sharing issues.  ``dd_statistics`` summarizes
the structural properties the paper's analysis rests on: nodes per level,
sharing factor, and zero-edge density.

``serialize_vector_dd`` / ``deserialize_vector_dd`` are the exact
edge-walk round-trip used by :mod:`repro.resilience.snapshot`: a post-order
node list with ``float.hex`` weights, rebuilt through
:meth:`repro.dd.package.DDPackage.restore_vnode` so restored weights are
bit-identical to the serialized ones (no renormalization on the way back).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dd.node import TERMINAL, ZERO_EDGE, DDNode, Edge
from repro.dd.package import DDPackage

__all__ = [
    "to_dot",
    "dd_statistics",
    "DDStatistics",
    "serialize_vector_dd",
    "deserialize_vector_dd",
]

_ZERO_HEX = (0.0).hex()


def serialize_vector_dd(pkg: DDPackage, e: Edge) -> dict:
    """Serialize a vector DD to a JSON-safe document via a post-order walk.

    The document is ``{"nodes": [...], "root": [wre, wim, ref]}`` where each
    node row is ``[level, w0re, w0im, c0, w1re, w1im, c1, idx]``: weights as
    ``float.hex`` strings (exact round-trip), child references as indices
    into the ``nodes`` list with ``-1`` standing for the terminal (and for
    the ignored target of a zero edge).  Post-order guarantees every child
    reference points *backwards*, so deserialization is a single forward
    pass.  Sharing survives: a node reached along many paths is emitted
    once and referenced many times.  ``idx`` is the node's creation index:
    DD addition orders commutative operands by it, so restoring it keeps
    post-resume arithmetic bit-identical to the run that wrote the
    snapshot (see docs/RESILIENCE.md).
    """
    if e.is_zero:
        return {"nodes": [], "root": [_ZERO_HEX, _ZERO_HEX, -1]}

    nodes: list[list] = []
    index: dict[int, int] = {}

    def encode(child: Edge) -> tuple[str, str, int]:
        if child.is_zero:
            return (_ZERO_HEX, _ZERO_HEX, -1)
        ref = -1 if child.n is TERMINAL else index[id(child.n)]
        return (child.w.real.hex(), child.w.imag.hex(), ref)

    def visit(node: DDNode) -> None:
        if id(node) in index:
            return
        for child in node.edges:
            if not child.is_zero and child.n is not TERMINAL:
                visit(child.n)
        e0, e1 = node.edges
        w0re, w0im, c0 = encode(e0)
        w1re, w1im, c1 = encode(e1)
        index[id(node)] = len(nodes)
        nodes.append([node.level, w0re, w0im, c0, w1re, w1im, c1, node.idx])

    if e.n is not TERMINAL:
        visit(e.n)
    root_ref = -1 if e.n is TERMINAL else index[id(e.n)]
    return {
        "nodes": nodes,
        "root": [e.w.real.hex(), e.w.imag.hex(), root_ref],
    }


def deserialize_vector_dd(pkg: DDPackage, payload: dict) -> Edge:
    """Rebuild a vector DD from a :func:`serialize_vector_dd` document.

    Nodes are installed through :meth:`DDPackage.restore_vnode`, which
    hash-conses against the package's unique table without renormalizing,
    so the reconstructed DD carries bit-identical weights and is fully
    shared with (and usable by) any subsequent ``make_vnode`` calls.
    """

    def decode_w(wre: str, wim: str) -> complex:
        return complex(float.fromhex(wre), float.fromhex(wim))

    built: list[DDNode] = []

    def decode_edge(wre: str, wim: str, ref: int) -> Edge:
        w = decode_w(wre, wim)
        if w == 0:
            return ZERO_EDGE
        return Edge(w, TERMINAL if ref < 0 else built[ref])

    for level, w0re, w0im, c0, w1re, w1im, c1, idx in payload["nodes"]:
        e0 = decode_edge(w0re, w0im, int(c0))
        e1 = decode_edge(w1re, w1im, int(c1))
        built.append(pkg.restore_vnode(int(level), e0, e1, idx=int(idx)))

    wre, wim, ref = payload["root"]
    w = decode_w(wre, wim)
    if w == 0:
        return ZERO_EDGE
    return Edge(w, TERMINAL if int(ref) < 0 else built[int(ref)])


def _fmt_weight(w: complex) -> str:
    if w == 1:
        return ""
    if w.imag == 0:
        return f"{w.real:.4g}"
    if w.real == 0:
        return f"{w.imag:.4g}i"
    return f"{w.real:.3g}{w.imag:+.3g}i"


def to_dot(pkg: DDPackage, e: Edge, name: str = "dd") -> str:
    """Graphviz source for a vector or matrix DD.

    Nodes are grouped per level; zero edges are omitted; edge weights of 1
    are unlabeled (matching the paper's Figure 2 conventions).
    """
    lines = [
        f"digraph {name} {{",
        "  rankdir=TB;",
        '  node [shape=circle, fontsize=10];',
        '  terminal [shape=box, label="1"];',
    ]
    if e.is_zero:
        lines.append('  root [shape=point]; root -> terminal [label="0"];')
        lines.append("}")
        return "\n".join(lines)

    seen: dict[int, str] = {id(TERMINAL): "terminal"}
    order: list[DDNode] = []

    def visit(node: DDNode) -> None:
        if id(node) in seen:
            return
        seen[id(node)] = f"n{node.idx}"
        order.append(node)
        for child in node.edges:
            if not child.is_zero:
                visit(child.n)

    visit(e.n)
    by_level: dict[int, list[DDNode]] = {}
    for node in order:
        by_level.setdefault(node.level, []).append(node)
    for level in sorted(by_level, reverse=True):
        ids = "; ".join(seen[id(nd)] for nd in by_level[level])
        lines.append(f"  {{ rank=same; {ids}; }}")
    for node in order:
        label = f"q{node.level}"
        lines.append(f'  {seen[id(node)]} [label="{label}"];')
        for k, child in enumerate(node.edges):
            if child.is_zero:
                continue
            style = ""
            if node.is_matrix:
                i, j = divmod(k, 2)
                style = f' headlabel="{i}{j}"'
            weight = _fmt_weight(child.w)
            wlabel = f' label="{weight}"' if weight else ""
            lines.append(
                f"  {seen[id(node)]} -> {seen[id(child.n)]}"
                f" [{wlabel.strip()}{style}];"
            )
    root_label = _fmt_weight(e.w)
    lines.append('  root [shape=point];')
    lines.append(
        f'  root -> {seen[id(e.n)]}'
        + (f' [label="{root_label}"];' if root_label else ";")
    )
    lines.append("}")
    return "\n".join(lines)


@dataclass
class DDStatistics:
    """Structural summary of one DD."""

    total_nodes: int
    nodes_per_level: dict[int, int]
    edge_count: int
    zero_edge_count: int
    #: Paths / nodes: > 1 means structure is genuinely shared.
    sharing_factor: float
    #: Fraction of representable entries that are exactly zero paths.
    is_matrix: bool

    @property
    def max_width(self) -> int:
        return max(self.nodes_per_level.values(), default=0)


def dd_statistics(pkg: DDPackage, e: Edge) -> DDStatistics:
    """Collect the structural statistics of a DD (vector or matrix)."""
    if e.is_zero:
        return DDStatistics(0, {}, 0, 0, 0.0, False)
    seen: set[int] = set()
    per_level: dict[int, int] = {}
    edges = zeros = 0
    is_matrix = e.n.is_matrix
    stack = [e.n]
    # Paths counted with memoization (number of root-to-terminal paths).
    path_memo: dict[int, int] = {}

    def paths(node: DDNode) -> int:
        if node is TERMINAL:
            return 1
        cached = path_memo.get(id(node))
        if cached is not None:
            return cached
        total = sum(
            paths(child.n) for child in node.edges if not child.is_zero
        )
        path_memo[id(node)] = total
        return total

    while stack:
        node = stack.pop()
        if id(node) in seen or node is TERMINAL:
            continue
        seen.add(id(node))
        per_level[node.level] = per_level.get(node.level, 0) + 1
        for child in node.edges:
            edges += 1
            if child.is_zero:
                zeros += 1
            elif child.n is not TERMINAL:
                stack.append(child.n)
    total_paths = paths(e.n)
    return DDStatistics(
        total_nodes=len(seen),
        nodes_per_level=per_level,
        edge_count=edges,
        zero_edge_count=zeros,
        sharing_factor=total_paths / max(len(seen), 1),
        is_matrix=is_matrix,
    )
