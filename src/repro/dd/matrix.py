"""Matrix DDs: gate construction, Kronecker factors, dense export.

Gate DDs are built from per-level 2x2 factors (a Kronecker product built
bottom-up through the unique table) plus the controlled-gate identity

    C(U) = I  +  P1(controls) (x) (U - I)(targets) (x) I(elsewhere)

which handles any number of controls, and a 2x2-block decomposition for
arbitrary two-qubit matrices.  This covers every gate in
:mod:`repro.circuits.gates` exactly, with full node sharing.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import DDError
from repro.dd.node import TERMINAL, ZERO_EDGE, DDNode, Edge
from repro.dd.operations import identity_extend, madd, mm_multiply, scale
from repro.dd.package import DDPackage

__all__ = [
    "matrix_from_factors",
    "single_qubit_gate",
    "two_qubit_gate",
    "controlled_gate",
    "matrix_to_dense",
    "matrix_entry",
    "matrix_node_count",
]

_I2 = np.eye(2, dtype=np.complex128)
_P1 = np.array([[0, 0], [0, 1]], dtype=np.complex128)


def matrix_from_factors(pkg: DDPackage, factors: list[np.ndarray]) -> Edge:
    """Build ``factors[k-1] (x) ... (x) factors[0]`` as a matrix DD.

    ``factors[k]`` is the 2x2 matrix acting on qubit ``k``.  Built bottom-up
    so identical tails share nodes (an identity tail is a single chain).
    Fewer than ``num_qubits`` factors builds an identity-skipped (windowed)
    DD whose root sits at level ``len(factors) - 1``; levels above it are
    implicit identity.
    """
    if not 1 <= len(factors) <= pkg.num_qubits:
        raise DDError(
            f"need 1..{pkg.num_qubits} factors, got {len(factors)}"
        )
    e = pkg.one_edge()
    for level, f in enumerate(factors):
        f = np.asarray(f, dtype=np.complex128)
        if f.shape != (2, 2):
            raise DDError(f"factor at level {level} is not 2x2: {f.shape}")
        edges = []
        for i in (0, 1):
            for j in (0, 1):
                edges.append(pkg.edge(f[i, j] * e.w, e.n))
        e = pkg.make_mnode(level, edges)
        if e.is_zero:
            return ZERO_EDGE
    return e


def single_qubit_gate(
    pkg: DDPackage, u: np.ndarray, target: int, top: int | None = None
) -> Edge:
    """DD of ``I (x) ... (x) U_target (x) ... (x) I``.

    Built directly on the package's memoized identity chain, so only the
    target node and the pass-through nodes above it are (re)constructed.
    ``top`` is the root level; the default is full height, ``top=target``
    builds the identity-skipped window (no pass-through levels at all).
    """
    _check_qubit(pkg, target)
    top = _resolve_top(pkg, top, target)
    u = np.asarray(u, dtype=np.complex128)
    if u.shape != (2, 2):
        raise DDError(f"single-qubit gate matrix must be 2x2: {u.shape}")
    below = pkg.identity_edge(target - 1)
    e = pkg.make_mnode(
        target,
        tuple(
            pkg.edge(u[i, j] * below.w, below.n)
            for i in (0, 1)
            for j in (0, 1)
        ),
    )
    return identity_extend(pkg, e, top)


def two_qubit_gate(
    pkg: DDPackage,
    u: np.ndarray,
    q_high: int,
    q_low: int,
    top: int | None = None,
) -> Edge:
    """DD of an arbitrary 4x4 ``u`` acting on qubits ``(q_high, q_low)``.

    ``u`` is indexed so that the *first* qubit of its 2-bit index is
    ``q_high`` (the more significant of the pair in the state index).
    Decomposes ``u`` into its four 2x2 blocks:
    ``u = sum_ij |i><j|_high (x) B_ij_low``.  ``top`` is the root level
    (default full height; ``max(q_high, q_low)`` for the skipped window).
    """
    _check_qubit(pkg, q_high)
    _check_qubit(pkg, q_low)
    if q_high == q_low:
        raise DDError("two-qubit gate needs two distinct qubits")
    top = _resolve_top(pkg, top, max(q_high, q_low))
    u = np.asarray(u, dtype=np.complex128)
    if u.shape != (4, 4):
        raise DDError(f"two-qubit gate matrix must be 4x4, got {u.shape}")
    win = max(q_high, q_low)
    total = ZERO_EDGE
    for i in (0, 1):
        for j in (0, 1):
            block = u[2 * i:2 * i + 2, 2 * j:2 * j + 2]
            if not block.any():
                continue
            outer = np.zeros((2, 2), dtype=np.complex128)
            outer[i, j] = 1.0
            factors = [_I2] * (win + 1)
            factors[q_high] = outer
            factors[q_low] = block
            total = madd(pkg, total, matrix_from_factors(pkg, factors))
    return identity_extend(pkg, total, top)


def controlled_gate(
    pkg: DDPackage,
    u: np.ndarray,
    targets: tuple[int, ...],
    controls: tuple[int, ...],
    top: int | None = None,
) -> Edge:
    """DD of ``u`` on ``targets``, applied when all ``controls`` are |1>.

    ``u`` is 2x2 for one target or 4x4 for two (``targets[0]`` is the more
    significant index bit of ``u``).  Uses
    ``C(U) = I + P1(controls) (x) (U - I)(targets)``, so any control count
    works (CCX is ``controls=(c1, c2)``).  ``top`` is the root level
    (default full height; the max active qubit for the skipped window).
    """
    for q in (*targets, *controls):
        _check_qubit(pkg, q)
    if set(targets) & set(controls):
        raise DDError("target and control qubits overlap")
    if len(set(targets)) != len(targets) or len(set(controls)) != len(controls):
        raise DDError("duplicate qubits in gate specification")
    u = np.asarray(u, dtype=np.complex128)
    if not controls:
        if len(targets) == 1:
            return single_qubit_gate(pkg, u, targets[0], top=top)
        if len(targets) == 2:
            return two_qubit_gate(pkg, u, targets[0], targets[1], top=top)
        raise DDError("only 1- and 2-qubit target blocks are supported")

    win = max(*targets, *controls)
    top = _resolve_top(pkg, top, win)
    dim = 1 << len(targets)
    if u.shape != (dim, dim):
        raise DDError(
            f"matrix shape {u.shape} does not match {len(targets)} targets"
        )
    diff = u - np.eye(dim, dtype=np.complex128)
    identity = pkg.identity_edge(win)
    if len(targets) == 1:
        terms = [(diff, None)]
    else:
        terms = []
        for i in (0, 1):
            for j in (0, 1):
                block = diff[2 * i:2 * i + 2, 2 * j:2 * j + 2]
                if block.any():
                    outer = np.zeros((2, 2), dtype=np.complex128)
                    outer[i, j] = 1.0
                    terms.append((block, outer))
    total = identity
    for block, outer in terms:
        factors = [_I2] * (win + 1)
        for c in controls:
            factors[c] = _P1
        if outer is None:
            factors[targets[0]] = block
        else:
            factors[targets[0]] = outer
            factors[targets[1]] = block
        total = madd(pkg, total, matrix_from_factors(pkg, factors))
    return identity_extend(pkg, total, top)


def _resolve_top(pkg: DDPackage, top: int | None, window_top: int) -> int:
    """Validate/resolve a requested root level (default: full height)."""
    if top is None:
        return pkg.num_qubits - 1
    if not window_top <= top < pkg.num_qubits:
        raise DDError(
            f"root level {top} outside [{window_top}, {pkg.num_qubits - 1}]"
        )
    return top


def matrix_to_dense(pkg: DDPackage, e: Edge, num_qubits: int | None = None) -> np.ndarray:
    """Expand a matrix DD to a dense ``2**n x 2**n`` numpy array (tests)."""
    n = pkg.num_qubits if num_qubits is None else num_qubits
    dim = 1 << n
    out = np.zeros((dim, dim), dtype=np.complex128)
    if e.is_zero:
        return out
    memo: dict[int, np.ndarray] = {}

    def subtree(node: DDNode) -> np.ndarray:
        if node is TERMINAL:
            return np.ones((1, 1), dtype=np.complex128)
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        half = 1 << node.level
        arr = np.zeros((2 * half, 2 * half), dtype=np.complex128)
        for k, child in enumerate(node.edges):
            if child.is_zero:
                continue
            i, j = divmod(k, 2)
            arr[i * half:(i + 1) * half, j * half:(j + 1) * half] = (
                child.w * subtree(child.n)
            )
        memo[id(node)] = arr
        return arr

    if e.n.level != n - 1:
        raise DDError(f"root level {e.n.level} does not match {n} qubits")
    out[:] = e.w * subtree(e.n)
    return out


def matrix_entry(pkg: DDPackage, e: Edge, row: int, col: int) -> complex:
    """Single entry M[row][col]: weight product along one path (Fig. 2a)."""
    if e.is_zero:
        return 0j
    w = e.w
    node = e.n
    while node is not TERMINAL:
        i = (row >> node.level) & 1
        j = (col >> node.level) & 1
        child = node.edges[2 * i + j]
        if child.is_zero:
            return 0j
        w *= child.w
        node = child.n
    return w


def matrix_node_count(e: Edge) -> int:
    """Unique non-terminal node count of a matrix DD."""
    from repro.dd.vector import node_count

    return node_count(e)


def _check_qubit(pkg: DDPackage, q: int) -> None:
    if not 0 <= q < pkg.num_qubits:
        raise DDError(
            f"qubit {q} out of range for {pkg.num_qubits}-qubit package"
        )
