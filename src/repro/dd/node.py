"""Decision-diagram nodes and edges (QMDD substrate, Section 2.2).

A DD is a DAG of hash-consed nodes.  Vector nodes have two outgoing edges
(sub-vectors for qubit value 0 / 1); matrix nodes have four (the 2x2 block
partition, row-major: ``e[0]=e00, e[1]=e01, e[2]=e10, e[3]=e11``).  Every
edge carries a complex weight; the value of an amplitude / matrix entry is
the product of edge weights along the corresponding root-to-terminal path
(Figure 2 of the paper).

Levels: qubit ``k`` lives at level ``k``; the terminal sits at level -1.
DDs here are *full height* -- every root-to-terminal path visits every level
-- which is what the paper's Assign/Run recursions assume.
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["DDNode", "Edge", "TERMINAL", "ZERO_EDGE", "ONE_EDGE"]


class DDNode:
    """A hash-consed DD node.

    Instances must only be created through :class:`repro.dd.package.DDPackage`
    so that structurally identical nodes are the same object (canonicity).
    Vector nodes carry 2 edges, matrix nodes 4; the terminal carries none.
    """

    __slots__ = ("level", "edges", "idx", "aidx")

    def __init__(self, level: int, edges: Tuple["Edge", ...], idx: int) -> None:
        self.level = level
        self.edges = edges
        self.idx = idx
        #: Index into the owning package's flat node arena (vector nodes
        #: only; -1 for matrix nodes and the terminal).  The arena powers
        #: the gather-based conversion sweep.
        self.aidx = -1

    @property
    def is_terminal(self) -> bool:
        return self.level < 0

    @property
    def is_vector(self) -> bool:
        return len(self.edges) == 2

    @property
    def is_matrix(self) -> bool:
        return len(self.edges) == 4

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_terminal:
            return "<terminal>"
        kind = "V" if self.is_vector else "M"
        return f"<{kind}Node idx={self.idx} level={self.level}>"


class Edge:
    """A weighted edge pointing at a DD node.

    Weights are canonicalized through the owning package's complex table, so
    two edges are interchangeable iff ``a.w == b.w and a.n is b.n``.
    """

    __slots__ = ("w", "n")

    def __init__(self, w: complex, n: DDNode) -> None:
        self.w = w
        self.n = n

    @property
    def is_zero(self) -> bool:
        """True for the canonical zero edge (weight 0 on the terminal)."""
        return self.w == 0

    @property
    def is_terminal(self) -> bool:
        return self.n.level < 0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Edge) and self.w == other.w and self.n is other.n
        )

    def __hash__(self) -> int:
        return hash((self.w, id(self.n)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Edge({self.w!r}, {self.n!r})"


#: The unique terminal node shared by every DD of every package instance.
#: (Sharing it across packages is safe: it is immutable and edge-free.)
TERMINAL = DDNode(level=-1, edges=(), idx=0)

#: Canonical zero edge: weight 0 on the terminal.  Any operation producing a
#: zero-weight result must return this exact object.
ZERO_EDGE = Edge(0j, TERMINAL)

#: Weight-1 edge on the terminal (the scalar 1).
ONE_EDGE = Edge(1 + 0j, TERMINAL)
