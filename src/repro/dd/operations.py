"""DD arithmetic: addition, matrix-vector and matrix-matrix multiplication.

These are the classic QMDD operations [86, 98, 99] the paper builds on:

* ``vadd`` / ``madd`` -- pointwise addition of two vector / matrix DDs.
* ``mv_multiply`` -- DD gate application (Section 2.2): a depth-first
  recursion where each matrix node meets its vector counterpart on the same
  level, with a compute table so identical sub-multiplications run once.
* ``mm_multiply`` -- DDMM, used by gate construction and gate fusion
  (Section 3.3).

All operations factor edge weights out of the cache keys wherever the
operation's bilinearity allows, which is what gives DDs their sub-linear
behaviour on regular structures.
"""

from __future__ import annotations

from repro.common.errors import DDError
from repro.dd.analysis import is_identity
from repro.dd.node import ONE_EDGE, TERMINAL, ZERO_EDGE, DDNode, Edge
from repro.dd.package import DDPackage

__all__ = [
    "vadd",
    "madd",
    "mv_multiply",
    "mm_multiply",
    "scale",
    "identity_extend",
    "inner_product",
    "norm",
]


def identity_extend(pkg: DDPackage, e: Edge, top: int) -> Edge:
    """Identity-extend a matrix edge so its root sits at level ``top``.

    Wraps the edge in weight-1 pass-through nodes ``(e, 0, 0, e)`` level
    by level.  Each wrapper normalizes to exactly-1 child weights (the
    normalization factor of a ``(x, 0, 0, x)`` node is ``x.w`` itself),
    so the wrapped DD is bit-identical to building the same gate at full
    height; this is what lets windowed and full-height gate DDs share
    their window subtree.
    """
    if e.is_zero:
        return e
    while (e.n is TERMINAL and top >= 0) or (
        e.n is not TERMINAL and e.n.level < top
    ):
        lv = 0 if e.n is TERMINAL else e.n.level + 1
        sub = Edge(1.0, e.n)
        wrap = pkg.make_mnode(lv, (sub, ZERO_EDGE, ZERO_EDGE, sub))
        e = pkg.raw_edge(e.w * wrap.w, wrap.n)
    return e


def scale(pkg: DDPackage, e: Edge, s: complex) -> Edge:
    """Scalar multiple of a DD: ``s * e`` (weights live on the root edge)."""
    if e.is_zero:
        return ZERO_EDGE
    return pkg.raw_edge(e.w * s, e.n)


# ---------------------------------------------------------------------------
# Addition
# ---------------------------------------------------------------------------

def vadd(pkg: DDPackage, a: Edge, b: Edge) -> Edge:
    """Sum of two vector DDs over the same levels."""
    return _add(pkg, a, b, pkg.cache_vadd, _vnode_from_children)


def madd(pkg: DDPackage, a: Edge, b: Edge) -> Edge:
    """Sum of two matrix DDs over the same levels."""
    return _add(pkg, a, b, pkg.cache_madd, _mnode_from_children)


def _vnode_from_children(pkg: DDPackage, level: int, children: list[Edge]) -> Edge:
    return pkg.make_vnode(level, children[0], children[1])


def _mnode_from_children(pkg: DDPackage, level: int, children: list[Edge]) -> Edge:
    return pkg.make_mnode(level, children)


def _add(pkg, a: Edge, b: Edge, cache: dict, make) -> Edge:
    if a.is_zero:
        return b
    if b.is_zero:
        return a
    if a.n is b.n:
        # Same (canonical) structure: the sum is a weight add on one edge.
        # Shared identity chains below a gate window hit this on every
        # level, making madd over the untouched tail O(1).
        pkg.stats.add_same_node += 1
        return pkg.raw_edge(a.w + b.w, a.n)
    # a + b == a.w * (n_a + (b.w / a.w) * n_b): cache on (n_a, n_b, ratio) so
    # hits are invariant under common rescaling.  Order operands for the
    # commutative case to double the hit rate.
    if a.n.idx > b.n.idx:
        a, b = b, a
    ratio = b.w / a.w
    # The cache key uses the bucketed ratio; arithmetic uses the raw one
    # so no absolute-grid rounding leaks into computed weights.
    key = (id(a.n), id(b.n), pkg.weight(ratio))
    hit = cache.get(key)
    if hit is not None:
        pkg.stats.compute_hits += 1
        return pkg.raw_edge(a.w * hit.w, hit.n)
    pkg.stats.compute_misses += 1
    if a.n is TERMINAL:
        if b.n is not TERMINAL:
            raise DDError("level mismatch in DD addition")
        rel = pkg.raw_edge(1 + ratio, TERMINAL)
    else:
        if a.n.level != b.n.level:
            raise DDError(
                f"level mismatch in DD addition: {a.n.level} vs {b.n.level}"
            )
        children = []
        for ea, eb in zip(a.n.edges, b.n.edges):
            eb_scaled = pkg.raw_edge(eb.w * ratio, eb.n)
            children.append(_add(pkg, ea, eb_scaled, cache, make))
        rel = make(pkg, a.n.level, children)
    cache[key] = rel
    return pkg.raw_edge(a.w * rel.w, rel.n)


# ---------------------------------------------------------------------------
# Matrix-vector multiplication (DD gate application)
# ---------------------------------------------------------------------------

def mv_multiply(pkg: DDPackage, m: Edge, v: Edge) -> Edge:
    """Apply matrix DD ``m`` to vector DD ``v`` (``m @ v``)."""
    if m.is_zero or v.is_zero:
        return ZERO_EDGE
    rel = _mv(pkg, m.n, v.n)
    return pkg.raw_edge(m.w * v.w * rel.w, rel.n)


def _mv(pkg: DDPackage, mn: DDNode, vn: DDNode) -> Edge:
    if mn is TERMINAL and vn is TERMINAL:
        return ONE_EDGE
    # Identity rule: an identity block leaves the vector untouched with an
    # exact 1.0 weight -- no node creation, no compute-table entry.  This
    # also covers a matrix DD whose root sits *below* the vector root
    # (an identity-skipped gate whose active window ends early), and must
    # run before the pass-through rule so full identity chains take the
    # O(1) exit in both the windowed and full-height representations.
    if is_identity(pkg, mn):
        pkg.stats.identity_mv_skips += 1
        return pkg.raw_edge(1.0, vn)
    if vn is TERMINAL or mn.level > vn.level:
        raise DDError(
            "level mismatch in mv: matrix "
            f"{-1 if mn is TERMINAL else mn.level} vs vector "
            f"{-1 if vn is TERMINAL else vn.level}"
        )
    key = (id(mn), id(vn))
    hit = pkg.cache_mv.get(key)
    if hit is not None:
        pkg.stats.compute_hits += 1
        return hit
    pkg.stats.compute_misses += 1
    if mn.level < vn.level:
        # Lift rule: the matrix acts as identity on this vector level (the
        # gate DD spans only its active window).  Descend the vector
        # structurally; arithmetic is bit-identical to recursing through
        # an explicit weight-1 pass-through chain because ``1.0 * x == x``.
        pkg.stats.identity_lift_steps += 1
        children = []
        for ev in vn.edges:
            if ev.is_zero:
                children.append(ZERO_EDGE)
            else:
                rel = _mv(pkg, mn, ev.n)
                children.append(pkg.raw_edge(ev.w * rel.w, rel.n))
        result = pkg.make_vnode(vn.level, children[0], children[1])
    else:
        e00, e01, e10, e11 = mn.edges
        if (
            e01.is_zero
            and e10.is_zero
            and e00.w == 1
            and e11.w == 1
            and e00.n is e11.n
        ):
            # Pass-through rule: an explicit weight-1 diagonal level
            # (e.g. a full-height wrapper around a gate window) scales
            # nothing -- skip the child multiplies and adds entirely.
            pkg.stats.identity_passthrough_skips += 1
            children = []
            for ev in vn.edges:
                if ev.is_zero:
                    children.append(ZERO_EDGE)
                else:
                    rel = _mv(pkg, e00.n, ev.n)
                    children.append(pkg.raw_edge(ev.w * rel.w, rel.n))
            result = pkg.make_vnode(vn.level, children[0], children[1])
        else:
            children = []
            for i in (0, 1):
                # (M v)_i = M_i0 v_0 + M_i1 v_1 on the 2x2 block partition.
                p0 = _mv_edge(pkg, mn.edges[2 * i], vn.edges[0])
                p1 = _mv_edge(pkg, mn.edges[2 * i + 1], vn.edges[1])
                children.append(vadd(pkg, p0, p1))
            result = pkg.make_vnode(mn.level, children[0], children[1])
    pkg.cache_mv[key] = result
    return result


def _mv_edge(pkg: DDPackage, m: Edge, v: Edge) -> Edge:
    if m.is_zero or v.is_zero:
        return ZERO_EDGE
    rel = _mv(pkg, m.n, v.n)
    return pkg.raw_edge(m.w * v.w * rel.w, rel.n)


# ---------------------------------------------------------------------------
# Matrix-matrix multiplication (DDMM, used for gate fusion)
# ---------------------------------------------------------------------------

def mm_multiply(pkg: DDPackage, a: Edge, b: Edge) -> Edge:
    """Matrix product of two matrix DDs (``a @ b``)."""
    if a.is_zero or b.is_zero:
        return ZERO_EDGE
    rel = _mm(pkg, a.n, b.n)
    return pkg.raw_edge(a.w * b.w * rel.w, rel.n)


def _mm(pkg: DDPackage, an: DDNode, bn: DDNode) -> Edge:
    if an is TERMINAL and bn is TERMINAL:
        return ONE_EDGE
    # Identity rules: I @ B == B and A @ I == A with exact 1.0 weights.
    # Fusion seeds its accumulator with a full identity chain, so the
    # first DDMM of every fused group takes this exit instead of walking
    # the whole chain; identity tails below a gate window exit level by
    # level the same way.
    if is_identity(pkg, an):
        pkg.stats.identity_mm_skips += 1
        return pkg.raw_edge(1.0, bn)
    if is_identity(pkg, bn):
        pkg.stats.identity_mm_skips += 1
        return pkg.raw_edge(1.0, an)
    if an is TERMINAL or bn is TERMINAL:
        raise DDError("level mismatch in DD matrix-matrix multiply")
    key = (id(an), id(bn))
    hit = pkg.cache_mm.get(key)
    if hit is not None:
        pkg.stats.compute_hits += 1
        return hit
    pkg.stats.compute_misses += 1
    if an.level != bn.level:
        # Lift rule: the shorter (identity-skipped) operand acts as
        # identity on the taller one's extra levels -- ``(I (x) A) @ B``
        # has blocks ``A @ B_ij`` and symmetrically for ``A @ (I (x) B)``.
        # Bit-identical to recursing through a weight-1 wrapper chain.
        pkg.stats.identity_lift_steps += 1
        lo_is_a = an.level < bn.level
        tall = bn if lo_is_a else an
        children = []
        for e in tall.edges:
            if e.is_zero:
                children.append(ZERO_EDGE)
            else:
                rel = (
                    _mm(pkg, an, e.n) if lo_is_a else _mm(pkg, e.n, bn)
                )
                # A nested identity shortcut can return a root below this
                # node's child level; re-extend so children stay contiguous.
                rel = identity_extend(pkg, rel, tall.level - 1)
                children.append(pkg.raw_edge(e.w * rel.w, rel.n))
        result = pkg.make_mnode(tall.level, children)
    else:
        children = []
        for i in (0, 1):
            for j in (0, 1):
                # C_ij = A_i0 B_0j + A_i1 B_1j on the 2x2 block partition.
                p0 = _mm_edge(pkg, an.edges[2 * i], bn.edges[j])
                p1 = _mm_edge(pkg, an.edges[2 * i + 1], bn.edges[2 + j])
                children.append(madd(pkg, p0, p1))
        result = pkg.make_mnode(an.level, children)
    pkg.cache_mm[key] = result
    return result


def _mm_edge(pkg: DDPackage, a: Edge, b: Edge) -> Edge:
    if a.is_zero or b.is_zero:
        return ZERO_EDGE
    rel = _mm(pkg, a.n, b.n)
    return pkg.raw_edge(a.w * b.w * rel.w, rel.n)


# ---------------------------------------------------------------------------
# Inner products and norms
# ---------------------------------------------------------------------------

def inner_product(pkg: DDPackage, a: Edge, b: Edge) -> complex:
    """``<a|b>`` of two vector DDs over the same levels.

    Recursive with memoization on node pairs: shared structure makes this
    far cheaper than expanding either vector.  Conjugation applies to
    ``a``'s weights.
    """
    if a.is_zero or b.is_zero:
        return 0j
    rel = _inner(pkg, a.n, b.n)
    return complex(a.w.conjugate() * b.w * rel)


def _inner(pkg: DDPackage, an: DDNode, bn: DDNode) -> complex:
    if an is TERMINAL:
        if bn is not TERMINAL:
            raise DDError("level mismatch in DD inner product")
        return 1.0 + 0j
    if an.level != bn.level:
        raise DDError(
            f"level mismatch in inner product: {an.level} vs {bn.level}"
        )
    key = (id(an), id(bn))
    hit = pkg.cache_inner.get(key)
    if hit is not None:
        pkg.stats.compute_hits += 1
        return hit
    pkg.stats.compute_misses += 1
    total = 0j
    for ea, eb in zip(an.edges, bn.edges):
        if ea.is_zero or eb.is_zero:
            continue
        total += ea.w.conjugate() * eb.w * _inner(pkg, ea.n, eb.n)
    pkg.cache_inner[key] = total
    return total


def norm(pkg: DDPackage, a: Edge) -> float:
    """2-norm of a vector DD (sqrt of <a|a>)."""
    value = inner_product(pkg, a, a)
    return float(abs(value)) ** 0.5
