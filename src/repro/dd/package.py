"""The DD package: unique tables, normalization, and node factories.

Everything that creates a node goes through :class:`DDPackage` so that

* structurally identical sub-DDs are shared (hash-consing via unique tables),
* edge weights are canonical (via the complex table), and
* normalization makes the representation unique (Section 2.2: "the weights
  are uniquely decided by normalization").

Normalization rules (matching DDSIM / the paper's Figure 2):

* **Vector nodes** are normalized so the squared magnitudes of the two
  outgoing weights sum to 1 and the first non-zero outgoing weight is real
  positive.  The factored-out norm-and-phase becomes the incoming weight --
  this is why the incoming weights of ``v2``/``v3`` in Figure 2b are 1/sqrt(2).
* **Matrix nodes** are normalized by dividing all four outgoing weights by
  the first outgoing weight of maximal magnitude, which becomes exactly 1 --
  this is why H's root in Figure 2a has incoming weight 1/sqrt(2) and
  children (1, 1, 1, -1).
"""

from __future__ import annotations

import math
from typing import Callable, Iterable

from repro.common.config import TOLERANCE
from repro.common.errors import DDError
from repro.dd.complextable import ComplexTable
from repro.dd.node import ONE_EDGE, TERMINAL, ZERO_EDGE, DDNode, Edge

__all__ = ["DDPackage", "PackageStats"]


def _trim(d: dict, size: int) -> None:
    """Pop a dict back to ``size`` entries (LIFO insertion order)."""
    while len(d) > size:
        d.popitem()


class PackageStats:
    """Always-on package counters (plain ints; no locking, no timers).

    Updated inline by the unique tables, the compute-table lookups in
    :mod:`repro.dd.operations`, and garbage collection.  The cost of an
    int increment is negligible next to the dict operation it annotates,
    so these run unconditionally; ``repro.obs`` snapshots them into
    ``SimulationResult.metadata["obs"]``.
    """

    __slots__ = (
        "unique_hits",
        "unique_misses",
        "compute_hits",
        "compute_misses",
        "gc_runs",
        "gc_nodes_reclaimed",
        "identity_mv_skips",
        "identity_mm_skips",
        "identity_passthrough_skips",
        "identity_lift_steps",
        "add_same_node",
    )

    def __init__(self) -> None:
        #: Unique-table lookups that found an existing node (hash-consing).
        self.unique_hits = 0
        #: Unique-table lookups that had to create a node.
        self.unique_misses = 0
        #: Compute-table (vadd/madd/mv/mm/inner) memoization hits.
        self.compute_hits = 0
        #: Compute-table misses (sub-operations actually evaluated).
        self.compute_misses = 0
        #: Mark-and-sweep collections performed.
        self.gc_runs = 0
        #: Total nodes reclaimed across all collections.
        self.gc_nodes_reclaimed = 0
        #: mv/mm recursions that exited via the O(1) identity rule.
        self.identity_mv_skips = 0
        self.identity_mm_skips = 0
        #: Weight-1 diagonal levels crossed without child multiplies/adds.
        self.identity_passthrough_skips = 0
        #: Levels where a shorter (identity-skipped) operand descended the
        #: taller one structurally instead of via explicit identity nodes.
        self.identity_lift_steps = 0
        #: DD additions collapsed to a weight add on one shared node.
        self.add_same_node = 0

    def as_dict(self) -> dict:
        """Plain-dict snapshot of all counters."""
        return {name: getattr(self, name) for name in self.__slots__}


class DDPackage:
    """Owner of all DD state: unique tables, complex table, compute caches.

    A package is parameterized by the number of qubits ``n`` it serves;
    levels run from 0 (bottom) to ``n - 1`` (root).
    """

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise DDError(f"need at least 1 qubit, got {num_qubits}")
        self.num_qubits = num_qubits
        self.stats = PackageStats()
        self.ctable = ComplexTable()
        #: Monotonic garbage-collection epoch.  Bumped by every
        #: :meth:`collect_garbage` (and hence :meth:`checkpoint_barrier`).
        #: Consumers that key long-lived state by ``id(node)`` -- the DMAV
        #: plan cache in :mod:`repro.core.plan` -- compare epochs to detect
        #: that node identities may have been swept (and ids recycled) and
        #: must drop their derived state.
        self.gc_epoch = 0
        # Unique tables, keyed by the node's structural signature.
        self._vtable: dict[tuple, DDNode] = {}
        self._mtable: dict[tuple, DDNode] = {}
        # Compute tables (operation memoization, Section 2.2: "identical
        # matrix-vector multiplications are avoided using hash tables").
        self.cache_vadd: dict[tuple, Edge] = {}
        self.cache_madd: dict[tuple, Edge] = {}
        self.cache_mv: dict[tuple, Edge] = {}
        self.cache_mm: dict[tuple, Edge] = {}
        self.cache_inner: dict[tuple, complex] = {}
        # Memoized identity chains: level -> edge of I on levels [0..level].
        self._identity: dict[int, Edge] = {}
        # Dense-block cache for the vectorized kernels: node -> ndarray of
        # the node's (normalized) subtree.  Keyed by id(node).
        self.dense_cache: dict[int, object] = {}
        # Memoized per-node analysis flags (keyed by id(node)).
        self.identity_flags: dict[int, bool] = {}
        self.mac_counts: dict[int, int] = {}
        # Kronecker-collapse cache: node -> (diag weights, base node) for
        # subtrees of the form diag(d) (x) M_base (see repro.dd.analysis).
        self.kron_cache: dict[int, object] = {}
        self._next_idx = 1
        self._nodes_created = 0
        self._peak_nodes = 0
        # Flat node arena for vector nodes: per-node child weights and
        # child arena indices (-1 = zero edge / terminal).  These power the
        # gather-based DD-to-array sweep: a whole DD level descends with a
        # handful of numpy gathers instead of per-node Python.
        self._arena_w0: list[complex] = []
        self._arena_w1: list[complex] = []
        self._arena_c0: list[int] = []
        self._arena_c1: list[int] = []
        self._arena_cache: tuple | None = None

    # ------------------------------------------------------------------
    # Weight canonicalization
    # ------------------------------------------------------------------

    def weight(self, w: complex) -> complex:
        """Canonicalize a weight through the complex table."""
        return self.ctable.lookup(w)

    def edge(self, w: complex, n: DDNode) -> Edge:
        """Build an edge with a canonical weight (zero collapses fully).

        Only use for weights of O(1) magnitude (node contents, cache-key
        ratios): the complex table buckets on an *absolute* grid, so
        canonicalizing a tiny weight would destroy its relative precision.
        Use :meth:`raw_edge` for returned/accumulated weights.
        """
        w = self.ctable.lookup(w)
        if w == 0:
            return ZERO_EDGE
        return Edge(w, n)

    @staticmethod
    def raw_edge(w: complex, n: DDNode) -> Edge:
        """Edge with an un-bucketed weight (zero still collapses)."""
        if abs(w.real) < TOLERANCE and abs(w.imag) < TOLERANCE:
            return ZERO_EDGE
        return Edge(w, n)

    # ------------------------------------------------------------------
    # Node factories (normalizing)
    # ------------------------------------------------------------------

    def make_vnode(self, level: int, e0: Edge, e1: Edge) -> Edge:
        """Create/reuse a normalized vector node; return its incoming edge."""
        self._check_level(level, e0, e1)
        if e0.is_zero and e1.is_zero:
            return ZERO_EDGE
        w0, w1 = e0.w, e1.w
        norm = math.sqrt(abs(w0) ** 2 + abs(w1) ** 2)
        lead = w0 if w0 != 0 else w1
        # Child weights come from the *raw* factor and are O(1), so their
        # canonicalization is relatively precise; the returned factor stays
        # un-bucketed (absolute-grid bucketing of an arbitrary-magnitude
        # weight would destroy relative precision and break canonicity).
        factor = norm * (lead / abs(lead))
        if norm < TOLERANCE:
            return ZERO_EDGE
        c0 = self.edge(w0 / factor, e0.n)
        c1 = self.edge(w1 / factor, e1.n)
        key = (level, c0.w, id(c0.n), c1.w, id(c1.n))
        node = self._vtable.get(key)
        if node is None:
            self.stats.unique_misses += 1
            node = self._new_node(level, (c0, c1))
            self._vtable[key] = node
            node.aidx = len(self._arena_w0)
            self._arena_w0.append(c0.w)
            self._arena_w1.append(c1.w)
            self._arena_c0.append(-1 if c0.is_zero else c0.n.aidx)
            self._arena_c1.append(-1 if c1.is_zero else c1.n.aidx)
            # vector_tables() detects staleness by size; no invalidation
            # needed (the arena is append-only).
        else:
            self.stats.unique_hits += 1
        return Edge(factor, node)

    def make_mnode(self, level: int, edges: Iterable[Edge]) -> Edge:
        """Create/reuse a normalized matrix node; return its incoming edge."""
        es = tuple(edges)
        if len(es) != 4:
            raise DDError(f"matrix node needs 4 edges, got {len(es)}")
        self._check_level(level, *es)
        if all(e.is_zero for e in es):
            return ZERO_EDGE
        max_mag = max(abs(e.w) for e in es)
        factor = next(
            e.w for e in es if abs(e.w) >= max_mag * (1.0 - TOLERANCE)
        )
        cs = tuple(self.edge(e.w / factor, e.n) for e in es)
        key = (level, cs[0].w, id(cs[0].n), cs[1].w, id(cs[1].n),
               cs[2].w, id(cs[2].n), cs[3].w, id(cs[3].n))
        node = self._mtable.get(key)
        if node is None:
            self.stats.unique_misses += 1
            node = self._new_node(level, cs)
            self._mtable[key] = node
        else:
            self.stats.unique_hits += 1
        return Edge(factor, node)

    def restore_vnode(
        self, level: int, e0: Edge, e1: Edge, idx: int | None = None
    ) -> DDNode:
        """Install an *already normalized* vector node without renormalizing.

        Checkpoint restore (:mod:`repro.resilience.snapshot`) must rebuild a
        DD whose child weights are bit-identical to the serialized ones;
        running them back through :meth:`make_vnode` would recompute the
        norm factor and could perturb the last ulp.  The caller guarantees
        the children came from a previous :meth:`make_vnode` normalization,
        so installing them verbatim keeps the unique table canonical and
        subsequent ``make_vnode`` calls hash-cons against the restored
        nodes as usual.

        ``idx`` restores the node's original creation index: DD addition
        breaks commutative-operand ties by creation order, so resumed
        arithmetic must see the same relative order the writer saw.  The
        package's creation counter advances past every restored index.
        """
        self._check_level(level, e0, e1)
        key = (level, e0.w, id(e0.n), e1.w, id(e1.n))
        node = self._vtable.get(key)
        if node is None:
            self.stats.unique_misses += 1
            node = self._new_node(level, (e0, e1))
            if idx is not None:
                node.idx = idx
                self._next_idx = max(self._next_idx, idx + 1)
            self._vtable[key] = node
            node.aidx = len(self._arena_w0)
            self._arena_w0.append(e0.w)
            self._arena_w1.append(e1.w)
            self._arena_c0.append(-1 if e0.is_zero else e0.n.aidx)
            self._arena_c1.append(-1 if e1.is_zero else e1.n.aidx)
        else:
            self.stats.unique_hits += 1
        return node

    def _new_node(self, level: int, edges: tuple[Edge, ...]) -> DDNode:
        node = DDNode(level, edges, self._next_idx)
        self._next_idx += 1
        self._nodes_created += 1
        live = len(self._vtable) + len(self._mtable) + 1
        if live > self._peak_nodes:
            self._peak_nodes = live
        return node

    @staticmethod
    def _check_level(level: int, *edges: Edge) -> None:
        for e in edges:
            if not e.is_zero and e.n.level != level - 1:
                raise DDError(
                    f"child at level {e.n.level} under node at level {level};"
                    " DDs must be full height"
                )

    # ------------------------------------------------------------------
    # Canonical building blocks
    # ------------------------------------------------------------------

    def vector_tables(self):
        """Flat numpy views of the vector-node arena (W0, W1, C0, C1).

        Extended lazily and *incrementally*: the arena is append-only, so a
        rebuild only converts the tail added since the last call.  Entries
        for collected nodes stay in place (arena indices are stable for a
        package's lifetime), which costs memory but keeps every edge valid.
        """
        import numpy as np

        total = len(self._arena_w0)
        if self._arena_cache is None or self._arena_cache[0].size != total:
            if self._arena_cache is None:
                built = 0
                prev = (
                    np.empty(0, dtype=np.complex128),
                    np.empty(0, dtype=np.complex128),
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                )
            else:
                prev = self._arena_cache
                built = prev[0].size
            self._arena_cache = (
                np.concatenate(
                    (prev[0],
                     np.array(self._arena_w0[built:], dtype=np.complex128))
                ),
                np.concatenate(
                    (prev[1],
                     np.array(self._arena_w1[built:], dtype=np.complex128))
                ),
                np.concatenate(
                    (prev[2],
                     np.array(self._arena_c0[built:], dtype=np.int64))
                ),
                np.concatenate(
                    (prev[3],
                     np.array(self._arena_c1[built:], dtype=np.int64))
                ),
            )
        return self._arena_cache

    def zero_edge(self) -> Edge:
        return ZERO_EDGE

    def one_edge(self) -> Edge:
        return ONE_EDGE

    def identity_edge(self, level: int) -> Edge:
        """Identity matrix DD covering levels ``[0..level]`` (inclusive).

        ``level = -1`` is the scalar 1 (the terminal edge).
        """
        if level < 0:
            return ONE_EDGE
        cached = self._identity.get(level)
        if cached is None:
            below = self.identity_edge(level - 1)
            cached = self.make_mnode(level, (below, ZERO_EDGE, ZERO_EDGE, below))
            self._identity[level] = cached
        return cached

    # ------------------------------------------------------------------
    # Statistics / memory accounting hooks
    # ------------------------------------------------------------------

    @property
    def vector_node_count(self) -> int:
        return len(self._vtable)

    @property
    def matrix_node_count(self) -> int:
        return len(self._mtable)

    @property
    def unique_node_count(self) -> int:
        return len(self._vtable) + len(self._mtable)

    @property
    def nodes_created(self) -> int:
        return self._nodes_created

    @property
    def peak_node_count(self) -> int:
        return self._peak_nodes

    def clear_compute_tables(self) -> None:
        """Drop operation memoization (safe at any time; only a cache)."""
        self.cache_vadd.clear()
        self.cache_madd.clear()
        self.cache_mv.clear()
        self.cache_mm.clear()
        self.cache_inner.clear()

    def _compute_caches(self) -> tuple[dict, ...]:
        return (
            self.cache_vadd, self.cache_madd, self.cache_mv,
            self.cache_mm, self.cache_inner,
        )

    def build_mark(self) -> dict:
        """Transactional rewind point covering everything a DD build mutates.

        Gate-DD weight arithmetic is history-dependent: the add memos are
        rescaling-invariant (keyed on node ids plus a bucketed weight
        ratio) and a hit reconstructs its result as ``a.w * cached.w`` --
        numerically equal to the fresh computation but not always
        bit-equal in the last ulp -- and DD addition breaks commutative
        ties by node *creation index*.  Replaying several rows' gate
        builds on one package therefore needs an *exact* rollback between
        rows, or a later row would see entries (and creation orders) an
        earlier row left behind and round differently than it would have
        alone.

        Every structure a build touches -- unique tables, complex table,
        compute memos, identity chains, analysis caches, the creation
        counter -- is insert-only between garbage collections, so its
        state is fully described by its insertion prefix and the mark is
        a handful of lengths.  :meth:`rewind_to_mark` pops each dict back
        down (LIFO insertion order), which costs O(entries added) rather
        than the O(table size) of a copy-based snapshot.
        """
        return {
            "gc_epoch": self.gc_epoch,
            "vtable": len(self._vtable),
            "mtable": len(self._mtable),
            "next_idx": self._next_idx,
            "nodes_created": self._nodes_created,
            "ctable": self.ctable.mark(),
            "caches": tuple(len(c) for c in self._compute_caches()),
            "identity": len(self._identity),
            "dense": len(self.dense_cache),
            "flags": len(self.identity_flags),
            "mac": len(self.mac_counts),
            "kron": len(self.kron_cache),
            "arena": len(self._arena_w0),
        }

    def rewind_to_mark(self, mark: dict) -> None:
        """Exact rollback to a :meth:`build_mark` point.

        Nodes created since the mark are evicted from the unique tables
        (callers keep the edges they need alive; a node object stays
        structurally valid forever) and the creation counter rewinds so
        the next build assigns the same indices a fresh replay would.
        Raises :class:`~repro.common.errors.DDError` if a garbage
        collection ran since the mark: GC rebuilds tables wholesale, so
        the insertion-prefix invariant the trim relies on no longer
        holds.
        """
        if mark["gc_epoch"] != self.gc_epoch:
            raise DDError("cannot rewind a build mark across a GC")
        _trim(self._vtable, mark["vtable"])
        _trim(self._mtable, mark["mtable"])
        self._next_idx = mark["next_idx"]
        self._nodes_created = mark["nodes_created"]
        self.ctable.rewind(mark["ctable"])
        for cache, size in zip(self._compute_caches(), mark["caches"]):
            _trim(cache, size)
        _trim(self._identity, mark["identity"])
        _trim(self.dense_cache, mark["dense"])
        _trim(self.identity_flags, mark["flags"])
        _trim(self.mac_counts, mark["mac"])
        _trim(self.kron_cache, mark["kron"])
        arena = mark["arena"]
        if len(self._arena_w0) > arena:
            del self._arena_w0[arena:]
            del self._arena_w1[arena:]
            del self._arena_c0[arena:]
            del self._arena_c1[arena:]
            # vector_tables() extends incrementally and assumes growth;
            # a cache built past the mark must be dropped, not shrunk.
            if (
                self._arena_cache is not None
                and self._arena_cache[0].size > arena
            ):
                self._arena_cache = None

    def collect_garbage(self, roots: Iterable[Edge]) -> int:
        """Mark-and-sweep the unique tables, keeping only ``roots``' nodes.

        Compute tables and analysis caches are cleared as well (they may
        reference swept nodes).  Returns the number of nodes removed.
        DDSIM performs the same collection when its tables grow; we expose
        it so long simulations keep their Python dicts small.
        """
        live: set[int] = {id(TERMINAL)}
        stack = [r.n for r in roots if not r.is_zero]
        # Identity chains are cheap and perpetually useful; keep them live.
        stack.extend(e.n for e in self._identity.values())
        while stack:
            node = stack.pop()
            if id(node) in live:
                continue
            live.add(id(node))
            stack.extend(e.n for e in node.edges if not e.is_zero)
        removed = 0
        for table in (self._vtable, self._mtable):
            dead = [k for k, v in table.items() if id(v) not in live]
            removed += len(dead)
            for k in dead:
                del table[k]
        self.clear_compute_tables()
        self.dense_cache = {
            k: v for k, v in self.dense_cache.items() if k in live
        }
        self.identity_flags = {
            k: v for k, v in self.identity_flags.items() if k in live
        }
        self.mac_counts = {
            k: v for k, v in self.mac_counts.items() if k in live
        }
        self.kron_cache = {
            k: v
            for k, v in self.kron_cache.items()
            if (k[0] if isinstance(k, tuple) else k) in live
        }
        self.gc_epoch += 1
        self.stats.gc_runs += 1
        self.stats.gc_nodes_reclaimed += removed
        return removed

    def checkpoint_barrier(self, roots: Iterable[Edge]) -> int:
        """Reset every piece of history-dependent acceleration state.

        Called by the simulator at checkpoint cuts (and at the DD-to-array
        conversion of checkpoint-enabled runs) so the writer's
        continuation and a process resumed from the snapshot evolve from
        *identical* package state: compute caches empty (their bucketed
        ratio keys make hits history-dependent at the ulp level), unique
        tables holding exactly the ``roots``' nodes, and identity chains
        dropped so both sides rebuild them at the same point in the
        instruction stream.  Value changes stay within the normalization
        tolerance; bit-identity across the cut is what this buys.
        """
        self._identity.clear()
        return self.collect_garbage(roots)
