"""Vector DDs: construction from / conversion to flat numpy arrays.

``from_array`` implements the recursive halving of Figure 2b; ``to_array``
is the plain sequential DD-to-array conversion (the baseline that DDSIM
ships and that Section 3.1.2 parallelizes -- the parallel version lives in
:mod:`repro.core.conversion`).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import DDError
from repro.dd.node import TERMINAL, ZERO_EDGE, DDNode, Edge
from repro.dd.package import DDPackage

__all__ = [
    "vector_from_array",
    "vector_to_array",
    "zero_state",
    "basis_state",
    "amplitude",
    "node_count",
]


def zero_state(pkg: DDPackage, num_qubits: int | None = None) -> Edge:
    """The |0...0> state as a vector DD."""
    return basis_state(pkg, 0, num_qubits)


def basis_state(pkg: DDPackage, index: int, num_qubits: int | None = None) -> Edge:
    """Computational basis state |index> as a vector DD."""
    n = pkg.num_qubits if num_qubits is None else num_qubits
    if not 0 <= index < (1 << n):
        raise DDError(f"basis index {index} out of range for {n} qubits")
    e = pkg.one_edge()
    for level in range(n):
        if (index >> level) & 1:
            e = pkg.make_vnode(level, ZERO_EDGE, e)
        else:
            e = pkg.make_vnode(level, e, ZERO_EDGE)
    return e


def vector_from_array(pkg: DDPackage, array: np.ndarray) -> Edge:
    """Build a (canonical) vector DD from a flat amplitude array.

    The array length must be ``2**n`` for some ``n >= 1``.  Shared and
    scalar-multiple sub-vectors collapse automatically through the unique
    table and normalization.
    """
    arr = np.asarray(array, dtype=np.complex128).ravel()
    size = arr.shape[0]
    n = size.bit_length() - 1
    if size != 1 << n or n < 1:
        raise DDError(f"array length {size} is not a power of two >= 2")

    def build(lo: int, hi: int, level: int) -> Edge:
        if level < 0:
            return pkg.edge(arr[lo], TERMINAL)
        mid = (lo + hi) // 2
        e0 = build(lo, mid, level - 1)
        e1 = build(mid, hi, level - 1)
        return pkg.make_vnode(level, e0, e1)

    return build(0, size, n - 1)


def vector_to_array(pkg: DDPackage, e: Edge, num_qubits: int | None = None) -> np.ndarray:
    """Sequential DD-to-array conversion (single thread, no optimizations).

    Memoizes per-node subtrees so shared structure is expanded once; this is
    the fair stand-in for DDSIM's exporter that Figure 13 compares against.
    """
    n = pkg.num_qubits if num_qubits is None else num_qubits
    out = np.zeros(1 << n, dtype=np.complex128)
    if e.is_zero:
        return out
    memo: dict[int, np.ndarray] = {}

    def subtree(node: DDNode) -> np.ndarray:
        if node is TERMINAL:
            return np.ones(1, dtype=np.complex128)
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        half = 1 << node.level
        arr = np.zeros(2 * half, dtype=np.complex128)
        for i, child in enumerate(node.edges):
            if not child.is_zero:
                arr[i * half:(i + 1) * half] = child.w * subtree(child.n)
        memo[id(node)] = arr
        return arr

    if e.n is TERMINAL:
        raise DDError("vector DD root cannot be the bare terminal for n >= 1")
    if e.n.level != n - 1:
        raise DDError(
            f"root level {e.n.level} does not match {n} qubits"
        )
    out[:] = e.w * subtree(e.n)
    return out


def amplitude(pkg: DDPackage, e: Edge, index: int) -> complex:
    """Single amplitude V[index]: product of weights along one path."""
    if e.is_zero:
        return 0j
    w = e.w
    node = e.n
    while node is not TERMINAL:
        child = node.edges[(index >> node.level) & 1]
        if child.is_zero:
            return 0j
        w *= child.w
        node = child.n
    return w


def node_count(e: Edge) -> int:
    """Number of unique non-terminal nodes reachable from ``e``.

    This is the "DD size" ``s_i`` the EWMA monitor tracks (Section 3.1.1).
    """
    if e.is_zero or e.n is TERMINAL:
        return 0
    seen: set[int] = set()
    stack = [e.n]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        for child in node.edges:
            if not child.is_zero and child.n is not TERMINAL:
                stack.append(child.n)
    return len(seen)
