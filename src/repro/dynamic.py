"""Dynamic circuits: mid-circuit measurement and classical control.

The core simulators compute full final states of unitary circuits (the
paper's strong-simulation workload).  This module adds the dynamic layer
on top: a :class:`DynamicCircuit` interleaves gates with measurements and
classically conditioned gates, and :func:`run_dynamic` executes one shot
(trajectory) with proper collapse, or many shots at once.

Teleportation, error-correction cycles and reset-based protocols become
expressible; see ``examples/teleportation.py``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.backends.statevector import apply_gate_array
from repro.common.errors import CircuitError, SimulationError
from repro.sampling.strong import measure_qubit

__all__ = ["Measure", "Conditional", "DynamicCircuit", "ShotResult", "run_dynamic"]


@dataclass(frozen=True)
class Measure:
    """Projective measurement of ``qubit`` into classical bit ``cbit``."""

    qubit: int
    cbit: int

    def __post_init__(self) -> None:
        if self.qubit < 0 or self.cbit < 0:
            raise CircuitError("qubit and cbit indices must be non-negative")


@dataclass(frozen=True)
class Conditional:
    """Apply ``gate`` iff classical bit ``cbit`` equals ``value``."""

    gate: Gate
    cbit: int
    value: int = 1

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise CircuitError(f"condition value must be 0/1, got {self.value}")
        if self.cbit < 0:
            raise CircuitError("cbit index must be non-negative")


Operation = Union[Gate, Measure, Conditional]


class DynamicCircuit:
    """Ordered gates / measurements / conditionals over quantum + classical
    registers."""

    def __init__(self, num_qubits: int, num_clbits: int = 0, name: str = "dynamic") -> None:
        if num_qubits < 1:
            raise CircuitError("need at least one qubit")
        self.num_qubits = num_qubits
        self.num_clbits = num_clbits
        self.name = name
        self.operations: list[Operation] = []

    # ------------------------------------------------------------------

    def _check_qubits(self, qubits) -> None:
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise CircuitError(f"qubit {q} out of range")

    def _check_cbit(self, cbit: int) -> None:
        if not 0 <= cbit < self.num_clbits:
            raise CircuitError(f"classical bit {cbit} out of range")

    def gate(self, gate: Gate) -> "DynamicCircuit":
        self._check_qubits(gate.qubits)
        self.operations.append(gate)
        return self

    def add(self, name: str, *qubits: int, params=()) -> "DynamicCircuit":
        from repro.circuits.gates import CONTROLLED_ALIASES

        extra = CONTROLLED_ALIASES.get(name, (None, 0))[1]
        return self.gate(
            Gate(name, tuple(qubits[extra:]), tuple(qubits[:extra]),
                 tuple(params))
        )

    def measure(self, qubit: int, cbit: int) -> "DynamicCircuit":
        self._check_qubits([qubit])
        self._check_cbit(cbit)
        self.operations.append(Measure(qubit, cbit))
        return self

    def c_if(self, name: str, qubit: int, cbit: int, value: int = 1,
             params=()) -> "DynamicCircuit":
        """Append gate ``name`` on ``qubit`` conditioned on ``cbit``."""
        self._check_qubits([qubit])
        self._check_cbit(cbit)
        self.operations.append(
            Conditional(Gate(name, (qubit,), params=tuple(params)), cbit, value)
        )
        return self

    @classmethod
    def from_circuit(cls, circuit: Circuit, num_clbits: int = 0) -> "DynamicCircuit":
        dyn = cls(circuit.num_qubits, num_clbits, name=circuit.name)
        for g in circuit.gates:
            dyn.gate(g)
        return dyn

    def __len__(self) -> int:
        return len(self.operations)


@dataclass
class ShotResult:
    """One trajectory through a dynamic circuit."""

    state: np.ndarray
    classical_bits: list[int]

    @property
    def bits_string(self) -> str:
        """Classical register as a string, highest bit leftmost."""
        return "".join(map(str, reversed(self.classical_bits)))


def run_dynamic(
    circuit: DynamicCircuit,
    rng: np.random.Generator | None = None,
    initial_state: np.ndarray | None = None,
) -> ShotResult:
    """Execute one shot of a dynamic circuit (exact collapse semantics)."""
    rng = rng or np.random.default_rng()
    dim = 1 << circuit.num_qubits
    if initial_state is not None:
        state = np.array(initial_state, dtype=np.complex128)
        if state.shape != (dim,):
            raise SimulationError(
                f"initial state must have length {dim}"
            )
        state = state / np.linalg.norm(state)
    else:
        state = np.zeros(dim, dtype=np.complex128)
        state[0] = 1.0
    bits = [0] * circuit.num_clbits
    for op in circuit.operations:
        if isinstance(op, Gate):
            apply_gate_array(state, op)
        elif isinstance(op, Measure):
            outcome, state = measure_qubit(state, op.qubit, rng)
            bits[op.cbit] = outcome
        elif isinstance(op, Conditional):
            if bits[op.cbit] == op.value:
                apply_gate_array(state, op.gate)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown operation {op!r}")
    return ShotResult(state=state, classical_bits=bits)


def run_shots(
    circuit: DynamicCircuit,
    shots: int,
    seed: int = 0,
    initial_state: np.ndarray | None = None,
) -> Counter:
    """Classical-register histogram over many shots."""
    if shots < 1:
        raise SimulationError("shots must be positive")
    rng = np.random.default_rng(seed)
    counts: Counter = Counter()
    for _ in range(shots):
        result = run_dynamic(circuit, rng, initial_state)
        counts[result.bits_string] += 1
    return counts
