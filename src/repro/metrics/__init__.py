"""Measurement utilities: analytic memory model, timers, statistics."""

from repro.metrics.memory import MemoryMeter, array_bytes, dd_bytes, state_array_bytes
from repro.metrics.stats import geometric_mean, normalize, ratio_string, speedups
from repro.metrics.timing import Timer, timed

__all__ = [
    "MemoryMeter",
    "Timer",
    "array_bytes",
    "dd_bytes",
    "geometric_mean",
    "normalize",
    "ratio_string",
    "speedups",
    "state_array_bytes",
    "timed",
]
