"""Analytic memory accounting (DESIGN.md substitution 5).

The paper measures max RSS with ``/bin/time``.  A CPython process's RSS is
dominated by the interpreter, so instead we account exactly the simulator
state the paper's comparison is about:

* DD storage: unique vector/matrix nodes and complex-table entries, priced
  at DDSIM's C++ struct sizes (see :mod:`repro.common.config`),
* flat arrays: amplitude buffers at 16 bytes per complex128,
* DMAV working set: partial-output buffers and per-thread caches.

Every simulator tracks its peak through a :class:`MemoryMeter`.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import (
    AMPLITUDE_BYTES,
    CTABLE_ENTRY_BYTES,
    MNODE_BYTES,
    VNODE_BYTES,
)
from repro.dd.package import DDPackage

__all__ = ["dd_bytes", "array_bytes", "MemoryMeter", "state_array_bytes"]


def dd_bytes(pkg: DDPackage) -> int:
    """Bytes attributable to the live DD structures of a package."""
    return (
        pkg.vector_node_count * VNODE_BYTES
        + pkg.matrix_node_count * MNODE_BYTES
        + pkg.ctable.entry_count * CTABLE_ENTRY_BYTES
    )


def array_bytes(*arrays: np.ndarray | None) -> int:
    """Bytes held by flat amplitude arrays (None entries are skipped)."""
    return sum(a.nbytes for a in arrays if a is not None)


class MemoryMeter:
    """Peak-tracking accumulator for a single simulation run.

    Backends call :meth:`sample` at the points where their working set is
    maximal (after each gate, during conversion, while buffers are alive);
    the meter keeps the max, mirroring "maximum resident set size".
    """

    def __init__(self, baseline: int = 0) -> None:
        self._baseline = baseline
        self._peak = baseline
        self._last = baseline

    def sample(self, nbytes: int) -> None:
        """Record a momentary working-set size (baseline is added)."""
        total = self._baseline + nbytes
        self._last = total
        if total > self._peak:
            self._peak = total

    @property
    def peak_bytes(self) -> int:
        return self._peak

    @property
    def peak_mb(self) -> float:
        return self._peak / (1024.0 * 1024.0)

    @property
    def last_bytes(self) -> int:
        return self._last


def state_array_bytes(num_qubits: int) -> int:
    """Bytes of one full state vector at ``num_qubits`` qubits."""
    return (1 << num_qubits) * AMPLITUDE_BYTES
