"""Statistics helpers for the evaluation harness.

The paper reports averages of exponentially spread data in geometric mean
("for data with exponential difference, we measure the average in geometric
mean"), and EWMA traces for the conversion monitor; both live here.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["geometric_mean", "speedups", "normalize", "ratio_string"]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; empty input raises ValueError."""
    logs = []
    for v in values:
        if v <= 0:
            raise ValueError(f"geometric mean needs positive values, got {v}")
        logs.append(math.log(v))
    if not logs:
        raise ValueError("geometric mean of empty sequence")
    return math.exp(sum(logs) / len(logs))


def speedups(baseline: Sequence[float], ours: Sequence[float]) -> list[float]:
    """Elementwise baseline/ours ratios (>1 means we are faster)."""
    if len(baseline) != len(ours):
        raise ValueError("speedups needs equally long sequences")
    return [b / o for b, o in zip(baseline, ours)]


def normalize(values: Sequence[float], reference: float | None = None) -> list[float]:
    """Scale values so the reference (default: min) maps to 1.0."""
    ref = min(values) if reference is None else reference
    if ref <= 0:
        raise ValueError("normalization reference must be positive")
    return [v / ref for v in values]


def ratio_string(ratio: float) -> str:
    """Format a speed-up the way the paper's tables do (e.g. '34.81x')."""
    return f"{ratio:.2f}x"
