"""Wall-clock timing utilities used by all backends and benches."""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["Timer", "timed"]


class Timer:
    """Accumulating stopwatch with named splits.

    ``with timer.split("convert"): ...`` accumulates into the named bucket;
    ``timer.total`` is the sum of everything recorded.
    """

    def __init__(self) -> None:
        self.splits: dict[str, float] = {}

    @contextmanager
    def split(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.splits[name] = self.splits.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        self.splits[name] = self.splits.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.splits.values())

    def get(self, name: str) -> float:
        return self.splits.get(name, 0.0)


@contextmanager
def timed():
    """``with timed() as t: ...; t()`` returns elapsed seconds."""
    start = time.perf_counter()
    end: list[float] = []

    def elapsed() -> float:
        return (end[0] if end else time.perf_counter()) - start

    yield elapsed
    end.append(time.perf_counter())
