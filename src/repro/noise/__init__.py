"""Noise: Pauli models, Monte Carlo trajectories, exact density matrices."""

from repro.noise.density import (
    DensityMatrixSimulator,
    amplitude_damping_kraus,
    bit_flip_kraus,
    depolarizing_kraus,
    phase_flip_kraus,
)
from repro.noise.model import NoiseModel
from repro.noise.trajectories import NoisyResult, run_trajectories

__all__ = [
    "DensityMatrixSimulator",
    "NoiseModel",
    "NoisyResult",
    "amplitude_damping_kraus",
    "bit_flip_kraus",
    "depolarizing_kraus",
    "phase_flip_kraus",
    "run_trajectories",
]
