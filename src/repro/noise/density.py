"""Exact density-matrix simulation with Kraus channels.

The trajectory module approximates channel dynamics by Monte Carlo; this
module computes them exactly by evolving the full density matrix
``rho -> sum_k K_k rho K_k^dagger``.  It is exponentially more expensive
(2**n x 2**n), so it serves small-n ground truth -- the tests pin the
trajectory ensemble against it -- and supports channels that pure-state
trajectories over Pauli insertions cannot express (amplitude damping).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.common.errors import SimulationError
from repro.noise.model import NoiseModel

__all__ = [
    "depolarizing_kraus",
    "bit_flip_kraus",
    "phase_flip_kraus",
    "amplitude_damping_kraus",
    "DensityMatrixSimulator",
]

_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]])
_Z = np.diag([1, -1]).astype(complex)
_I = np.eye(2, dtype=complex)


def depolarizing_kraus(p: float) -> list[np.ndarray]:
    """Single-qubit depolarizing channel with error probability ``p``."""
    _check_probability(p)
    return [
        np.sqrt(1 - p) * _I,
        np.sqrt(p / 3) * _X,
        np.sqrt(p / 3) * _Y,
        np.sqrt(p / 3) * _Z,
    ]


def bit_flip_kraus(p: float) -> list[np.ndarray]:
    """X error with probability ``p``."""
    _check_probability(p)
    return [np.sqrt(1 - p) * _I, np.sqrt(p) * _X]


def phase_flip_kraus(p: float) -> list[np.ndarray]:
    """Z error (dephasing) with probability ``p``."""
    _check_probability(p)
    return [np.sqrt(1 - p) * _I, np.sqrt(p) * _Z]


def amplitude_damping_kraus(gamma: float) -> list[np.ndarray]:
    """Energy relaxation |1> -> |0> with rate ``gamma``."""
    _check_probability(gamma)
    k0 = np.array([[1, 0], [0, np.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, np.sqrt(gamma)], [0, 0]], dtype=complex)
    return [k0, k1]


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise SimulationError(f"probability must be in [0, 1], got {p}")


class DensityMatrixSimulator:
    """Exact open-system simulator (small qubit counts only).

    ``channels`` maps applied per gate: after every gate, each touched
    qubit passes through each configured channel.  A
    :class:`~repro.noise.model.NoiseModel` can be converted with
    :meth:`from_noise_model` so trajectory results can be compared
    apples-to-apples.
    """

    MAX_QUBITS = 10

    def __init__(
        self, channels: list[list[np.ndarray]] | None = None
    ) -> None:
        self.channels = channels or []
        for kraus in self.channels:
            total = sum(k.conj().T @ k for k in kraus)
            if not np.allclose(total, np.eye(2), atol=1e-10):
                raise SimulationError(
                    "Kraus operators must satisfy sum K^dag K = I"
                )

    @classmethod
    def from_noise_model(cls, model: NoiseModel) -> "DensityMatrixSimulator":
        """Channels equivalent to the trajectory model's per-gate errors.

        Only the 1q depolarizing / bit-flip / phase-flip rates translate
        (the trajectory model applies its 2q rate per touched qubit of
        multi-qubit gates; pass gate-dependent channels manually for that).
        """
        channels = []
        if model.depolarizing_1q:
            channels.append(depolarizing_kraus(model.depolarizing_1q))
        if model.bit_flip:
            channels.append(bit_flip_kraus(model.bit_flip))
        if model.phase_flip:
            channels.append(phase_flip_kraus(model.phase_flip))
        return cls(channels)

    # ------------------------------------------------------------------

    def run(self, circuit: Circuit) -> np.ndarray:
        """Return the final density matrix of the noisy circuit."""
        n = circuit.num_qubits
        if n > self.MAX_QUBITS:
            raise SimulationError(
                f"density-matrix simulation capped at {self.MAX_QUBITS} "
                f"qubits, got {n}"
            )
        dim = 1 << n
        rho = np.zeros((dim, dim), dtype=complex)
        rho[0, 0] = 1.0
        for gate in circuit.gates:
            u = self._full_unitary(gate, n)
            rho = u @ rho @ u.conj().T
            for q in gate.qubits:
                for kraus in self.channels:
                    rho = self._apply_channel(rho, kraus, q, n)
        return rho

    def probabilities(self, circuit: Circuit) -> np.ndarray:
        return np.real(np.diag(self.run(circuit)))

    @staticmethod
    def _full_unitary(gate: Gate, n: int) -> np.ndarray:
        from repro.backends.gatecache import build_gate_dd
        from repro.dd import DDPackage, matrix_to_dense

        pkg = DDPackage(n)
        return matrix_to_dense(pkg, build_gate_dd(pkg, gate))

    @staticmethod
    def _apply_channel(
        rho: np.ndarray, kraus: list[np.ndarray], qubit: int, n: int
    ) -> np.ndarray:
        out = np.zeros_like(rho)
        for k in kraus:
            full = np.array([[1]], dtype=complex)
            for q in range(n - 1, -1, -1):
                full = np.kron(full, k if q == qubit else _I)
            out += full @ rho @ full.conj().T
        return out
