"""Stochastic Pauli noise models.

Grurl, Fuss and Wille ("Noise-aware quantum circuit simulation with
decision diagrams", TCAD 2022 -- reference [22] of the FlatDD paper)
simulate noisy circuits on DDs.  This module provides the standard
trajectory (Monte Carlo) formulation over Pauli channels: each noisy gate
execution is the ideal gate followed, with channel probability, by a
random Pauli error on the touched qubits.  Pauli channels keep every
trajectory a pure state, so any of the library's simulators can run them
unmodified.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.common.errors import SimulationError

__all__ = ["NoiseModel"]

_PAULIS = ("x", "y", "z")


@dataclass(frozen=True)
class NoiseModel:
    """Depolarizing + bit/phase-flip error rates per gate execution.

    * ``depolarizing_1q`` / ``depolarizing_2q``: after each 1q / 2q+ gate,
      with this probability a uniformly random non-identity Pauli is
      applied to each touched qubit.
    * ``bit_flip`` / ``phase_flip``: additional independent X / Z errors
      per touched qubit per gate.
    """

    depolarizing_1q: float = 0.0
    depolarizing_2q: float = 0.0
    bit_flip: float = 0.0
    phase_flip: float = 0.0

    def __post_init__(self) -> None:
        for name in ("depolarizing_1q", "depolarizing_2q", "bit_flip",
                     "phase_flip"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise SimulationError(
                    f"{name} must be a probability, got {p}"
                )

    @property
    def is_trivial(self) -> bool:
        return (
            self.depolarizing_1q == 0.0
            and self.depolarizing_2q == 0.0
            and self.bit_flip == 0.0
            and self.phase_flip == 0.0
        )

    def errors_after(
        self, gate: Gate, rng: np.random.Generator
    ) -> list[Gate]:
        """Sample the Pauli error gates following one gate execution."""
        errors: list[Gate] = []
        touched = gate.qubits
        depol = (
            self.depolarizing_1q if len(touched) == 1 else self.depolarizing_2q
        )
        for q in touched:
            if depol and rng.random() < depol:
                errors.append(Gate(str(rng.choice(_PAULIS)), (q,)))
            if self.bit_flip and rng.random() < self.bit_flip:
                errors.append(Gate("x", (q,)))
            if self.phase_flip and rng.random() < self.phase_flip:
                errors.append(Gate("z", (q,)))
        return errors

    def sample_circuit(
        self, circuit: Circuit, rng: np.random.Generator
    ) -> Circuit:
        """One noisy trajectory: the circuit with sampled errors inserted."""
        noisy = Circuit(
            circuit.num_qubits, name=f"{circuit.name}_noisy"
        )
        for gate in circuit.gates:
            noisy.append(gate)
            for err in self.errors_after(gate, rng):
                noisy.append(err)
        return noisy
