"""Monte Carlo trajectory simulation of noisy circuits."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends.base import Simulator
from repro.circuits.circuit import Circuit
from repro.common.errors import SimulationError
from repro.noise.model import NoiseModel

__all__ = ["NoisyResult", "run_trajectories"]


@dataclass
class NoisyResult:
    """Aggregate of a trajectory ensemble."""

    circuit_name: str
    num_trajectories: int
    #: Ensemble-averaged outcome distribution (the diagonal of rho).
    probabilities: np.ndarray
    #: Mean |<ideal|trajectory>|^2 -- the ensemble's average state fidelity.
    mean_fidelity: float
    #: Per-trajectory fidelities (for variance analysis).
    fidelities: list[float]
    total_error_gates: int

    @property
    def fidelity_std(self) -> float:
        return float(np.std(self.fidelities))


def run_trajectories(
    circuit: Circuit,
    noise: NoiseModel,
    simulator: Simulator,
    num_trajectories: int = 32,
    seed: int = 0,
    ideal_state: np.ndarray | None = None,
) -> NoisyResult:
    """Average ``num_trajectories`` noisy executions of ``circuit``.

    Each trajectory inserts freshly sampled Pauli errors and runs on
    ``simulator`` (any backend works -- trajectories are pure states).
    ``ideal_state`` may be passed to avoid re-simulating the noiseless
    reference.
    """
    if num_trajectories < 1:
        raise SimulationError(
            f"need at least one trajectory, got {num_trajectories}"
        )
    rng = np.random.default_rng(seed)
    if ideal_state is None:
        ideal_state = simulator.run(circuit).state
    dim = ideal_state.size
    probs = np.zeros(dim)
    fidelities: list[float] = []
    error_gates = 0
    for _ in range(num_trajectories):
        noisy = noise.sample_circuit(circuit, rng)
        error_gates += len(noisy.gates) - len(circuit.gates)
        state = simulator.run(noisy).state
        probs += np.abs(state) ** 2
        fidelities.append(float(abs(np.vdot(ideal_state, state)) ** 2))
    probs /= num_trajectories
    return NoisyResult(
        circuit_name=circuit.name,
        num_trajectories=num_trajectories,
        probabilities=probs,
        mean_fidelity=float(np.mean(fidelities)),
        fidelities=fidelities,
        total_error_gates=error_gates,
    )
