"""Structured observability for the FlatDD pipeline.

FlatDD's behaviour is all runtime dynamics -- DD-size growth, the EWMA
trigger, conversion cost, per-gate DMAV cost-model decisions -- and this
package makes those signals first-class instead of scattered ad-hoc
timers:

* :mod:`repro.obs.tracer` -- thread-safe span tracer (context-manager
  nesting, monotonic timestamps, instants, counter samples) with a
  zero-overhead :data:`NULL_TRACER` default when tracing is off.
* :mod:`repro.obs.metrics` -- named counters/gauges registry.
* :mod:`repro.obs.export` -- JSONL and Chrome trace-event exporters
  (open the latter in Perfetto / ``chrome://tracing``).
* :mod:`repro.obs.summary` -- per-phase aggregation and the text table
  behind the CLI's ``--profile``.
* :mod:`repro.obs.collect` -- snapshot helpers that assemble
  ``SimulationResult.metadata["obs"]``.

Usage::

    from repro import FlatDDSimulator, get_circuit
    from repro.obs import Tracer, write_chrome_trace

    tracer = Tracer()
    result = FlatDDSimulator(threads=4).run(
        get_circuit("supremacy", 12), tracer=tracer
    )
    write_chrome_trace("trace.json", tracer)   # -> load in Perfetto
    print(result.metadata["obs"]["counters"])  # dd.*, gate_cache.*, ...
"""

from repro.obs.collect import (
    build_obs,
    gate_cache_counters,
    package_counters,
    result_cache_counters,
)
from repro.obs.export import (
    chrome_trace_events,
    jsonl_events,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import Counter, Gauge, MetricsRegistry
from repro.obs.summary import PhaseSummary, format_summary_table, summarize_phases
from repro.obs.tracer import NULL_TRACER, Instant, NullTracer, Sample, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Instant",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PhaseSummary",
    "Sample",
    "Span",
    "Tracer",
    "build_obs",
    "chrome_trace_events",
    "format_summary_table",
    "gate_cache_counters",
    "jsonl_events",
    "package_counters",
    "result_cache_counters",
    "summarize_phases",
    "write_chrome_trace",
    "write_jsonl",
]
