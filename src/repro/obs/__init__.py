"""Structured observability for the FlatDD pipeline.

FlatDD's behaviour is all runtime dynamics -- DD-size growth, the EWMA
trigger, conversion cost, per-gate DMAV cost-model decisions -- and this
package makes those signals first-class instead of scattered ad-hoc
timers:

* :mod:`repro.obs.tracer` -- thread-safe span tracer (context-manager
  nesting, monotonic timestamps, instants, counter samples) with a
  zero-overhead :data:`NULL_TRACER` default when tracing is off.
* :mod:`repro.obs.metrics` -- named counters/gauges/histograms registry
  (log-spaced latency buckets with p50/p90/p99 snapshots).
* :mod:`repro.obs.telemetry` -- interval sampler turning a registry into
  a JSONL time series plus a Prometheus text dump, and the terminal
  metric tables behind ``repro report``.
* :mod:`repro.obs.export` -- JSONL and Chrome trace-event exporters
  (open the latter in Perfetto / ``chrome://tracing``).
* :mod:`repro.obs.summary` -- per-phase aggregation and the text table
  behind the CLI's ``--profile``.
* :mod:`repro.obs.collect` -- snapshot helpers that assemble
  ``SimulationResult.metadata["obs"]``.

Usage::

    from repro import FlatDDSimulator, get_circuit
    from repro.obs import Tracer, write_chrome_trace

    tracer = Tracer()
    result = FlatDDSimulator(threads=4).run(
        get_circuit("supremacy", 12), tracer=tracer
    )
    write_chrome_trace("trace.json", tracer)   # -> load in Perfetto
    print(result.metadata["obs"]["counters"])  # dd.*, gate_cache.*, ...
"""

from repro.obs.collect import (
    build_obs,
    gate_cache_counters,
    package_counters,
    result_cache_counters,
)
from repro.obs.export import (
    chrome_trace_events,
    jsonl_events,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.summary import PhaseSummary, format_summary_table, summarize_phases
from repro.obs.telemetry import (
    TelemetrySampler,
    format_metrics_table,
    format_telemetry_report,
    load_telemetry,
    prometheus_text,
)
from repro.obs.tracer import NULL_TRACER, Instant, NullTracer, Sample, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PhaseSummary",
    "Sample",
    "Span",
    "TelemetrySampler",
    "Tracer",
    "build_obs",
    "chrome_trace_events",
    "format_metrics_table",
    "format_summary_table",
    "format_telemetry_report",
    "gate_cache_counters",
    "jsonl_events",
    "load_telemetry",
    "package_counters",
    "prometheus_text",
    "result_cache_counters",
    "summarize_phases",
    "write_chrome_trace",
    "write_jsonl",
]
