"""Bridging helpers: fold live objects into ``metadata["obs"]``.

The always-on counters of the FlatDD substrate live where updating them
is cheapest -- plain ints on :class:`~repro.dd.package.DDPackage.stats`
and :class:`~repro.backends.gatecache.GateDDCache`.  This module
snapshots them (plus a run's :class:`~repro.obs.metrics.MetricsRegistry`
and, when tracing, the tracer's spans and phase summary) into the one
plain-dict payload every backend attaches to
``SimulationResult.metadata["obs"]``.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.summary import summarize_phases
from repro.obs.tracer import Tracer

__all__ = [
    "package_counters",
    "gate_cache_counters",
    "result_cache_counters",
    "build_obs",
]


def package_counters(pkg) -> dict:
    """``dd.*`` counters of one :class:`~repro.dd.package.DDPackage`."""
    stats = pkg.stats
    return {
        "dd.unique_hits": stats.unique_hits,
        "dd.unique_misses": stats.unique_misses,
        "dd.compute_hits": stats.compute_hits,
        "dd.compute_misses": stats.compute_misses,
        "dd.gc_runs": stats.gc_runs,
        "dd.gc_nodes_reclaimed": stats.gc_nodes_reclaimed,
        "dd.unique_nodes": pkg.unique_node_count,
        "dd.peak_nodes": pkg.peak_node_count,
        "dd.nodes_created": pkg.nodes_created,
    }


def gate_cache_counters(cache) -> dict:
    """``gate_cache.*`` counters of one ``GateDDCache``."""
    return {
        "gate_cache.hits": cache.hits,
        "gate_cache.misses": cache.misses,
        "gate_cache.entries": len(cache),
    }


def result_cache_counters(cache) -> dict:
    """``serve.cache.*`` counters of one ``repro.serve.ResultCache``."""
    return {
        "serve.cache.hits": cache.hits,
        "serve.cache.misses": cache.misses,
        "serve.cache.evictions": cache.evictions,
        "serve.cache.uncacheable": cache.uncacheable,
        "serve.cache.entries": len(cache),
        "serve.cache.bytes": cache.total_bytes,
    }


def build_obs(
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    package=None,
    gate_cache=None,
    runner=None,
    wall_seconds: float | None = None,
) -> dict:
    """Assemble the ``metadata["obs"]`` payload for one simulation.

    Always returns counters/gauges (cheap snapshots); adds ``spans`` and
    the per-phase ``summary`` only when ``tracer`` is enabled, so the
    payload stays small on untraced runs.  Every value in the returned
    dict is JSON-serializable.
    """
    obs: dict = {"counters": {}, "gauges": {}}
    if registry is not None:
        snap = registry.snapshot()
        obs["counters"].update(snap["counters"])
        obs["gauges"].update(snap["gauges"])
    if package is not None:
        obs["counters"].update(package_counters(package))
    if gate_cache is not None:
        obs["counters"].update(gate_cache_counters(gate_cache))
    if runner is not None and getattr(runner, "batches", 0):
        busy = list(runner.busy_seconds)
        obs["pool"] = {
            "threads": runner.threads,
            "batches": runner.batches,
            "tasks": list(runner.task_counts),
            "busy_seconds": [round(b, 6) for b in busy],
        }
        if wall_seconds:
            obs["pool"]["utilization"] = [
                round(min(b / wall_seconds, 1.0), 4) for b in busy
            ]
    if tracer is not None and tracer.enabled:
        obs["spans"] = [
            {
                "name": s.name,
                "cat": s.category,
                "ts": s.start,
                "dur": s.duration,
                "tid": s.thread_id,
                "depth": s.depth,
                "args": s.args or {},
            }
            for s in tracer.spans
        ]
        obs["summary"] = [p.as_dict() for p in summarize_phases(tracer)]
    return obs
