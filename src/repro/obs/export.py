"""Trace exporters: Chrome trace-event JSON and JSONL event streams.

Two serializations of one :class:`~repro.obs.tracer.Tracer`:

* :func:`chrome_trace_events` / :func:`write_chrome_trace` -- the Chrome
  trace-event format (the ``{"traceEvents": [...]}`` flavor), loadable
  in Perfetto or ``chrome://tracing``.  Spans become complete ("X")
  events with microsecond timestamps, instants become "i" events, and
  samples become counter ("C") tracks -- so a FlatDD run renders as the
  per-phase timeline of the paper's Figure 3 with the DD-size/EWMA
  curves underneath.
* :func:`jsonl_events` / :func:`write_jsonl` -- one JSON object per
  event (``type`` in {"span", "instant", "sample"}), timestamps in
  seconds, suitable for ad-hoc ``jq``/pandas analysis and append-only
  log shipping.

Thread ids are remapped to small consecutive integers in order of first
appearance, merging OS thread idents and the logical worker ids used by
the inline :class:`~repro.parallel.pool.TaskRunner` mode into one tidy
track list.
"""

from __future__ import annotations

import json

from repro.obs.tracer import Tracer

__all__ = [
    "chrome_trace_events",
    "jsonl_events",
    "write_chrome_trace",
    "write_jsonl",
]


class _TidMap:
    """Stable remap of raw thread ids to small display-friendly ints."""

    def __init__(self) -> None:
        self._map: dict[int, int] = {}

    def __call__(self, raw: int) -> int:
        tid = self._map.get(raw)
        if tid is None:
            tid = len(self._map)
            self._map[raw] = tid
        return tid


def chrome_trace_events(
    tracer: Tracer, pid: int = 1, process_name: str = "repro"
) -> list[dict]:
    """Flatten a tracer into a sorted Chrome trace-event list.

    Timestamps (``ts``) and durations (``dur``) are microseconds since
    the tracer epoch, per the trace-event spec.
    """
    tid_of = _TidMap()
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for s in tracer.spans:
        events.append(
            {
                "name": s.name,
                "cat": s.category,
                "ph": "X",
                "ts": round(s.start * 1e6, 3),
                "dur": round(s.duration * 1e6, 3),
                "pid": pid,
                "tid": tid_of(s.thread_id),
                "args": s.args or {},
            }
        )
    for i in tracer.instants:
        events.append(
            {
                "name": i.name,
                "cat": i.category,
                "ph": "i",
                "s": "t",
                "ts": round(i.ts * 1e6, 3),
                "pid": pid,
                "tid": tid_of(i.thread_id),
                "args": i.args or {},
            }
        )
    for smp in tracer.samples:
        events.append(
            {
                "name": smp.name,
                "cat": "sample",
                "ph": "C",
                "ts": round(smp.ts * 1e6, 3),
                "pid": pid,
                "tid": 0,
                "args": {"value": smp.value},
            }
        )
    events.sort(key=lambda e: (e["ts"], e["ph"] != "M"))
    return events


def write_chrome_trace(path: str, tracer: Tracer, pid: int = 1) -> int:
    """Write ``{"traceEvents": [...]}`` JSON to ``path``; returns #events."""
    events = chrome_trace_events(tracer, pid=pid)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
    return len(events)


def jsonl_events(tracer: Tracer) -> list[dict]:
    """All events as plain dicts (seconds), sorted by timestamp."""
    events: list[dict] = []
    for s in tracer.spans:
        events.append(
            {
                "type": "span",
                "name": s.name,
                "cat": s.category,
                "ts": s.start,
                "dur": s.duration,
                "tid": s.thread_id,
                "depth": s.depth,
                "args": s.args or {},
            }
        )
    for i in tracer.instants:
        events.append(
            {
                "type": "instant",
                "name": i.name,
                "cat": i.category,
                "ts": i.ts,
                "tid": i.thread_id,
                "args": i.args or {},
            }
        )
    for smp in tracer.samples:
        events.append(
            {"type": "sample", "name": smp.name, "ts": smp.ts, "value": smp.value}
        )
    events.sort(key=lambda e: e["ts"])
    return events


def write_jsonl(path: str, tracer: Tracer) -> int:
    """Write one JSON object per line to ``path``; returns #events."""
    events = jsonl_events(tracer)
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event))
            fh.write("\n")
    return len(events)
