"""Counters, gauges, and histograms: the cumulative half of ``repro.obs``.

Spans answer "where did the time go"; the registry answers "how many /
how much / how is it distributed".  A :class:`MetricsRegistry` creates
named :class:`Counter` (monotonic), :class:`Gauge` (last-value, with
min/max watermarks), and :class:`Histogram` (log-spaced latency
distribution) instruments on demand, and snapshots them into plain dicts
that travel in ``SimulationResult.metadata["obs"]``, serve batch
reports, and benchmark rows.

All mutations take the registry's lock, so instruments can be bumped
from worker threads (``TaskRunner`` tasks) without corruption.  The
counters surfaced from always-on sources (``DDPackage.stats``,
``GateDDCache.hits``) are plain ints updated inline by their owners and
only *copied* into a snapshot here -- keeping the hot DD recursions free
of locking.

Snapshots emit name-sorted keys so two exports of the same registry
state are byte-identical -- the telemetry time series and the benchmark
regression gate both diff snapshots across runs.
"""

from __future__ import annotations

import math
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing named count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-value instrument with min/max watermarks."""

    __slots__ = ("name", "value", "min", "max", "updates", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value: float | None = None
        self.min: float | None = None
        self.max: float | None = None
        self.updates = 0
        self._lock = lock

    def set(self, value: float) -> None:
        """Record the gauge's current value."""
        value = float(value)
        with self._lock:
            self.value = value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            self.updates += 1


#: Default histogram range: 1 microsecond .. ~100 seconds, 8 buckets per
#: decade.  Latencies below/above the range land in the first/overflow
#: bucket, so observations are never dropped.
_HIST_MIN = 1e-6
_HIST_MAX = 100.0
_HIST_BUCKETS_PER_DECADE = 8


def _log_bounds(lo: float, hi: float, per_decade: int) -> list[float]:
    """Upper bounds of log-spaced buckets covering [lo, hi]."""
    decades = math.log10(hi / lo)
    count = max(int(math.ceil(decades * per_decade)), 1)
    step = decades / count
    return [lo * 10 ** (step * (i + 1)) for i in range(count)]


class Histogram:
    """Fixed log-spaced-bucket distribution of non-negative observations.

    Designed for latencies: the default buckets span 1us..100s with 8
    buckets per decade (~33% relative quantile error, 41 buckets).  An
    observation beyond the last bound lands in a single overflow bucket;
    exact ``min``/``max``/``sum`` are tracked alongside, so the mean is
    exact and only the interior percentiles are approximate.

    Percentiles interpolate within the winning bucket (log-linear), and
    are additionally clamped to the exact observed min/max -- so a
    single-valued histogram reports that value at every percentile.
    """

    __slots__ = (
        "name", "bounds", "buckets", "count", "sum", "min", "max", "_lock",
    )

    def __init__(
        self,
        name: str,
        lock: threading.Lock,
        bounds: list[float] | None = None,
    ) -> None:
        self.name = name
        self.bounds = (
            list(bounds)
            if bounds is not None
            else _log_bounds(_HIST_MIN, _HIST_MAX, _HIST_BUCKETS_PER_DECADE)
        )
        if any(b <= a for a, b in zip(self.bounds, self.bounds[1:])):
            raise ValueError(f"histogram {name}: bounds must be increasing")
        #: One slot per bound plus the overflow bucket.
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = lock

    def observe(self, value: float) -> None:
        """Record one observation (negative values are clamped to 0)."""
        value = max(float(value), 0.0)
        index = self._bucket_index(value)
        with self._lock:
            self.buckets[index] += 1
            self.count += 1
            self.sum += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    def _bucket_index(self, value: float) -> int:
        # Binary search: first bound >= value (bisect over a short list).
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def percentile(self, q: float) -> float | None:
        """Approximate q-th percentile (q in [0, 100]); None when empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            return self._percentile_locked(q)

    def _percentile_locked(self, q: float) -> float | None:
        if self.count == 0:
            return None
        rank = q / 100.0 * self.count
        seen = 0
        for index, bucket_count in enumerate(self.buckets):
            if bucket_count == 0:
                continue
            seen += bucket_count
            if seen >= rank:
                value = self._interpolate(index, rank - (seen - bucket_count),
                                          bucket_count)
                # Exact extremes beat bucket bounds.
                return min(max(value, self.min), self.max)
        return self.max

    def _interpolate(self, index: int, into: float, bucket_count: int) -> float:
        """Log-linear position within bucket ``index``."""
        upper = (
            self.bounds[index]
            if index < len(self.bounds)
            else max(self.max or 0.0, self.bounds[-1])
        )
        lower = self.bounds[index - 1] if index > 0 else 0.0
        frac = min(max(into / bucket_count, 0.0), 1.0)
        if lower <= 0.0 or upper <= lower:
            return lower + (upper - lower) * frac
        return lower * (upper / lower) ** frac

    @property
    def mean(self) -> float | None:
        return self.sum / self.count if self.count else None

    def snapshot(self) -> dict:
        """Plain-dict view with the summary stats exports consume."""
        with self._lock:
            return {
                "count": self.count,
                "sum": self.sum,
                "mean": self.sum / self.count if self.count else None,
                "min": self.min,
                "max": self.max,
                "p50": self._percentile_locked(50.0),
                "p90": self._percentile_locked(90.0),
                "p99": self._percentile_locked(99.0),
            }

    def bucket_counts(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, Prometheus-style.

        The final pair uses ``inf`` as its bound and equals ``count``.
        """
        with self._lock:
            out = []
            cumulative = 0
            for bound, n in zip(self.bounds, self.buckets):
                cumulative += n
                out.append((bound, cumulative))
            out.append((math.inf, cumulative + self.buckets[-1]))
            return out


class MetricsRegistry:
    """Create-on-demand collection of named counters, gauges, histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _get_or_create(self, table: dict, name: str, factory):
        # Fast path: a published instrument never changes identity, and
        # CPython dict reads are atomic under the GIL, so a hit needs no
        # lock.  A miss falls through to a locked setdefault -- when two
        # threads race the first creation, exactly one instrument wins
        # and both callers get it.
        instrument = table.get(name)
        if instrument is None:
            with self._lock:
                instrument = table.get(name)
                if instrument is None:
                    instrument = table.setdefault(name, factory())
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(
            self._counters, name, lambda: Counter(name, self._lock)
        )

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(
            self._gauges, name, lambda: Gauge(name, self._lock)
        )

    def histogram(
        self, name: str, bounds: list[float] | None = None
    ) -> Histogram:
        """Get or create the histogram ``name``.

        ``bounds`` only applies on first creation; later calls return
        the existing instrument unchanged.
        """
        return self._get_or_create(
            self._histograms, name, lambda: Histogram(name, self._lock, bounds)
        )

    def snapshot(self) -> dict:
        """Plain-dict view with name-sorted keys (deterministic exports).

        ``{"counters": {...}, "gauges": {...}, "histograms": {...}}``;
        gauges expand to ``{"value", "min", "max", "updates"}`` so a
        consumer can tell a steady gauge from a swinging one, and
        histograms expand to their summary stats
        (``count``/``sum``/``mean``/``min``/``max``/``p50``/``p90``/``p99``).
        """
        with self._lock:
            counters = {
                name: self._counters[name].value
                for name in sorted(self._counters)
            }
            gauges = {}
            for name in sorted(self._gauges):
                g = self._gauges[name]
                gauges[name] = {
                    "value": g.value,
                    "min": g.min,
                    "max": g.max,
                    "updates": g.updates,
                }
            # Histogram.snapshot() takes the shared lock; build the dict
            # from percentile math inline to stay reentrant-free.
            histograms = {}
            for name in sorted(self._histograms):
                h = self._histograms[name]
                histograms[name] = {
                    "count": h.count,
                    "sum": h.sum,
                    "mean": h.sum / h.count if h.count else None,
                    "min": h.min,
                    "max": h.max,
                    "p50": h._percentile_locked(50.0),
                    "p90": h._percentile_locked(90.0),
                    "p99": h._percentile_locked(99.0),
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}
