"""Counters and gauges: the cumulative half of ``repro.obs``.

Spans answer "where did the time go"; the registry answers "how many /
how much".  A :class:`MetricsRegistry` creates named :class:`Counter`
(monotonic) and :class:`Gauge` (last-value, with min/max watermarks)
instruments on demand, and snapshots them into plain dicts that travel
in ``SimulationResult.metadata["obs"]`` and benchmark rows.

All mutations take the registry's lock, so instruments can be bumped
from worker threads (``TaskRunner`` tasks) without corruption.  The
counters surfaced from always-on sources (``DDPackage.stats``,
``GateDDCache.hits``) are plain ints updated inline by their owners and
only *copied* into a snapshot here -- keeping the hot DD recursions free
of locking.
"""

from __future__ import annotations

import threading

__all__ = ["Counter", "Gauge", "MetricsRegistry"]


class Counter:
    """Monotonically increasing named count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-value instrument with min/max watermarks."""

    __slots__ = ("name", "value", "min", "max", "updates", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value: float | None = None
        self.min: float | None = None
        self.max: float | None = None
        self.updates = 0
        self._lock = lock

    def set(self, value: float) -> None:
        """Record the gauge's current value."""
        value = float(value)
        with self._lock:
            self.value = value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            self.updates += 1


class MetricsRegistry:
    """Create-on-demand collection of named counters and gauges."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name, self._lock))
        return c

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name, self._lock))
        return g

    def snapshot(self) -> dict:
        """Plain-dict view: ``{"counters": {...}, "gauges": {...}}``.

        Gauges expand to ``{"value", "min", "max", "updates"}`` so a
        consumer can tell a steady gauge from a swinging one.
        """
        with self._lock:
            counters = {name: c.value for name, c in self._counters.items()}
            gauges = {
                name: {
                    "value": g.value,
                    "min": g.min,
                    "max": g.max,
                    "updates": g.updates,
                }
                for name, g in self._gauges.items()
            }
        return {"counters": counters, "gauges": gauges}
