"""Per-phase aggregation and the human-readable profile table.

The simulators mark their pipeline stages with ``category="phase"``
spans ("dd_phase", "conversion", "fusion", "dmav_phase", ...) and emit
fine-grained per-gate/per-thread spans inside them.  This module folds a
tracer back into the per-phase view the paper reasons in:

* :func:`summarize_phases` -- one :class:`PhaseSummary` per phase span,
  in execution order, with the count of fine-grained spans that fall
  inside the phase's interval (attribution is by time containment, so it
  needs no naming convention from the emitters).
* :func:`format_summary_table` -- the aligned text table the CLI prints
  for ``--profile``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.tracer import Span, Tracer

__all__ = ["PhaseSummary", "summarize_phases", "format_summary_table"]

#: Category marking top-level pipeline-stage spans.
PHASE_CATEGORY = "phase"


@dataclass(frozen=True)
class PhaseSummary:
    """Aggregate of one pipeline phase."""

    name: str
    seconds: float
    #: Fraction of the summed phase time (0..1); 0 when nothing ran.
    share: float
    #: Fine-grained (non-phase) spans inside the phase's interval.
    inner_spans: int
    start: float

    def as_dict(self) -> dict:
        """JSON-serializable view (used in ``metadata["obs"]``)."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "share": self.share,
            "inner_spans": self.inner_spans,
        }


def summarize_phases(tracer: Tracer) -> list[PhaseSummary]:
    """Aggregate a tracer's phase spans, ordered by start time.

    Repeated phases with the same name (e.g. per-backend phases in a
    ``compare`` run against one tracer) are merged into one row keyed on
    the first occurrence's start.
    """
    phases = [s for s in tracer.spans if s.category == PHASE_CATEGORY]
    inner = [s for s in tracer.spans if s.category != PHASE_CATEGORY]
    merged: dict[str, list[Span]] = {}
    for span in sorted(phases, key=lambda s: s.start):
        merged.setdefault(span.name, []).append(span)
    total = sum(s.duration for s in phases) or 1.0
    out = []
    for name, spans in merged.items():
        seconds = sum(s.duration for s in spans)
        count = sum(
            1
            for i in inner
            for p in spans
            if p.start <= i.start < p.end
        )
        out.append(
            PhaseSummary(
                name=name,
                seconds=seconds,
                share=seconds / total,
                inner_spans=count,
                start=spans[0].start,
            )
        )
    out.sort(key=lambda p: p.start)
    return out


def format_summary_table(
    tracer: Tracer, wall_seconds: float | None = None
) -> str:
    """Render the per-phase profile as an aligned text table.

    ``wall_seconds`` (e.g. the simulation's measured runtime) replaces
    the phase-sum as the denominator of the percentage column when
    given, exposing time spent outside any phase.
    """
    summaries = summarize_phases(tracer)
    if not summaries:
        return "(no phase spans recorded)"
    denom = wall_seconds if wall_seconds else sum(s.seconds for s in summaries)
    denom = denom or 1.0
    lines = [f"{'phase':<16s} {'seconds':>10s} {'%':>6s} {'spans':>7s}"]
    for s in summaries:
        lines.append(
            f"{s.name:<16s} {s.seconds:>10.4f} "
            f"{100.0 * s.seconds / denom:>6.1f} {s.inner_spans:>7d}"
        )
    total = sum(s.seconds for s in summaries)
    lines.append(
        f"{'total':<16s} {total:>10.4f} {100.0 * total / denom:>6.1f} "
        f"{sum(s.inner_spans for s in summaries):>7d}"
    )
    return "\n".join(lines)
