"""Telemetry: periodic registry snapshots as a machine-readable time series.

Counters and histograms answer "what happened over the whole run"; the
:class:`TelemetrySampler` answers "what was happening *over time*" -- it
snapshots a :class:`~repro.obs.metrics.MetricsRegistry` on a fixed
interval from a daemon thread and appends each snapshot as one JSONL
record, so a long serve batch leaves behind a trajectory (queue depth,
cache hit counters, latency percentiles per tick) instead of a single
final number.  On ``stop()`` it takes a final sample and optionally
writes a Prometheus text-exposition dump of the last snapshot -- the
shape a scrape endpoint would serve, usable directly with
``promtool``/Grafana ingestion for ad-hoc inspection.

The terminal side lives here too: :func:`format_metrics_table` renders
one snapshot (the ``repro report`` summary of a telemetry file or a
serve report's latency block) as aligned text.

Every record carries **both** clocks: ``ts`` (``time.time``, wall,
comparable across processes) and ``ts_mono`` (``time.perf_counter``,
monotonic, safe for intra-process durations) -- same convention as the
serve journal.
"""

from __future__ import annotations

import json
import math
import threading
import time

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "TelemetrySampler",
    "format_metrics_table",
    "format_telemetry_report",
    "load_telemetry",
    "prometheus_text",
]


class TelemetrySampler:
    """Samples a registry on an interval into a JSONL time series.

    Usage::

        registry = MetricsRegistry()
        with TelemetrySampler(registry, "telemetry.jsonl",
                              interval_seconds=0.5) as sampler:
            ...  # run the batch
        # telemetry.jsonl now holds one snapshot per tick + a final one

    The sampling thread is a daemon and wakes via an :class:`Event`, so
    ``stop()`` returns promptly mid-interval.  ``sample_now()`` can also
    be called without ``start()`` for purely manual sampling.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        jsonl_path: str | None = None,
        interval_seconds: float = 1.0,
        prometheus_path: str | None = None,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be positive, got {interval_seconds}"
            )
        self.registry = registry
        self.jsonl_path = jsonl_path
        self.interval_seconds = interval_seconds
        self.prometheus_path = prometheus_path
        self.samples_taken = 0
        self._fh = open(jsonl_path, "w", encoding="utf-8") if jsonl_path else None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._last_snapshot: dict | None = None

    # -- sampling -----------------------------------------------------

    def sample_now(self) -> dict:
        """Take one snapshot record and append it to the JSONL file."""
        record = {
            "ts": time.time(),
            "ts_mono": time.perf_counter(),
            "seq": self.samples_taken,
        }
        record.update(self.registry.snapshot())
        with self._lock:
            self.samples_taken += 1
            record["seq"] = self.samples_taken - 1
            self._last_snapshot = record
            if self._fh is not None:
                self._fh.write(
                    json.dumps(record, sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
                self._fh.flush()
        return record

    def _run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            self.sample_now()

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "TelemetrySampler":
        """Begin periodic sampling (idempotent)."""
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-telemetry", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> dict:
        """Stop sampling, take a final snapshot, flush files; returns it."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        final = self.sample_now()
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
        if self.prometheus_path is not None:
            with open(self.prometheus_path, "w", encoding="utf-8") as fh:
                fh.write(prometheus_text(self.registry))
        return final

    def __enter__(self) -> "TelemetrySampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _prom_name(name: str) -> str:
    """Metric name mapped to Prometheus conventions (dots -> underscores)."""
    out = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if out and out[0].isdigit():
        out = "_" + out
    return f"repro_{out}"


def _prom_value(value: float | None) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    Counters/gauges map 1:1; histograms emit the standard cumulative
    ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.  Names are
    prefixed ``repro_`` with dots flattened to underscores, so
    ``serve.latency.e2e`` scrapes as ``repro_serve_latency_e2e``.
    """
    snap = registry.snapshot()
    lines: list[str] = []
    for name, value in snap["counters"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, gauge in snap["gauges"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(gauge['value'])}")
    for name in snap["histograms"]:
        hist = registry.histogram(name)
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        for bound, cumulative in hist.bucket_counts():
            le = "+Inf" if bound == math.inf else _prom_value(bound)
            lines.append(f'{prom}_bucket{{le="{le}"}} {cumulative}')
        lines.append(f"{prom}_sum {_prom_value(hist.sum)}")
        lines.append(f"{prom}_count {hist.count}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Terminal summaries (repro report)
# ---------------------------------------------------------------------------


def _fmt(value, unit_seconds: bool = False) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if unit_seconds:
            return f"{value * 1e3:.3f}ms" if value < 1.0 else f"{value:.3f}s"
        return f"{value:.6g}"
    return str(value)


def format_metrics_table(snapshot: dict, title: str = "metrics") -> str:
    """Render one registry snapshot as an aligned terminal table.

    Histograms get the full distribution row (count, mean, p50/p90/p99,
    max); counters and gauges get compact value rows.  Latency-named
    instruments (``*.latency.*``, ``*_seconds``) format as durations.
    """
    lines = [title, "=" * len(title)]
    histograms = snapshot.get("histograms", {})
    if histograms:
        header = (
            f"{'histogram':<34s} {'count':>7s} {'mean':>10s} "
            f"{'p50':>10s} {'p90':>10s} {'p99':>10s} {'max':>10s}"
        )
        lines += [header, "-" * len(header)]
        for name, h in histograms.items():
            seconds = "latency" in name or name.endswith("_seconds")
            lines.append(
                f"{name:<34s} {h['count']:>7d} "
                f"{_fmt(h['mean'], seconds):>10s} "
                f"{_fmt(h['p50'], seconds):>10s} "
                f"{_fmt(h['p90'], seconds):>10s} "
                f"{_fmt(h['p99'], seconds):>10s} "
                f"{_fmt(h['max'], seconds):>10s}"
            )
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("")
        lines.append(f"{'counter':<46s} {'value':>12s}")
        lines.append("-" * 59)
        for name, value in counters.items():
            lines.append(f"{name:<46s} {value:>12d}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("")
        header = f"{'gauge':<34s} {'value':>12s} {'min':>12s} {'max':>12s}"
        lines += [header, "-" * len(header)]
        for name, g in gauges.items():
            lines.append(
                f"{name:<34s} {_fmt(g['value']):>12s} "
                f"{_fmt(g['min']):>12s} {_fmt(g['max']):>12s}"
            )
    return "\n".join(lines)


def load_telemetry(path: str) -> list[dict]:
    """Parse a TelemetrySampler JSONL file back into snapshot records."""
    records: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: invalid telemetry record: {exc}"
                ) from exc
            records.append(record)
    return records


def format_telemetry_report(records: list[dict], path: str = "") -> str:
    """Summary of a telemetry time series: span, ticks, final snapshot."""
    if not records:
        return f"telemetry {path}: empty"
    first, last = records[0], records[-1]
    span = last.get("ts", 0.0) - first.get("ts", 0.0)
    head = (
        f"telemetry {path}: {len(records)} sample(s) over {span:.3f}s"
    )
    return head + "\n\n" + format_metrics_table(last, title="final snapshot")
