"""Span-based tracing: the event-recording core of ``repro.obs``.

A :class:`Tracer` records three kinds of events against one monotonic
clock (``time.perf_counter``, re-based to the tracer's construction):

* **spans** -- named intervals with a category, a thread id, a nesting
  depth, and free-form JSON-serializable ``args``.  Hot loops that
  already measure their own start/end (every backend's per-gate loop)
  append completed spans with :meth:`Tracer.record`; coarser code uses
  the :meth:`Tracer.span` context manager, which also maintains the
  per-thread nesting depth.
* **instants** -- point events (a GC run, a conversion trigger).
* **samples** -- ``(name, time, value)`` time series (DD size per gate,
  the EWMA value), exported as Chrome counter tracks.

Thread safety: records from concurrent threads interleave under one
lock; nesting depth is tracked per thread via ``threading.local``.

The default is :data:`NULL_TRACER`, a singleton whose methods do nothing
and allocate nothing, so instrumented code pays one attribute check
(``tracer.enabled``) per event when tracing is off.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["Span", "Instant", "Sample", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass(frozen=True)
class Span:
    """One completed named interval (times in seconds since tracer epoch)."""

    name: str
    category: str
    start: float
    duration: float
    thread_id: int
    depth: int = 0
    args: dict | None = None

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class Instant:
    """A point event (time in seconds since tracer epoch)."""

    name: str
    category: str
    ts: float
    thread_id: int
    args: dict | None = None


@dataclass(frozen=True)
class Sample:
    """One time-series sample (Chrome 'counter' track semantics)."""

    name: str
    ts: float
    value: float


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_category", "_args", "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str, category: str, args: dict):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._args = args

    def __enter__(self) -> "_SpanContext":
        self._depth = self._tracer._enter_depth()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        end = time.perf_counter()
        self._tracer._exit_depth()
        self._tracer.record(
            self._name,
            self._category,
            self._start,
            end,
            depth=self._depth,
            **self._args,
        )


class _NullSpanContext:
    """Reusable no-op context manager (one shared instance, no state)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


class Tracer:
    """Thread-safe recorder of spans, instants, and counter samples."""

    #: Instrumented hot loops check this before building event payloads.
    enabled: bool = True

    def __init__(self) -> None:
        #: perf_counter value all event timestamps are relative to.
        self.epoch = time.perf_counter()
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.samples: list[Sample] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- nesting ------------------------------------------------------

    def _enter_depth(self) -> int:
        depth = getattr(self._local, "depth", 0)
        self._local.depth = depth + 1
        return depth

    def _exit_depth(self) -> None:
        self._local.depth = max(getattr(self._local, "depth", 1) - 1, 0)

    @property
    def current_depth(self) -> int:
        """Nesting depth of the calling thread (0 outside any span)."""
        return getattr(self._local, "depth", 0)

    # -- recording ----------------------------------------------------

    def span(self, name: str, category: str = "span", **args) -> _SpanContext:
        """Context manager measuring a block as one span."""
        return _SpanContext(self, name, category, args)

    def record(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        thread_id: int | None = None,
        depth: int | None = None,
        **args,
    ) -> None:
        """Append a completed span measured with ``time.perf_counter``.

        ``start``/``end`` are absolute perf_counter values; they are
        re-based to the tracer epoch.  ``thread_id`` defaults to the OS
        thread ident; pass a small logical id for simulated threads.
        """
        span = Span(
            name=name,
            category=category,
            start=start - self.epoch,
            duration=end - start,
            thread_id=(
                thread_id if thread_id is not None else threading.get_ident()
            ),
            depth=depth if depth is not None else self.current_depth,
            args=args or None,
        )
        with self._lock:
            self.spans.append(span)

    def instant(
        self,
        name: str,
        category: str = "event",
        ts: float | None = None,
        thread_id: int | None = None,
        **args,
    ) -> None:
        """Record a point event (``ts`` is an absolute perf_counter value)."""
        evt = Instant(
            name=name,
            category=category,
            ts=(ts if ts is not None else time.perf_counter()) - self.epoch,
            thread_id=(
                thread_id if thread_id is not None else threading.get_ident()
            ),
            args=args or None,
        )
        with self._lock:
            self.instants.append(evt)

    def sample(self, name: str, value: float, ts: float | None = None) -> None:
        """Record one point of the ``name`` time series."""
        s = Sample(
            name=name,
            ts=(ts if ts is not None else time.perf_counter()) - self.epoch,
            value=float(value),
        )
        with self._lock:
            self.samples.append(s)

    # -- queries ------------------------------------------------------

    def wall_seconds(self) -> float:
        """Extent of recorded activity (max span end - min span start)."""
        if not self.spans:
            return 0.0
        return max(s.end for s in self.spans) - min(s.start for s in self.spans)

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.samples)


class NullTracer:
    """Do-nothing tracer: the zero-overhead disabled default.

    Shares the :class:`Tracer` surface; every method is a no-op and
    every collection is an (immutable) empty tuple, so accidental use
    can neither record nor allocate.
    """

    enabled: bool = False
    epoch: float = 0.0
    spans: tuple = ()
    instants: tuple = ()
    samples: tuple = ()
    current_depth: int = 0

    def span(self, name: str, category: str = "span", **args) -> _NullSpanContext:
        """Return the shared no-op context manager."""
        return _NULL_SPAN

    def record(self, *a, **kw) -> None:
        """Discard the span."""

    def instant(self, *a, **kw) -> None:
        """Discard the event."""

    def sample(self, *a, **kw) -> None:
        """Discard the sample."""

    def wall_seconds(self) -> float:
        """Always 0.0 (nothing is recorded)."""
        return 0.0

    def __len__(self) -> int:
        return 0


#: Shared disabled tracer; instrumented code falls back to this when the
#: caller passes ``tracer=None``.
NULL_TRACER = NullTracer()
