"""Observables: Pauli strings/sums and model Hamiltonians."""

from repro.observables.dd_expectation import (
    dd_pauli_expectation,
    dd_sum_expectation,
)
from repro.observables.hamiltonians import (
    heisenberg_xxz,
    maxcut,
    transverse_field_ising,
)
from repro.observables.pauli import PauliString, PauliSum

__all__ = [
    "PauliString",
    "PauliSum",
    "dd_pauli_expectation",
    "dd_sum_expectation",
    "heisenberg_xxz",
    "maxcut",
    "transverse_field_ising",
]
