"""Pauli expectation values computed directly on DD states.

``<psi| P |psi>`` = inner_product(psi, P psi): the Pauli string becomes a
gate-factor matrix DD (one 2x2 factor per qubit, identity elsewhere), the
product uses the standard DD matrix-vector kernel, and the inner product
runs on the memoized node-pair kernel.  For regular states this never
touches 2**n amplitudes -- enabling observables at the large qubit counts
of ``DDSimulator(keep_dd=True)``.
"""

from __future__ import annotations

import numpy as np

from repro.dd.matrix import matrix_from_factors
from repro.dd.node import Edge
from repro.dd.operations import inner_product, mv_multiply
from repro.dd.package import DDPackage
from repro.observables.pauli import PauliString, PauliSum

__all__ = ["dd_pauli_expectation", "dd_sum_expectation"]

_FACTORS = {
    "I": np.eye(2, dtype=np.complex128),
    "X": np.array([[0, 1], [1, 0]], dtype=np.complex128),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
    "Z": np.diag([1, -1]).astype(np.complex128),
}


def _pauli_dd(pkg: DDPackage, pauli: PauliString) -> Edge:
    ops = dict(pauli.paulis)
    factors = [
        _FACTORS[ops.get(q, "I")] for q in range(pkg.num_qubits)
    ]
    return matrix_from_factors(pkg, factors)


def dd_pauli_expectation(
    pkg: DDPackage, state: Edge, pauli: PauliString
) -> complex:
    """``coefficient * <state| P |state>`` for a normalized DD state."""
    applied = mv_multiply(pkg, _pauli_dd(pkg, pauli), state)
    return complex(pauli.coefficient * inner_product(pkg, state, applied))


def dd_sum_expectation(
    pkg: DDPackage, state: Edge, hamiltonian: PauliSum
) -> complex:
    """``<state| H |state>`` summed term by term on the DD."""
    return complex(
        sum(dd_pauli_expectation(pkg, state, term) for term in hamiltonian)
    )
