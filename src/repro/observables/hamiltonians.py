"""Model Hamiltonian builders used by the VQE workloads and examples."""

from __future__ import annotations

from repro.common.errors import CircuitError
from repro.observables.pauli import PauliString, PauliSum

__all__ = ["transverse_field_ising", "heisenberg_xxz", "maxcut"]


def transverse_field_ising(
    n: int, j: float = 1.0, h: float = 1.0, periodic: bool = True
) -> PauliSum:
    """H = -J sum Z_i Z_{i+1} - h sum X_i on a chain/ring of n qubits."""
    if n < 2:
        raise CircuitError("Ising model needs at least 2 qubits")
    terms = []
    last = n if periodic else n - 1
    for q in range(last):
        terms.append(
            PauliString(((q, "Z"), ((q + 1) % n, "Z")), -j)
        )
    for q in range(n):
        terms.append(PauliString.x(q, -h))
    return PauliSum(terms)


def heisenberg_xxz(
    n: int, jxy: float = 1.0, jz: float = 1.0, periodic: bool = False
) -> PauliSum:
    """XXZ chain: sum Jxy (X X + Y Y) + Jz Z Z on neighbouring pairs."""
    if n < 2:
        raise CircuitError("Heisenberg model needs at least 2 qubits")
    terms = []
    last = n if periodic else n - 1
    for q in range(last):
        nxt = (q + 1) % n
        terms.append(PauliString(((q, "X"), (nxt, "X")), jxy))
        terms.append(PauliString(((q, "Y"), (nxt, "Y")), jxy))
        terms.append(PauliString(((q, "Z"), (nxt, "Z")), jz))
    return PauliSum(terms)


def maxcut(edges: list[tuple[int, int]], weights: list[float] | None = None) -> PauliSum:
    """MaxCut cost Hamiltonian: sum w_ij (1 - Z_i Z_j) / 2.

    The identity part is kept as a weightless PauliString so expectation
    values equal the expected cut size directly.
    """
    if weights is None:
        weights = [1.0] * len(edges)
    if len(weights) != len(edges):
        raise CircuitError("weights must match edges")
    terms = []
    for (a, b), w in zip(edges, weights):
        if a == b:
            raise CircuitError(f"self-loop edge ({a}, {b})")
        terms.append(PauliString.identity(w / 2.0))
        terms.append(PauliString(((a, "Z"), (b, "Z")), -w / 2.0))
    return PauliSum(terms)
