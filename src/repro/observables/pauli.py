"""Pauli strings and sums: the observables layer over simulation results.

A :class:`PauliString` is a tensor product of single-qubit Pauli operators
with a coefficient; a :class:`PauliSum` is a linear combination.  Both
evaluate expectation values against flat state vectors with vectorized
index arithmetic (no 2**n x 2**n matrices): a Pauli string acts as a bit
mask (X/Y flips), a sign vector (Z/Y phases), and a global i^k phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.common.errors import CircuitError

__all__ = ["PauliString", "PauliSum"]

_VALID = frozenset("IXYZ")


@dataclass(frozen=True)
class PauliString:
    """A coefficient times a tensor product of Pauli operators.

    ``paulis`` maps qubit index -> 'X' | 'Y' | 'Z' (identity positions are
    simply absent).  Construct directly, from a dense label
    (:meth:`from_label`), or via the ``x/y/z`` helpers.
    """

    paulis: tuple[tuple[int, str], ...]
    coefficient: complex = 1.0

    def __post_init__(self) -> None:
        seen = set()
        for qubit, op in self.paulis:
            if op not in ("X", "Y", "Z"):
                raise CircuitError(f"invalid Pauli op {op!r}")
            if qubit < 0:
                raise CircuitError(f"negative qubit {qubit}")
            if qubit in seen:
                raise CircuitError(f"duplicate qubit {qubit} in Pauli string")
            seen.add(qubit)
        object.__setattr__(
            self, "paulis", tuple(sorted(self.paulis))
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_label(cls, label: str, coefficient: complex = 1.0) -> "PauliString":
        """Build from a dense label; the rightmost character is qubit 0.

        ``from_label("ZXI")`` is Z on qubit 2, X on qubit 1.
        """
        if not label or set(label) - _VALID:
            raise CircuitError(f"invalid Pauli label {label!r}")
        paulis = tuple(
            (len(label) - 1 - i, ch)
            for i, ch in enumerate(label)
            if ch != "I"
        )
        return cls(paulis, coefficient)

    @classmethod
    def x(cls, qubit: int, coefficient: complex = 1.0) -> "PauliString":
        return cls(((qubit, "X"),), coefficient)

    @classmethod
    def y(cls, qubit: int, coefficient: complex = 1.0) -> "PauliString":
        return cls(((qubit, "Y"),), coefficient)

    @classmethod
    def z(cls, qubit: int, coefficient: complex = 1.0) -> "PauliString":
        return cls(((qubit, "Z"),), coefficient)

    @classmethod
    def identity(cls, coefficient: complex = 1.0) -> "PauliString":
        return cls((), coefficient)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def weight(self) -> int:
        """Number of non-identity positions."""
        return len(self.paulis)

    def qubits(self) -> tuple[int, ...]:
        return tuple(q for q, _ in self.paulis)

    def label(self, num_qubits: int) -> str:
        """Dense label over ``num_qubits`` (rightmost char = qubit 0)."""
        ops = dict(self.paulis)
        return "".join(
            ops.get(q, "I") for q in range(num_qubits - 1, -1, -1)
        )

    def __mul__(self, scalar: complex) -> "PauliString":
        return PauliString(self.paulis, self.coefficient * scalar)

    __rmul__ = __mul__

    def __neg__(self) -> "PauliString":
        return self * -1.0

    def __add__(self, other) -> "PauliSum":
        return PauliSum([self]) + other

    # ------------------------------------------------------------------
    # Action on states
    # ------------------------------------------------------------------

    def _masks(self, num_qubits: int) -> tuple[int, np.ndarray, complex]:
        """(flip mask, per-index sign array, global phase) of the string."""
        idx = np.arange(1 << num_qubits)
        flip = 0
        sign = np.ones(1 << num_qubits, dtype=np.complex128)
        phase: complex = 1.0
        for qubit, op in self.paulis:
            if qubit >= num_qubits:
                raise CircuitError(
                    f"Pauli acts on qubit {qubit} but state has "
                    f"{num_qubits} qubits"
                )
            bit = (idx >> qubit) & 1
            if op == "X":
                flip |= 1 << qubit
            elif op == "Z":
                sign = sign * (1 - 2 * bit)
            else:  # Y = i * X * Z
                flip |= 1 << qubit
                sign = sign * (1 - 2 * bit)
                phase *= 1j
        return flip, sign, phase

    def apply(self, state: np.ndarray) -> np.ndarray:
        """``coefficient * P |state>`` as a new array."""
        n = state.size.bit_length() - 1
        flip, sign, phase = self._masks(n)
        idx = np.arange(state.size)
        return (self.coefficient * phase) * (sign * state)[idx ^ flip]

    def expectation(self, state: np.ndarray) -> complex:
        """``coefficient * <state| P |state>`` (exact, vectorized)."""
        n = state.size.bit_length() - 1
        flip, sign, phase = self._masks(n)
        idx = np.arange(state.size)
        value = np.vdot(state, (sign * state)[idx ^ flip] * phase)
        return complex(self.coefficient * value)

    def __repr__(self) -> str:
        body = "*".join(f"{op}{q}" for q, op in self.paulis) or "I"
        return f"({self.coefficient:g})*{body}"


class PauliSum:
    """A linear combination of Pauli strings (a Hamiltonian)."""

    def __init__(self, terms: Iterable[PauliString] = ()) -> None:
        self.terms: list[PauliString] = list(terms)

    def __add__(self, other) -> "PauliSum":
        if isinstance(other, PauliString):
            return PauliSum([*self.terms, other])
        if isinstance(other, PauliSum):
            return PauliSum([*self.terms, *other.terms])
        return NotImplemented

    __radd__ = __add__

    def __mul__(self, scalar: complex) -> "PauliSum":
        return PauliSum([t * scalar for t in self.terms])

    __rmul__ = __mul__

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self) -> Iterator[PauliString]:
        return iter(self.terms)

    def simplify(self) -> "PauliSum":
        """Merge terms with identical Pauli content; drop zeros."""
        merged: dict[tuple, complex] = {}
        for t in self.terms:
            merged[t.paulis] = merged.get(t.paulis, 0.0) + t.coefficient
        return PauliSum(
            PauliString(p, c) for p, c in merged.items() if abs(c) > 1e-14
        )

    def expectation(self, state: np.ndarray) -> complex:
        """``<state| H |state>`` summed over all terms."""
        return complex(sum(t.expectation(state) for t in self.terms))

    def apply(self, state: np.ndarray) -> np.ndarray:
        out = np.zeros_like(state)
        for t in self.terms:
            out += t.apply(state)
        return out

    def variance(self, state: np.ndarray) -> float:
        """``<H^2> - <H>^2`` (real for Hermitian sums)."""
        h_psi = self.apply(state)
        h2 = np.vdot(h_psi, h_psi).real
        h1 = self.expectation(state).real
        return float(h2 - h1 * h1)

    def __repr__(self) -> str:
        return " + ".join(map(repr, self.terms)) or "0"
