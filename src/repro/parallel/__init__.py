"""Parallel execution substrate: thread pools, partitioning, SIMD stand-ins."""

from repro.parallel.arena import BufferArena
from repro.parallel.partition import border_level, chunk_bounds
from repro.parallel.pool import TaskRunner, validate_thread_count
from repro.parallel.simd import (
    COUNTERS,
    simd_add,
    simd_mul,
    simd_mul_into,
    simd_scale_into,
)

__all__ = [
    "BufferArena",
    "COUNTERS",
    "TaskRunner",
    "border_level",
    "chunk_bounds",
    "simd_add",
    "simd_mul",
    "simd_mul_into",
    "simd_scale_into",
    "validate_thread_count",
]
