"""Persistent buffer arena for the DMAV array phase.

The array-phase hot loop needs three kinds of ``2**n`` complex128 scratch
memory per gate: the output array it writes (``w``), and -- for cached
DMAV -- the partial output buffers of Algorithm 2.  Before the plan
compiler, ``dmav_cached`` allocated (and zero-filled) ``num_buffers``
fresh arrays per gate application and the simulator zero-filled the
ping-pong output on every gate; at 20 qubits that is 16 MiB of pages
faulted and memset per buffer per gate.

:class:`BufferArena` owns this memory for the lifetime of one simulation
run:

* **output ping-pong** -- :meth:`output` hands out the next output array
  together with a ``dirty`` flag; after the gate, :meth:`retire` returns
  the *previous* state array to the arena, where it becomes the next
  gate's output buffer.  Only the very first output is allocated (and is
  clean); every later one is the recycled input of two gates ago and is
  flagged dirty so the DMAV kernels know whether a zero-fill can be
  skipped.
* **partial pool** -- :meth:`partials` returns the first ``count``
  buffers of a grow-only pool.  Buffers are never zeroed by the arena:
  the planned ``dmav_cached`` write-path assigns (rather than
  accumulates) each buffer slice exactly once, so stale contents are
  simply overwritten and unwritten slices are never read (the plan's
  writer lists say which slices each buffer actually produced).

The allocation counters make "zero per-gate allocations after warm-up"
an assertable property instead of a timing inference:
``partial_allocs`` can only ever reach the pool's high-water mark
(bounded by the thread count), while the per-gate churn it replaces grew
with the gate count.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BufferArena"]


class BufferArena:
    """Reusable output + partial-buffer memory for one DMAV phase."""

    def __init__(
        self, size: int, rows: int | None = None, tiles: int | None = None
    ) -> None:
        if size < 1:
            raise ValueError(f"arena size must be >= 1, got {size}")
        if rows is not None and rows < 1:
            raise ValueError(f"arena rows must be >= 1, got {rows}")
        if tiles is not None:
            if rows is None:
                raise ValueError("arena tiles require rows")
            if tiles < 1 or size % tiles:
                raise ValueError(
                    f"arena tiles must divide size, got {tiles} for {size}"
                )
        #: Amplitudes per buffer (``2**n``).
        self.size = size
        #: Batch rows per buffer (``None`` = single-shot 1-D buffers).
        #: The sweep path (:mod:`repro.core.sweep`) hands every DMAV gate
        #: a batched ping-pong output and batched partials so the whole
        #: batch shares one arena warm-up.
        self.rows = rows
        #: Batched buffers are *tile-major*: ``(tiles, rows, size//tiles)``
        #: with one tile per DMAV thread chunk, so every chunk-aligned
        #: task slice is one C-contiguous ``(rows, chunk)`` block instead
        #: of a strided column range of a ``(rows, 2**n)`` array.
        self.tiles = tiles
        if rows is None:
            self._shape: tuple[int, ...] = (size,)
        elif tiles is None:
            self._shape = (rows, size)
        else:
            self._shape = (tiles, rows, size // tiles)
        self._output: np.ndarray | None = None
        self._output_dirty = False
        self._partials: list[np.ndarray] = []
        #: Output arrays allocated (1 after the first gate, forever).
        self.output_allocs = 0
        #: Partial buffers allocated -- the pool's high-water mark.
        self.partial_allocs = 0
        #: Partial buffers served from the pool without allocating.
        self.partial_reuses = 0

    # -- output ping-pong ----------------------------------------------

    def output(self) -> tuple[np.ndarray, bool]:
        """The next gate's output array and whether it holds stale data.

        A clean (freshly zeroed) buffer lets the DMAV kernels skip their
        defensive fills; a dirty one (a recycled former state) requires
        them only for slices no task writes.
        """
        if self._output is None:
            self._output = np.zeros(self._shape, dtype=np.complex128)
            self._output_dirty = False
            self.output_allocs += 1
        return self._output, self._output_dirty

    def retire(self, state: np.ndarray) -> None:
        """Recycle the consumed input state as the next output buffer."""
        if state.shape != self._shape:
            raise ValueError(
                f"retired array has shape {state.shape}, arena shape "
                f"{self._shape}"
            )
        self._output = state
        self._output_dirty = True

    # -- partial-buffer pool -------------------------------------------

    def partials(self, count: int) -> list[np.ndarray]:
        """The first ``count`` pool buffers, growing the pool if needed.

        Returned buffers are *not* zeroed -- callers must treat every
        slice they read as write-before-read (the planned ``dmav_cached``
        does, by construction).
        """
        have = len(self._partials)
        self.partial_reuses += min(count, have)
        while len(self._partials) < count:
            self._partials.append(np.empty(self._shape, dtype=np.complex128))
            self.partial_allocs += 1
        return self._partials[:count]

    # -- accounting ----------------------------------------------------

    @property
    def partial_bytes(self) -> int:
        """Bytes currently held by the partial pool."""
        return sum(buf.nbytes for buf in self._partials)

    @property
    def bytes_held(self) -> int:
        """Bytes held by the arena (output buffer + partial pool)."""
        out = self._output.nbytes if self._output is not None else 0
        return out + self.partial_bytes
