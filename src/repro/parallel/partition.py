"""Work-partitioning helpers shared by DMAV and the conversion algorithm."""

from __future__ import annotations

from repro.common.bits import ilog2

__all__ = ["border_level", "chunk_bounds"]


def border_level(num_qubits: int, threads: int) -> int:
    """The Assign/Run hand-off level ``n - log2(t) - 1`` (Algorithm 1).

    Assign recurses from the root down to this level, splitting the thread
    set in half per level; Run takes over from here with one sub-matrix /
    sub-vector task per thread per path.
    """
    return num_qubits - ilog2(threads) - 1


def chunk_bounds(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` contiguous near-equal chunks."""
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    base, extra = divmod(total, parts)
    bounds = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds
