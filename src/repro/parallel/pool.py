"""Thread execution substrate.

FlatDD's algorithms are specified for ``t`` worker threads (t a power of
two).  :class:`TaskRunner` executes a list of per-thread thunks either
inline (deterministic, default -- the container is single-core, see
DESIGN.md substitution 1) or on a real ``ThreadPoolExecutor``.  Both paths
run the *same* partitioned tasks, so correctness of the parallel
decomposition is exercised regardless of the execution mode.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.common.bits import is_power_of_two
from repro.common.errors import ParallelError

T = TypeVar("T")

__all__ = ["TaskRunner", "validate_thread_count"]


def validate_thread_count(threads: int, num_qubits: int) -> None:
    """DMAV's Assign needs t a power of two with ``log2 t < n``."""
    if not is_power_of_two(threads):
        raise ParallelError(f"thread count must be a power of two, got {threads}")
    if threads > (1 << max(num_qubits - 1, 0)):
        raise ParallelError(
            f"thread count {threads} too large for {num_qubits} qubits "
            f"(need t <= 2**(n-1))"
        )


class TaskRunner:
    """Runs per-thread task lists; owns an optional shared thread pool."""

    def __init__(self, threads: int, use_pool: bool = False) -> None:
        if threads < 1:
            raise ParallelError(f"threads must be >= 1, got {threads}")
        self.threads = threads
        self.use_pool = use_pool and threads > 1
        self._pool: ThreadPoolExecutor | None = None

    def __enter__(self) -> "TaskRunner":
        if self.use_pool:
            self._pool = ThreadPoolExecutor(max_workers=self.threads)
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def run(self, thunks: Sequence[Callable[[], T]]) -> list[T]:
        """Execute thunks "in parallel"; results keep input order.

        Exceptions propagate to the caller in both modes.
        """
        if not self.use_pool:
            return [fn() for fn in thunks]
        if self._pool is None:
            # Allow use without context manager: a transient pool per call.
            with ThreadPoolExecutor(max_workers=self.threads) as pool:
                return list(pool.map(lambda fn: fn(), thunks))
        return list(self._pool.map(lambda fn: fn(), thunks))

    def map(self, fn: Callable[[T], object], items: Iterable[T]) -> list:
        return self.run([lambda item=item: fn(item) for item in items])
