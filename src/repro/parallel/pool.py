"""Thread execution substrate.

FlatDD's algorithms are specified for ``t`` worker threads (t a power of
two).  :class:`TaskRunner` executes a list of per-thread thunks either
inline (deterministic, default -- the container is single-core, see
DESIGN.md substitution 1) or on a real ``ThreadPoolExecutor``.  Both paths
run the *same* partitioned tasks, so correctness of the parallel
decomposition is exercised regardless of the execution mode.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.common.bits import is_power_of_two
from repro.common.errors import ParallelError

T = TypeVar("T")

__all__ = ["TaskRunner", "validate_thread_count"]


def validate_thread_count(threads: int, num_qubits: int) -> None:
    """DMAV's Assign needs t a power of two with ``log2 t < n``."""
    if not is_power_of_two(threads):
        raise ParallelError(f"thread count must be a power of two, got {threads}")
    if threads > (1 << max(num_qubits - 1, 0)):
        raise ParallelError(
            f"thread count {threads} too large for {num_qubits} qubits "
            f"(need t <= 2**(n-1))"
        )


class TaskRunner:
    """Runs per-thread task lists; owns an optional shared thread pool.

    When a :class:`~repro.obs.tracer.Tracer` is attached (``tracer``
    argument or attribute), every batch times each task: a span per task
    (category ``"pool"``, one track per logical worker) plus cumulative
    ``busy_seconds`` / ``task_counts`` per worker slot, from which the
    observability layer derives per-thread utilization.  With no tracer
    (the default) ``run`` is the bare dispatch loop.
    """

    def __init__(
        self,
        threads: int,
        use_pool: bool = False,
        tracer=None,
        cancel_pending: bool = False,
    ) -> None:
        if threads < 1:
            raise ParallelError(f"threads must be >= 1, got {threads}")
        self.threads = threads
        self.use_pool = use_pool and threads > 1
        self._pool: ThreadPoolExecutor | None = None
        #: Optional repro.obs tracer; assign any time before a run() call.
        self.tracer = tracer
        #: Default for close(): drop queued-but-unstarted tasks on shutdown
        #: instead of draining them.  __exit__ forces this on when the
        #: managed block raised, so an exception can never wedge behind a
        #: backlog of doomed tasks.
        self.cancel_pending = cancel_pending
        #: Cumulative busy time per worker slot (traced batches only).
        self.busy_seconds = [0.0] * threads
        #: Tasks executed per worker slot (traced batches only).
        self.task_counts = [0] * threads
        #: Number of traced run() batches.
        self.batches = 0

    def __enter__(self) -> "TaskRunner":
        if self.use_pool and self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.threads)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(cancel_pending=self.cancel_pending or exc_type is not None)

    def close(self, cancel_pending: bool | None = None) -> None:
        """Shut the executor down; safe to call any number of times.

        ``cancel_pending=None`` uses the runner's default; ``True`` drops
        tasks that have not started yet (running tasks always complete).
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            if cancel_pending is None:
                cancel_pending = self.cancel_pending
            pool.shutdown(wait=True, cancel_futures=cancel_pending)

    def _timed(self, slot: int, fn: Callable[[], T]) -> Callable[[], T]:
        """Wrap one task with per-slot timing and a pool span."""

        def call() -> T:
            t0 = time.perf_counter()
            try:
                return fn()
            finally:
                t1 = time.perf_counter()
                self.busy_seconds[slot] += t1 - t0
                self.task_counts[slot] += 1
                self.tracer.record(
                    f"task[{slot}]", "pool", t0, t1, thread_id=slot
                )

        return call

    def run(self, thunks: Sequence[Callable[[], T]]) -> list[T]:
        """Execute thunks "in parallel"; results keep input order.

        Exceptions propagate to the caller in both modes.
        """
        if self.tracer is not None and self.tracer.enabled:
            self.batches += 1
            thunks = [
                self._timed(u % self.threads, fn)
                for u, fn in enumerate(thunks)
            ]
        if not self.use_pool:
            return [fn() for fn in thunks]
        if self._pool is None:
            # Allow use without context manager: a transient pool per call.
            with ThreadPoolExecutor(max_workers=self.threads) as pool:
                return list(pool.map(lambda fn: fn(), thunks))
        return list(self._pool.map(lambda fn: fn(), thunks))

    def map(self, fn: Callable[[T], object], items: Iterable[T]) -> list:
        return self.run([lambda item=item: fn(item) for item in items])
