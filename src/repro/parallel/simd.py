"""SIMD stand-ins (DESIGN.md substitution 1).

The paper's AVX2 kernels become numpy vectorized operations here.  They are
wrapped (rather than inlined at call sites) for two reasons: the names keep
the code aligned with Algorithm 2's ``SIMDMul``/``SIMDAdd``, and the module
counts invocations + elements so tests and the cost model can verify how
much work ran through the "SIMD" path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SimdCounters",
    "simd_mul",
    "simd_mul_into",
    "simd_add",
    "simd_scale_into",
]


@dataclass
class SimdCounters:
    """Invocation/element tallies for the SIMD stand-ins."""

    mul_calls: int = 0
    mul_elements: int = 0
    add_calls: int = 0
    add_elements: int = 0

    def reset(self) -> None:
        self.mul_calls = self.mul_elements = 0
        self.add_calls = self.add_elements = 0


#: Global counters; callers that care (tests, Figure 14 bench) reset first.
COUNTERS = SimdCounters()


def simd_mul(src: np.ndarray, scalar: complex) -> np.ndarray:
    """``scalar * src`` as one vectorized op (Algorithm 2 line 7)."""
    COUNTERS.mul_calls += 1
    COUNTERS.mul_elements += src.size
    return src * scalar


def simd_mul_into(out: np.ndarray, src: np.ndarray, scalar: complex) -> None:
    """``out[:] = scalar * src`` without the temporary of :func:`simd_mul`.

    The in-place variant of Algorithm 2's SIMDMul, used by
    ``dmav_cached``'s cache-hit path: ``out`` and ``src`` may be disjoint
    slices of the same partial buffer.  Counted once, like ``simd_mul``.
    """
    COUNTERS.mul_calls += 1
    COUNTERS.mul_elements += src.size
    np.multiply(src, scalar, out=out)


def simd_scale_into(out: np.ndarray, src: np.ndarray, scalar: complex) -> None:
    """``out[:] = scalar * src`` without allocating (conversion fast path)."""
    simd_mul_into(out, src, scalar)


def simd_add(out: np.ndarray, src: np.ndarray) -> None:
    """``out += src`` as one vectorized op (Algorithm 2 line 13)."""
    COUNTERS.add_calls += 1
    COUNTERS.add_elements += src.size
    out += src
