"""Resilience layer: checkpoint/restore and memory guardrails.

FlatDD's premise is surviving the regime where DD states blow up; this
package makes the *process* survive it too.  :mod:`repro.resilience.snapshot`
defines the versioned, checksummed snapshot format that captures either
phase of a FlatDD run (DD vector or flat array) for bit-identical resume;
:mod:`repro.resilience.guard` enforces a memory budget, degrading
gracefully (early DD-to-array conversion) in the DD phase and failing
structurally (checkpoint + :class:`~repro.common.errors.ResourceExhaustedError`)
in the array phase.  The durable-serving journal lives next to the service
it protects, in :mod:`repro.serve.journal`.
"""

from repro.resilience.guard import GuardReport, MemoryGuard
from repro.resilience.snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    Snapshot,
    decode_array_state,
    read_snapshot,
    snapshot_array_phase,
    snapshot_dd_phase,
    validate_snapshot,
    write_snapshot,
)

__all__ = [
    "GuardReport",
    "MemoryGuard",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "Snapshot",
    "decode_array_state",
    "read_snapshot",
    "snapshot_array_phase",
    "snapshot_dd_phase",
    "validate_snapshot",
    "write_snapshot",
]
