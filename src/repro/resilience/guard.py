"""Memory guardrails: budget watchdog over the analytic memory model.

The guard consumes the same per-gate working-set samples that feed
:class:`repro.metrics.memory.MemoryMeter` and enforces
``FlatDDConfig.memory_budget_bytes`` with phase-appropriate reactions:

* **DD phase**: a breach *degrades gracefully* -- the simulator forces the
  DD-to-array conversion early, along the paper's own escape hatch.  A
  runaway DD is exactly the regime FlatDD converts out of; the guard just
  moves the trigger from "growth looks irregular" (EWMA) to "growth is
  about to exceed the budget".
* **Array phase**: there is nothing cheaper to degrade to, so a breach
  writes a checkpoint (when the run has a checkpoint path) and raises a
  structured :class:`~repro.common.errors.ResourceExhaustedError` carrying
  the breach context -- observed bytes, budget, gate index, checkpoint
  path -- instead of letting the process die on OOM.

The guard never reacts to the *final* result materialization of a run that
stayed regular end to end: at that point the simulation is complete and
raising would discard a finished result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ResourceExhaustedError

__all__ = ["GuardReport", "MemoryGuard"]


@dataclass
class GuardReport:
    """What the guard did during one run (``metadata["guard"]``)."""

    budget_bytes: int
    #: Gate index where a DD-phase breach forced early conversion.
    dd_breach_gate: int | None = None
    dd_breach_bytes: int | None = None

    def to_dict(self) -> dict:
        return {
            "budget_bytes": self.budget_bytes,
            "dd_breach_gate": self.dd_breach_gate,
            "dd_breach_bytes": self.dd_breach_bytes,
        }


class MemoryGuard:
    """Budget watchdog for one simulation run.

    Constructed with ``budget_bytes=None`` the guard is inert (every check
    is a cheap no-op), so the simulator can install it unconditionally.
    """

    def __init__(self, budget_bytes: int | None) -> None:
        self.budget_bytes = budget_bytes
        self.report = (
            GuardReport(budget_bytes=budget_bytes)
            if budget_bytes is not None
            else None
        )

    @property
    def enabled(self) -> bool:
        return self.budget_bytes is not None

    def check_dd(self, observed_bytes: int, gate_index: int) -> bool:
        """DD-phase check; True means "force conversion now".

        Only the *first* breach forces conversion (the report records it);
        the simulator breaks out of the DD loop immediately after.
        """
        if self.budget_bytes is None or observed_bytes <= self.budget_bytes:
            return False
        if self.report.dd_breach_gate is None:
            self.report.dd_breach_gate = gate_index
            self.report.dd_breach_bytes = observed_bytes
        return True

    def check_array(
        self,
        observed_bytes: int,
        gate_index: int | None,
        checkpoint: Callable[[], str | None] | None = None,
        phase: str = "array",
    ) -> None:
        """Array-phase check; raises on breach.

        ``checkpoint`` is invoked (once) on breach to persist a resumable
        snapshot; its return value (the path, or None when the run has no
        checkpoint path configured) is carried on the raised
        :class:`ResourceExhaustedError`.  ``phase`` labels the breach
        ("array" for single-shot DMAV, "sweep" for batched replay).
        """
        if self.budget_bytes is None or observed_bytes <= self.budget_bytes:
            return
        path = checkpoint() if checkpoint is not None else None
        raise ResourceExhaustedError(
            phase=phase,
            observed_bytes=observed_bytes,
            budget_bytes=self.budget_bytes,
            gate_index=gate_index,
            checkpoint_path=path,
        )
