"""Versioned, checksummed snapshots of an in-flight FlatDD run.

A snapshot captures everything a fresh process needs to continue a run
*bit-identically* from a gate boundary:

* **DD phase** (``phase="dd"``): the state DD via the exact edge walk of
  :func:`repro.dd.io.serialize_vector_dd`, the full complex table
  (canonicalization is history-dependent -- which representative a future
  lookup returns depends on every bucket present, aliases included), and
  the EWMA monitor accumulator (so the conversion trigger fires at the
  same gate it would have in the uninterrupted run).
* **Array phase** (``phase="array"``): the flat amplitude array verbatim
  (base64 of the raw complex128 bytes), the conversion gate index, the
  cursor into the *emitted* (post-fusion) DMAV gate list, and again the
  complex table -- the resumed process rebuilds gate/fusion matrix DDs
  from scratch, and restoring the table makes every weight lookup resolve
  to the same representative it did originally.

The on-disk format is a single JSON document::

    {"magic": "flatdd-snapshot", "version": 1,
     "checksum": "<sha256 of canonical payload JSON>",
     "payload": {"phase": ..., "gate_cursor": ..., "num_qubits": ...,
                 "circuit_fingerprint": ..., "config_digest": ...,
                 "data": {...}}}

Floats round-trip via ``float.hex`` / raw bytes, never decimal repr.
Writes are atomic (temp file + ``os.replace``) so a crash mid-write leaves
either the previous snapshot or none -- never a torn one.  Readers verify
magic, version, and checksum, and :func:`validate_snapshot` additionally
pins the snapshot to one circuit and one semantic config; every rejection
raises :class:`~repro.common.errors.CheckpointError`.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
from dataclasses import dataclass

import numpy as np

from repro.common.errors import CheckpointError

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "Snapshot",
    "decode_array_state",
    "read_snapshot",
    "snapshot_array_phase",
    "snapshot_dd_phase",
    "snapshot_sweep_phase",
    "validate_snapshot",
    "write_snapshot",
]

SNAPSHOT_MAGIC = "flatdd-snapshot"
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class Snapshot:
    """One resumable cut through a FlatDD run."""

    #: "dd" (still in the DD phase) or "array" (post-conversion DMAV).
    phase: str
    #: Next unit of work: circuit gate index for "dd", index into the
    #: emitted (post-fusion) DMAV gate list for "array".
    gate_cursor: int
    num_qubits: int
    #: Canonical circuit fingerprint; resume refuses other circuits.
    circuit_fingerprint: str
    #: Semantic config digest; resume refuses configs that could change
    #: the result (execution-only knobs like thread pools are excluded).
    config_digest: str
    #: Phase-specific payload (see module docstring).
    data: dict

    def to_payload(self) -> dict:
        """The checksummed payload document."""
        return {
            "phase": self.phase,
            "gate_cursor": self.gate_cursor,
            "num_qubits": self.num_qubits,
            "circuit_fingerprint": self.circuit_fingerprint,
            "config_digest": self.config_digest,
            "data": self.data,
        }


def _checksum(payload: dict) -> str:
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def snapshot_dd_phase(
    pkg,
    state_dd,
    monitor,
    gate_cursor: int,
    circuit,
    config_digest: str,
) -> Snapshot:
    """Build a DD-phase snapshot (state applied through ``gate_cursor - 1``)."""
    from repro.dd.io import serialize_vector_dd

    return Snapshot(
        phase="dd",
        gate_cursor=gate_cursor,
        num_qubits=circuit.num_qubits,
        circuit_fingerprint=circuit.fingerprint(),
        config_digest=config_digest,
        data={
            "dd": serialize_vector_dd(pkg, state_dd),
            "ctable": pkg.ctable.dump(),
            "monitor": monitor.state_dict(),
        },
    )


def snapshot_array_phase(
    pkg,
    state: np.ndarray,
    convert_at: int,
    edge_cursor: int,
    circuit,
    config_digest: str,
) -> Snapshot:
    """Build an array-phase snapshot (``edge_cursor`` emitted gates applied)."""
    return Snapshot(
        phase="array",
        gate_cursor=edge_cursor,
        num_qubits=circuit.num_qubits,
        circuit_fingerprint=circuit.fingerprint(),
        config_digest=config_digest,
        data={
            "state_b64": base64.b64encode(
                np.ascontiguousarray(state).tobytes()
            ).decode("ascii"),
            "convert_at": convert_at,
            "ctable": pkg.ctable.dump(),
        },
    )


def snapshot_sweep_phase(
    pkg,
    states: np.ndarray,
    convert_at: int | None,
    gate_cursor: int,
    circuit,
    config_digest: str,
) -> Snapshot:
    """Build a sweep-phase snapshot of a batched parameter-sweep group.

    ``states`` is the ``(rows, 2**n)`` batch mid-replay.  Sweep snapshots
    are *diagnostic*: they preserve the batch contents on a memory-guard
    breach (so the work is not lost on the raised
    :class:`~repro.common.errors.ResourceExhaustedError`), but
    ``FlatDDSimulator.run`` refuses to resume from them -- a sweep row is
    not a single-shot run.  The fingerprint pins the *template* circuit.
    """
    states = np.ascontiguousarray(states)
    return Snapshot(
        phase="sweep",
        gate_cursor=gate_cursor,
        num_qubits=circuit.num_qubits,
        circuit_fingerprint=circuit.fingerprint(),
        config_digest=config_digest,
        data={
            "states_b64": base64.b64encode(states.tobytes()).decode("ascii"),
            "rows": int(states.shape[0]),
            "convert_at": convert_at,
            "ctable": pkg.ctable.dump(),
        },
    )


def decode_array_state(snapshot: Snapshot) -> np.ndarray:
    """Decode the flat amplitude array of an array-phase snapshot."""
    if snapshot.phase != "array":
        raise CheckpointError(
            f"expected an array-phase snapshot, got {snapshot.phase!r}"
        )
    raw = base64.b64decode(snapshot.data["state_b64"])
    state = np.frombuffer(raw, dtype=np.complex128).copy()
    expected = 1 << snapshot.num_qubits
    if state.size != expected:
        raise CheckpointError(
            f"array payload has {state.size} amplitudes, "
            f"expected {expected} for {snapshot.num_qubits} qubits"
        )
    return state


def write_snapshot(path: str, snapshot: Snapshot) -> str:
    """Atomically write ``snapshot`` to ``path``; returns ``path``.

    The temp file lives in the destination directory so ``os.replace`` is
    a same-filesystem rename: concurrent readers see the old snapshot or
    the new one, never a partial write.
    """
    payload = snapshot.to_payload()
    doc = {
        "magic": SNAPSHOT_MAGIC,
        "version": SNAPSHOT_VERSION,
        "checksum": _checksum(payload),
        "payload": payload,
    }
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - only on write failure
            os.unlink(tmp)
    return path


def read_snapshot(path: str) -> Snapshot:
    """Read and verify a snapshot; :class:`CheckpointError` on anything off."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        raise CheckpointError("snapshot file does not exist", path=path)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable snapshot: {exc}", path=path)
    if not isinstance(doc, dict) or doc.get("magic") != SNAPSHOT_MAGIC:
        raise CheckpointError("not a FlatDD snapshot (bad magic)", path=path)
    version = doc.get("version")
    if version != SNAPSHOT_VERSION:
        raise CheckpointError(
            f"unsupported snapshot version {version!r} "
            f"(this build reads version {SNAPSHOT_VERSION})",
            path=path,
        )
    payload = doc.get("payload")
    if not isinstance(payload, dict):
        raise CheckpointError("snapshot has no payload", path=path)
    if _checksum(payload) != doc.get("checksum"):
        raise CheckpointError(
            "checksum mismatch: snapshot is corrupt", path=path
        )
    try:
        snapshot = Snapshot(
            phase=payload["phase"],
            gate_cursor=int(payload["gate_cursor"]),
            num_qubits=int(payload["num_qubits"]),
            circuit_fingerprint=payload["circuit_fingerprint"],
            config_digest=payload["config_digest"],
            data=payload["data"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed snapshot payload: {exc}", path=path)
    if snapshot.phase not in ("dd", "array", "sweep"):
        raise CheckpointError(
            f"unknown snapshot phase {snapshot.phase!r}", path=path
        )
    return snapshot


def validate_snapshot(
    snapshot: Snapshot,
    circuit,
    config_digest: str,
    path: str | None = None,
) -> None:
    """Pin a snapshot to one circuit and one semantic config.

    Resuming a different circuit, a different width, or a semantically
    different config would not crash -- it would silently produce wrong
    amplitudes, which is strictly worse.  Hence hard rejection here.
    """
    if snapshot.num_qubits != circuit.num_qubits:
        raise CheckpointError(
            f"snapshot is for {snapshot.num_qubits} qubits, "
            f"circuit has {circuit.num_qubits}",
            path=path,
        )
    fingerprint = circuit.fingerprint()
    if snapshot.circuit_fingerprint != fingerprint:
        raise CheckpointError(
            f"snapshot circuit fingerprint {snapshot.circuit_fingerprint} "
            f"does not match {fingerprint} ({circuit.name})",
            path=path,
        )
    if snapshot.config_digest != config_digest:
        raise CheckpointError(
            f"snapshot config digest {snapshot.config_digest} does not "
            f"match the current config ({config_digest}); resuming under "
            "a semantically different config would change results",
            path=path,
        )
