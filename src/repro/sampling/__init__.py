"""Sampling and measurement: array-based, DD-native weak simulation."""

from repro.sampling.projection import dd_measure_qubit, dd_qubit_probability
from repro.sampling.strong import (
    marginal_probabilities,
    measure_qubit,
    most_likely,
    sample_counts,
)
from repro.sampling.weak import dd_outcome_probability, sample_from_dd

__all__ = [
    "dd_measure_qubit",
    "dd_outcome_probability",
    "dd_qubit_probability",
    "marginal_probabilities",
    "measure_qubit",
    "most_likely",
    "sample_counts",
    "sample_from_dd",
]
