"""Projective measurement directly on DD states.

Measurement collapse is a projector application plus renormalization --
both expressible with the existing DD machinery: the projector is a
(non-unitary) gate DD, and thanks to norm-normalization the probability of
an outcome is simply the squared magnitude of the projected state's root
weight.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import SimulationError
from repro.dd.matrix import single_qubit_gate
from repro.dd.node import Edge
from repro.dd.operations import mv_multiply, scale
from repro.dd.package import DDPackage

__all__ = ["dd_measure_qubit", "dd_qubit_probability"]

_P0 = np.array([[1, 0], [0, 0]], dtype=np.complex128)
_P1 = np.array([[0, 0], [0, 1]], dtype=np.complex128)


def dd_qubit_probability(pkg: DDPackage, state: Edge, qubit: int) -> float:
    """P(qubit = 1) for a normalized DD state.

    Computed by projecting with |1><1|_qubit: the projected root weight's
    squared magnitude is the probability (subtrees are unit norm).
    """
    if state.is_zero:
        raise SimulationError("zero state has no measurement distribution")
    projected = mv_multiply(pkg, single_qubit_gate(pkg, _P1, qubit), state)
    if projected.is_zero:
        return 0.0
    return min(float(abs(projected.w) ** 2 / abs(state.w) ** 2), 1.0)


def dd_measure_qubit(
    pkg: DDPackage,
    state: Edge,
    qubit: int,
    rng: np.random.Generator | None = None,
) -> tuple[int, Edge]:
    """Measure one qubit of a DD state: returns (outcome, collapsed state).

    The collapsed state is renormalized (root weight restored to the input
    edge's magnitude so chained measurements stay consistent).
    """
    rng = rng or np.random.default_rng()
    p1 = dd_qubit_probability(pkg, state, qubit)
    outcome = int(rng.random() < p1)
    proj = _P1 if outcome else _P0
    projected = mv_multiply(pkg, single_qubit_gate(pkg, proj, qubit), state)
    if projected.is_zero:
        raise SimulationError("measurement collapsed to the zero state")
    # Renormalize: the projected root magnitude is sqrt(P(outcome)).
    norm = abs(projected.w) / abs(state.w)
    collapsed = scale(pkg, projected, 1.0 / norm)
    return outcome, collapsed
