"""Sampling and measurement on flat state vectors ("strong" simulation).

These operate on the exact amplitudes a simulation produced: bitstring
sampling, marginals, and projective measurement with state collapse.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.common.errors import SimulationError

__all__ = [
    "sample_counts",
    "marginal_probabilities",
    "most_likely",
    "measure_qubit",
]


def _num_qubits(state: np.ndarray) -> int:
    n = state.size.bit_length() - 1
    if state.size != 1 << n:
        raise SimulationError(f"state length {state.size} is not a power of two")
    return n


def sample_counts(
    state: np.ndarray,
    shots: int,
    rng: np.random.Generator | None = None,
    as_bitstrings: bool = True,
) -> Counter:
    """Sample ``shots`` outcomes from |state|^2.

    Returns a Counter keyed by bitstring (qubit n-1 leftmost) or by integer
    index when ``as_bitstrings=False``.
    """
    n = _num_qubits(state)
    if shots < 1:
        raise SimulationError(f"shots must be positive, got {shots}")
    rng = rng or np.random.default_rng()
    probs = np.abs(state) ** 2
    total = probs.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise SimulationError(f"state norm^2 is {total}, not 1")
    outcomes = rng.choice(state.size, size=shots, p=probs / total)
    counts = np.bincount(outcomes, minlength=state.size)
    result: Counter = Counter()
    for idx in np.nonzero(counts)[0]:
        key = format(idx, f"0{n}b") if as_bitstrings else int(idx)
        result[key] = int(counts[idx])
    return result


def marginal_probabilities(state: np.ndarray, qubits: list[int]) -> np.ndarray:
    """Joint distribution of a subset of qubits (order = given order).

    ``qubits[0]`` is the most significant bit of the returned index.
    """
    n = _num_qubits(state)
    for q in qubits:
        if not 0 <= q < n:
            raise SimulationError(f"qubit {q} out of range")
    if len(set(qubits)) != len(qubits):
        raise SimulationError("duplicate qubits in marginal")
    probs = np.abs(state) ** 2
    idx = np.arange(state.size)
    keys = np.zeros(state.size, dtype=np.int64)
    for pos, q in enumerate(qubits):
        keys |= ((idx >> q) & 1) << (len(qubits) - 1 - pos)
    out = np.zeros(1 << len(qubits))
    np.add.at(out, keys, probs)
    return out


def most_likely(state: np.ndarray, k: int = 1) -> list[tuple[str, float]]:
    """Top-k outcomes as (bitstring, probability), descending."""
    n = _num_qubits(state)
    probs = np.abs(state) ** 2
    top = np.argsort(probs)[::-1][:k]
    return [(format(int(i), f"0{n}b"), float(probs[i])) for i in top]


def measure_qubit(
    state: np.ndarray,
    qubit: int,
    rng: np.random.Generator | None = None,
) -> tuple[int, np.ndarray]:
    """Projective measurement of one qubit: returns (outcome, new state).

    The returned state is collapsed and renormalized; the input is not
    modified.
    """
    n = _num_qubits(state)
    if not 0 <= qubit < n:
        raise SimulationError(f"qubit {qubit} out of range")
    rng = rng or np.random.default_rng()
    idx = np.arange(state.size)
    mask = ((idx >> qubit) & 1).astype(bool)
    p1 = float(np.sum(np.abs(state[mask]) ** 2))
    outcome = int(rng.random() < p1)
    keep = mask if outcome else ~mask
    new_state = np.where(keep, state, 0)
    norm = np.linalg.norm(new_state)
    if norm == 0:
        raise SimulationError("measurement produced a zero state")
    return outcome, new_state / norm
