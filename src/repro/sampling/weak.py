"""Weak simulation: sampling bitstrings directly from a vector DD.

Hillmich, Markov and Wille ("Just Like the Real Thing: Fast Weak
Simulation of Quantum Computation", DAC 2020 -- reference [36] of the
FlatDD paper) observed that a DD state supports O(n)-per-shot sampling
without ever expanding the exponential amplitude vector.

Our vector normalization makes this particularly clean: every node's
outgoing weights satisfy ``|w0|^2 + |w1|^2 = 1`` and every subtree is
unit-norm, so the branch probability at a node is exactly ``|w_b|^2`` --
each sample is a root-to-terminal walk flipping a biased coin per level.
Zero edges get probability 0 automatically.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.common.errors import SimulationError
from repro.dd.node import TERMINAL, Edge
from repro.dd.package import DDPackage

__all__ = ["sample_from_dd", "dd_outcome_probability"]


def sample_from_dd(
    pkg: DDPackage,
    state: Edge,
    shots: int,
    rng: np.random.Generator | None = None,
    as_bitstrings: bool = True,
) -> Counter:
    """Draw ``shots`` samples from the DD state without converting it.

    Cost per shot is O(n); total memory stays at the DD's size -- the weak
    simulation advantage that complements FlatDD's strong simulation.
    """
    if shots < 1:
        raise SimulationError(f"shots must be positive, got {shots}")
    if state.is_zero:
        raise SimulationError("cannot sample from the zero vector")
    n = pkg.num_qubits
    if state.n.level != n - 1:
        raise SimulationError(
            f"state root level {state.n.level} does not match {n} qubits"
        )
    rng = rng or np.random.default_rng()
    # One vectorized coin per (shot, level).
    coins = rng.random((shots, n))
    result: Counter = Counter()
    for shot in range(shots):
        node = state.n
        index = 0
        level = n - 1
        while node is not TERMINAL:
            e0, e1 = node.edges
            p1 = abs(e1.w) ** 2
            take_one = coins[shot, level] < p1
            if take_one:
                index |= 1 << node.level
                node = e1.n
            else:
                node = e0.n
            level -= 1
        key = format(index, f"0{n}b") if as_bitstrings else index
        result[key] += 1
    return result


def dd_outcome_probability(pkg: DDPackage, state: Edge, index: int) -> float:
    """P(outcome = index) read off the DD in O(n).

    Equals ``|amplitude|^2 / ||state||^2``; with a normalized state the
    root weight has unit magnitude and this is just the squared weight
    product along the path.
    """
    if state.is_zero:
        return 0.0
    prob = 1.0
    node = state.n
    while node is not TERMINAL:
        edge = node.edges[(index >> node.level) & 1]
        if edge.is_zero:
            return 0.0
        prob *= abs(edge.w) ** 2
        node = edge.n
    return prob
