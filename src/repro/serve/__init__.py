"""Batch simulation service: jobs, queueing, caching, fault-tolerant workers.

``repro.serve`` turns the three simulation backends into a serving
layer (see docs/SERVING.md):

* :mod:`repro.serve.jobs` -- the job model (circuit + config + shots,
  PENDING -> RUNNING -> DONE/FAILED/CANCELLED/TIMEOUT, per-job deadline,
  retry budget, priority) and the content-addressed cache key.
* :mod:`repro.serve.queue` -- thread-safe priority queue with admission
  control and bounded backpressure (reject-with-reason when full).
* :mod:`repro.serve.cache` -- content-addressed result cache keyed by
  :meth:`Circuit.fingerprint`, LRU eviction, size bounds, hit/miss
  counters exported through ``repro.obs``.
* :mod:`repro.serve.scheduler` -- batch planning: cache-identical jobs
  simulate once and fan out, groups ordered by priority/deadline.
* :mod:`repro.serve.workers` -- worker pool on
  :class:`repro.parallel.pool.TaskRunner` with timeout enforcement,
  exponential-backoff retry on transient faults, and crash isolation.
* :mod:`repro.serve.service` -- the :class:`SimulationService` façade
  (submit/submit_many/poll/cancel/drain) and JSONL batch manifests,
  surfaced on the CLI as ``repro serve``.
* :mod:`repro.serve.journal` -- write-ahead JSONL journal of job-state
  transitions; ``repro serve MANIFEST --journal PATH --resume`` replays
  it after a crash (DONE jobs become cache hits, the rest re-run).  See
  docs/RESILIENCE.md.

For CPU-bound batches, :mod:`repro.cluster` swaps the thread pool for a
fleet of worker *processes* behind the same service surface
(``repro serve MANIFEST --processes N``); see docs/SERVING.md.

Usage::

    from repro.circuits import get_circuit
    from repro.serve import SimulationService

    with SimulationService(threads=4) as svc:
        ids = svc.submit_many(get_circuit("ghz", 8) for _ in range(10))
        report = svc.drain()          # 1 simulation, 9 cache hits
        state = svc.result(ids[0]).state
"""

from repro.serve.cache import CacheEntry, ResultCache
from repro.serve.jobs import Job, JobResult, JobState, config_digest
from repro.serve.journal import (
    JobJournal,
    JournalRecovery,
    journal_segments,
    replay_journal,
)
from repro.serve.queue import JobQueue
from repro.serve.scheduler import BatchGroup, BatchScheduler
from repro.serve.service import (
    ServeReport,
    SimulationService,
    jobs_from_manifest,
    load_manifest,
    run_jobs,
    run_manifest,
)
from repro.serve.trace import JobTraceContext, latency_histogram_names
from repro.serve.workers import WorkerPool, clamp_threads

__all__ = [
    "BatchGroup",
    "BatchScheduler",
    "CacheEntry",
    "Job",
    "JobTraceContext",
    "latency_histogram_names",
    "JobJournal",
    "JobQueue",
    "JobResult",
    "JobState",
    "JournalRecovery",
    "ResultCache",
    "ServeReport",
    "SimulationService",
    "WorkerPool",
    "clamp_threads",
    "config_digest",
    "journal_segments",
    "jobs_from_manifest",
    "load_manifest",
    "replay_journal",
    "run_jobs",
    "run_manifest",
]
