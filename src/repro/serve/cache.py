"""Content-addressed result cache with LRU eviction and size bounds.

FlatDD's gate-DD cache exploits repeated structure *within* a circuit;
this cache applies the same idea *across* jobs: two submissions whose
circuits have the same canonical
:meth:`~repro.circuits.circuit.Circuit.fingerprint` (and backend +
semantic config digest, see :func:`repro.serve.jobs.config_digest`)
simulate once and share the final state.

Entries hold whole state vectors, so both an entry-count bound and a
byte bound apply; eviction is least-recently-used.  Cached arrays are
marked read-only before insertion: every job fanned the same state out
to receives the *identical* bits, and no consumer can corrupt a shared
result in place.

Hit/miss/eviction counts are kept as plain ints (cheap, lock-held
updates) and surfaced through ``repro.obs`` via
:func:`repro.obs.collect.result_cache_counters`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

__all__ = ["CacheEntry", "ResultCache"]


@dataclass
class CacheEntry:
    """One cached simulation output."""

    key: str
    state: np.ndarray
    runtime_seconds: float
    metadata: dict = field(default_factory=dict)
    nbytes: int = 0
    hits: int = 0


class ResultCache:
    """LRU map from content address to final simulation state."""

    def __init__(
        self, max_entries: int = 512, max_bytes: int = 256 * 1024 * 1024
    ) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Results too large for max_bytes, never inserted.
        self.uncacheable = 0

    def get(self, key: str) -> CacheEntry | None:
        """Look up ``key``; refreshes LRU recency and counts hit/miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self.hits += 1
            return entry

    def put(
        self,
        key: str,
        state: np.ndarray,
        runtime_seconds: float = 0.0,
        metadata: dict | None = None,
    ) -> CacheEntry | None:
        """Insert a result, evicting LRU entries to respect the bounds.

        Returns the entry, or None when the single result is larger than
        ``max_bytes`` (counted in :attr:`uncacheable`) or the cache is
        disabled (``max_entries == 0``).
        """
        nbytes = int(state.nbytes)
        with self._lock:
            if self.max_entries == 0 or nbytes > self.max_bytes:
                self.uncacheable += 1
                return None
            state.setflags(write=False)
            entry = CacheEntry(
                key=key,
                state=state,
                runtime_seconds=runtime_seconds,
                metadata=dict(metadata or {}),
                nbytes=nbytes,
            )
            old = self._entries.pop(key, None)
            if old is not None:
                self.total_bytes -= old.nbytes
            self._entries[key] = entry
            self.total_bytes += nbytes
            while len(self._entries) > self.max_entries or (
                self.total_bytes > self.max_bytes and len(self._entries) > 1
            ):
                _, evicted = self._entries.popitem(last=False)
                self.total_bytes -= evicted.nbytes
                self.evictions += 1
            return entry

    @property
    def hit_rate(self) -> float:
        """Hits / lookups (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict:
        """JSON-serializable counter snapshot."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self.total_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "uncacheable": self.uncacheable,
                "hit_rate": round(self.hit_rate, 6),
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.total_bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries
