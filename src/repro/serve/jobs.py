"""Job model for the batch simulation service.

A :class:`Job` is one unit of serving work: a circuit plus everything
needed to execute it (backend, simulator config, sampling request) and
everything needed to *manage* it (priority, per-job deadline, retry
budget).  Jobs move through an explicit state machine::

    PENDING --> RUNNING --> DONE
       |           |------> FAILED      (permanent error / retries spent)
       |           |------> TIMEOUT     (deadline exceeded)
       |           '------> CANCELLED
       '--> CANCELLED                    (cancelled while queued)

Transitions are validated (:meth:`Job.transition`) so a bug in the
scheduler or workers surfaces as a loud :class:`~repro.common.errors.ServeError`
instead of a silently corrupted job table.

The :meth:`Job.cache_key` is the content address used by
:mod:`repro.serve.cache`: the circuit's canonical
:meth:`~repro.circuits.circuit.Circuit.fingerprint` combined with the
backend name and a digest of the *semantic* simulator config (execution
knobs like ``use_thread_pool`` are excluded -- they cannot change the
final state).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.circuits.circuit import Circuit
from repro.common.config import FlatDDConfig, config_digest
from repro.common.errors import ServeError
from repro.common.wire import b64_decode_array, b64_encode_array, json_safe
from repro.serve.trace import JobTraceContext

__all__ = ["Job", "JobResult", "JobState", "config_digest"]


class JobState(str, enum.Enum):
    """Lifecycle states of a service job."""

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"
    TIMEOUT = "TIMEOUT"

    @property
    def terminal(self) -> bool:
        return self in _TERMINAL


_TERMINAL = {JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.TIMEOUT}

#: Legal state transitions; anything else is a scheduler/worker bug.
_TRANSITIONS: dict[JobState, set[JobState]] = {
    JobState.PENDING: {JobState.RUNNING, JobState.CANCELLED, JobState.FAILED},
    JobState.RUNNING: {
        JobState.DONE,
        JobState.FAILED,
        JobState.TIMEOUT,
        JobState.CANCELLED,
    },
    JobState.DONE: set(),
    JobState.FAILED: set(),
    JobState.CANCELLED: set(),
    JobState.TIMEOUT: set(),
}

@dataclass(eq=False)
class JobResult:
    """What a finished job hands back to the submitter.

    Identity equality (``eq=False``): results carry numpy arrays, and a
    job is one specific submission, not a value.
    """

    job_id: str
    backend: str
    #: Final state vector.  Fan-out jobs in one batch group share the
    #: same (read-only) array, so duplicate circuits are bit-identical
    #: by construction.
    state: np.ndarray
    runtime_seconds: float
    #: True when the state came out of the result cache (or a batch-group
    #: fan-out) instead of a fresh simulation.
    cache_hit: bool = False
    #: Number of execution attempts the producing simulation took.
    attempts: int = 1
    #: Sampled measurement counts when the job asked for shots.
    counts: dict[str, int] | None = None
    #: Backend metadata of the producing run (conversion point, obs, ...).
    metadata: dict = field(default_factory=dict)

    def to_wire(self, include_state: bool = True) -> dict:
        """JSON-serializable form of the result.

        ``metadata`` is passed through :func:`repro.common.wire.json_safe`
        so numpy scalars leaking out of a backend never poison the wire.
        With ``include_state=False`` the (potentially huge) state array is
        omitted -- the cluster protocol ships it as a raw binary payload
        instead of base64.
        """
        out = {
            "job_id": self.job_id,
            "backend": self.backend,
            "runtime_seconds": float(self.runtime_seconds),
            "cache_hit": bool(self.cache_hit),
            "attempts": int(self.attempts),
            "counts": dict(self.counts) if self.counts is not None else None,
            "metadata": json_safe(self.metadata),
        }
        if include_state:
            out["state"] = b64_encode_array(self.state)
        return out

    @classmethod
    def from_wire(
        cls, data: dict, state: np.ndarray | None = None
    ) -> "JobResult":
        """Rebuild a result from :meth:`to_wire` output.

        ``state`` overrides the embedded array (used when the state
        traveled as a separate binary frame payload).
        """
        if state is None:
            state = b64_decode_array(data["state"])
        counts = data.get("counts")
        return cls(
            job_id=data["job_id"],
            backend=data["backend"],
            state=state,
            runtime_seconds=float(data["runtime_seconds"]),
            cache_hit=bool(data.get("cache_hit", False)),
            attempts=int(data.get("attempts", 1)),
            counts=dict(counts) if counts is not None else None,
            metadata=dict(data.get("metadata") or {}),
        )


@dataclass(eq=False)
class Job:
    """One submitted simulation with its scheduling envelope."""

    circuit: Circuit
    backend: str = "flatdd"
    config: FlatDDConfig | None = None
    #: Sample this many bitstrings from the final state (0 = exact state
    #: only).  Sampling is per-job, so cache-identical jobs may still ask
    #: for different shots/seeds.
    shots: int = 0
    sample_seed: int = 0
    #: Parameter-sweep rows.  When set, the job is a *sweep job*: the
    #: circuit is a template, each row binds its parameter slots, and the
    #: result's ``state`` is the ``(rows, 2**n)`` stack from
    #: :meth:`~repro.core.simulator.FlatDDSimulator.simulate_sweep`.
    #: Mutually exclusive with ``shots`` (per-row states, not one
    #: distribution to sample).
    param_sets: list[tuple] | None = None
    #: Larger runs earlier; ties break on earlier deadline, then FIFO.
    priority: int = 0
    #: Wall-clock budget for execution (None = service default).
    deadline_seconds: float | None = None
    #: Transient-fault retry budget (attempts = 1 + max_retries).
    max_retries: int = 2
    job_id: str = ""

    # -- managed state (owned by queue/workers, not the submitter) -----
    state: JobState = JobState.PENDING
    attempts: int = 0
    error: str | None = None
    result: JobResult | None = None
    #: FIFO tiebreaker, assigned at admission.
    seq: int = -1
    #: Lifecycle observers, called as ``fn(job, old_state, new_state)``
    #: after every successful :meth:`transition`.  The durable-serving
    #: journal (:mod:`repro.serve.journal`) hooks in here: workers set
    #: ``result`` / ``error`` *before* transitioning, so one observer sees
    #: the complete outcome at the moment the state flips.
    observers: list[Callable[["Job", JobState, JobState], None]] = field(
        default_factory=list, repr=False
    )
    #: Per-job trace context: lifecycle timestamps stamped by the queue,
    #: scheduler, and workers, folded into the ``serve.latency.*``
    #: histograms and the per-job span tree at completion (created at
    #: admission; see :mod:`repro.serve.trace`).
    trace: JobTraceContext | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ServeError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ServeError(
                f"deadline_seconds must be positive, got {self.deadline_seconds}"
            )
        if self.shots < 0:
            raise ServeError(f"shots must be >= 0, got {self.shots}")
        if self.param_sets is not None:
            if len(self.param_sets) == 0:
                raise ServeError(
                    "sweep jobs need at least one parameter set"
                )
            if self.shots:
                raise ServeError(
                    "sweep jobs return per-row states and cannot sample "
                    "shots; submit single-shot jobs to sample"
                )

    def cache_key(self) -> str:
        """Content address of this job's simulation output.

        Sweep jobs hash every row's *bound* fingerprint in order, so two
        sweep submissions group (and dedup) only when their whole row
        lists match.
        """
        if self.param_sets is not None:
            rows = ";".join(
                self.circuit.fingerprint(params=row)
                for row in self.param_sets
            )
            return hashlib.sha256(
                f"sweep;{rows};{self.backend};"
                f"{config_digest(self.config)}".encode("ascii")
            ).hexdigest()
        return hashlib.sha256(
            f"{self.circuit.fingerprint()};{self.backend};"
            f"{config_digest(self.config)}".encode("ascii")
        ).hexdigest()

    def row_cache_key(self, row) -> str:
        """Content address of one sweep row's state.

        Identical to the :meth:`cache_key` of a single-shot job for the
        bound circuit (``circuit.bind(row)``), so sweep rows and
        single-shot submissions serve each other from the result cache.
        """
        return hashlib.sha256(
            f"{self.circuit.fingerprint(params=row)};{self.backend};"
            f"{config_digest(self.config)}".encode("ascii")
        ).hexdigest()

    def to_wire(self) -> dict:
        """JSON-serializable job spec for dispatch to a worker process.

        Carries everything a worker needs to *execute* the job -- the
        circuit, backend, config, sampling request, and retry/deadline
        envelope -- but none of the broker-side management state
        (observers, trace context, result): those stay with the broker's
        job object, and the worker's copy starts PENDING.
        """
        return {
            "job_id": self.job_id,
            "circuit": self.circuit.to_wire(),
            "backend": self.backend,
            "config": (
                dataclasses.asdict(self.config)
                if self.config is not None
                else None
            ),
            "shots": self.shots,
            "sample_seed": self.sample_seed,
            "param_sets": (
                [[float(x) for x in row] for row in self.param_sets]
                if self.param_sets is not None
                else None
            ),
            "priority": self.priority,
            "deadline_seconds": self.deadline_seconds,
            "max_retries": self.max_retries,
            "seq": self.seq,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "Job":
        """Rebuild a PENDING job from :meth:`to_wire` output."""
        config = data.get("config")
        param_sets = data.get("param_sets")
        deadline = data.get("deadline_seconds")
        job = cls(
            circuit=Circuit.from_wire(data["circuit"]),
            backend=data["backend"],
            config=FlatDDConfig(**config) if config is not None else None,
            shots=int(data.get("shots", 0)),
            sample_seed=int(data.get("sample_seed", 0)),
            param_sets=(
                [tuple(float(x) for x in row) for row in param_sets]
                if param_sets is not None
                else None
            ),
            priority=int(data.get("priority", 0)),
            deadline_seconds=float(deadline) if deadline is not None else None,
            max_retries=int(data.get("max_retries", 2)),
            job_id=data.get("job_id", ""),
        )
        job.seq = int(data.get("seq", -1))
        return job

    def transition(self, new_state: JobState) -> None:
        """Move to ``new_state``, enforcing the lifecycle graph."""
        if new_state not in _TRANSITIONS[self.state]:
            raise ServeError(
                f"job {self.job_id or '<unsubmitted>'}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        old_state = self.state
        self.state = new_state
        for observer in self.observers:
            observer(self, old_state, new_state)

    @property
    def done(self) -> bool:
        return self.state.terminal

    def summary(self) -> dict:
        """JSON-serializable snapshot (CLI --json, logs)."""
        out = {
            "job_id": self.job_id,
            "circuit": self.circuit.name,
            "qubits": self.circuit.num_qubits,
            "gates": len(self.circuit.gates),
            "backend": self.backend,
            "state": self.state.value,
            "priority": self.priority,
            "attempts": self.attempts,
            "cache_hit": bool(self.result and self.result.cache_hit),
            "error": self.error,
        }
        if self.param_sets is not None:
            out["sweep_rows"] = len(self.param_sets)
        if self.trace is not None:
            latency = self.trace.summary()
            if latency:
                out["latency"] = latency
        return out
