"""Write-ahead journal for durable serving (crash-recoverable batches).

The journal is an append-only JSONL file of job lifecycle events.  Every
admitted job writes a ``submitted`` record, and a transition observer on
:meth:`repro.serve.jobs.Job.transition` writes a ``transition`` record the
moment each state flips -- workers set ``result`` / ``error`` *before*
transitioning, so the DONE record can carry the full outcome (cache key,
runtime, and the final state vector itself, base64 of the raw complex128
bytes).

Durability, precisely: each record is *flushed* to the OS before the
write returns, so a SIGKILL (or any process death) loses at most the
event being written -- the kernel page cache survives the process.  It
does **not** survive a power failure or kernel crash; for that, opt in
to ``JobJournal(fsync=True)`` (CLI: ``repro serve --journal-fsync``),
which fsyncs after every append at a per-record latency cost.  A failing
disk (``ENOSPC``, I/O error) does not take the service down either way:
the journal degrades to disabled with a loud log line and a
``serve.journal.write_errors`` counter, trading durability for
availability.

After a crash, :func:`replay_journal` folds the surviving records into a
:class:`JournalRecovery`: last-known state per job, the DONE payloads
(which :func:`repro.serve.service.run_manifest` uses to seed the result
cache so finished jobs are served without re-execution), and counts of
what must re-run.  A half-written trailing line -- the expected crash
artifact -- is tolerated and counted, never fatal; corruption *between*
valid records is surfaced as a :class:`~repro.common.errors.ServeError`
since it means the file was edited or the disk lied.
"""

from __future__ import annotations

import base64
import glob
import json
import logging
import os
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ServeError
from repro.serve.jobs import Job, JobState

_log = logging.getLogger("repro.serve.journal")

__all__ = [
    "JobJournal",
    "JournalRecovery",
    "journal_segments",
    "replay_journal",
]


class JobJournal:
    """Append-only JSONL write-ahead log of job-state transitions.

    ``resume=True`` opens the existing file for append (the continuation
    run's records land after the crashed run's); otherwise the file is
    truncated.  Thread-safe: workers transition jobs concurrently.

    Every record is stamped with this journal's ``writer_id`` and a
    monotonically increasing per-journal ``seq``, so a fleet of
    journals -- the broker's plus one segment per worker process (see
    :func:`journal_segments`) -- can later be merged into one
    deterministic event order by :func:`replay_journal`.

    ``fsync=True`` additionally fsyncs after every append (power-loss
    durability; counted as ``serve.journal.fsyncs`` when a ``registry``
    is passed).  A write that raises ``OSError`` (disk full, I/O error)
    permanently degrades the journal to disabled -- the serve batch
    keeps running without durability rather than crashing mid-flight --
    with the failure logged and counted (``serve.journal.write_errors``).
    """

    #: Chaos hook (:mod:`repro.chaos`): called as ``fault_hook(journal,
    #: record)`` before each append's write; may raise ``OSError`` to
    #: simulate a full or failing disk.  None in production.
    fault_hook = None

    def __init__(
        self,
        path: str,
        resume: bool = False,
        writer_id: str = "main",
        fsync: bool = False,
        registry=None,
    ) -> None:
        self.path = path
        self.writer_id = writer_id
        self.fsync = fsync
        self.registry = registry
        self.write_errors = 0
        self._degraded = False
        self._fh = open(path, "a" if resume else "w", encoding="utf-8")
        self._lock = threading.Lock()
        self._closed = False
        self._seq = 0

    def append(self, record: dict) -> None:
        """Write one event record durably (flushed before returning).

        Stamps ``writer_id`` and ``seq`` unless the caller already set
        them; the seq counter advances under the write lock so record
        order in the file and seq order always agree.
        """
        with self._lock:
            if self._closed or self._degraded:
                return
            record = dict(record)
            record.setdefault("writer_id", self.writer_id)
            record.setdefault("seq", self._seq)
            self._seq += 1
            line = json.dumps(record, sort_keys=True, separators=(",", ":"))
            try:
                if JobJournal.fault_hook is not None:
                    JobJournal.fault_hook(self, record)
                self._fh.write(line + "\n")
                self._fh.flush()
                if self.fsync:
                    os.fsync(self._fh.fileno())
                    if self.registry is not None:
                        self.registry.counter("serve.journal.fsyncs").inc()
            except OSError as exc:
                # Availability over durability: a dead disk must not
                # kill the batch.  Disable the journal, loudly.
                self.write_errors += 1
                self._degraded = True
                if self.registry is not None:
                    self.registry.counter(
                        "serve.journal.write_errors"
                    ).inc()
                _log.error(
                    "journal %s write failed (%s); journaling disabled "
                    "for the rest of this run -- resume coverage is now "
                    "partial", self.path, exc,
                )

    def attach(self, job: Job) -> None:
        """Record the submission and observe every future transition."""
        self.append(
            {
                "type": "submitted",
                "job_id": job.job_id,
                "cache_key": job.cache_key(),
                "circuit": job.circuit.name,
                "qubits": job.circuit.num_qubits,
                "gates": len(job.circuit.gates),
                "backend": job.backend,
                "shots": job.shots,
                # Dual clocks: ``ts`` (wall) orders events across
                # processes/restarts; ``ts_mono`` (perf_counter, the
                # clock worker deadlines use) lets a replay reconstruct
                # queue-wait/run durations within one process without
                # wall-clock jumps (NTP steps, DST) corrupting them.
                "ts": time.time(),
                "ts_mono": time.perf_counter(),
            }
        )
        job.observers.append(self._on_transition)

    def observe(self, job: Job) -> None:
        """Observe future transitions without writing a submission record.

        Worker processes use this for their per-worker segments: the
        broker's journal already holds the ``submitted`` record, the
        worker only needs to journal the outcome (the DONE record with
        its state payload) durably *before* the result crosses the wire.
        """
        job.observers.append(self._on_transition)

    def _on_transition(
        self, job: Job, old_state: JobState, new_state: JobState
    ) -> None:
        record: dict = {
            "type": "transition",
            "job_id": job.job_id,
            "from": old_state.value,
            "to": new_state.value,
            "ts": time.time(),
            "ts_mono": time.perf_counter(),
        }
        if new_state is JobState.DONE and job.result is not None:
            record["cache_key"] = job.cache_key()
            record["cache_hit"] = bool(job.result.cache_hit)
            record["runtime_seconds"] = job.result.runtime_seconds
            record["backend"] = job.result.backend
            record["state_b64"] = base64.b64encode(
                np.ascontiguousarray(job.result.state).tobytes()
            ).decode("ascii")
        elif new_state in (JobState.FAILED, JobState.TIMEOUT):
            record["error"] = job.error
        self.append(record)

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._fh.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class JournalRecovery:
    """What a journal replay learned about the previous run(s)."""

    path: str
    total_records: int = 0
    #: Trailing half-written lines skipped (the crash artifact).
    truncated_records: int = 0
    #: job_id -> last journaled state ("PENDING" right after submission).
    job_states: dict[str, str] = field(default_factory=dict)
    #: job_id -> the DONE transition record (with cache_key/state_b64).
    done_payloads: dict[str, dict] = field(default_factory=dict)

    @property
    def counts(self) -> dict[str, int]:
        """Jobs per last-journaled state."""
        out: dict[str, int] = {}
        for state in self.job_states.values():
            out[state] = out.get(state, 0) + 1
        return out

    def decode_state(self, job_id: str) -> np.ndarray:
        """The journaled final state vector of a DONE job."""
        record = self.done_payloads.get(job_id)
        if record is None or "state_b64" not in record:
            raise ServeError(f"journal has no DONE state for job {job_id!r}")
        raw = base64.b64decode(record["state_b64"])
        return np.frombuffer(raw, dtype=np.complex128).copy()

    def summary(self) -> dict:
        """JSON-serializable recovery summary (for the serve report)."""
        return {
            "journal": self.path,
            "records": self.total_records,
            "truncated_records": self.truncated_records,
            "jobs": len(self.job_states),
            "by_state": self.counts,
        }


def journal_segments(path: str) -> list[str]:
    """Every on-disk journal segment for broker journal ``path``.

    A process fleet writes the broker's journal at ``path`` plus one
    per-worker segment named ``<path>.w<slot>.jsonl`` (written by the
    worker process itself, so a result journaled there survives even
    when the broker never saw it).  Returns the broker file first, then
    the worker segments in sorted (slot) order; missing files are
    skipped so a fleet that never dispatched to worker 3 still resumes.
    """
    segments = [path] if os.path.exists(path) else []
    segments.extend(sorted(glob.glob(glob.escape(path) + ".w*.jsonl")))
    return segments


def _read_segment(path: str, recovery: JournalRecovery) -> list[dict]:
    """Parse one journal file into records, folding error counts."""
    with open(path, encoding="utf-8") as fh:
        lines = fh.readlines()
    records: list[dict] = []
    for index, raw in enumerate(lines):
        line = raw.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                # Torn trailing write: exactly what a crash leaves behind.
                recovery.truncated_records += 1
                continue
            raise ServeError(
                f"{path}:{index + 1}: corrupt journal record "
                "(not the trailing line; the file was damaged)"
            )
        if not isinstance(record, dict) or "type" not in record:
            raise ServeError(
                f"{path}:{index + 1}: malformed journal record"
            )
        records.append(record)
    return records


def replay_journal(path: str | list[str]) -> JournalRecovery:
    """Fold one or more journal segments into per-job last-known state.

    Later records win, so replaying a journal that spans several runs
    (crash, resume, crash again...) converges on the newest outcome of
    every job.

    A single path replays in file order (the order events happened in
    that process).  A list of paths -- a broker journal plus per-worker
    segments, see :func:`journal_segments` -- is merged into one
    deterministic order sorted by ``(ts_mono, seq, writer_id)``:
    ``ts_mono`` is ``time.perf_counter()``, CLOCK_MONOTONIC on Linux and
    therefore comparable across the processes of one boot, ``seq``
    preserves each writer's own ordering, and ``writer_id`` makes the
    sort total.  The same segment files replay to the same recovery on
    every resume attempt, regardless of filesystem listing order.
    """
    if isinstance(path, str):
        paths = [path]
        merge = False
    else:
        paths = list(path)
        merge = True
    if not paths:
        raise ServeError("journal replay needs at least one segment")
    for p in paths:
        if not os.path.exists(p):
            raise ServeError(f"journal {p!r} does not exist")
    recovery = JournalRecovery(path=paths[0])
    records: list[dict] = []
    for p in paths:
        records.extend(_read_segment(p, recovery))
    if merge:
        records.sort(
            key=lambda r: (
                float(r.get("ts_mono", 0.0)),
                int(r.get("seq", -1)),
                str(r.get("writer_id", "")),
            )
        )
    for record in records:
        recovery.total_records += 1
        job_id = record.get("job_id", "")
        if record["type"] == "submitted":
            recovery.job_states.setdefault(job_id, JobState.PENDING.value)
        elif record["type"] == "transition":
            recovery.job_states[job_id] = record["to"]
            if record["to"] == JobState.DONE.value:
                recovery.done_payloads[job_id] = record
    return recovery
