"""Thread-safe priority queue with admission control and backpressure.

The queue is the service's front door.  Its job is to say *no* early:
a full queue, an oversized circuit, or a duplicate job id is rejected at
submission with a machine-readable reason
(:class:`~repro.common.errors.AdmissionError`) rather than accepted and
failed later -- bounded backpressure instead of unbounded memory growth.

Ordering is a heap on ``(-priority, deadline, seq)``: higher priority
first, earlier deadline breaking ties, FIFO within that.  Cancellation
is lazy -- :meth:`JobQueue.cancel` flips the job to ``CANCELLED`` and
:meth:`~JobQueue.pop`/:meth:`~JobQueue.drain_pending` skip tombstones --
so cancel is O(1) and never re-heapifies under the lock.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import Counter

from repro.common.errors import AdmissionError
from repro.serve.jobs import Job, JobState
from repro.serve.trace import JobTraceContext

__all__ = ["JobQueue"]

_INF = float("inf")


class JobQueue:
    """Bounded priority queue over :class:`~repro.serve.jobs.Job`."""

    def __init__(
        self,
        capacity: int = 256,
        max_qubits: int | None = None,
        max_gates: int | None = None,
    ) -> None:
        if capacity < 1:
            raise AdmissionError(
                "bad_capacity", f"capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.max_qubits = max_qubits
        self.max_gates = max_gates
        self._heap: list[tuple[float, float, int, Job]] = []
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._seq = itertools.count()
        #: Admission outcomes, by reason ("accepted", "queue_full", ...).
        self.admission_counts: Counter = Counter()
        #: Optional load-shedding hook consulted *first* at admission:
        #: ``() -> str | None`` returning a rejection reason (e.g.
        #: ``"brownout"`` from the cluster broker when too few workers
        #: are healthy) or None to admit normally.
        self.shed_check = None

    # -- admission ----------------------------------------------------

    def _reject_reason(self, job: Job) -> str | None:
        if self.shed_check is not None:
            reason = self.shed_check()
            if reason is not None:
                return reason
        if len(self._heap) >= self.capacity:
            return "queue_full"
        if self.max_qubits is not None and job.circuit.num_qubits > self.max_qubits:
            return "too_many_qubits"
        if self.max_gates is not None and len(job.circuit.gates) > self.max_gates:
            return "too_many_gates"
        if job.job_id and job.job_id in self._jobs:
            return "duplicate_job_id"
        return None

    def submit(self, job: Job) -> Job:
        """Admit ``job`` or raise :class:`AdmissionError` with a reason.

        Assigns the FIFO sequence number and a ``job-NNNNNN`` id when the
        submitter left ``job_id`` empty.
        """
        if job.state is not JobState.PENDING:
            raise AdmissionError(
                "not_pending",
                f"job {job.job_id!r} is {job.state.value}, not PENDING",
            )
        with self._lock:
            reason = self._reject_reason(job)
            if reason is not None:
                self.admission_counts[reason] += 1
                raise AdmissionError(
                    reason,
                    f"job {job.job_id or job.circuit.name!r} rejected: "
                    f"{reason} (capacity={self.capacity}, "
                    f"pending={len(self._heap)})",
                )
            job.seq = next(self._seq)
            if not job.job_id:
                job.job_id = f"job-{job.seq:06d}"
            # Admission is where the job becomes real: root the per-job
            # trace here so queue-wait starts at the enqueue instant.
            if job.trace is None:
                job.trace = JobTraceContext(job_id=job.job_id)
                job.trace.mark("submit")
            job.trace.job_id = job.job_id
            job.trace.mark("enqueue")
            deadline = (
                job.deadline_seconds if job.deadline_seconds is not None else _INF
            )
            heapq.heappush(self._heap, (-job.priority, deadline, job.seq, job))
            self._jobs[job.job_id] = job
            self.admission_counts["accepted"] += 1
            self._not_empty.notify()
        return job

    def try_submit(self, job: Job) -> tuple[bool, str | None]:
        """Non-raising :meth:`submit`: ``(accepted, rejection_reason)``."""
        try:
            self.submit(job)
        except AdmissionError as exc:
            return False, exc.reason
        return True, None

    # -- consumption --------------------------------------------------

    def pop(self, block: bool = False, timeout: float | None = None) -> Job | None:
        """Highest-priority pending job, or None when (momentarily) empty."""
        with self._not_empty:
            while True:
                job = self._pop_live_locked()
                if job is not None:
                    return job
                if not block or not self._not_empty.wait(timeout):
                    return None
                block = False  # one wakeup per call

    def _pop_live_locked(self) -> Job | None:
        while self._heap:
            _, _, _, job = heapq.heappop(self._heap)
            if job.state is JobState.PENDING:
                if job.trace is not None:
                    job.trace.mark("dequeue")
                return job
        return None

    def drain_pending(self) -> list[Job]:
        """Remove and return *all* pending jobs in scheduling order."""
        with self._lock:
            jobs = []
            while True:
                job = self._pop_live_locked()
                if job is None:
                    return jobs
                jobs.append(job)

    # -- management ---------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-pending job; False if unknown or already started."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state is not JobState.PENDING:
                return False
            job.transition(JobState.CANCELLED)
            if job.trace is not None:
                job.trace.mark("complete")
            return True

    def __len__(self) -> int:
        with self._lock:
            return sum(
                1 for *_k, job in self._heap if job.state is JobState.PENDING
            )
