"""Batch planning: group cache-identical jobs, order by priority/deadline.

The scheduler turns a drained batch of pending jobs into an ordered list
of :class:`BatchGroup` plans.  Jobs with the same cache key (canonical
circuit fingerprint + backend + semantic config digest) land in one
group: the worker simulates the group once and fans the result out, so a
manifest with heavy duplication pays for its *unique* circuits only --
the cross-circuit analogue of FlatDD's within-circuit gate-DD cache.

Group execution order is (highest priority, earliest deadline, first
submitted); a group inherits the most urgent envelope of its members, so
one high-priority duplicate drags the whole group forward instead of
waiting behind it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.serve.jobs import Job

__all__ = ["BatchGroup", "BatchScheduler"]

_INF = float("inf")


@dataclass
class BatchGroup:
    """Jobs sharing one cache key, executed as one simulation."""

    key: str
    jobs: list[Job] = field(default_factory=list)

    @property
    def priority(self) -> int:
        return max(j.priority for j in self.jobs)

    @property
    def deadline(self) -> float:
        return min(
            (
                j.deadline_seconds
                for j in self.jobs
                if j.deadline_seconds is not None
            ),
            default=_INF,
        )

    @property
    def seq(self) -> int:
        return min(j.seq for j in self.jobs)

    def __len__(self) -> int:
        return len(self.jobs)


class BatchScheduler:
    """Plans drained job batches into ordered, deduplicated groups."""

    def __init__(self, tracer=None, registry: MetricsRegistry | None = None):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Totals across all plan() calls (drain loops call repeatedly).
        self.groups_planned = 0
        self.jobs_deduplicated = 0

    def plan(self, jobs: list[Job]) -> list[BatchGroup]:
        """Group ``jobs`` by cache key and order groups for execution."""
        with self.tracer.span("schedule", "serve", jobs=len(jobs)):
            by_key: dict[str, BatchGroup] = {}
            for job in jobs:
                if job.trace is not None:
                    job.trace.mark("schedule")
                key = job.cache_key()
                group = by_key.get(key)
                if group is None:
                    by_key[key] = group = BatchGroup(key=key)
                group.jobs.append(job)
            groups = sorted(
                by_key.values(),
                key=lambda g: (-g.priority, g.deadline, g.seq),
            )
        deduped = len(jobs) - len(groups)
        self.groups_planned += len(groups)
        self.jobs_deduplicated += deduped
        self.registry.counter("serve.batch.groups").inc(len(groups))
        self.registry.counter("serve.batch.deduped_jobs").inc(deduped)
        self.registry.gauge("serve.batch.size").set(len(jobs))
        return groups
