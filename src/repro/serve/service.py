"""The service façade: submit / poll / cancel / drain, plus manifests.

:class:`SimulationService` wires the serving subsystem together::

    submit() --> JobQueue (admission, backpressure, priority order)
    drain()  --> BatchScheduler (dedup into cache-key groups)
             --> WorkerPool (retry, deadline, isolation)
             --> ResultCache (content-addressed fan-out)

``drain()`` is the synchronous execution entry point: it repeatedly
drains the queue, plans, and executes until no pending work remains
(jobs submitted *during* a drain are picked up by the next loop
iteration), then returns a :class:`ServeReport` with per-state job
counts, cache statistics, and throughput.  Deterministic, single-call
semantics keep the service exactly as testable as the simulators
beneath it.

A **batch manifest** is JSON Lines, one job per line (blank lines and
``#`` comments ignored)::

    {"family": "ghz", "qubits": 8, "shots": 100}
    {"family": "qft", "qubits": 6, "priority": 5, "repeat": 3}
    {"qasm_file": "circuits/adder.qasm", "backend": "ddsim"}
    {"qasm": "OPENQASM 2.0; include \\"qelib1.inc\\"; qreg q[1]; h q[0];"}

Recognized keys: circuit source (``family``+``qubits`` [+``seed``,
``kwargs``] | ``qasm`` | ``qasm_file``), ``backend``, ``shots``,
``sample_seed``, ``param_sets`` (list of parameter rows: the entry
becomes a batched sweep job, see docs/SERVING.md), ``priority``,
``deadline_seconds``, ``max_retries``, ``job_id``, ``name``, and
``repeat`` (duplicate the entry N times -- handy for cache-hit demos
and stress manifests).  See docs/SERVING.md.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import time
from dataclasses import dataclass, field

from repro.circuits import get_circuit, parse_qasm
from repro.circuits.circuit import Circuit
from repro.common.config import FlatDDConfig, ServeConfig
from repro.common.errors import AdmissionError, ServeError
from repro.obs.collect import result_cache_counters
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.serve.cache import ResultCache
from repro.serve.jobs import Job, JobResult, JobState
from repro.serve.journal import JobJournal, journal_segments, replay_journal
from repro.serve.queue import JobQueue
from repro.serve.scheduler import BatchScheduler
from repro.serve.workers import WorkerPool

__all__ = [
    "ServeReport",
    "SimulationService",
    "jobs_from_manifest",
    "load_manifest",
    "run_jobs",
    "run_manifest",
]

_log = logging.getLogger("repro.serve.service")

#: Manifest keys that configure the job envelope (everything else must be
#: part of the circuit source).
_JOB_KEYS = {
    "backend", "shots", "sample_seed", "priority", "deadline_seconds",
    "max_retries", "job_id", "param_sets", "qubit_order", "identity_skip",
}
_SOURCE_KEYS = {"family", "qubits", "seed", "kwargs", "qasm", "qasm_file", "name"}
_META_KEYS = {"repeat"}


@dataclass
class ServeReport:
    """Outcome of one ``drain()``: throughput, states, cache behaviour."""

    jobs: int
    states: dict[str, int]
    elapsed_seconds: float
    cache: dict
    groups: int
    deduped_jobs: int
    retries: int
    admission: dict
    internal_errors: int = 0
    job_rows: list[dict] = field(default_factory=list)
    #: Journal-replay summary when the batch resumed after a crash.
    recovery: dict | None = None
    #: DMAV plan-cache / buffer-arena aggregate over the batch's *fresh*
    #: runs (result-cache hits carry no obs), None when no fresh flatdd
    #: run reached the array phase with plans enabled.
    dmav: dict | None = None
    #: Latency distributions (``serve.latency.*`` histogram snapshots):
    #: ``{"queue_wait"|"run"|"e2e": stats, "tiers": {priority: {...}}}``
    #: where stats is ``{count, mean, min, max, p50, p90, p99}``.
    #: Cumulative over the service lifetime (histograms cannot be
    #: windowed per drain without losing their distribution).
    latency: dict | None = None
    #: Process-fleet stats when the drain ran on a ClusterDispatcher
    #: (dispatched/result counts, worker deaths, requeues, respawns);
    #: None for the in-process thread pool.
    cluster: dict | None = None

    @property
    def jobs_per_second(self) -> float:
        return self.jobs / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def ok(self) -> bool:
        """True when no job failed or timed out."""
        return (
            self.states.get("FAILED", 0) == 0
            and self.states.get("TIMEOUT", 0) == 0
        )

    def to_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "states": self.states,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "jobs_per_second": round(self.jobs_per_second, 3),
            "cache": self.cache,
            "groups": self.groups,
            "deduped_jobs": self.deduped_jobs,
            "retries": self.retries,
            "admission": self.admission,
            "internal_errors": self.internal_errors,
            "ok": self.ok,
            "job_rows": self.job_rows,
            "recovery": self.recovery,
            "dmav": self.dmav,
            "latency": self.latency,
            "cluster": self.cluster,
        }

    def format_text(self) -> str:
        """The CLI's throughput/cache report."""
        lines = [
            f"serve: {self.jobs} job(s) in {self.elapsed_seconds:.3f}s "
            f"({self.jobs_per_second:.1f} jobs/s)",
            "  states: "
            + " ".join(
                f"{name.lower()}={self.states.get(name, 0)}"
                for name in ("DONE", "FAILED", "TIMEOUT", "CANCELLED")
            ),
            f"  batching: groups={self.groups} deduped={self.deduped_jobs} "
            f"retries={self.retries} internal_errors={self.internal_errors}",
            f"  cache: hits={self.cache['hits']} misses={self.cache['misses']} "
            f"hit_rate={100.0 * self.cache['hit_rate']:.1f}% "
            f"entries={self.cache['entries']} "
            f"evictions={self.cache['evictions']}",
        ]
        rejected = {
            k: v for k, v in self.admission.items() if k != "accepted" and v
        }
        if rejected:
            lines.append(
                "  rejected: "
                + " ".join(f"{k}={v}" for k, v in sorted(rejected.items()))
            )
        if self.recovery is not None:
            by_state = self.recovery.get("by_state", {})
            lines.append(
                f"  recovery: journal replayed {self.recovery.get('jobs', 0)} "
                "job(s) ("
                + " ".join(
                    f"{k.lower()}={v}" for k, v in sorted(by_state.items())
                )
                + f"), cache_seeded={self.recovery.get('cache_seeded', 0)}"
            )
        if self.cluster is not None:
            lines.append(
                f"  cluster: processes={self.cluster['processes']} "
                f"dispatched={self.cluster['dispatched']} "
                f"results={self.cluster['results']} "
                f"deaths={self.cluster['worker_deaths']} "
                f"requeues={self.cluster['requeues']} "
                f"respawns={self.cluster['respawns']}"
            )
        if self.dmav is not None:
            lines.append(
                f"  dmav plans: hits={self.dmav['plan_hits']} "
                f"misses={self.dmav['plan_misses']} "
                f"hit_rate={100.0 * self.dmav['plan_hit_rate']:.1f}% "
                f"arena_peak_mb="
                f"{self.dmav['arena_bytes_peak'] / (1024 * 1024):.2f} "
                f"runs={self.dmav['runs']}"
            )
        if self.latency:
            def _ms(v):
                return "-" if v is None else f"{v * 1e3:.1f}ms"

            for metric in ("queue_wait", "run", "e2e"):
                stats = self.latency.get(metric)
                if not stats or not stats.get("count"):
                    continue
                lines.append(
                    f"  latency {metric}: p50={_ms(stats['p50'])} "
                    f"p90={_ms(stats['p90'])} p99={_ms(stats['p99'])} "
                    f"mean={_ms(stats['mean'])} n={stats['count']}"
                )
        return "\n".join(lines)


class SimulationService:
    """Batch simulation service over the three backends."""

    def __init__(
        self, config: ServeConfig | None = None, tracer=None, **overrides
    ) -> None:
        if config is None:
            config = ServeConfig(**overrides)
        elif overrides:
            raise ServeError("pass either a config or keyword overrides")
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = MetricsRegistry()
        self.queue = JobQueue(
            capacity=config.queue_capacity,
            max_qubits=config.max_qubits,
            max_gates=config.max_gates,
        )
        self.cache = ResultCache(
            max_entries=config.cache_max_entries,
            max_bytes=config.cache_max_bytes,
        )
        self.scheduler = BatchScheduler(tracer=self.tracer, registry=self.registry)
        self.pool = WorkerPool(
            config, tracer=self.tracer, registry=self.registry
        )
        #: Every job ever admitted, including finished ones (poll target).
        self._jobs: dict[str, Job] = {}
        #: Cancelled job ids already counted by a previous drain report.
        self._reported_cancelled: set[str] = set()

    # -- submission ---------------------------------------------------

    def submit(self, job_or_circuit, **kwargs) -> str:
        """Admit one job; returns its id (raises AdmissionError on reject).

        Accepts a prebuilt :class:`~repro.serve.jobs.Job` or a
        :class:`~repro.circuits.circuit.Circuit` plus Job keyword
        arguments (``backend=``, ``shots=``, ``priority=``, ...).
        Service defaults fill in ``backend`` and ``max_retries`` when
        the caller does not set them.
        """
        if isinstance(job_or_circuit, Job):
            if kwargs:
                raise ServeError("pass kwargs only with a Circuit, not a Job")
            job = job_or_circuit
        elif isinstance(job_or_circuit, Circuit):
            kwargs.setdefault("backend", self.config.backend)
            kwargs.setdefault("max_retries", self.config.max_retries)
            job = Job(circuit=job_or_circuit, **kwargs)
        else:
            raise ServeError(
                f"submit() takes a Job or Circuit, got "
                f"{type(job_or_circuit).__name__}"
            )
        self.queue.submit(job)
        self._jobs[job.job_id] = job
        self.registry.counter("serve.jobs.submitted").inc()
        self.tracer.instant(
            "submit", "serve", job_id=job.job_id, priority=job.priority
        )
        return job.job_id

    def submit_many(self, items) -> list[str]:
        """Admit an iterable of jobs/circuits; returns ids in order."""
        return [self.submit(item) for item in items]

    # -- inspection / control -----------------------------------------

    def poll(self, job_id: str) -> Job:
        """The job's live record (state, attempts, error, result)."""
        job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job id {job_id!r}")
        return job

    def result(self, job_id: str) -> JobResult:
        """The finished job's result; raises if not DONE."""
        job = self.poll(job_id)
        if job.state is not JobState.DONE or job.result is None:
            raise ServeError(
                f"job {job_id} is {job.state.value}"
                + (f": {job.error}" if job.error else "")
            )
        return job.result

    def cancel(self, job_id: str) -> bool:
        """Cancel a pending job (False if unknown or already running)."""
        if job_id not in self._jobs:
            return False
        return self.queue.cancel(job_id)

    # -- execution ----------------------------------------------------

    def drain(self) -> ServeReport:
        """Execute until the queue is empty; returns the batch report."""
        started = time.perf_counter()
        processed: list[Job] = []
        groups_before = self.scheduler.groups_planned
        deduped_before = self.scheduler.jobs_deduplicated
        retries_before = self.registry.counter("serve.jobs.retries").value
        with self.tracer.span("drain", "serve"):
            while True:
                pending = self.queue.drain_pending()
                if not pending:
                    break
                groups = self.scheduler.plan(pending)
                _log.info(
                    "draining %d job(s) as %d group(s)",
                    len(pending), len(groups),
                )
                self.pool.execute_groups(groups, self.cache)
                processed.extend(pending)
        elapsed = time.perf_counter() - started
        # Cancelled-before-drain jobs never reach the heap pop; count
        # every terminal job from this service's table exactly once.
        processed_ids = {id(j) for j in processed}
        cancelled = [
            j for j in self._jobs.values()
            if j.state is JobState.CANCELLED
            and id(j) not in processed_ids
            and j.job_id not in self._reported_cancelled
        ]
        all_jobs = processed + cancelled
        self._reported_cancelled.update(
            j.job_id for j in all_jobs if j.state is JobState.CANCELLED
        )
        states: dict[str, int] = {}
        for job in all_jobs:
            states[job.state.value] = states.get(job.state.value, 0) + 1
        report = ServeReport(
            jobs=len(all_jobs),
            states=states,
            elapsed_seconds=elapsed,
            cache=self.cache.stats(),
            groups=self.scheduler.groups_planned - groups_before,
            deduped_jobs=self.scheduler.jobs_deduplicated - deduped_before,
            retries=self.registry.counter("serve.jobs.retries").value
            - retries_before,
            admission=dict(self.queue.admission_counts),
            internal_errors=self.pool.internal_errors,
            job_rows=[job.summary() for job in all_jobs],
        )
        report.dmav = _aggregate_dmav(all_jobs)
        report.latency = self._latency_snapshot()
        cluster_stats = getattr(self.pool, "cluster_stats", None)
        if cluster_stats is not None:
            report.cluster = cluster_stats()
        self.registry.gauge("serve.drain.jobs_per_second").set(
            report.jobs_per_second
        )
        return report

    def _latency_snapshot(self) -> dict | None:
        """Fold ``serve.latency.*`` histograms into the report's block.

        Aggregate metrics keep their bare name (``queue_wait``/``run``/
        ``e2e``); per-priority instruments group under ``tiers`` keyed by
        the priority value.  None before any job has executed.
        """
        histograms = self.registry.snapshot()["histograms"]
        out: dict = {}
        tiers: dict[str, dict] = {}
        for name, stats in histograms.items():
            if not name.startswith("serve.latency."):
                continue
            rest = name[len("serve.latency."):]
            metric, sep, tier = rest.partition(".tier")
            if sep:
                tiers.setdefault(tier, {})[metric] = stats
            else:
                out[metric] = stats
        if not out:
            return None
        if tiers:
            out["tiers"] = tiers
        return out

    def obs_snapshot(self) -> dict:
        """Registry + cache counters, shaped like ``metadata["obs"]``."""
        snap = self.registry.snapshot()
        snap["counters"].update(result_cache_counters(self.cache))
        return snap

    # -- lifecycle ----------------------------------------------------

    def close(self) -> None:
        self.pool.close()

    def __enter__(self) -> "SimulationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Batch manifests (JSONL)
# ---------------------------------------------------------------------------


def _aggregate_dmav(jobs) -> dict | None:
    """Batch-level DMAV plan/arena summary from fresh runs' obs metadata.

    Result-cache hits reuse a prior run's state and carry no obs, so only
    jobs whose result was freshly produced contribute.  Counters sum
    across runs; the arena gauge peaks (each run owns its own arena).
    """
    hits = misses = runs = 0
    arena_peak = 0.0
    for job in jobs:
        result = job.result
        if result is None or result.cache_hit:
            continue
        obs = result.metadata.get("obs")
        if not obs:
            continue
        counters = obs.get("counters", {})
        if "dmav.plan.hits" not in counters:
            continue
        hits += counters.get("dmav.plan.hits", 0)
        misses += counters.get("dmav.plan.misses", 0)
        gauge = obs.get("gauges", {}).get("dmav.arena.bytes")
        if gauge:
            arena_peak = max(arena_peak, gauge.get("max", gauge.get("value", 0.0)))
        runs += 1
    if runs == 0:
        return None
    total = hits + misses
    return {
        "plan_hits": hits,
        "plan_misses": misses,
        "plan_hit_rate": hits / total if total else 0.0,
        "arena_bytes_peak": int(arena_peak),
        "runs": runs,
    }


def load_manifest(path: str) -> list[dict]:
    """Parse a JSONL manifest into entry dicts (with ``_line`` numbers)."""
    entries: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ServeError(
                    f"{path}:{lineno}: invalid JSON: {exc}"
                ) from exc
            if not isinstance(entry, dict):
                raise ServeError(
                    f"{path}:{lineno}: expected a JSON object, "
                    f"got {type(entry).__name__}"
                )
            unknown = set(entry) - _JOB_KEYS - _SOURCE_KEYS - _META_KEYS
            if unknown:
                raise ServeError(
                    f"{path}:{lineno}: unknown manifest key(s) "
                    f"{sorted(unknown)}"
                )
            entry["_line"] = lineno
            entries.append(entry)
    return entries


def _circuit_from_entry(entry: dict, base_dir: str) -> Circuit:
    line = entry.get("_line", "?")
    if "qasm" in entry:
        return parse_qasm(
            entry["qasm"], name=entry.get("name", f"manifest:{line}")
        )
    if "qasm_file" in entry:
        qasm_path = entry["qasm_file"]
        if not os.path.isabs(qasm_path):
            qasm_path = os.path.join(base_dir, qasm_path)
        with open(qasm_path, "r", encoding="utf-8") as fh:
            return parse_qasm(fh.read(), name=entry.get("name", qasm_path))
    if "family" in entry:
        if "qubits" not in entry:
            raise ServeError(f"manifest line {line}: 'family' needs 'qubits'")
        kwargs = dict(entry.get("kwargs", {}))
        if "seed" in entry:
            kwargs["seed"] = entry["seed"]
        return get_circuit(entry["family"], entry["qubits"], **kwargs)
    raise ServeError(
        f"manifest line {line}: need one of 'family', 'qasm', 'qasm_file'"
    )


def jobs_from_manifest(
    entries: list[dict],
    config: ServeConfig,
    base_dir: str = ".",
    flatdd_config: FlatDDConfig | None = None,
) -> list[Job]:
    """Materialize manifest entries into jobs (expanding ``repeat``)."""
    jobs: list[Job] = []
    for entry in entries:
        line = entry.get("_line", "?")
        repeat = int(entry.get("repeat", 1))
        if repeat < 1:
            raise ServeError(f"manifest line {line}: repeat must be >= 1")
        circuit = _circuit_from_entry(entry, base_dir)
        job_config = _entry_config(entry, config, circuit, flatdd_config)
        param_sets = entry.get("param_sets")
        if param_sets is not None:
            if not isinstance(param_sets, list) or not all(
                isinstance(row, (list, tuple)) for row in param_sets
            ):
                raise ServeError(
                    f"manifest line {line}: param_sets must be a list of "
                    "parameter rows"
                )
            param_sets = [
                tuple(float(x) for x in row) for row in param_sets
            ]
        for copy in range(repeat):
            job_id = entry.get("job_id", "")
            if not job_id and isinstance(line, int):
                # Deterministic manifest-derived id: crash recovery must
                # match journal records to jobs *across processes*, so ids
                # cannot depend on in-process submission order.
                job_id = f"m{line:04d}"
            if job_id and repeat > 1:
                job_id = f"{job_id}.{copy}"
            jobs.append(
                Job(
                    circuit=circuit,
                    backend=entry.get("backend", config.backend),
                    config=job_config,
                    shots=int(entry.get("shots", 0)),
                    sample_seed=int(entry.get("sample_seed", 0)) + copy,
                    param_sets=param_sets,
                    priority=int(entry.get("priority", 0)),
                    deadline_seconds=entry.get("deadline_seconds"),
                    max_retries=int(
                        entry.get("max_retries", config.max_retries)
                    ),
                    job_id=job_id,
                )
            )
    return jobs


def _entry_config(
    entry: dict,
    config: ServeConfig,
    circuit: Circuit,
    flatdd_config: FlatDDConfig | None,
) -> FlatDDConfig | None:
    """Per-job FlatDD config from manifest overrides.

    ``qubit_order`` and ``identity_skip`` manifest keys override the
    batch-wide ``flatdd_config`` (or the service defaults) for one
    entry.  ``qubit_order`` participates in the config digest, so jobs
    that only differ in order get distinct cache keys; ``identity_skip``
    is execution-only and dedups against the default build.
    """
    qubit_order = entry.get("qubit_order")
    identity_skip = entry.get("identity_skip")
    if qubit_order is None and identity_skip is None:
        return flatdd_config
    from repro.serve.workers import clamp_threads

    base = flatdd_config or FlatDDConfig(
        threads=clamp_threads(config.threads, circuit.num_qubits)
    )
    overrides: dict = {}
    if qubit_order is not None:
        overrides["qubit_order"] = str(qubit_order)
    if identity_skip is not None:
        overrides["identity_skip"] = bool(identity_skip)
    try:
        return dataclasses.replace(base, **overrides)
    except ValueError as exc:
        line = entry.get("_line", "?")
        raise ServeError(f"manifest line {line}: {exc}") from exc


def run_manifest(
    path: str,
    config: ServeConfig | None = None,
    tracer=None,
    service: SimulationService | None = None,
    journal_path: str | None = None,
    resume: bool = False,
    journal_fsync: bool | None = None,
) -> tuple[ServeReport, list[Job]]:
    """Run a JSONL manifest end to end; returns (report, jobs).

    Materializes the manifest into jobs, then delegates to
    :func:`run_jobs` (which owns journaling, resume, and draining).
    """
    cfg = config or ServeConfig()
    entries = load_manifest(path)
    jobs = jobs_from_manifest(
        entries, cfg, base_dir=os.path.dirname(os.path.abspath(path))
    )
    return run_jobs(
        jobs,
        config=cfg,
        tracer=tracer,
        service=service,
        journal_path=journal_path,
        resume=resume,
        journal_fsync=journal_fsync,
    )


def run_jobs(
    jobs: list[Job],
    config: ServeConfig | None = None,
    tracer=None,
    service: SimulationService | None = None,
    journal_path: str | None = None,
    resume: bool = False,
    journal_fsync: bool | None = None,
) -> tuple[ServeReport, list[Job]]:
    """Submit prebuilt jobs and drain them; returns (report, jobs).

    The core of :func:`run_manifest`, callable with :class:`Job` objects
    directly (the chaos harness builds jobs itself so it can attach
    transition observers before execution).  Creates (and closes) a
    service unless one is passed in.  Rejected submissions surface in
    the report's admission counts instead of aborting the batch: the
    accepted jobs still run.

    ``journal_path`` write-ahead-logs every job-state transition (JSONL,
    see :mod:`repro.serve.journal`); ``journal_fsync`` selects the
    fsync-per-record durability policy (None defers to
    ``config.journal_fsync``).  With ``resume=True`` an existing journal
    is replayed first: DONE jobs seed the result cache (they complete as
    cache hits, zero re-execution), PENDING/RUNNING jobs simply re-run,
    and the report carries a recovery summary.  The journal is opened
    for append on resume, so a crash-resume-crash sequence keeps
    converging.
    """
    cfg = config or ServeConfig()
    recovery = None
    journal = None
    own_service = service is None
    svc = service or SimulationService(cfg, tracer=tracer)
    if journal_path is not None:
        if resume:
            # A process fleet leaves one broker journal plus per-worker
            # segments; merge every surviving segment so a result the
            # broker never saw (worker journaled DONE, then the whole
            # fleet was SIGKILLed) still seeds the cache.
            segments = journal_segments(journal_path)
            if len(segments) > 1:
                recovery = replay_journal(segments)
            elif segments:
                recovery = replay_journal(journal_path)
        journal = JobJournal(
            journal_path,
            resume=resume,
            fsync=(
                cfg.journal_fsync if journal_fsync is None else journal_fsync
            ),
            registry=svc.registry,
        )
    try:
        cache_seeded = 0
        if recovery is not None:
            for job_id, record in recovery.done_payloads.items():
                key = record.get("cache_key")
                if not key or "state_b64" not in record or key in svc.cache:
                    continue
                svc.cache.put(
                    key,
                    recovery.decode_state(job_id),
                    float(record.get("runtime_seconds", 0.0)),
                    metadata={
                        "backend": record.get("backend", ""),
                        "producer": job_id,
                        "journal_resume": True,
                    },
                )
                cache_seeded += 1
            _log.info(
                "resume: replayed %d journal record(s), seeded %d cached "
                "result(s)", recovery.total_records, cache_seeded,
            )
        for job in jobs:
            accepted, reason = svc.queue.try_submit(job)
            if accepted:
                svc._jobs[job.job_id] = job
                svc.registry.counter("serve.jobs.submitted").inc()
                if journal is not None:
                    journal.attach(job)
            else:
                _log.warning(
                    "manifest job %s rejected: %s",
                    job.job_id or job.circuit.name, reason,
                )
        report = svc.drain()
        if recovery is not None:
            report.recovery = dict(
                recovery.summary(), cache_seeded=cache_seeded
            )
        return report, jobs
    finally:
        if journal is not None:
            journal.close()
        if own_service:
            svc.close()
