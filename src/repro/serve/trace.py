"""Per-job trace propagation across the queue/scheduler/worker boundary.

A job's life crosses three thread domains -- the submitting thread
(admission), the drain loop (scheduling), and a worker slot (execution)
-- and the plain span tracer cannot connect those into one tree because
each domain records on its own thread track.  A :class:`JobTraceContext`
rides *on the job* instead: every stage stamps its lifecycle events
(``submit``/``enqueue``/``dequeue``/``schedule``/``run``/``complete``)
with both clocks, and at completion the context is folded back into

* the three ``serve.latency.*`` histograms (queue-wait, run, end-to-end),
  overall and per priority tier, and
* one **connected span tree per job** in the tracer: a ``job <id>`` root
  span covering enqueue-to-terminal with ``queue_wait`` and ``run``
  child spans, all emitted on one logical thread track per job
  (``JOB_TRACK_BASE + seq``), so a Chrome trace renders each job as its
  own nested lane regardless of which OS threads touched it.

Timestamps: ``time.perf_counter()`` for durations (monotonic, matches
the tracer's clock) plus ``time.time()`` for cross-process correlation
-- the same dual-clock convention as the serve journal.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = [
    "JOB_TRACK_BASE",
    "JobTraceContext",
    "LATENCY_METRICS",
    "latency_histogram_names",
]

#: Logical Chrome-trace thread ids for per-job lanes sit far above real
#: worker-slot ids so the remapper never collides them with OS threads.
JOB_TRACK_BASE = 1_000_000

#: The serve latency metric family, in report order.
LATENCY_METRICS = ("queue_wait", "run", "e2e")

#: Lifecycle events a context will accept (in expected order).
_EVENTS = ("submit", "enqueue", "dequeue", "schedule", "run", "complete")


def latency_histogram_names(priority: int | None = None) -> list[str]:
    """Names of the serve latency histograms (aggregate or one tier)."""
    suffix = "" if priority is None else f".tier{priority}"
    return [f"serve.latency.{m}{suffix}" for m in LATENCY_METRICS]


@dataclass
class JobTraceContext:
    """Dual-clock lifecycle timestamps of one job, stamped stage by stage."""

    job_id: str = ""
    #: event name -> perf_counter timestamp.
    mono: dict[str, float] = field(default_factory=dict)
    #: event name -> wall-clock timestamp (time.time).
    wall: dict[str, float] = field(default_factory=dict)
    #: Attempt count at completion (mirrors Job.attempts for the span args).
    attempts: int = 0

    def mark(self, event: str) -> None:
        """Stamp ``event`` now on both clocks (first stamp wins)."""
        if event not in _EVENTS:
            raise ValueError(f"unknown trace event {event!r}")
        if event not in self.mono:
            self.mono[event] = time.perf_counter()
            self.wall[event] = time.time()

    def _interval(self, start: str, end: str) -> float | None:
        a, b = self.mono.get(start), self.mono.get(end)
        if a is None or b is None:
            return None
        return max(b - a, 0.0)

    # -- derived latencies (None until the relevant events exist) ------

    @property
    def queue_wait_seconds(self) -> float | None:
        """Enqueue to worker pickup."""
        return self._interval("enqueue", "run")

    @property
    def run_seconds(self) -> float | None:
        """Worker pickup to terminal state (includes retries/backoff)."""
        return self._interval("run", "complete")

    @property
    def e2e_seconds(self) -> float | None:
        """Enqueue to terminal state: what the submitter experienced."""
        return self._interval("enqueue", "complete")

    def latencies(self) -> dict[str, float]:
        """The non-None latency metrics as ``{metric: seconds}``."""
        out = {}
        for metric in LATENCY_METRICS:
            value = getattr(self, f"{metric}_seconds")
            if value is not None:
                out[metric] = value
        return out

    # -- folding back into the observability layer ---------------------

    def observe(self, registry, priority: int = 0) -> None:
        """Record this job's latencies into the serve histograms.

        Each metric lands twice: the aggregate ``serve.latency.<m>`` and
        the per-tier ``serve.latency.<m>.tier<priority>``.
        """
        for metric, seconds in self.latencies().items():
            registry.histogram(f"serve.latency.{metric}").observe(seconds)
            registry.histogram(
                f"serve.latency.{metric}.tier{priority}"
            ).observe(seconds)

    def emit_spans(self, tracer, seq: int = 0, state: str = "") -> None:
        """Write the job's connected span tree onto its own trace lane.

        Emits a root ``job <id>`` span (enqueue..complete) with nested
        ``queue_wait`` and ``run`` children, all on logical thread
        ``JOB_TRACK_BASE + seq``.  No-op until the job completed or on a
        disabled tracer.
        """
        if not getattr(tracer, "enabled", False):
            return
        start = self.mono.get("enqueue", self.mono.get("submit"))
        end = self.mono.get("complete")
        if start is None or end is None:
            return
        track = JOB_TRACK_BASE + max(seq, 0)
        tracer.record(
            f"job {self.job_id}", "job", start, end,
            thread_id=track, depth=0,
            job_id=self.job_id, state=state, attempts=self.attempts,
        )
        run_start = self.mono.get("run")
        if run_start is not None:
            tracer.record(
                "queue_wait", "job", start, run_start,
                thread_id=track, depth=1, job_id=self.job_id,
            )
            tracer.record(
                "run", "job", run_start, end,
                thread_id=track, depth=1,
                job_id=self.job_id, attempts=self.attempts,
            )
        # Every stamped lifecycle event as a point marker on the same
        # lane, so the stage boundaries stay visible inside the tree.
        for event in _EVENTS:
            ts = self.mono.get(event)
            if ts is not None:
                tracer.instant(
                    f"job.{event}", "job", ts=ts,
                    thread_id=track, job_id=self.job_id,
                )

    def summary(self) -> dict:
        """JSON-serializable latency block for job rows / journals."""
        out: dict = {
            metric: round(seconds, 6)
            for metric, seconds in self.latencies().items()
        }
        if "submit" in self.wall:
            out["submitted_at"] = self.wall["submit"]
        return out
