"""Fault-tolerant worker pool for the batch simulation service.

Workers execute :class:`~repro.serve.scheduler.BatchGroup` plans on the
shared thread substrate (:class:`repro.parallel.pool.TaskRunner`), with
three guarantees the one-shot CLI path never needed:

* **Isolation** -- every group runs inside a catch-all wrapper, so one
  crashing job marks *its* jobs FAILED and the pool keeps draining; an
  exception can never tear down the service.
* **Retry with backoff** -- exceptions outside the
  :class:`~repro.common.errors.ReproError` hierarchy are treated as
  transient (an allocator hiccup, an injected fault) and retried with
  exponential backoff up to the job's ``max_retries``;
  :class:`~repro.common.errors.ReproError` means the job itself is bad
  (unknown gate, invalid config) and fails immediately without burning
  retries.
* **Deadline enforcement** -- each job gets a wall-clock budget (its own
  ``deadline_seconds`` or the service default).  Backends with a
  cooperative ``max_seconds`` (FlatDD, DDSIM) are bounded in-flight; all
  backends are checked against the wall clock afterwards.  Exceeding the
  budget is a terminal ``TIMEOUT``, not a retry -- a deterministic
  over-budget job would time out again.

Within a group, the first job to execute populates the result cache and
every subsequent member is served from it, so duplicate circuits cost
one simulation and their results are bit-identical by construction.
"""

from __future__ import annotations

import logging
import time
from typing import Callable, Sequence

import numpy as np

from repro.backends import DDSimulator, StatevectorSimulator
from repro.common.config import FlatDDConfig, ServeConfig
from repro.common.errors import ReproError, ServeError
from repro.core import FlatDDSimulator
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.parallel.pool import TaskRunner
from repro.sampling import sample_counts
from repro.serve.cache import ResultCache
from repro.serve.jobs import Job, JobResult, JobState

__all__ = [
    "WorkerPool",
    "clamp_threads",
    "finalize_job_trace",
    "finish_job",
    "publish_sweep_rows",
]

_log = logging.getLogger("repro.serve.workers")


def clamp_threads(threads: int, num_qubits: int) -> int:
    """Largest valid thread count: power of two, <= 2**(n-1), <= threads.

    The service accepts jobs of any size, so the per-job simulator
    thread count must adapt to the circuit instead of failing DMAV's
    ``log2 t < n`` precondition on small circuits.
    """
    limit = 1 << max(num_qubits - 1, 0)
    t = max(1, min(threads, limit))
    while t & (t - 1):
        t &= t - 1  # clear lowest set bit until a power of two remains
    return t


def finish_job(
    job: Job,
    state: np.ndarray,
    runtime_seconds: float,
    cache_hit: bool,
    metadata: dict,
    registry: MetricsRegistry,
) -> None:
    """Complete ``job`` with its final state: sample, attach, transition.

    The single DONE path shared by the in-process :class:`WorkerPool`
    and the cluster broker's fan-out -- shots are always (re)sampled
    here from ``(state, job.sample_seed)``, so the counts a fleet
    returns are bit-identical to the in-process ones regardless of
    which process produced the state.
    """
    counts = None
    if job.shots > 0:
        counts = dict(
            sample_counts(
                state, job.shots, np.random.default_rng(job.sample_seed)
            )
        )
    job.result = JobResult(
        job_id=job.job_id,
        backend=job.backend,
        state=state,
        runtime_seconds=runtime_seconds,
        cache_hit=cache_hit,
        attempts=max(job.attempts, 1),
        counts=counts,
        metadata=metadata,
    )
    job.transition(JobState.DONE)
    registry.counter("serve.jobs.done").inc()


def finalize_job_trace(job: Job, registry: MetricsRegistry, tracer) -> None:
    """Fold a terminal job's trace into histograms and the span tree.

    Cancelled jobs never ran, so they contribute no latency samples;
    their (empty) lane is skipped too.
    """
    trace = job.trace
    if trace is None or not job.done or job.state is JobState.CANCELLED:
        return
    trace.mark("complete")
    trace.attempts = job.attempts
    trace.observe(registry, priority=job.priority)
    trace.emit_spans(tracer, seq=job.seq, state=job.state.value)


def publish_sweep_rows(
    job: Job,
    states: np.ndarray,
    runtime_seconds: float,
    cache: ResultCache,
    backend: str,
) -> None:
    """Publish each sweep row's state under its row cache key.

    Duplicate rows publish once (first occurrence wins -- they are
    bit-identical by construction).  Shared by the in-process pool and
    the broker when a sweep result arrives from a worker process.
    """
    published: set[str] = set()
    for row, row_state in zip(job.param_sets, states):
        row_key = job.row_cache_key(row)
        if row_key in published:
            continue
        published.add(row_key)
        cache.put(
            row_key,
            row_state.copy(),
            runtime_seconds,
            metadata={"backend": backend, "producer": job.job_id},
        )


class WorkerPool:
    """Executes batch groups with retry, timeout, and crash isolation."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        tracer=None,
        registry: MetricsRegistry | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Injectable for tests (backoff without real waiting).
        self._sleep = sleep if sleep is not None else time.sleep
        self.runner = TaskRunner(
            self.config.workers,
            use_pool=self.config.use_thread_pool,
            cancel_pending=True,
        )
        #: Exceptions that escaped a job's own handling (worker bugs);
        #: the pool survives them, but they are loud in the report.
        self.internal_errors = 0

    # -- public -------------------------------------------------------

    def execute_groups(self, groups: Sequence, cache: ResultCache) -> None:
        """Run every group; never raises on behalf of a job."""
        if not groups:
            return
        self.runner.run(
            [
                lambda group=group: self._execute_group_safe(group, cache)
                for group in groups
            ]
        )

    def run_job(self, job: Job, cache: ResultCache) -> None:
        """Execute one job to a terminal state (public single-job entry).

        Cluster worker processes drive the pool through this: same retry,
        deadline, cache, and sweep semantics as group execution, one job
        at a time.
        """
        self._run_job(job, cache)
        self._finalize_trace(job)

    def close(self) -> None:
        self.runner.close()

    # -- group / job execution ----------------------------------------

    def _execute_group_safe(self, group, cache: ResultCache) -> None:
        try:
            for job in group.jobs:
                self._run_job(job, cache)
                self._finalize_trace(job)
        except Exception:
            # A bug in the worker itself: quarantine the whole group but
            # keep the pool alive.
            self.internal_errors += 1
            self.registry.counter("serve.worker.internal_errors").inc()
            _log.exception("internal error executing group %s", group.key[:12])
            for job in group.jobs:
                if not job.done:
                    if job.state is JobState.PENDING:
                        job.transition(JobState.RUNNING)
                    job.error = "internal worker error (see service log)"
                    job.transition(JobState.FAILED)
                    self._finalize_trace(job)

    def _finalize_trace(self, job: Job) -> None:
        finalize_job_trace(job, self.registry, self.tracer)

    def _run_job(self, job: Job, cache: ResultCache) -> None:
        if job.state is JobState.CANCELLED:
            return
        job.transition(JobState.RUNNING)
        if job.trace is not None:
            job.trace.mark("run")
        if job.param_sets is not None:
            self._run_sweep_job(job, cache)
            return
        key = job.cache_key()
        entry = cache.get(key)
        if entry is not None:
            self.registry.counter("serve.jobs.cache_hits").inc()
            self._finish(
                job,
                entry.state,
                entry.runtime_seconds,
                cache_hit=True,
                metadata=entry.metadata,
            )
            return
        result = self._execute_with_retry(job)
        if result is None:
            return  # already FAILED or TIMEOUT
        entry = cache.put(
            key,
            result.state,
            result.runtime_seconds,
            metadata={"backend": result.backend, "producer": job.job_id},
        )
        state = entry.state if entry is not None else result.state
        self._finish(
            job,
            state,
            result.runtime_seconds,
            cache_hit=False,
            metadata=dict(result.metadata),
        )

    def _run_sweep_job(self, job: Job, cache: ResultCache) -> None:
        """Sweep jobs: per-row content addressing over the shared cache.

        Each row keys the cache exactly like the equivalent single-shot
        job (bound-circuit fingerprint, see ``Job.row_cache_key``), so
        sweep rows and single-shot submissions serve each other.  All
        rows cached means zero execution; otherwise one batched
        ``simulate_sweep`` produces every row and publishes each under
        its row key.
        """
        row_keys = [job.row_cache_key(row) for row in job.param_sets]
        entries = [cache.get(k) for k in row_keys]
        if all(entry is not None for entry in entries):
            self.registry.counter("serve.jobs.cache_hits").inc()
            self._finish(
                job,
                np.vstack([entry.state for entry in entries]),
                max(entry.runtime_seconds for entry in entries),
                cache_hit=True,
                metadata={"mode": "sweep", "rows": len(row_keys)},
            )
            return
        result = self._execute_with_retry(job)
        if result is None:
            return  # already FAILED or TIMEOUT
        publish_sweep_rows(
            job, result.states, result.runtime_seconds, cache, result.backend
        )
        metadata = dict(result.metadata)
        metadata.setdefault("mode", "sweep")
        self._finish(
            job,
            result.states,
            result.runtime_seconds,
            cache_hit=False,
            metadata=metadata,
        )

    def _finish(
        self,
        job: Job,
        state: np.ndarray,
        runtime_seconds: float,
        cache_hit: bool,
        metadata: dict,
    ) -> None:
        finish_job(
            job, state, runtime_seconds, cache_hit, metadata, self.registry
        )

    # -- one job, with retry/backoff/deadline -------------------------

    def _execute_with_retry(self, job: Job):
        cfg = self.config
        deadline = (
            job.deadline_seconds
            if job.deadline_seconds is not None
            else cfg.default_deadline_seconds
        )
        started = time.perf_counter()
        delay = cfg.retry_base_delay
        while True:
            remaining = (
                None
                if deadline is None
                else deadline - (time.perf_counter() - started)
            )
            if remaining is not None and remaining <= 0:
                return self._timeout(job, deadline)
            job.attempts += 1
            try:
                with self.tracer.span(
                    f"job:{job.job_id}", "serve", attempt=job.attempts
                ):
                    result = self._attempt(job, remaining)
            except ReproError as exc:
                # The job itself is invalid; retrying cannot help.
                return self._fail(job, f"permanent: {exc}")
            except Exception as exc:
                if job.attempts > job.max_retries:
                    return self._fail(
                        job,
                        f"transient fault persisted after {job.attempts} "
                        f"attempts: {exc!r}",
                    )
                self.registry.counter("serve.jobs.retries").inc()
                self.tracer.instant(
                    "retry",
                    "serve",
                    job_id=job.job_id,
                    attempt=job.attempts,
                    error=repr(exc),
                )
                _log.info(
                    "job %s attempt %d hit transient fault (%r); retrying",
                    job.job_id, job.attempts, exc,
                )
                self._sleep(min(delay, cfg.retry_max_delay))
                delay = min(delay * 2, cfg.retry_max_delay)
                continue
            if result.metadata.get("timed_out") or (
                deadline is not None
                and time.perf_counter() - started > deadline
            ):
                return self._timeout(job, deadline)
            return result

    def _attempt(self, job: Job, max_seconds: float | None):
        sim = self._make_simulator(job)
        kwargs: dict = {}
        if self.tracer.enabled:
            kwargs["tracer"] = self.tracer
        if job.param_sets is not None:
            if not hasattr(sim, "simulate_sweep"):
                raise ServeError(
                    f"backend {job.backend!r} does not support sweep jobs"
                )
            # No cooperative max_seconds for sweeps; the wall-clock
            # deadline check in _execute_with_retry still applies.
            return sim.simulate_sweep(job.circuit, job.param_sets, **kwargs)
        if max_seconds is not None and job.backend in ("flatdd", "ddsim"):
            kwargs["max_seconds"] = max_seconds
        return sim.run(job.circuit, **kwargs)

    def _make_simulator(self, job: Job):
        threads = clamp_threads(self.config.threads, job.circuit.num_qubits)
        if job.backend == "flatdd":
            if job.config is not None:
                return FlatDDSimulator(config=job.config)
            return FlatDDSimulator(config=FlatDDConfig(threads=threads))
        if job.backend == "ddsim":
            return DDSimulator()
        if job.backend == "quantumpp":
            return StatevectorSimulator(threads=threads)
        raise ServeError(f"unknown backend {job.backend!r}")

    # -- terminal outcomes --------------------------------------------

    def _fail(self, job: Job, message: str) -> None:
        job.error = message
        job.transition(JobState.FAILED)
        self.registry.counter("serve.jobs.failed").inc()
        self.tracer.instant("job_failed", "serve", job_id=job.job_id)
        _log.warning("job %s FAILED: %s", job.job_id, message)
        return None

    def _timeout(self, job: Job, deadline: float | None) -> None:
        job.error = f"deadline of {deadline:g}s exceeded"
        job.transition(JobState.TIMEOUT)
        self.registry.counter("serve.jobs.timeout").inc()
        self.tracer.instant("job_timeout", "serve", job_id=job.job_id)
        _log.warning("job %s TIMEOUT after %d attempt(s)", job.job_id, job.attempts)
        return None
