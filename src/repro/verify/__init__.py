"""Verification utilities: DD-based circuit equivalence checking plus the
differential/metamorphic fuzz harness (:mod:`repro.verify.fuzz`)."""

from repro.verify.equivalence import (
    EquivalenceResult,
    check_equivalence,
    check_equivalence_stimuli,
)
from repro.verify.fuzz import (
    CampaignResult,
    FuzzSpec,
    generate_circuit,
    run_campaign,
    run_oracles,
    shrink_circuit,
)

__all__ = [
    "CampaignResult",
    "EquivalenceResult",
    "FuzzSpec",
    "check_equivalence",
    "check_equivalence_stimuli",
    "generate_circuit",
    "run_campaign",
    "run_oracles",
    "shrink_circuit",
]
