"""Verification utilities: DD-based circuit equivalence checking."""

from repro.verify.equivalence import (
    EquivalenceResult,
    check_equivalence,
    check_equivalence_stimuli,
)

__all__ = [
    "EquivalenceResult",
    "check_equivalence",
    "check_equivalence_stimuli",
]
