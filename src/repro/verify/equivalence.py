"""DD-based quantum circuit equivalence checking.

Burgholzer & Wille ("Advanced Equivalence Checking for Quantum Circuits",
TCAD 2020 -- reference [11] of the FlatDD paper) check U1 == U2 by building
the DD of ``U2^-1 . U1``: the circuits are equivalent iff that DD is the
identity (up to global phase), which is a constant-time check on a
canonical DD.  Their key trick -- alternating gates from the two circuits
so the product stays near-identity and the DD stays small -- is
implemented here as the default strategy.

A cheaper probabilistic mode checks equivalence on random stimuli
(simulation-based equivalence), useful when the miter DD grows large.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends.gatecache import GateDDCache
from repro.circuits.circuit import Circuit
from repro.common.errors import CircuitError
from repro.dd.analysis import is_identity
from repro.dd.node import Edge
from repro.dd.operations import mm_multiply, mv_multiply
from repro.dd.package import DDPackage
from repro.dd.vector import amplitude, vector_from_array

__all__ = ["EquivalenceResult", "check_equivalence", "check_equivalence_stimuli"]


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    #: Global phase U1 = phase * U2 when equivalent (1.0 for exact equality).
    phase: complex
    #: Peak miter-DD node count (the cost driver of the method).
    peak_nodes: int
    method: str

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.equivalent


def _inverse_gates(circuit: Circuit):
    return circuit.inverse().gates


def check_equivalence(
    c1: Circuit,
    c2: Circuit,
    strategy: str = "alternate",
) -> EquivalenceResult:
    """Exact DD-based equivalence check of two circuits.

    ``strategy``:

    * ``"alternate"`` (default): interleave gates of ``c1`` with inverted
      gates of ``c2`` proportionally, keeping the miter DD close to the
      identity throughout (the [11] G -> I <- G' scheme).
    * ``"naive"``: multiply all of ``c1``, then all of ``c2`` inverted.
    """
    if c1.num_qubits != c2.num_qubits:
        raise CircuitError(
            f"qubit counts differ: {c1.num_qubits} vs {c2.num_qubits}"
        )
    if strategy not in ("alternate", "naive"):
        raise CircuitError(f"unknown strategy {strategy!r}")
    n = c1.num_qubits
    pkg = DDPackage(n)
    gates = GateDDCache(pkg)
    miter = pkg.identity_edge(n - 1)
    peak = 0

    fwd = list(c1.gates)
    bwd = _inverse_gates(c2)

    def apply_fwd(m: Edge, gate) -> Edge:
        # Left-multiply: miter <- G . miter.
        return mm_multiply(pkg, gates.get(gate), m)

    def apply_bwd(m: Edge, gate) -> Edge:
        # Right-multiply by the inverse gate: miter <- miter . G2^-1,
        # equivalently building U2^-1 on the right side of U1.
        return mm_multiply(pkg, m, gates.get(gate))

    if strategy == "naive":
        for g in fwd:
            miter = apply_fwd(miter, g)
            peak = max(peak, pkg.unique_node_count)
        for g in reversed(bwd):
            # U2^-1 = (g_k ... g_1)^-1 applied right-to-left.
            miter = apply_bwd(miter, g)
            peak = max(peak, pkg.unique_node_count)
    else:
        # Proportional interleave: advance whichever side is behind.
        i = j = 0
        while i < len(fwd) or j < len(bwd):
            take_fwd = j * max(len(fwd), 1) <= i * max(len(bwd), 1)
            if i < len(fwd) and (take_fwd or j >= len(bwd)):
                miter = apply_fwd(miter, fwd[i])
                i += 1
            else:
                miter = apply_bwd(miter, bwd[len(bwd) - 1 - j])
                j += 1
            peak = max(peak, pkg.unique_node_count)

    equivalent = (
        not miter.is_zero
        and is_identity(pkg, miter.n)
        and abs(abs(miter.w) - 1.0) < 1e-9
    )
    phase = miter.w if equivalent else 0j
    return EquivalenceResult(
        equivalent=equivalent,
        phase=phase,
        peak_nodes=peak,
        method=f"dd-{strategy}",
    )


def check_equivalence_stimuli(
    c1: Circuit,
    c2: Circuit,
    num_stimuli: int = 8,
    seed: int = 0,
    atol: float = 1e-8,
) -> EquivalenceResult:
    """Probabilistic equivalence check on random product-state stimuli.

    Simulates both circuits (with DDs) on ``num_stimuli`` random inputs and
    compares a fingerprint amplitude set; random stimuli expose any
    difference with overwhelming probability [11].
    """
    if c1.num_qubits != c2.num_qubits:
        raise CircuitError(
            f"qubit counts differ: {c1.num_qubits} vs {c2.num_qubits}"
        )
    n = c1.num_qubits
    rng = np.random.default_rng(seed)
    pkg = DDPackage(n)
    gates = GateDDCache(pkg)
    peak = 0
    phase: complex | None = None
    for _ in range(num_stimuli):
        # Random product state: cheap to build, full support.
        angles = rng.uniform(0, 2 * np.pi, size=(n, 2))
        amps = np.array([1.0], dtype=np.complex128)
        for theta, lam in angles:
            q = np.array(
                [np.cos(theta / 2), np.exp(1j * lam) * np.sin(theta / 2)]
            )
            amps = np.kron(q, amps)
        stimulus = vector_from_array(pkg, amps)
        out1 = stimulus
        for g in c1.gates:
            out1 = mv_multiply(pkg, gates.get(g), out1)
        out2 = stimulus
        for g in c2.gates:
            out2 = mv_multiply(pkg, gates.get(g), out2)
        peak = max(peak, pkg.unique_node_count)
        # Compare a handful of amplitudes up to one shared global phase.
        probes = rng.integers(0, 1 << n, size=4)
        for idx in probes:
            a1 = amplitude(pkg, out1, int(idx))
            a2 = amplitude(pkg, out2, int(idx))
            if abs(a1) < atol and abs(a2) < atol:
                continue
            if abs(a1) < atol or abs(a2) < atol:
                return EquivalenceResult(False, 0j, peak, "stimuli")
            ratio = a1 / a2
            if phase is None:
                phase = ratio
            if abs(ratio - phase) > atol:
                return EquivalenceResult(False, 0j, peak, "stimuli")
    return EquivalenceResult(True, phase or 1.0, peak, "stimuli")
