"""Differential fuzzing and metamorphic testing of the simulation paths.

The harness closes the loop the equivalence checker opened: instead of
comparing two *given* circuits, it generates random circuits across
structural regimes (:mod:`~repro.verify.fuzz.generate`), checks every
simulation path against cross-backend and metamorphic oracles
(:mod:`~repro.verify.fuzz.oracles`), and minimizes + persists anything
that fails (:mod:`~repro.verify.fuzz.shrink`) as a replayable regression
file.  :func:`run_campaign` drives the whole loop;
``python -m repro fuzz`` is its CLI front-end.

See ``docs/TESTING.md`` for the oracle catalog and triage workflow.
"""

from repro.verify.fuzz.faults import CRASH_FAULTS, FAULTS, plant_fault
from repro.verify.fuzz.generate import (
    REGIMES,
    FuzzSpec,
    generate_circuit,
    spec_for_iteration,
)
from repro.verify.fuzz.oracles import (
    ORACLE_FAMILIES,
    ORACLES,
    TOLERANCE_LADDER,
    OracleContext,
    OracleOutcome,
    phase_aligned_error,
    run_oracles,
)
from repro.verify.fuzz.runner import CampaignResult, FuzzViolation, run_campaign
from repro.verify.fuzz.shrink import (
    REGRESSION_DIR,
    load_regression,
    replay_regression,
    shrink_circuit,
    write_regression,
)

__all__ = [
    "CRASH_FAULTS",
    "CampaignResult",
    "FAULTS",
    "FuzzSpec",
    "FuzzViolation",
    "ORACLE_FAMILIES",
    "ORACLES",
    "OracleContext",
    "OracleOutcome",
    "REGIMES",
    "REGRESSION_DIR",
    "TOLERANCE_LADDER",
    "generate_circuit",
    "load_regression",
    "phase_aligned_error",
    "plant_fault",
    "replay_regression",
    "run_campaign",
    "run_oracles",
    "shrink_circuit",
    "spec_for_iteration",
    "write_regression",
]
