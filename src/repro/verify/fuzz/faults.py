"""Deliberate fault injection for exercising the fuzz harness itself.

A correctness harness that has never caught a bug is untested code.  Each
named fault here patches exactly one simulation path (so the differential
oracles genuinely disagree rather than all drifting together) inside a
context manager; ``repro fuzz --plant-bug NAME`` and the harness's own
unit tests use these to demonstrate end-to-end detect -> shrink -> replay.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator

import numpy as np

from repro.circuits.gates import Gate

__all__ = ["FAULTS", "plant_fault"]


@contextlib.contextmanager
def _fault_t_phase() -> Iterator[None]:
    """DD backends build Tdg wherever a T gate appears.

    Patches the gate-DD constructor shared by DDSIM and FlatDD, so both
    DD paths agree with each other but differ from the statevector
    backend -- the classic single-path phase bug.
    """
    import repro.backends.gatecache as gatecache

    original = gatecache.build_gate_dd

    def faulty(pkg, gate: Gate):
        if gate.base_name == "t":
            gate = Gate("tdg", gate.targets, gate.controls)
        return original(pkg, gate)

    gatecache.build_gate_dd = faulty
    try:
        yield
    finally:
        gatecache.build_gate_dd = original


@contextlib.contextmanager
def _fault_swap_noop() -> Iterator[None]:
    """The statevector backend silently skips SWAP gates."""
    import repro.backends.statevector as sv

    original = sv.apply_gate_array

    def faulty(state: np.ndarray, gate: Gate, runner=None) -> None:
        if gate.base_name == "swap":
            return
        original(state, gate, runner)

    sv.apply_gate_array = faulty
    try:
        yield
    finally:
        sv.apply_gate_array = original


@contextlib.contextmanager
def _fault_conversion_drop() -> Iterator[None]:
    """Parallel DD-to-array conversion zeroes the highest amplitude block.

    Only FlatDD uses ``convert_parallel``, so the hybrid path diverges
    from both baselines -- and only on circuits that actually convert.
    """
    import repro.core.conversion as conv
    import repro.core.simulator as sim

    original = conv.convert_parallel

    def faulty(pkg, edge, threads, runner, **kwargs):
        array, report = original(pkg, edge, threads, runner, **kwargs)
        if array.size >= 4:
            array[-(array.size // 4):] = 0.0
        return array, report

    conv.convert_parallel = faulty
    sim.convert_parallel = faulty
    try:
        yield
    finally:
        conv.convert_parallel = original
        sim.convert_parallel = original


#: name -> context manager installing the fault for the enclosed block.
FAULTS: dict[str, Callable[[], "contextlib.AbstractContextManager"]] = {
    "t-phase": _fault_t_phase,
    "swap-noop": _fault_swap_noop,
    "conversion-drop": _fault_conversion_drop,
}


@contextlib.contextmanager
def plant_fault(name: str | None) -> Iterator[None]:
    """Install fault ``name`` for the enclosed block (None = no-op)."""
    if name is None:
        yield
        return
    if name not in FAULTS:
        raise ValueError(f"unknown fault {name!r}; known: {sorted(FAULTS)}")
    with FAULTS[name]():
        yield
