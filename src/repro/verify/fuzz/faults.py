"""Deliberate fault injection for exercising the fuzz harness itself.

A correctness harness that has never caught a bug is untested code.  Each
named fault here patches exactly one simulation path (so the differential
oracles genuinely disagree rather than all drifting together) inside a
context manager; ``repro fuzz --plant-bug NAME`` and the harness's own
unit tests use these to demonstrate end-to-end detect -> shrink -> replay.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator

import numpy as np

from repro.circuits.gates import Gate

__all__ = ["CRASH_FAULTS", "FAULTS", "plant_fault"]


@contextlib.contextmanager
def _fault_t_phase() -> Iterator[None]:
    """DD backends build Tdg wherever a T gate appears.

    Patches the gate-DD constructor shared by DDSIM and FlatDD, so both
    DD paths agree with each other but differ from the statevector
    backend -- the classic single-path phase bug.
    """
    import repro.backends.gatecache as gatecache

    original = gatecache.build_gate_dd

    def faulty(pkg, gate: Gate, windowed: bool = False):
        if gate.base_name == "t":
            gate = Gate("tdg", gate.targets, gate.controls)
        return original(pkg, gate, windowed=windowed)

    gatecache.build_gate_dd = faulty
    try:
        yield
    finally:
        gatecache.build_gate_dd = original


@contextlib.contextmanager
def _fault_swap_noop() -> Iterator[None]:
    """The statevector backend silently skips SWAP gates."""
    import repro.backends.statevector as sv

    original = sv.apply_gate_array

    def faulty(state: np.ndarray, gate: Gate, runner=None) -> None:
        if gate.base_name == "swap":
            return
        original(state, gate, runner)

    sv.apply_gate_array = faulty
    try:
        yield
    finally:
        sv.apply_gate_array = original


@contextlib.contextmanager
def _fault_conversion_drop() -> Iterator[None]:
    """Parallel DD-to-array conversion zeroes the highest amplitude block.

    Only FlatDD uses ``convert_parallel``, so the hybrid path diverges
    from both baselines -- and only on circuits that actually convert.
    """
    import repro.core.conversion as conv
    import repro.core.simulator as sim

    original = conv.convert_parallel

    def faulty(pkg, edge, threads, runner, **kwargs):
        array, report = original(pkg, edge, threads, runner, **kwargs)
        if array.size >= 4:
            array[-(array.size // 4):] = 0.0
        return array, report

    conv.convert_parallel = faulty
    sim.convert_parallel = faulty
    try:
        yield
    finally:
        conv.convert_parallel = original
        sim.convert_parallel = original


@contextlib.contextmanager
def _fault_transient_crash(times: int = 2) -> Iterator[None]:
    """Gate-DD construction raises for the first ``times`` calls, then heals.

    Unlike the silent-corruption faults above, this one *crashes*: the
    serving layer uses it to exercise the transient-fault path (worker
    retries with backoff, then the job succeeds).  The counter is shared
    across the whole block, so the first job to execute absorbs the
    failures and everything after it runs clean.
    """
    import repro.backends.gatecache as gatecache

    original = gatecache.build_gate_dd
    calls = {"n": 0}

    def faulty(pkg, gate: Gate, windowed: bool = False):
        calls["n"] += 1
        if calls["n"] <= times:
            raise RuntimeError(
                f"injected transient fault ({calls['n']}/{times})"
            )
        return original(pkg, gate, windowed=windowed)

    gatecache.build_gate_dd = faulty
    try:
        yield
    finally:
        gatecache.build_gate_dd = original


@contextlib.contextmanager
def _fault_permanent_crash() -> Iterator[None]:
    """Gate-DD construction always raises.

    Exhausts any retry budget: the serving layer uses it to assert a
    permanently failing job goes FAILED without poisoning the worker
    pool for the jobs behind it.
    """
    import repro.backends.gatecache as gatecache

    original = gatecache.build_gate_dd

    def faulty(pkg, gate: Gate, windowed: bool = False):
        raise RuntimeError("injected permanent fault")

    gatecache.build_gate_dd = faulty
    try:
        yield
    finally:
        gatecache.build_gate_dd = original


#: name -> context manager installing the fault for the enclosed block.
#: These faults *silently corrupt* one simulation path, so differential
#: oracles catch them; see CRASH_FAULTS for the raising kind.
FAULTS: dict[str, Callable[[], "contextlib.AbstractContextManager"]] = {
    "t-phase": _fault_t_phase,
    "swap-noop": _fault_swap_noop,
    "conversion-drop": _fault_conversion_drop,
}

#: Faults that *raise* instead of corrupting.  The serving layer
#: (`repro.serve`) plants these to exercise its retry/failure paths;
#: they are kept out of FAULTS because "caught by a differential oracle"
#: does not apply to an exception.
CRASH_FAULTS: dict[str, Callable[[], "contextlib.AbstractContextManager"]] = {
    "transient-crash": _fault_transient_crash,
    "permanent-crash": _fault_permanent_crash,
}


@contextlib.contextmanager
def plant_fault(name: str | None) -> Iterator[None]:
    """Install fault ``name`` for the enclosed block (None = no-op).

    Resolves both catalogs: corruption faults (:data:`FAULTS`) and
    crash faults (:data:`CRASH_FAULTS`).
    """
    if name is None:
        yield
        return
    factory = FAULTS.get(name) or CRASH_FAULTS.get(name)
    if factory is None:
        raise ValueError(
            f"unknown fault {name!r}; known: "
            f"{sorted(FAULTS) + sorted(CRASH_FAULTS)}"
        )
    with factory():
        yield
