"""Seeded random-circuit generation for the differential fuzz harness.

The fuzzer draws circuits across *regimes* chosen to stress different
parts of the FlatDD pipeline:

* ``clifford``   -- stabilizer circuits: DD sizes stay polynomial, so these
  runs mostly exercise the pure-DD phase and the GC/complex-table paths.
* ``clifford_t`` -- Clifford + T/Tdg: the canonical universal set; T gates
  slowly break regularity, probing the EWMA trigger boundary.
* ``rotations``  -- continuous-parameter rotations and controlled phases:
  irregular amplitudes almost immediately, so conversion + DMAV dominate.
* ``mixed``      -- the full library gate set including three-qubit gates.
* ``generator``  -- one of the existing benchmark families (regular and
  irregular) at randomized sizes/seeds, so the fuzz harness also covers
  the exact circuit shapes the paper's evaluation uses.

All randomness flows from a single seed through ``numpy``'s SeedSequence
spawning, so a campaign is fully reproducible from ``(seed, iteration)``.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass

import numpy as np

from repro.circuits.circuit import Circuit
from repro.common.errors import CircuitError

__all__ = ["FuzzSpec", "REGIMES", "generate_circuit", "spec_for_iteration"]

#: Gate pools per regime: (one-qubit fixed, one-qubit parameterized,
#: two-qubit fixed, two-qubit parameterized).
_POOLS: dict[str, tuple[tuple[str, ...], tuple[str, ...], tuple[str, ...], tuple[str, ...]]] = {
    "clifford": (
        ("h", "x", "y", "z", "s", "sdg"),
        (),
        ("cx", "cz", "swap"),
        (),
    ),
    "clifford_t": (
        ("h", "x", "y", "z", "s", "sdg", "t", "tdg"),
        (),
        ("cx", "cz", "swap"),
        (),
    ),
    "rotations": (
        (),
        ("rx", "ry", "rz", "p"),
        ("cx", "cz"),
        ("cp", "rzz", "rxx"),
    ),
    "mixed": (
        ("h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx"),
        ("rx", "ry", "rz", "p", "u2", "u3"),
        ("cx", "cz", "swap"),
        ("cp", "rzz"),
    ),
}

#: Benchmark families the ``generator`` regime samples from, with the
#: keyword knob that scales their depth (None = size-only families).
_FAMILIES: tuple[tuple[str, str | None], ...] = (
    ("ghz", None),
    ("adder", None),
    ("qft", None),
    ("wstate", None),
    ("dnn", "layers"),
    ("vqe", "layers"),
    ("supremacy", "cycles"),
    ("random", "gates"),
)

REGIMES: tuple[str, ...] = (
    "clifford", "clifford_t", "rotations", "mixed", "generator",
)

#: How many parameters each parameterized gate takes.
_PARAM_COUNTS = {"u2": 2, "u3": 3}


@dataclass(frozen=True)
class FuzzSpec:
    """Deterministic description of one fuzzed circuit.

    ``generate_circuit(spec)`` is a pure function of this record, so a
    failing case replays from the spec alone.
    """

    regime: str = "mixed"
    num_qubits: int = 4
    num_gates: int = 30
    #: Target fraction of multi-qubit gates (ignored by ``generator``).
    two_qubit_fraction: float = 0.3
    seed: int = 0

    def as_dict(self) -> dict:
        return asdict(self)


def _random_gate(c: Circuit, rng: np.random.Generator, spec: FuzzSpec) -> None:
    """Append one random gate drawn from the regime's pools."""
    one_fixed, one_param, two_fixed, two_param = _POOLS[spec.regime]
    n = c.num_qubits
    want_two = (
        n >= 2
        and (two_fixed or two_param)
        and rng.random() < spec.two_qubit_fraction
    )
    if want_two:
        pool = two_fixed + two_param
        name = str(pool[rng.integers(0, len(pool))])
        a, b = (int(q) for q in rng.choice(n, size=2, replace=False))
        if name in two_param:
            c.add(name, a, b,
                  params=(float(rng.uniform(0, 2 * math.pi)),))
        else:
            c.add(name, a, b)
        return
    pool = one_fixed + one_param
    name = str(pool[rng.integers(0, len(pool))])
    q = int(rng.integers(0, n))
    if name in one_param:
        k = _PARAM_COUNTS.get(name, 1)
        params = tuple(float(rng.uniform(0, 2 * math.pi)) for _ in range(k))
        c.add(name, q, params=params)
    else:
        c.add(name, q)


def _generator_circuit(spec: FuzzSpec, rng: np.random.Generator) -> Circuit:
    """Sample one of the existing benchmark generators at random size."""
    from repro.circuits.generators import get_circuit

    family, knob = _FAMILIES[int(rng.integers(0, len(_FAMILIES)))]
    n = spec.num_qubits
    if family == "adder":  # adder layout needs even n >= 4
        n = max(4, n + (n % 2))
    elif family == "supremacy":
        n = max(2, n)
    kwargs: dict = {}
    if knob == "layers":
        kwargs[knob] = int(rng.integers(1, 4))
    elif knob == "cycles":
        kwargs[knob] = int(rng.integers(2, 8))
    elif knob == "gates":
        kwargs[knob] = spec.num_gates
    if family in ("random", "supremacy", "dnn", "vqe"):
        kwargs["seed"] = int(rng.integers(0, 2**31))
    c = get_circuit(family, n, **kwargs)
    c.name = f"fuzz_{family}_n{c.num_qubits}_s{spec.seed}"
    return c


def generate_circuit(spec: FuzzSpec) -> Circuit:
    """Build the circuit described by ``spec`` (pure, deterministic)."""
    if spec.regime not in REGIMES:
        raise CircuitError(
            f"unknown fuzz regime {spec.regime!r}; known: {sorted(REGIMES)}"
        )
    if spec.num_qubits < 1:
        raise CircuitError(f"need at least 1 qubit, got {spec.num_qubits}")
    rng = np.random.default_rng(np.random.SeedSequence(spec.seed))
    if spec.regime == "generator":
        return _generator_circuit(spec, rng)
    c = Circuit(
        spec.num_qubits,
        name=f"fuzz_{spec.regime}_n{spec.num_qubits}_s{spec.seed}",
    )
    for _ in range(spec.num_gates):
        _random_gate(c, rng, spec)
    return c


def spec_for_iteration(
    campaign_seed: int,
    iteration: int,
    regimes: tuple[str, ...] = REGIMES,
    min_qubits: int = 2,
    max_qubits: int = 6,
    max_gates: int = 60,
) -> FuzzSpec:
    """Derive iteration ``iteration``'s spec from the campaign seed.

    Uses SeedSequence spawn keys, so every (seed, iteration) pair maps to
    an independent, reproducible stream regardless of how many iterations
    actually ran before it.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence(campaign_seed, spawn_key=(iteration,))
    )
    regime = str(regimes[int(rng.integers(0, len(regimes)))])
    num_qubits = int(rng.integers(min_qubits, max_qubits + 1))
    num_gates = int(rng.integers(max(4, max_gates // 4), max_gates + 1))
    two_q = float(rng.uniform(0.1, 0.5))
    # The circuit seed is drawn from the same stream: replaying the spec
    # does not need the campaign rng at all.
    circuit_seed = int(rng.integers(0, 2**31))
    return FuzzSpec(
        regime=regime,
        num_qubits=num_qubits,
        num_gates=num_gates,
        two_qubit_fraction=two_q,
        seed=circuit_seed,
    )
