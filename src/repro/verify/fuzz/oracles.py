"""Correctness oracles for the fuzz harness.

Two families, both cheap relative to writing amplitude-level golden data:

* **differential** -- run the same circuit through independent simulator
  implementations (FlatDD, the DDSIM-role pure-DD backend, the flat-array
  statevector backend) and demand identical final states up to one global
  phase, within a tolerance *ladder* (an oracle violation reports the
  loosest tier it failed).
* **metamorphic** -- properties that must hold regardless of the circuit
  drawn: norm preservation, ``C . C^-1 = I`` round-trips, gate-fusion
  on/off equivalence, forced early/late conversion-point equivalence,
  thread-count invariance of the parallel conversion + DMAV kernels,
  bit-identical identity-skip on/off equivalence, qubit-reorder
  equivalence (any variable order un-permutes back to the natural-order
  state), and bit-identical checkpoint/resume (a run interrupted at a
  fingerprint-derived gate and resumed from its snapshot must reproduce
  the uninterrupted run's amplitudes *exactly*, see docs/RESILIENCE.md).

Every oracle is a pure function ``(circuit, ctx) -> OracleOutcome``;
``run_oracles`` shares simulated states across oracles through the
:class:`OracleContext` cache so a full check costs ~10 simulations, not
~20.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field

import numpy as np

from repro.backends.ddsim import DDSimulator
from repro.backends.statevector import StatevectorSimulator
from repro.circuits.circuit import Circuit
from repro.common.config import FlatDDConfig
from repro.common.errors import CircuitError
from repro.core.simulator import FlatDDSimulator

__all__ = [
    "OracleContext",
    "OracleOutcome",
    "ORACLES",
    "ORACLE_FAMILIES",
    "TOLERANCE_LADDER",
    "phase_aligned_error",
    "run_oracles",
]

#: (tier name, max |amplitude| deviation) from strict to permissive.  An
#: oracle *violation* means even the loosest tier failed; the achieved
#: tier is reported either way so drift shows up before it breaks.
TOLERANCE_LADDER: tuple[tuple[str, float], ...] = (
    ("tight", 1e-9),
    ("standard", 1e-7),
    ("loose", 1e-5),
)


@dataclass(frozen=True)
class OracleOutcome:
    """Result of one oracle on one circuit."""

    oracle: str
    family: str
    passed: bool
    #: Largest amplitude deviation observed (None for skipped oracles).
    max_error: float | None
    #: Tolerance tier achieved ("tight"/"standard"/"loose"), or "violation".
    tier: str | None
    detail: str
    seconds: float = 0.0
    skipped: bool = False


def phase_aligned_error(a: np.ndarray, b: np.ndarray) -> float:
    """Max amplitude deviation between two states up to one global phase.

    The aligning phase is taken from the inner product, which is the
    least-squares-optimal global phase; exactly equal states (up to phase)
    give 0 regardless of which phase each backend happened to produce.
    """
    if a.shape != b.shape:
        return float("inf")
    overlap = np.vdot(a, b)
    if abs(overlap) < 1e-300:
        return float(np.max(np.abs(a - b)))
    phase = overlap / abs(overlap)
    return float(np.max(np.abs(a * phase - b)))


def _tier(err: float) -> str:
    for name, tol in TOLERANCE_LADDER:
        if err <= tol:
            return name
    return "violation"


def _ladder_outcome(
    oracle: str, family: str, err: float, detail: str, t0: float
) -> OracleOutcome:
    tier = _tier(err)
    return OracleOutcome(
        oracle=oracle,
        family=family,
        passed=tier != "violation",
        max_error=err,
        tier=tier,
        detail=detail,
        seconds=time.perf_counter() - t0,
    )


def _skip(oracle: str, family: str, reason: str, t0: float) -> OracleOutcome:
    return OracleOutcome(
        oracle=oracle,
        family=family,
        passed=True,
        max_error=None,
        tier=None,
        detail=reason,
        seconds=time.perf_counter() - t0,
        skipped=True,
    )


@dataclass
class OracleContext:
    """Shared state for one circuit's oracle sweep.

    Final states are memoized by backend/config key, so e.g. the
    conversion-point and fusion oracles reuse the differential oracles'
    FlatDD run instead of re-simulating.
    """

    circuit: Circuit
    threads: int = 2
    _states: dict = field(default_factory=dict)

    def _effective_threads(self, threads: int | None) -> int:
        t = self.threads if threads is None else threads
        # DMAV's Assign needs t a power of two with t <= 2**(n-1).
        limit = 1 << max(self.circuit.num_qubits - 1, 0)
        while t > limit:
            t //= 2
        return max(t, 1)

    def statevector(self) -> np.ndarray:
        key = ("sv",)
        if key not in self._states:
            sim = StatevectorSimulator(mode="indexed")
            self._states[key] = sim.run(self.circuit).state
        return self._states[key]

    def ddsim(self) -> np.ndarray:
        key = ("ddsim",)
        if key not in self._states:
            self._states[key] = DDSimulator().run(self.circuit).state
        return self._states[key]

    def flatdd(
        self,
        threads: int | None = None,
        fusion: str = "none",
        force_convert_at: int | None = None,
        plan_cache: bool = True,
        identity_skip: bool = True,
        qubit_order: str = "natural",
    ) -> np.ndarray:
        t = self._effective_threads(threads)
        key = (
            "flatdd", t, fusion, force_convert_at, plan_cache,
            identity_skip, qubit_order,
        )
        if key not in self._states:
            cfg = FlatDDConfig(
                threads=t, fusion=fusion, force_convert_at=force_convert_at,
                plan_cache=plan_cache, identity_skip=identity_skip,
                qubit_order=qubit_order,
            )
            self._states[key] = FlatDDSimulator(cfg).run(self.circuit).state
        return self._states[key]


# ---------------------------------------------------------------------------
# Differential oracles
# ---------------------------------------------------------------------------


def oracle_flatdd_vs_statevector(
    circuit: Circuit, ctx: OracleContext
) -> OracleOutcome:
    """FlatDD's hybrid pipeline must match the flat-array baseline."""
    t0 = time.perf_counter()
    err = phase_aligned_error(ctx.flatdd(), ctx.statevector())
    return _ladder_outcome(
        "flatdd_vs_statevector", "differential", err,
        "flatdd (EWMA-timed conversion) vs indexed statevector", t0,
    )


def oracle_flatdd_vs_ddsim(
    circuit: Circuit, ctx: OracleContext
) -> OracleOutcome:
    """FlatDD must match the pure-DD baseline it claims to be identical to."""
    t0 = time.perf_counter()
    err = phase_aligned_error(ctx.flatdd(), ctx.ddsim())
    return _ladder_outcome(
        "flatdd_vs_ddsim", "differential", err,
        "flatdd (EWMA-timed conversion) vs pure-DD DDSIM", t0,
    )


def oracle_ddsim_vs_statevector(
    circuit: Circuit, ctx: OracleContext
) -> OracleOutcome:
    """The two baselines must agree with each other (closes the triangle)."""
    t0 = time.perf_counter()
    err = phase_aligned_error(ctx.ddsim(), ctx.statevector())
    return _ladder_outcome(
        "ddsim_vs_statevector", "differential", err,
        "pure-DD DDSIM vs indexed statevector", t0,
    )


# ---------------------------------------------------------------------------
# Metamorphic oracles
# ---------------------------------------------------------------------------


def oracle_norm_preserved(
    circuit: Circuit, ctx: OracleContext
) -> OracleOutcome:
    """Unitary evolution keeps the state normalized on every backend."""
    t0 = time.perf_counter()
    errs = [
        abs(float(np.linalg.norm(state)) - 1.0)
        for state in (ctx.flatdd(), ctx.statevector())
    ]
    return _ladder_outcome(
        "norm_preserved", "metamorphic", max(errs),
        "| ||state|| - 1 | on flatdd and statevector", t0,
    )


def oracle_inverse_roundtrip(
    circuit: Circuit, ctx: OracleContext
) -> OracleOutcome:
    """Simulating ``C`` then ``C^-1`` must return to |0...0>."""
    t0 = time.perf_counter()
    try:
        inverse = circuit.inverse()
    except CircuitError as exc:
        return _skip(
            "inverse_roundtrip", "metamorphic", f"no inverse rule: {exc}", t0
        )
    echo = Circuit(
        circuit.num_qubits,
        list(circuit.gates) + list(inverse.gates),
        name=f"{circuit.name}_echo",
    )
    # Force a mid-circuit conversion so the round-trip crosses the
    # DD -> array boundary (the handoff is exactly what we distrust).
    cfg = FlatDDConfig(
        threads=ctx._effective_threads(None),
        force_convert_at=max(len(echo.gates) // 2 - 1, 0),
    )
    state = FlatDDSimulator(cfg).run(echo).state
    expected = np.zeros_like(state)
    expected[0] = 1.0
    err = phase_aligned_error(state, expected)
    return _ladder_outcome(
        "inverse_roundtrip", "metamorphic", err,
        "C . C^-1 |0> vs |0> with conversion forced mid-echo", t0,
    )


def oracle_fusion_equivalence(
    circuit: Circuit, ctx: OracleContext
) -> OracleOutcome:
    """Gate fusion is a performance knob; it must not change the state.

    Conversion is forced after the first gate so (almost) the whole
    circuit runs in the DMAV phase, where fusion actually applies.
    """
    t0 = time.perf_counter()
    if len(circuit.gates) < 2:
        return _skip(
            "fusion_equivalence", "metamorphic", "needs >= 2 gates", t0
        )
    base = ctx.flatdd(fusion="none", force_convert_at=0)
    errs = [
        phase_aligned_error(base, ctx.flatdd(fusion=mode, force_convert_at=0))
        for mode in ("cost", "koperations")
    ]
    return _ladder_outcome(
        "fusion_equivalence", "metamorphic", max(errs),
        "fusion none vs cost vs koperations (conversion forced at gate 0)",
        t0,
    )


def oracle_conversion_point_equivalence(
    circuit: Circuit, ctx: OracleContext
) -> OracleOutcome:
    """The DD -> array handoff must be semantically invisible wherever it
    happens: first gate, mid-circuit, last gate, never, or EWMA-timed."""
    t0 = time.perf_counter()
    gates = len(circuit.gates)
    if gates < 2:
        return _skip(
            "conversion_point_equivalence", "metamorphic",
            "needs >= 2 gates", t0,
        )
    base = ctx.flatdd()  # EWMA-timed (the production path)
    points = sorted({0, gates // 2, gates - 1, gates})
    errs = [
        phase_aligned_error(base, ctx.flatdd(force_convert_at=p))
        for p in points
    ]
    return _ladder_outcome(
        "conversion_point_equivalence", "metamorphic", max(errs),
        f"forced conversion at {points} vs EWMA-timed", t0,
    )


def oracle_thread_invariance(
    circuit: Circuit, ctx: OracleContext
) -> OracleOutcome:
    """convert_parallel and DMAV must not depend on the thread count."""
    t0 = time.perf_counter()
    n = circuit.num_qubits
    counts = [t for t in (1, 2, 4) if t <= (1 << max(n - 1, 0))]
    if len(counts) < 2 or len(circuit.gates) < 2:
        return _skip(
            "thread_invariance", "metamorphic",
            "needs >= 2 usable thread counts and >= 2 gates", t0,
        )
    # Forced early conversion exercises both the parallel conversion and
    # the multi-threaded DMAV task assignment at every count.
    states = [ctx.flatdd(threads=t, force_convert_at=0) for t in counts]
    errs = [phase_aligned_error(states[0], s) for s in states[1:]]
    return _ladder_outcome(
        "thread_invariance", "metamorphic", max(errs),
        f"flatdd at threads={counts} (conversion forced at gate 0)", t0,
    )


def oracle_plan_cache_equivalence(
    circuit: Circuit, ctx: OracleContext
) -> OracleOutcome:
    """The DMAV plan compiler must be a pure performance optimization.

    Runs the pipeline with ``plan_cache`` on and off, forcing conversion
    at gate 0 so every gate goes through the DMAV hot loop the plans
    govern.  Equality is ``np.array_equal``, not a tolerance: compiled
    plans replay the per-gate descents' weight arithmetic bit-for-bit
    (:mod:`repro.core.plan`), so any drift is a real compiler bug, not
    float noise.
    """
    t0 = time.perf_counter()
    if len(circuit.gates) < 2:
        return _skip(
            "plan_cache", "metamorphic", "needs >= 2 gates", t0
        )
    planned = ctx.flatdd(force_convert_at=0, plan_cache=True)
    legacy = ctx.flatdd(force_convert_at=0, plan_cache=False)
    identical = bool(np.array_equal(planned, legacy))
    err = (
        0.0 if identical
        else float(np.max(np.abs(planned - legacy)))
    )
    return OracleOutcome(
        oracle="plan_cache",
        family="metamorphic",
        passed=identical,
        max_error=err,
        tier="tight" if identical else "violation",
        detail=(
            "plan_cache on vs off (force_convert_at=0, full DMAV phase), "
            "bit-exact comparison"
        ),
        seconds=time.perf_counter() - t0,
    )


def oracle_identity_skip_equivalence(
    circuit: Circuit, ctx: OracleContext
) -> OracleOutcome:
    """Identity-skipped gate DDs must be a pure performance optimization.

    Runs the pipeline with ``identity_skip`` on and off.  Equality is
    ``np.array_equal``, not a tolerance: windowed and full-height gate
    DDs share the active-window subtree through hash-consing and the
    pass-through levels carry exact ``1.0`` weights, so the two modes
    multiply exactly the same complex values in exactly the same order
    (:mod:`repro.dd.operations`).  Any drift is a real skip-rule bug,
    not float noise.
    """
    t0 = time.perf_counter()
    skipped = ctx.flatdd(identity_skip=True)
    full = ctx.flatdd(identity_skip=False)
    identical = bool(np.array_equal(skipped, full))
    err = (
        0.0 if identical
        else float(np.max(np.abs(skipped - full)))
    )
    return OracleOutcome(
        oracle="identity_skip",
        family="metamorphic",
        passed=identical,
        max_error=err,
        tier="tight" if identical else "violation",
        detail=(
            "identity_skip on vs off (EWMA-timed conversion), "
            "bit-exact comparison"
        ),
        seconds=time.perf_counter() - t0,
    )


def oracle_reorder_equivalence(
    circuit: Circuit, ctx: OracleContext
) -> OracleOutcome:
    """Qubit reordering must be semantically invisible.

    The DD phase runs on a relabeled circuit and conversion un-permutes
    the amplitudes back to canonical order, so any variable order must
    reproduce the natural-order state.  The comparison goes through the
    tolerance ladder (not bit-exact): a different order changes the
    floating-point contraction order inside the DD phase, which is
    allowed to perturb amplitudes at the ulp level but no further.
    """
    t0 = time.perf_counter()
    base = ctx.flatdd(qubit_order="natural")
    errs = [
        phase_aligned_error(base, ctx.flatdd(qubit_order=mode))
        for mode in ("interaction", "sift")
    ]
    return _ladder_outcome(
        "reorder_equivalence", "metamorphic", max(errs),
        "qubit_order interaction/sift vs natural (un-permuted at "
        "conversion)", t0,
    )


def oracle_checkpoint_resume(
    circuit: Circuit, ctx: OracleContext
) -> OracleOutcome:
    """Checkpoint + resume must be *bit-identical* to the clean run.

    The checkpoint cadence is derived from the circuit fingerprint so the
    cut point (and hence the phase -- DD or flat array -- being
    snapshotted) varies across the fuzz corpus without any randomness in
    the oracle itself.  Equality is ``np.array_equal``, not a tolerance:
    the snapshot captures the full complex table so resume replays the
    very same canonicalization decisions (docs/RESILIENCE.md).
    """
    t0 = time.perf_counter()
    gates = len(circuit.gates)
    if gates < 2:
        return _skip(
            "checkpoint_resume", "metamorphic", "needs >= 2 gates", t0
        )
    # Deterministic cadence in [1, min(gates-1, 32)]: always at least one
    # checkpoint opportunity strictly before the final gate, and small
    # enough that long circuits overwrite DD-phase snapshots with
    # DMAV-phase ones (covering both snapshot kinds across the corpus).
    every = int(circuit.fingerprint()[:8], 16) % min(gates - 1, 32) + 1
    threads = ctx._effective_threads(None)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "fuzz.ckpt")
        full = FlatDDSimulator(FlatDDConfig(threads=threads)).run(
            circuit, checkpoint_every=every, checkpoint_path=path
        )
        if not os.path.exists(path):
            return _skip(
                "checkpoint_resume", "metamorphic",
                f"no checkpoint emitted (checkpoint_every={every}, "
                "cadence landed only on suppressed boundaries)", t0,
            )
        resumed = FlatDDSimulator(FlatDDConfig(threads=threads)).run(
            circuit, resume_from=path
        )
    identical = bool(np.array_equal(full.state, resumed.state))
    err = (
        0.0 if identical
        else float(np.max(np.abs(full.state - resumed.state)))
    )
    phase = resumed.metadata.get("resume_phase", "?")
    return OracleOutcome(
        oracle="checkpoint_resume",
        family="metamorphic",
        passed=identical,
        max_error=err,
        tier="tight" if identical else "violation",
        detail=(
            f"resume from {phase}-phase snapshot "
            f"(checkpoint_every={every}) vs uninterrupted run, "
            "bit-exact comparison"
        ),
        seconds=time.perf_counter() - t0,
    )


def oracle_sweep_consistency(
    circuit: Circuit, ctx: OracleContext
) -> OracleOutcome:
    """Every batched-sweep row must be *bit-identical* to its own run.

    Builds a small sweep from the fuzzed circuit's own parameters:
    deterministic per-slot perturbations (no randomness in the oracle)
    plus a duplicate row to exercise deduplication, swept twice -- once
    EWMA-timed and once with conversion forced at gate 0 so the batched
    DMAV replay is guaranteed to run.  Equality is ``np.array_equal``,
    not a tolerance: the lockstep kernels replay the single-shot gemm
    shapes per row (:mod:`repro.core.sweep`), so any drift is a real
    batching bug, not float noise.
    """
    t0 = time.perf_counter()
    if len(circuit.gates) < 2:
        return _skip(
            "sweep_consistency", "metamorphic", "needs >= 2 gates", t0
        )
    base = circuit.extract_params()
    rows = [
        base,
        tuple(p + 0.1 + 0.01 * j for j, p in enumerate(base)),
        tuple(p - 0.2 + 0.03 * j for j, p in enumerate(base)),
        base,  # duplicate: must come back via the dedup fan-out
    ]
    threads = ctx._effective_threads(None)
    err = 0.0
    identical = True
    for fca in (None, 0):
        sim = FlatDDSimulator(
            FlatDDConfig(threads=threads, force_convert_at=fca)
        )
        result = sim.simulate_sweep(circuit, rows)
        for i, row in enumerate(rows):
            ref = sim.run(circuit.bind(row)).state
            if not np.array_equal(result.states[i], ref):
                identical = False
                err = max(
                    err, float(np.max(np.abs(result.states[i] - ref)))
                )
    return OracleOutcome(
        oracle="sweep_consistency",
        family="metamorphic",
        passed=identical,
        max_error=err,
        tier="tight" if identical else "violation",
        detail=(
            f"simulate_sweep over {len(rows)} parameter rows "
            "(EWMA-timed and force_convert_at=0) vs per-row run(), "
            "bit-exact comparison"
        ),
        seconds=time.perf_counter() - t0,
    )


#: name -> (family, oracle function).  Iteration order is cheap-first so a
#: budgeted campaign still covers the differential core on every circuit.
ORACLES: dict[str, tuple[str, callable]] = {
    "flatdd_vs_statevector": ("differential", oracle_flatdd_vs_statevector),
    "flatdd_vs_ddsim": ("differential", oracle_flatdd_vs_ddsim),
    "ddsim_vs_statevector": ("differential", oracle_ddsim_vs_statevector),
    "norm_preserved": ("metamorphic", oracle_norm_preserved),
    "conversion_point_equivalence": (
        "metamorphic", oracle_conversion_point_equivalence
    ),
    "thread_invariance": ("metamorphic", oracle_thread_invariance),
    "fusion_equivalence": ("metamorphic", oracle_fusion_equivalence),
    "inverse_roundtrip": ("metamorphic", oracle_inverse_roundtrip),
    "plan_cache": ("metamorphic", oracle_plan_cache_equivalence),
    "identity_skip": ("metamorphic", oracle_identity_skip_equivalence),
    "reorder_equivalence": ("metamorphic", oracle_reorder_equivalence),
    "checkpoint_resume": ("metamorphic", oracle_checkpoint_resume),
    "sweep_consistency": ("metamorphic", oracle_sweep_consistency),
}

ORACLE_FAMILIES: tuple[str, ...] = ("differential", "metamorphic")


def run_oracles(
    circuit: Circuit,
    oracles: list[str] | tuple[str, ...] | None = None,
    threads: int = 2,
    tracer=None,
) -> list[OracleOutcome]:
    """Run the named oracles (default: all) against one circuit.

    Returns one :class:`OracleOutcome` per oracle; failures do not stop
    the sweep, so one circuit can surface several independent violations.
    """
    names = list(oracles) if oracles is not None else list(ORACLES)
    unknown = [n for n in names if n not in ORACLES]
    if unknown:
        raise ValueError(
            f"unknown oracles {unknown}; known: {sorted(ORACLES)}"
        )
    ctx = OracleContext(circuit, threads=threads)
    outcomes = []
    for name in names:
        family, fn = ORACLES[name]
        if tracer is not None and tracer.enabled:
            with tracer.span(f"oracle:{name}", "fuzz", circuit=circuit.name):
                outcomes.append(fn(circuit, ctx))
        else:
            outcomes.append(fn(circuit, ctx))
    return outcomes
