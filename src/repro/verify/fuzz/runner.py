"""Fuzz campaign driver: generate -> check -> shrink -> persist.

A campaign is fully determined by its seed: iteration ``i`` derives its
circuit spec via SeedSequence spawning, runs the configured oracles, and
on a violation shrinks the circuit (re-checking the violated oracle at
every reduction step) and writes a replayable regression file.

Observability rides the PR-1 layer: pass a
:class:`~repro.obs.tracer.Tracer` and every iteration/oracle becomes a
span, violations become instants, and the returned
:class:`CampaignResult` carries the same ``obs`` payload the simulators
attach to their results.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field

from repro.circuits.circuit import Circuit
from repro.obs.collect import build_obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.verify.fuzz.faults import plant_fault
from repro.verify.fuzz.generate import (
    REGIMES,
    FuzzSpec,
    generate_circuit,
    spec_for_iteration,
)
from repro.verify.fuzz.oracles import ORACLES, OracleOutcome, run_oracles
from repro.verify.fuzz.shrink import shrink_circuit, write_regression

__all__ = ["CampaignResult", "FuzzViolation", "run_campaign"]

_log = logging.getLogger("repro.verify.fuzz")


@dataclass(frozen=True)
class FuzzViolation:
    """One oracle violation, with its shrunk reproduction."""

    iteration: int
    spec: FuzzSpec
    outcome: OracleOutcome
    original_gates: int
    shrunk_gates: int
    shrunk_qubits: int
    #: Regression file path (None when persisting was disabled).
    regression_path: str | None


@dataclass
class CampaignResult:
    """Aggregate of one fuzz campaign."""

    seed: int
    iterations: int
    seconds: float
    violations: list[FuzzViolation] = field(default_factory=list)
    #: oracle name -> number of (non-skipped) runs.
    oracle_runs: dict = field(default_factory=dict)
    #: oracle name -> cumulative seconds.
    oracle_seconds: dict = field(default_factory=dict)
    #: oracle name -> worst tolerance tier seen ("tight" < ... < "violation").
    worst_tier: dict = field(default_factory=dict)
    stopped_by_budget: bool = False
    #: PR-1 observability payload (counters + per-phase summary when traced).
    obs: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary_dict(self) -> dict:
        """JSON-friendly campaign summary (the CLI's --json payload)."""
        return {
            "seed": self.seed,
            "iterations": self.iterations,
            "seconds": round(self.seconds, 3),
            "violations": [
                {
                    "iteration": v.iteration,
                    "oracle": v.outcome.oracle,
                    "family": v.outcome.family,
                    "max_error": v.outcome.max_error,
                    "spec": v.spec.as_dict(),
                    "original_gates": v.original_gates,
                    "shrunk_gates": v.shrunk_gates,
                    "shrunk_qubits": v.shrunk_qubits,
                    "regression_path": v.regression_path,
                }
                for v in self.violations
            ],
            "oracle_runs": dict(self.oracle_runs),
            "worst_tier": dict(self.worst_tier),
            "stopped_by_budget": self.stopped_by_budget,
        }


_TIER_ORDER = {"tight": 0, "standard": 1, "loose": 2, "violation": 3}


def _shrink_violation(
    circuit: Circuit,
    outcome: OracleOutcome,
    threads: int,
    max_checks: int,
) -> Circuit:
    """Minimize ``circuit`` against the one oracle that fired."""
    name = outcome.oracle

    def still_fails(candidate: Circuit) -> bool:
        results = run_oracles(candidate, oracles=[name], threads=threads)
        return any(not r.passed for r in results)

    return shrink_circuit(circuit, still_fails, max_checks=max_checks)


def run_campaign(
    seed: int = 0,
    iterations: int = 100,
    budget_seconds: float | None = None,
    regimes: tuple[str, ...] | None = None,
    oracles: list[str] | None = None,
    max_qubits: int = 6,
    max_gates: int = 60,
    threads: int = 2,
    shrink: bool = True,
    shrink_max_checks: int = 200,
    out_dir: str | None = None,
    plant_bug: str | None = None,
    tracer=None,
) -> CampaignResult:
    """Run a seeded differential/metamorphic fuzz campaign.

    Stops after ``iterations`` circuits or once ``budget_seconds`` of wall
    time is spent, whichever comes first.  ``out_dir=None`` disables
    regression-file persistence (violations are still reported).
    ``plant_bug`` installs a named fault from
    :mod:`repro.verify.fuzz.faults` for the whole campaign -- the
    documented way to watch the harness catch, shrink, and persist a bug.
    """
    if regimes:
        unknown = [r for r in regimes if r not in REGIMES]
        if unknown:
            raise ValueError(
                f"unknown regimes {unknown}; known: {sorted(REGIMES)}"
            )
    chosen_regimes = tuple(regimes) if regimes else REGIMES
    oracle_names = list(oracles) if oracles is not None else list(ORACLES)
    tr = tracer if tracer is not None else NULL_TRACER
    tracing = tr.enabled
    registry = MetricsRegistry()
    # Register the headline counters up front so a clean campaign still
    # reports them as explicit zeros.
    registry.counter("fuzz.iterations").inc(0)
    registry.counter("fuzz.oracles_run").inc(0)
    registry.counter("fuzz.violations").inc(0)
    result = CampaignResult(seed=seed, iterations=0, seconds=0.0)
    start = time.perf_counter()

    with plant_fault(plant_bug):
        for i in range(iterations):
            if (
                budget_seconds is not None
                and time.perf_counter() - start > budget_seconds
            ):
                result.stopped_by_budget = True
                break
            spec = spec_for_iteration(
                seed, i, regimes=chosen_regimes, max_qubits=max_qubits,
                max_gates=max_gates,
            )
            circuit = generate_circuit(spec)
            i0 = time.perf_counter()
            outcomes = run_oracles(
                circuit, oracles=oracle_names, threads=threads,
                tracer=tr if tracing else None,
            )
            i1 = time.perf_counter()
            if tracing:
                # Category "phase" so --profile folds iterations into one
                # row (oracle spans inside count as inner spans).
                tr.record(
                    "fuzz_iteration", "phase", i0, i1,
                    iteration=i, regime=spec.regime,
                    qubits=circuit.num_qubits, gates=len(circuit.gates),
                )
            result.iterations += 1
            registry.counter("fuzz.iterations").inc()
            registry.counter("fuzz.circuit_gates").inc(len(circuit.gates))
            for outcome in outcomes:
                if outcome.skipped:
                    registry.counter("fuzz.oracles_skipped").inc()
                    continue
                result.oracle_runs[outcome.oracle] = (
                    result.oracle_runs.get(outcome.oracle, 0) + 1
                )
                result.oracle_seconds[outcome.oracle] = (
                    result.oracle_seconds.get(outcome.oracle, 0.0)
                    + outcome.seconds
                )
                if outcome.tier is not None:
                    prev = result.worst_tier.get(outcome.oracle, "tight")
                    if _TIER_ORDER[outcome.tier] > _TIER_ORDER[prev]:
                        result.worst_tier[outcome.oracle] = outcome.tier
                    else:
                        result.worst_tier.setdefault(outcome.oracle, prev)
                registry.counter("fuzz.oracles_run").inc()
                if outcome.passed:
                    continue
                registry.counter("fuzz.violations").inc()
                if tracing:
                    tr.instant(
                        "oracle_violation", "fuzz",
                        iteration=i, oracle=outcome.oracle,
                        max_error=outcome.max_error,
                    )
                _log.warning(
                    "iteration %d: oracle %s violated on %s "
                    "(max_error=%s): %s",
                    i, outcome.oracle, circuit.name, outcome.max_error,
                    outcome.detail,
                )
                shrunk = circuit
                if shrink:
                    s0 = time.perf_counter()
                    shrunk = _shrink_violation(
                        circuit, outcome, threads, shrink_max_checks
                    )
                    if tracing:
                        tr.record(
                            "shrink", "phase", s0, time.perf_counter(),
                            oracle=outcome.oracle,
                            before=len(circuit.gates),
                            after=len(shrunk.gates),
                        )
                path = None
                if out_dir is not None:
                    path = write_regression(
                        shrunk,
                        outcome.oracle,
                        directory=out_dir,
                        seed=seed,
                        spec=spec.as_dict(),
                        plant_bug=plant_bug,
                        outcome={
                            "max_error": outcome.max_error,
                            "detail": outcome.detail,
                        },
                        note=f"campaign seed={seed} iteration={i}",
                    )
                    _log.warning("wrote regression file %s", path)
                result.violations.append(
                    FuzzViolation(
                        iteration=i,
                        spec=spec,
                        outcome=outcome,
                        original_gates=len(circuit.gates),
                        shrunk_gates=len(shrunk.gates),
                        shrunk_qubits=shrunk.num_qubits,
                        regression_path=path,
                    )
                )

    result.seconds = time.perf_counter() - start
    registry.gauge("fuzz.seconds").set(result.seconds)
    result.obs = build_obs(
        tracer=tr if tracing else None,
        registry=registry,
        wall_seconds=result.seconds,
    )
    return result
